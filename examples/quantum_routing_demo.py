"""The non-oblivious quantum routing model, exactly (Appendix A).

A dense state-vector simulation of the paper's port-register model on a
little star network:

1. the centre prepares a *superposed recipient* register,
2. control-swaps a message symbol into the selected emission register,
3. the global Send operator swaps emission registers into the neighbours'
   reception registers,
4. measurement finds the message at exactly one leaf.

The punchline of Section 3.1: the superposed send has **message complexity
1** — each branch of the superposition carries one message — while the
classical broadcast that achieves the same reachability costs deg(v).

    python examples/quantum_routing_demo.py
"""

import math

import numpy as np

from repro.network import graphs
from repro.quantum.routing import QuantumRoutingNetwork
from repro.util.rng import RandomSource


def main() -> None:
    leaves = 3
    star = graphs.star(leaves + 1)
    print(f"Star network: centre 0, leaves 1..{leaves}\n")

    # --- classical broadcast -------------------------------------------------
    broadcast = QuantumRoutingNetwork(star, alphabet_size=1)
    broadcast.allocate_local(0, "ctl", leaves)
    broadcast.build()
    for leaf in range(1, leaves + 1):
        broadcast.write_message(0, leaf, symbol=1)
    print(f"classical broadcast to all leaves: message complexity = "
          f"{broadcast.round_message_complexity()}")

    # --- superposed single send ----------------------------------------------
    network = QuantumRoutingNetwork(star, alphabet_size=1)
    network.allocate_local(0, "ctl", leaves)
    network.build()
    amplitude = 1.0 / math.sqrt(leaves)
    network.prepare_recipient_superposition(
        0, "ctl", {leaf: amplitude for leaf in range(1, leaves + 1)}
    )
    network.write_message_controlled(0, "ctl", symbol=1)
    print(f"superposed send to one-of-{leaves}:   message complexity = "
          f"{network.round_message_complexity()}")

    network.send_all()
    print("\nafter Send, per-leaf reception marginals (P[vacuum], P[message]):")
    for leaf in range(1, leaves + 1):
        marginal = network.state.marginal([network.reception(leaf, 0)])
        print(f"  leaf {leaf}: {np.round(marginal, 3)}")

    rng = RandomSource(5)
    outcomes = {
        leaf: network.measure_reception(leaf, 0, rng)
        for leaf in range(1, leaves + 1)
    }
    received = [leaf for leaf, symbol in outcomes.items() if symbol == 1]
    print(f"\nmeasurement collapse: exactly one delivery, at leaf {received[0]}")
    print(
        "\nThis is the superposition-of-trajectories mechanism QuantumLE's "
        "Grover search uses to query referees with O(1) messages per "
        "coherent Checking call."
    )


if __name__ == "__main__":
    main()
