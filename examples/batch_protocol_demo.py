"""Array-native protocols: porting a Node subclass to BatchProtocol.

Walks the EXPERIMENTS.md migration recipe on a minimal protocol —
max-id flooding on a cycle (every node repeatedly broadcasts the largest
id it has heard; after n rounds everyone knows the maximum) — then shows
the same `--node-api` switch on a shipped port (ring LCR) and the
`ScalarAdapter` escape hatch for unported protocols.

Run with:  PYTHONPATH=src python examples/batch_protocol_demo.py
"""

import time

import numpy as np

from repro.classical.leader_election.ring import lcr_ring
from repro.network import graphs
from repro.network.batch import BatchProtocol, MessageBatch, ScalarAdapter
from repro.network.engine import SynchronousEngine
from repro.network.message import Message
from repro.network.metrics import MetricsRecorder
from repro.network.node import Node
from repro.util.rng import RandomSource


# -- 1. the scalar protocol: one step() call per node per round ---------------


class FloodNode(Node):
    """Broadcast the largest id heard so far; halt after ``deadline`` rounds."""

    def __init__(self, uid, degree, rng, deadline):
        super().__init__(uid, degree, rng)
        self.deadline = deadline
        self.best = uid

    def step(self, round_index, inbox):
        for _, message in inbox:
            if message.payload > self.best:
                self.best = message.payload
        if round_index >= self.deadline:
            self.halt()
            return []
        return [(p, Message("flood", payload=self.best)) for p in range(self.degree)]


# -- 2. the array-native port: one step_batch() call per round ----------------


class FloodBatch(BatchProtocol):
    """The same protocol as struct-of-arrays state + grouped reductions.

    Migration recipe applied: per-node ``best`` becomes a column; the
    inbox loop becomes one ``np.maximum.at``; the outbox is built in
    canonical order (senders ascending) by repeating each alive node
    ``degree`` times; halting is one mask assignment.
    """

    def __init__(self, topology, deadline):
        super().__init__(topology.n)
        self.deadline = deadline
        self.best = np.arange(topology.n, dtype=np.int64)
        self.degree = np.asarray(
            [topology.degree(v) for v in range(topology.n)], dtype=np.int64
        )
        # ports 0..degree-1 per node, flattened in node order once.
        self._senders = np.repeat(np.arange(topology.n, dtype=np.int64), self.degree)
        self._ports = np.concatenate(
            [np.arange(d, dtype=np.int64) for d in self.degree.tolist()]
        )

    def step_batch(self, round_index, inbox):
        if len(inbox):
            np.maximum.at(self.best, inbox.receivers, inbox.values)
        if round_index >= self.deadline:
            self.halted[:] = True
            return None
        alive_rows = ~self.halted[self._senders]
        senders = self._senders[alive_rows]
        return MessageBatch(
            senders=senders,
            ports=self._ports[alive_rows],
            kinds=np.zeros(len(senders), dtype=np.int64),
            values=self.best[senders],
        )


def run_flood(topology, mode):
    rng = RandomSource(0)
    metrics = MetricsRecorder()
    deadline = topology.n
    if mode == "batch":
        program = FloodBatch(topology, deadline)
    else:
        nodes = [
            FloodNode(v, topology.degree(v), rng.spawn(), deadline)
            for v in range(topology.n)
        ]
        program = ScalarAdapter(nodes) if mode == "adapter" else nodes
    engine = SynchronousEngine(topology, program, metrics, label="flood")
    start = time.perf_counter()
    engine.run(max_rounds=deadline + 1)
    elapsed = time.perf_counter() - start
    if mode == "batch":
        best = program.best.tolist()
    else:
        best = [n.best for n in (program.nodes if mode == "adapter" else program)]
    return best, metrics.messages, metrics.rounds, elapsed


def main():
    topology = graphs.cycle(512)
    print(f"max-id flood on C_{topology.n}:")
    baseline = None
    for mode in ("scalar", "adapter", "batch"):
        best, messages, rounds, elapsed = run_flood(topology, mode)
        assert all(b == topology.n - 1 for b in best)
        if baseline is None:
            baseline = (best, messages, rounds)
        else:
            assert (best, messages, rounds) == baseline, "paths must agree"
        print(
            f"  {mode:<8} {messages:>9,} msgs over {rounds} rounds "
            f"in {elapsed * 1e3:7.1f} ms  ({rounds / elapsed:,.0f} rounds/s)"
        )

    print("\nshipped port — ring LCR, scalar vs batch dispatch:")
    for api in ("scalar", "batch"):
        start = time.perf_counter()
        result = lcr_ring(1024, RandomSource(3), node_api=api)
        elapsed = time.perf_counter() - start
        print(
            f"  node_api={api:<7} leader={result.leader} "
            f"messages={result.messages:,} rounds={result.rounds} "
            f"in {elapsed * 1e3:7.1f} ms"
        )
    print("\n(identical leaders/messages/rounds: the batch path is")
    print(" bit-identical, it just crosses the numpy boundary once per")
    print(" round instead of once per node.)")


if __name__ == "__main__":
    main()
