"""Implicit agreement with a shared coin: quantum vs classical.

Both protocols (Algorithm 4 and its [AMP18] classical counterpart) run on the
same inputs with the same shared-coin seed, so the loop dynamics are directly
comparable: same decided/undecided splits whenever their estimates agree.

    python examples/agreement_demo.py [n] [fraction_of_ones]
"""

import sys

from repro import (
    RandomSource,
    SharedCoin,
    classical_agreement_shared,
    quantum_agreement,
)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 8192
    fraction = float(sys.argv[2]) if len(sys.argv) > 2 else 0.3
    ones = int(fraction * n)
    inputs = [1] * ones + [0] * (n - ones)
    rng = RandomSource(11)

    print(f"Implicit agreement on K_{n}: {ones} ones, {n - ones} zeros\n")

    quantum = quantum_agreement(
        inputs, rng.spawn(), shared_coin=SharedCoin(RandomSource(99))
    )
    print("QuantumAgreement (Algorithm 4)")
    print(f"  agreed value : {quantum.agreed_value} (valid={quantum.success})")
    print(f"  decided nodes: {len(quantum.decided_nodes)}")
    print(f"  iterations   : {quantum.meta['iterations']}")
    print(f"  messages     : {quantum.messages:,} "
          f"(expected Õ(n^(1/5)) — Corollary 6.8)")

    classical = classical_agreement_shared(
        inputs, rng.spawn(), shared_coin=SharedCoin(RandomSource(99))
    )
    print("\nClassical agreement [AMP18]")
    print(f"  agreed value : {classical.agreed_value} (valid={classical.success})")
    print(f"  decided nodes: {len(classical.decided_nodes)}")
    print(f"  messages     : {classical.messages:,} (expected Õ(n^(2/5)))")

    print(
        "\nBoth decide a value some node actually held, using sublinearly "
        "many messages; the quantum estimation (ApproxCount, Θ(1/ε)) and "
        "detection (Grover, Θ(√(n/s))) are each quadratically cheaper than "
        "their sampling counterparts."
    )


if __name__ == "__main__":
    main()
