"""Quickstart: quantum vs classical leader election on a complete network.

Runs QuantumLE (Algorithm 1, Õ(n^{1/3}) messages) and the classical
birthday-paradox protocol (Θ̃(√n)) on the same K_n, prints who won the
election, what it cost, and where the messages went.

    python examples/quickstart.py [n]
"""

import sys

from repro import RandomSource, classical_le_complete, quantum_le_complete


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 4096
    rng = RandomSource(2025)

    print(f"Leader election on the complete graph K_{n}\n")

    quantum = quantum_le_complete(n, rng.spawn())
    print("QuantumLE (Algorithm 1)")
    print(f"  leader elected : node {quantum.leader} (success={quantum.success})")
    print(f"  candidates     : {quantum.meta['candidates']}")
    print(f"  messages       : {quantum.messages:,}")
    print(f"  rounds         : {quantum.rounds:,}")
    print("  message ledger :")
    for label, messages in sorted(
        quantum.metrics.ledger.messages_by_label().items(), key=lambda kv: -kv[1]
    ):
        if messages:
            print(f"    {label:35s} {messages:,}")

    classical = classical_le_complete(n, rng.spawn())
    print("\nClassical LE [KPP+15b]")
    print(f"  leader elected : node {classical.leader} (success={classical.success})")
    print(f"  messages       : {classical.messages:,}")
    print(f"  rounds         : {classical.rounds:,}")

    ratio = classical.messages / quantum.messages
    print(
        f"\nQuantum advantage: {ratio:.2f}x fewer messages "
        f"(paper: Õ(n^(1/3)) vs Θ̃(√n), Corollary 5.3)"
    )


if __name__ == "__main__":
    main()
