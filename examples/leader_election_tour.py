"""A tour of all four quantum leader-election protocols.

Each protocol of Section 5 runs on the topology class it was designed for,
next to its classical comparator:

* complete graphs            — QuantumLE        vs [KPP+15b]
* hypercube (mixing time τ)  — QuantumRWLE      vs classical random walks
* dense diameter-2 graph     — QuantumQWLE      vs [CPR20]-style flooding
* sparse general graph       — QuantumGeneralLE vs GHS-style merging

    python examples/leader_election_tour.py
"""

from repro import (
    QWLEParameters,
    RandomSource,
    classical_le_complete,
    classical_le_diameter2,
    classical_le_general,
    classical_le_mixing,
    quantum_general_le,
    quantum_le_complete,
    quantum_qwle,
    quantum_rwle,
)
from repro.network import graphs


def show(title: str, quantum, classical) -> None:
    print(f"\n{title}")
    print(f"  quantum  : leader={quantum.leader}, messages={quantum.messages:,}, "
          f"rounds={quantum.rounds:,}, success={quantum.success}")
    print(f"  classical: leader={classical.leader}, messages={classical.messages:,}, "
          f"rounds={classical.rounds:,}, success={classical.success}")


def main() -> None:
    rng = RandomSource(7)

    n = 1024
    show(
        f"Complete graph K_{n} (Cor 5.3: Õ(n^1/3) vs Θ̃(√n))",
        quantum_le_complete(n, rng.spawn()),
        classical_le_complete(n, rng.spawn()),
    )

    cube = graphs.hypercube(9)  # n = 512
    tau = 18
    show(
        f"Hypercube Q_9 with τ={tau} (Cor 5.5: Õ(τ^5/3·n^1/3) vs Õ(τ√n))",
        quantum_rwle(cube, rng.spawn(), tau=tau),
        classical_le_mixing(cube, rng.spawn(), tau=tau),
    )

    d2 = graphs.erdos_renyi(256, 0.5, rng.spawn())
    show(
        "Dense diameter-2 graph G(256, 1/2) (Cor 5.7: Õ(n^2/3) vs Θ(n))",
        quantum_qwle(d2, rng.spawn(), QWLEParameters(alpha=1 / 8, inner_alpha=1 / 8)),
        classical_le_diameter2(d2, rng.spawn()),
    )

    sparse = graphs.erdos_renyi(128, 0.1, rng.spawn())
    show(
        f"General graph, n=128, m={sparse.edge_count()} "
        "(Thm 5.10: Õ(√(mn)) vs Θ(m), explicit LE)",
        quantum_general_le(sparse, rng.spawn(), alpha=1 / 8),
        classical_le_general(sparse, rng.spawn()),
    )

    print(
        "\nNote: absolute counts at small n carry each schedule's polylog "
        "constants; the benchmarks (benchmarks/) measure the scaling "
        "exponents the paper actually claims."
    )


if __name__ == "__main__":
    main()
