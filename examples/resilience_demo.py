"""Resilience: what the paper's baselines survive when CONGEST degrades.

Three short studies with the deterministic adversary
(:mod:`repro.adversary`):

1. a drop-rate ladder for LCR on a ring — the halt wave has no
   retransmission, so success collapses somewhere between 2% and 10% loss;
2. crash-stops against KPP leader election on K_n — the birthday protocol
   shrugs off a few dead referees;
3. worst-case tie inputs against shared-coin agreement — validity holds
   even at the exact 50/50 split the sampling estimator finds hardest.

Every run is seed-reproducible and backend-independent: swap
``REPRO_ENGINE=reference`` and the numbers do not move.

    python examples/resilience_demo.py
"""

from repro import AdversarySpec, RandomSource, classical_le_complete, lcr_ring
from repro.adversary import adversarial_inputs
from repro.classical import classical_agreement_shared


def drop_ladder() -> None:
    print("LCR on a 64-ring under increasing message loss (5 seeds each):")
    for drop in (0.0, 0.02, 0.05, 0.10):
        spec = AdversarySpec(drop_rate=drop)
        wins = dropped = 0
        for seed in range(5):
            result = lcr_ring(64, RandomSource(seed), adversary=spec)
            wins += result.success
            dropped += result.meta.get("fault_messages_dropped", 0)
        print(
            f"  drop={drop:4.0%}  elected {wins}/5  "
            f"(messages lost per run: {dropped / 5:.1f})"
        )


def crash_study() -> None:
    print("\nKPP leader election on K_256 with crash-stop referees:")
    for crashes in (0, 4, 16, 64):
        spec = AdversarySpec(crash_count=crashes, crash_by=2) if crashes else None
        wins = 0
        for seed in range(5):
            result = classical_le_complete(256, RandomSource(seed), adversary=spec)
            wins += result.success
        print(f"  crash={crashes:3d}@<2  elected {wins}/5")


def worst_case_inputs() -> None:
    print("\nShared-coin agreement on K_256, benign vs worst-case inputs:")
    for label, spec in (
        ("benign 30% ones", None),
        ("adversarial tie ", AdversarySpec(input_schedule="tie")),
    ):
        inputs = adversarial_inputs(256, 0.3, spec, RandomSource(0))
        result = classical_agreement_shared(inputs, RandomSource(1))
        print(
            f"  {label}: ones={sum(inputs):3d}  valid={result.success}  "
            f"messages={result.messages:,}"
        )


if __name__ == "__main__":
    drop_ladder()
    crash_study()
    worst_case_inputs()
