"""Engine backends: trace-equivalence and the speed of the fast path.

Runs the same classical leader election on both engine backends, shows
that every observable — leader, statuses, messages, rounds — is
bit-identical, and times a dense gossip round under each backend to show
why ``fast`` is the default.

    python examples/engine_backends.py [n]
"""

import sys
import time

from repro import RandomSource, classical_le_complete
from repro.network import graphs
from repro.network.engine import SynchronousEngine
from repro.network.message import Message
from repro.network.metrics import MetricsRecorder
from repro.network.node import Node


class GossipNode(Node):
    """Re-sends one prebuilt 32-port outbox every round (engine stress)."""

    def __init__(self, uid, degree, rng):
        super().__init__(uid, degree, rng)
        fanout = min(degree, 32)
        self.outbox = [
            ((uid + j) % degree, Message("gossip", payload=j))
            for j in range(fanout)
        ]

    def step(self, round_index, inbox):
        return self.outbox


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 512

    print(f"1. Trace equivalence: classical LE on K_{n} under both backends\n")
    import os

    results = {}
    for backend in ("fast", "reference"):
        os.environ["REPRO_ENGINE"] = backend
        results[backend] = classical_le_complete(n, RandomSource(7))
    os.environ.pop("REPRO_ENGINE", None)
    for backend, result in results.items():
        print(
            f"  {backend:>9}: leader={result.leader} "
            f"messages={result.messages:,} rounds={result.rounds}"
        )
    fast, reference = results["fast"], results["reference"]
    identical = (
        fast.leader == reference.leader
        and fast.messages == reference.messages
        and fast.rounds == reference.rounds
        and fast.statuses == reference.statuses
    )
    print(f"  bit-identical: {identical}\n")

    print(f"2. Engine throughput: 32-port gossip rounds on K_{n}\n")
    topology = graphs.complete(n)
    topology.port_table()  # build the routing table outside the timing
    rounds = 10
    rates = {}
    for backend in ("fast", "reference"):
        rng = RandomSource(0)
        nodes = [GossipNode(v, topology.degree(v), rng) for v in range(n)]
        engine = SynchronousEngine(
            topology, nodes, MetricsRecorder(), backend=backend
        )
        start = time.perf_counter()
        engine.run(max_rounds=rounds)
        rates[backend] = rounds / (time.perf_counter() - start)
        print(f"  {backend:>9}: {rates[backend]:8.1f} rounds/sec")
    print(f"  speedup: {rates['fast'] / rates['reference']:.1f}x")


if __name__ == "__main__":
    main()
