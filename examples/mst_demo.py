"""Minimum spanning tree via quantum tree merging (Section 5.4's extension).

Builds a weighted random graph, runs QuantumMST (Borůvka merging with
distributed Dürr–Høyer minimum finding) and the classical probe-all-ports
Borůvka, verifies both against networkx, and compares message bills.

    python examples/mst_demo.py [n] [density]
"""

import sys

import networkx as nx

from repro import RandomSource, classical_mst, quantum_mst
from repro.network import graphs


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    density = float(sys.argv[2]) if len(sys.argv) > 2 else 0.3
    rng = RandomSource(17)

    topology = graphs.erdos_renyi(n, density, rng.spawn())
    weights = {
        edge: float(rng.spawn().uniform_int(1, 10**6)) for edge in topology.edges()
    }
    print(f"Weighted G({n}, {density}): m = {topology.edge_count()} edges\n")

    quantum = quantum_mst(topology, weights, rng.spawn(), alpha=1 / 8)
    classical = classical_mst(topology, weights, rng.spawn())

    reference = nx.Graph()
    for (u, v), w in weights.items():
        reference.add_edge(u, v, weight=w)
    truth = sum(
        d["weight"] for _, _, d in nx.minimum_spanning_tree(reference).edges(data=True)
    )

    for label, result in (("QuantumMST", quantum), ("Classical Borůvka", classical)):
        exact = abs(result.total_weight - truth) < 1e-9
        print(f"{label}")
        print(f"  spanning tree : {result.is_spanning} ({len(result.edges)} edges)")
        print(f"  weight        : {result.total_weight:,.0f} (exact MST: {exact})")
        print(f"  messages      : {result.messages:,} over {result.meta['phases']} phases\n")

    ratio = classical.messages / quantum.messages
    print(
        f"Quantum saves {ratio:.2f}x messages on this instance "
        "(paper: Õ(√(mn)) vs Θ(m) per the Section 5.4 remark)"
    )


if __name__ == "__main__":
    main()
