"""Anatomy of QuantumQWLE — the paper's most intricate protocol.

Runs Algorithm 3 on a dense diameter-2 graph and dissects where the messages
went, phase by phase, straight from the cost ledger:

* Setup    — sending the rank to the k referees of the current walk vertex;
* Update   — swapping one referee (the quantum walk's O(1)-message step —
             this is exactly what the walk layer buys, see the ablation);
* Checking — the nested Grover searches: the *decentralized* part (passive
             candidates scanning their own neighbourhoods, shared by every
             active candidate) and the *centralized* part (the active
             candidate scanning its referee set).

    python examples/qwle_walkthrough.py [n]
"""

import sys

from repro import QWLEParameters, RandomSource, quantum_qwle
from repro.network import graphs


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    rng = RandomSource(42)
    topology = graphs.erdos_renyi(n, 0.5, rng.spawn())
    params = QWLEParameters(alpha=1 / 8, inner_alpha=1 / 8)
    result = quantum_qwle(topology, rng.spawn(), params)

    resolved = params.resolve(n)
    print(f"QuantumQWLE on G({n}, 1/2)  —  m = {topology.edge_count():,} edges")
    print(f"  referee-set size k     : {resolved.k} (≈ n^(2/3))")
    print(f"  outer iterations       : {resolved.outer_iterations}")
    print(f"  activation probability : {resolved.activation:.4f}")
    print(f"  candidates             : {result.meta['candidates']}")
    print(f"  walk searches launched : {result.meta['walk_searches']}")
    print(f"  leader                 : {result.leader} (success={result.success})")

    print(f"\nmessage ledger ({result.messages:,} total):")
    labels = result.metrics.ledger.messages_by_label()
    for label, messages in sorted(labels.items(), key=lambda kv: -kv[1]):
        if messages:
            share = 100.0 * messages / result.messages
            print(f"  {label:40s} {messages:>12,}  ({share:5.1f}%)")

    decentralized = labels.get("qwle.walk.checking.decentralized", 0)
    centralized = labels.get("qwle.walk.checking.centralized", 0)
    if centralized:
        print(
            f"\nThe decentralized Checking dominates ({decentralized:,} vs "
            f"{centralized:,} centralized) — and it is *shared*: one "
            "execution serves every simultaneously active candidate, which "
            "is why Section 1.2 calls decentralization out as a new "
            "ingredient.  The Update line is tiny: that economy over fresh "
            "Setups is the quantum walk's contribution (Õ(n^3/4) → Õ(n^2/3))."
        )


if __name__ == "__main__":
    main()
