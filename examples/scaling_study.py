"""A self-contained scaling study: reproduce Corollary 5.3's exponents.

Pulls the E1 scenario pair from the runtime catalogue, fans the trials out
over worker processes, fits power laws, and prints the paper-style
comparison table — the same machinery the CLI's ``sweep`` command and the
benchmark harness use, runnable standalone:

    python examples/scaling_study.py [--sizes 1024 4096 16384] [--trials 3]
                                     [--jobs 4]
"""

import argparse

from repro import get_scenario, run_scenario
from repro.analysis import comparison_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[1024, 4096, 16384, 65536]
    )
    parser.add_argument("--trials", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs", type=int, default=None, help="worker processes (default: all cores)"
    )
    args = parser.parse_args()

    quantum = run_scenario(
        get_scenario("complete-le/quantum"),
        jobs=args.jobs,
        sizes=args.sizes,
        trials=args.trials,
        seed=args.seed,
    ).to_series("quantum")
    classical = run_scenario(
        get_scenario("complete-le/classical"),
        jobs=args.jobs,
        sizes=args.sizes,
        trials=args.trials,
        seed=args.seed + 1,
    ).to_series("classical")

    print(
        comparison_table(
            quantum,
            classical,
            title="Leader election on K_n — messages per candidate",
        )
    )
    print(f"\nquantum fit  : {quantum.fit()}   (paper: n^0.333)")
    print(f"classical fit: {classical.fit(polylog_power=0.5)}   (paper: n^0.5)")
    print(
        f"\nsuccess rates: quantum {quantum.overall_success_rate():.2f}, "
        f"classical {classical.overall_success_rate():.2f}"
    )


if __name__ == "__main__":
    main()
