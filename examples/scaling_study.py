"""A self-contained scaling study: reproduce Corollary 5.3's exponents.

Sweeps network sizes, measures per-candidate message costs of QuantumLE and
the classical [KPP+15b] protocol, fits power laws, and prints the paper-style
comparison table — the same machinery the benchmark harness uses, runnable
standalone:

    python examples/scaling_study.py [--sizes 1024 4096 16384] [--trials 3]
"""

import argparse

from repro import RandomSource, classical_le_complete, quantum_le_complete
from repro.analysis import comparison_table, measure_scaling


def quantum_runner(n: int, rng: RandomSource):
    result = quantum_le_complete(n, rng)
    per_candidate = result.messages / max(1, result.meta["candidates"])
    return round(per_candidate), result.rounds, result.success, {}


def classical_runner(n: int, rng: RandomSource):
    result = classical_le_complete(n, rng)
    per_candidate = result.messages / max(1, result.meta["candidates"])
    return round(per_candidate), result.rounds, result.success, {}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[1024, 4096, 16384, 65536]
    )
    parser.add_argument("--trials", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    quantum = measure_scaling(
        "quantum", quantum_runner, args.sizes, args.trials, seed=args.seed
    )
    classical = measure_scaling(
        "classical", classical_runner, args.sizes, args.trials, seed=args.seed + 1
    )

    print(
        comparison_table(
            quantum,
            classical,
            title="Leader election on K_n — messages per candidate",
        )
    )
    print(f"\nquantum fit  : {quantum.fit()}   (paper: n^0.333)")
    print(f"classical fit: {classical.fit(polylog_power=0.5)}   (paper: n^0.5)")
    print(
        f"\nsuccess rates: quantum {quantum.overall_success_rate():.2f}, "
        f"classical {classical.overall_success_rate():.2f}"
    )


if __name__ == "__main__":
    main()
