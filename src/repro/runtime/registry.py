"""Protocol registry: dispatch-by-name for every protocol in the library.

Before this module existed, every layer wired protocols by hand — the CLI
dispatched through an if/elif chain, each benchmark re-implemented its own
runner plumbing, and new scenario families needed edits in three places.
A :class:`ProtocolRegistry` replaces all of that with one lookup table:
each protocol registers a :class:`ProtocolSpec` (name, side, family,
builder, defaults) and every consumer — CLI, scenario runtime, benchmarks —
resolves it by name.

Builders share one calling convention::

    builder(topology, rng, **params) -> TrialOutcome

Protocols that take ``n`` instead of a topology (complete-graph LE,
agreement, the ring baselines) are adapted here; subroutine protocols
(Grover star search, star counting) construct their oracle from the
topology size.  The uniform :class:`TrialOutcome` record is what the
scenario runtime aggregates into :class:`~repro.runtime.runner.TrialSet`
statistics.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

from repro.network.topology import Topology
from repro.util.rng import RandomSource

__all__ = [
    "ProtocolRegistry",
    "ProtocolSpec",
    "TrialOutcome",
    "default_registry",
    "register_builtin_protocols",
]


@dataclass(frozen=True)
class TrialOutcome:
    """Uniform record one protocol trial reduces to.

    ``extra`` holds numeric metadata that is averaged across trials
    (candidate counts, phases, ...); ``detail`` holds per-run facts that
    must *not* be averaged (the elected leader, the agreed value).
    """

    messages: float
    rounds: float
    success: bool
    extra: dict = field(default_factory=dict)
    detail: dict = field(default_factory=dict)


#: Uniform builder signature: (topology, rng, **params) -> TrialOutcome.
Builder = Callable[..., TrialOutcome]


@dataclass(frozen=True)
class ProtocolSpec:
    """One registered protocol: identity, classification, and entry point."""

    name: str
    side: str  # "quantum" | "classical"
    family: str  # "leader-election" | "agreement" | "mst" | "search" | "counting"
    topologies: tuple[str, ...]  # families the protocol is proven/meaningful on
    builder: Builder
    defaults: tuple[tuple[str, object], ...] = ()
    description: str = ""
    #: Capability tags the builder honours: "faults" (engine-level
    #: message/crash injection via an ``adversary=`` kwarg), "inputs"
    #: (adversarial initial-value schedules), "adaptive" (the protocol
    #: runs on a :class:`~repro.network.engine.SynchronousEngine` path
    #: that feeds traffic-conditioned adversaries the per-round
    #: observation callback), and "batch" (an array-native
    #: :class:`~repro.network.batch.BatchProtocol` implementation
    #: selectable via a ``node_api=`` kwarg).  A scenario whose
    #: :class:`~repro.adversary.AdversarySpec` needs capabilities outside
    #: this set — or that requests the batch node API without the tag —
    #: is rejected before the trial runs.
    supports: tuple[str, ...] = ()

    def run(self, topology: Topology, rng: RandomSource, **params) -> TrialOutcome:
        """Run one trial with registered defaults overridden by ``params``."""
        merged = dict(self.defaults)
        merged.update(params)
        return self.builder(topology, rng, **merged)

    def resolve_node_api(self, requested: str = "auto") -> str:
        """Concretize a ``--node-api`` request against this spec.

        ``"auto"`` picks the array-native path when the protocol declares
        the ``"batch"`` capability and the scalar path otherwise; an
        explicit ``"batch"`` on a scalar-only protocol is an error (the
        same convention as unsupported adversary capabilities).
        """
        if requested not in ("auto", "batch", "scalar"):
            raise ValueError(
                f"node_api must be 'auto', 'batch', or 'scalar', got "
                f"{requested!r}"
            )
        if requested == "auto":
            return "batch" if "batch" in self.supports else "scalar"
        if requested == "batch" and "batch" not in self.supports:
            raise ValueError(
                f"protocol {self.name!r} has no array-native implementation "
                f"(supports: {sorted(self.supports) or 'none'}); "
                f"use --node-api auto or scalar"
            )
        return requested

    def describe_dict(self) -> dict:
        """JSON-ready description for ``repro protocols --json``."""
        return {
            "name": self.name,
            "side": self.side,
            "family": self.family,
            "topologies": list(self.topologies),
            "defaults": {key: value for key, value in self.defaults},
            "supports": sorted(self.supports),
            "batch": "batch" in self.supports,
            "description": self.description,
        }


class ProtocolRegistry:
    """Name → :class:`ProtocolSpec` table with side/family filtering."""

    def __init__(self) -> None:
        self._specs: dict[str, ProtocolSpec] = {}

    def register(self, spec: ProtocolSpec) -> ProtocolSpec:
        if spec.name in self._specs:
            raise ValueError(f"protocol {spec.name!r} is already registered")
        if spec.side not in ("quantum", "classical"):
            raise ValueError(
                f"side must be 'quantum' or 'classical', got {spec.side!r}"
            )
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> ProtocolSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(
                f"unknown protocol {name!r}; registered: {sorted(self._specs)}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._specs)

    def select(
        self, side: str | None = None, family: str | None = None
    ) -> list[ProtocolSpec]:
        """All specs matching the given side and/or family."""
        return [
            spec
            for name, spec in sorted(self._specs.items())
            if (side is None or spec.side == side)
            and (family is None or spec.family == family)
        ]

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[ProtocolSpec]:
        return iter(self._specs[name] for name in sorted(self._specs))

    def __len__(self) -> int:
        return len(self._specs)


# -- result adapters ----------------------------------------------------------


def _numeric_meta(meta: dict) -> dict:
    return {
        key: value
        for key, value in meta.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }


def _from_le(result) -> TrialOutcome:
    return TrialOutcome(
        messages=result.messages,
        rounds=result.rounds,
        success=result.success,
        extra=_numeric_meta(result.meta),
        detail={"leader": result.leader},
    )


def _from_agreement(result) -> TrialOutcome:
    return TrialOutcome(
        messages=result.messages,
        rounds=result.rounds,
        success=result.success,
        extra=_numeric_meta(result.meta),
        detail={"value": result.agreed_value},
    )


def _from_mst(result) -> TrialOutcome:
    return TrialOutcome(
        messages=result.messages,
        rounds=result.rounds,
        success=result.is_spanning,
        extra=_numeric_meta(result.meta),
        detail={"total_weight": result.total_weight},
    )


# -- shared input generators --------------------------------------------------


def _agreement_inputs(
    n: int, fraction: float, adversary, rng, *, engine_capable: bool = False
) -> list[int]:
    """Benign inputs, or the adversary's schedule when one is armed.

    The benign convention itself lives in
    :func:`repro.adversary.inputs.benign_inputs` (one definition, so the
    faulty and fault-free paths cannot diverge); ``adversarial_inputs``
    falls back to it for a None/null spec.  ``engine_capable`` marks the
    caller as an engine-driven builder that arms the same spec on its
    engine, so message-fault/adaptive capabilities pass through instead of
    being rejected as meaningless.
    """
    from repro.adversary.inputs import adversarial_inputs

    return adversarial_inputs(
        n, fraction, adversary, rng, engine_capable=engine_capable
    )


def _random_weights(topology: Topology, rng: RandomSource) -> dict:
    weights = {}
    for u, v in topology.edges():
        a, b = (u, v) if u < v else (v, u)
        weights[(a, b)] = rng.uniform()
    return weights


def lean_qwle_params(n: int, alpha: float):
    """The benchmarks' lightened QWLE schedule (bench E4): constant failure
    budgets and an 8·ln n outer loop — same asymptotic shape, laptop scale."""
    from repro.core.leader_election import QWLEParameters

    return QWLEParameters(
        alpha=alpha,
        inner_alpha=alpha,
        outer_iterations=max(8, math.ceil(8.0 * math.log(n))),
        activation=0.25,
    )


# -- builders (module-level so parallel workers can resolve them by name) -----


def _run_quantum_le_complete(topology, rng, **params) -> TrialOutcome:
    from repro.core.leader_election.complete import quantum_le_complete

    return _from_le(quantum_le_complete(topology.n, rng, **params))


def _run_classical_le_complete(topology, rng, **params) -> TrialOutcome:
    from repro.classical.leader_election.complete_kpp import classical_le_complete

    return _from_le(classical_le_complete(topology.n, rng, **params))


def _run_quantum_rwle(topology, rng, **params) -> TrialOutcome:
    from repro.core.leader_election.mixing import quantum_rwle

    return _from_le(quantum_rwle(topology, rng, **params))


def _run_classical_le_mixing(topology, rng, **params) -> TrialOutcome:
    from repro.classical.leader_election.mixing_rw import classical_le_mixing

    return _from_le(classical_le_mixing(topology, rng, **params))


def _run_quantum_qwle(
    topology,
    rng,
    schedule: str = "paper",
    k: int | None = None,
    alpha: float | None = None,
    inner_alpha: float | None = None,
    outer_iterations: int | None = None,
    activation: float | None = None,
    ablate_walk: bool = False,
) -> TrialOutcome:
    from repro.core.leader_election import QWLEParameters
    from repro.core.leader_election.diameter2 import quantum_qwle

    if schedule == "lean":
        params = lean_qwle_params(topology.n, alpha if alpha is not None else 1 / 8)
        if ablate_walk:
            params = QWLEParameters(
                alpha=params.alpha,
                inner_alpha=params.inner_alpha,
                outer_iterations=params.outer_iterations,
                activation=params.activation,
                ablate_walk=True,
            )
    elif schedule == "paper":
        params = QWLEParameters(
            k=k,
            alpha=alpha,
            inner_alpha=inner_alpha,
            outer_iterations=outer_iterations,
            activation=activation,
            ablate_walk=ablate_walk,
        )
    else:
        raise ValueError(f"schedule must be 'paper' or 'lean', got {schedule!r}")
    return _from_le(quantum_qwle(topology, rng, params))


def _run_classical_le_diameter2(topology, rng, **params) -> TrialOutcome:
    from repro.classical.leader_election.diameter2_cpr import classical_le_diameter2

    return _from_le(classical_le_diameter2(topology, rng, **params))


def _run_quantum_general_le(topology, rng, **params) -> TrialOutcome:
    from repro.core.leader_election.general import quantum_general_le

    return _from_le(quantum_general_le(topology, rng, **params))


def _run_classical_le_general(topology, rng, **params) -> TrialOutcome:
    from repro.classical.leader_election.general_ghs import classical_le_general

    return _from_le(classical_le_general(topology, rng, **params))


def _run_lcr_ring(topology, rng, adversary=None, node_api="scalar") -> TrialOutcome:
    from repro.classical.leader_election.ring import lcr_ring

    return _from_le(
        lcr_ring(topology.n, rng, adversary=adversary, node_api=node_api)
    )


def _run_hs_ring(topology, rng, adversary=None, node_api="scalar") -> TrialOutcome:
    from repro.classical.leader_election.ring import hirschberg_sinclair_ring

    return _from_le(
        hirschberg_sinclair_ring(
            topology.n, rng, adversary=adversary, node_api=node_api
        )
    )


def _run_quantum_agreement(
    topology, rng, fraction: float = 0.3, adversary=None, **params
) -> TrialOutcome:
    from repro.core.agreement import quantum_agreement

    inputs = _agreement_inputs(topology.n, fraction, adversary, rng)
    return _from_agreement(quantum_agreement(inputs, rng, **params))


def _run_classical_agreement_shared(
    topology, rng, fraction: float = 0.3, adversary=None, **params
) -> TrialOutcome:
    from repro.classical.agreement.amp18 import classical_agreement_shared

    inputs = _agreement_inputs(topology.n, fraction, adversary, rng)
    return _from_agreement(classical_agreement_shared(inputs, rng, **params))


def _run_classical_agreement_engine(
    topology, rng, fraction: float = 0.3, adversary=None, node_api="scalar",
    **params,
) -> TrialOutcome:
    from repro.classical.agreement.amp18_engine import classical_agreement_engine

    inputs = _agreement_inputs(
        topology.n, fraction, adversary, rng, engine_capable=True
    )
    return _from_agreement(
        classical_agreement_engine(
            inputs, rng, adversary=adversary, node_api=node_api, **params
        )
    )


def _run_classical_agreement_private(
    topology, rng, fraction: float = 0.3, adversary=None
) -> TrialOutcome:
    from repro.classical.agreement.amp18 import classical_agreement_private

    inputs = _agreement_inputs(topology.n, fraction, adversary, rng)
    return _from_agreement(classical_agreement_private(inputs, rng))


def _run_quantum_mst(topology, rng, **params) -> TrialOutcome:
    from repro.core.leader_election.mst import quantum_mst

    weights = _random_weights(topology, rng.spawn())
    return _from_mst(quantum_mst(topology, weights, rng.spawn(), **params))


def _run_classical_mst(topology, rng) -> TrialOutcome:
    from repro.classical.mst_boruvka import classical_mst

    weights = _random_weights(topology, rng.spawn())
    return _from_mst(classical_mst(topology, weights, rng.spawn()))


def _run_boruvka_engine(
    topology, rng, adversary=None, node_api="scalar"
) -> TrialOutcome:
    from repro.classical.mst_boruvka import boruvka_mst_engine

    weights = _random_weights(topology, rng.spawn())
    return _from_mst(
        boruvka_mst_engine(
            topology, weights, rng.spawn(), adversary=adversary,
            node_api=node_api,
        )
    )


def _run_grover_star_search(
    topology, rng, alpha: float = 0.01, marked: int = 1
) -> TrialOutcome:
    from repro.core.grover import distributed_grover_search
    from repro.core.procedures import SetOracle, uniform_charge
    from repro.network.metrics import MetricsRecorder

    n = topology.n
    oracle = SetOracle(
        domain=range(n),
        marked=set(range(marked)),
        charge_checking=uniform_charge(2, 2, "star.checking"),
    )
    metrics = MetricsRecorder()
    result = distributed_grover_search(oracle, marked / n, alpha, metrics, rng)
    return TrialOutcome(
        messages=metrics.messages,
        rounds=metrics.rounds,
        success=result.succeeded,
        extra={},
        detail={"found": result.found},
    )


def _run_classical_star_flood(topology, rng) -> TrialOutcome:
    # Classical lower bound on the star: probe every leaf (query + reply).
    n = topology.n
    return TrialOutcome(messages=2 * (n - 1), rounds=2, success=True)


def _run_quantum_count_star(
    topology, rng, accuracy: float = 0.05, alpha: float = 1 / 8, fraction: float = 0.3
) -> TrialOutcome:
    from repro.core.counting import approx_count
    from repro.core.procedures import SetOracle, uniform_charge
    from repro.network.metrics import MetricsRecorder

    n = topology.n
    marked = set(range(max(1, int(fraction * n))))
    oracle = SetOracle(
        domain=range(n),
        marked=marked,
        charge_checking=uniform_charge(2, 2, "star.counting"),
    )
    metrics = MetricsRecorder()
    result = approx_count(oracle, accuracy, alpha, metrics, rng)
    error = abs(result.estimate - len(marked))
    return TrialOutcome(
        messages=metrics.messages,
        rounds=metrics.rounds,
        success=error <= accuracy * n,
        extra={"estimate_error": error},
        detail={"estimate": result.estimate},
    )


def _run_classical_count_star(
    topology, rng, accuracy: float = 0.05, fraction: float = 0.3
) -> TrialOutcome:
    # Classical sampling needs Θ(1/ε²) probes for a ±εn estimate.
    n = topology.n
    samples = min(n, math.ceil(1.0 / accuracy**2))
    hits = sum(rng.bernoulli(fraction) for _ in range(samples))
    estimate = n * hits / samples
    error = abs(estimate - int(fraction * n))
    return TrialOutcome(
        messages=2 * samples,
        rounds=2,
        success=error <= 2.0 * accuracy * n,
        extra={"estimate_error": error},
        detail={"estimate": estimate},
    )


# -- the default registry -----------------------------------------------------


def register_builtin_protocols(registry: ProtocolRegistry) -> ProtocolRegistry:
    """Register every protocol the paper reproduction ships with."""
    for spec in (
        ProtocolSpec(
            name="le-complete/quantum",
            side="quantum",
            family="leader-election",
            topologies=("complete",),
            builder=_run_quantum_le_complete,
            description="QuantumLE on K_n: Õ(n^1/3) messages (Theorem 5.2).",
        ),
        ProtocolSpec(
            name="le-complete/classical",
            side="classical",
            family="leader-election",
            topologies=("complete",),
            builder=_run_classical_le_complete,
            description="[KPP+15b]-style classical LE on K_n: Θ̃(√n) messages.",
            supports=("batch", "faults", "adaptive"),
        ),
        ProtocolSpec(
            name="le-mixing/quantum",
            side="quantum",
            family="leader-election",
            topologies=("hypercube", "torus", "random-regular", "barbell", "lollipop"),
            builder=_run_quantum_rwle,
            description="QuantumRWLE with mixing time τ: Õ(τ^5/3·n^1/3) (Thm 5.4).",
        ),
        ProtocolSpec(
            name="le-mixing/classical",
            side="classical",
            family="leader-election",
            topologies=("hypercube", "torus", "random-regular", "barbell", "lollipop"),
            builder=_run_classical_le_mixing,
            description="Classical random-walk LE baseline: Õ(τ√n) messages.",
        ),
        ProtocolSpec(
            name="le-diameter2/quantum",
            side="quantum",
            family="leader-election",
            topologies=("diameter2-gnp", "erdos-renyi", "star", "wheel"),
            builder=_run_quantum_qwle,
            description="QuantumQWLE on diameter-≤2 graphs: Õ(n^2/3) (Thm 5.6).",
        ),
        ProtocolSpec(
            name="le-diameter2/classical",
            side="classical",
            family="leader-election",
            topologies=("diameter2-gnp", "erdos-renyi", "star", "wheel"),
            builder=_run_classical_le_diameter2,
            description="[CPR20]-style classical LE on diameter-2 graphs: Θ(n).",
            supports=("batch", "faults", "adaptive"),
        ),
        ProtocolSpec(
            name="le-general/quantum",
            side="quantum",
            family="leader-election",
            topologies=("erdos-renyi", "random-regular", "torus"),
            builder=_run_quantum_general_le,
            description="QuantumGeneralLE (explicit): Õ(√(mn)) (Theorem 5.10).",
        ),
        ProtocolSpec(
            name="le-general/classical",
            side="classical",
            family="leader-election",
            topologies=("erdos-renyi", "random-regular", "torus"),
            builder=_run_classical_le_general,
            description="Classical tree-merging LE (explicit): Θ(m·log n).",
        ),
        ProtocolSpec(
            name="le-ring/lcr",
            side="classical",
            family="leader-election",
            topologies=("cycle",),
            builder=_run_lcr_ring,
            description="LCR ring baseline: O(n²) messages.",
            supports=("batch", "faults", "adaptive"),
        ),
        ProtocolSpec(
            name="le-ring/hs",
            side="classical",
            family="leader-election",
            topologies=("cycle",),
            builder=_run_hs_ring,
            description="Hirschberg–Sinclair ring baseline: O(n log n) messages.",
            supports=("batch", "faults", "adaptive"),
        ),
        ProtocolSpec(
            name="agreement/quantum",
            side="quantum",
            family="agreement",
            topologies=("complete",),
            builder=_run_quantum_agreement,
            defaults=(("fraction", 0.3),),
            description="QuantumAgreement with shared coin: Õ(n^1/5) (Thm 6.7).",
            supports=("inputs",),
        ),
        ProtocolSpec(
            name="agreement/classical-shared",
            side="classical",
            family="agreement",
            topologies=("complete",),
            builder=_run_classical_agreement_shared,
            defaults=(("fraction", 0.3),),
            description="[AMP18] shared-coin agreement: Õ(n^2/5) messages.",
            supports=("inputs",),
        ),
        ProtocolSpec(
            name="agreement/amp18-engine",
            side="classical",
            family="agreement",
            topologies=("complete",),
            builder=_run_classical_agreement_engine,
            defaults=(("fraction", 0.3),),
            description="Engine-driven [AMP18] agreement: real CONGEST "
            "messages, fault-injectable, array-native.",
            supports=("batch", "faults", "inputs", "adaptive"),
        ),
        ProtocolSpec(
            name="agreement/classical-private",
            side="classical",
            family="agreement",
            topologies=("complete",),
            builder=_run_classical_agreement_private,
            defaults=(("fraction", 0.3),),
            description="Private-coin agreement via leader election: Θ̃(√n).",
            supports=("inputs",),
        ),
        ProtocolSpec(
            name="mst/quantum",
            side="quantum",
            family="mst",
            topologies=("random-regular", "erdos-renyi", "torus"),
            builder=_run_quantum_mst,
            description="Quantum Borůvka MST: Õ(√(mn)) message envelope (§5.4).",
        ),
        ProtocolSpec(
            name="mst/classical",
            side="classical",
            family="mst",
            topologies=("random-regular", "erdos-renyi", "torus"),
            builder=_run_classical_mst,
            description="Classical probe-all-ports Borůvka MST: Θ(m·log n).",
        ),
        ProtocolSpec(
            name="mst/boruvka-engine",
            side="classical",
            family="mst",
            topologies=("random-regular", "erdos-renyi", "torus", "cycle"),
            builder=_run_boruvka_engine,
            description="Engine-driven Borůvka/GHS MST: real CONGEST "
            "messages, fault-injectable, array-native.",
            supports=("batch", "faults", "adaptive"),
        ),
        ProtocolSpec(
            name="search-star/quantum",
            side="quantum",
            family="search",
            topologies=("star",),
            builder=_run_grover_star_search,
            defaults=(("alpha", 0.01), ("marked", 1)),
            description="Distributed Grover search on a star: O(√n) messages (B.2).",
        ),
        ProtocolSpec(
            name="search-star/classical",
            side="classical",
            family="search",
            topologies=("star",),
            builder=_run_classical_star_flood,
            description="Classical star search lower bound: probe all n−1 leaves.",
        ),
        ProtocolSpec(
            name="count-star/quantum",
            side="quantum",
            family="counting",
            topologies=("star",),
            builder=_run_quantum_count_star,
            defaults=(("accuracy", 0.05), ("fraction", 0.3)),
            description="ApproxCount to ±εn: O(1/ε) messages (Corollary 4.3).",
        ),
        ProtocolSpec(
            name="count-star/classical",
            side="classical",
            family="counting",
            topologies=("star",),
            builder=_run_classical_count_star,
            defaults=(("accuracy", 0.05), ("fraction", 0.3)),
            description="Classical sampling estimate: Θ(1/ε²) probes.",
        ),
    ):
        registry.register(spec)
    return registry


_DEFAULT: ProtocolRegistry | None = None


def default_registry() -> ProtocolRegistry:
    """The process-wide registry pre-populated with the builtin protocols."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = register_builtin_protocols(ProtocolRegistry())
    return _DEFAULT
