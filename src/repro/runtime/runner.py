"""Trial runner: fan trials out over processes, aggregate into TrialSets.

Trials of a scenario are embarrassingly parallel: every (size, trial) pair
gets its own pre-derived :class:`RandomSource` child, so results are
bit-identical whether they run serially or across a
:class:`~concurrent.futures.ProcessPoolExecutor` — the parent derives all
seeds up front in grid order and aggregation consumes results in that same
order.  ``jobs=None`` uses every core.

The aggregation (:func:`aggregate_trials`) reproduces the legacy
``measure_scaling`` statistics exactly (same means, same population std,
same numeric-extra merging) and adds order statistics (median, p90, max).
"""

from __future__ import annotations

import math
import multiprocessing
import os
import statistics
import sys
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter

from repro.runtime.registry import TrialOutcome
from repro.runtime.scenario import Scenario
from repro.telemetry import current_profiler, current_tracer, metrics_registry
from repro.util.rng import RandomSource

__all__ = [
    "ScenarioRun",
    "TrialSet",
    "aggregate_trials",
    "fan_out",
    "resolve_jobs",
    "run_scenario",
]


@dataclass(frozen=True)
class TrialSet:
    """Aggregate statistics over every trial of a scenario at one size."""

    n: int
    trials: int
    success_rate: float
    messages_mean: float
    messages_std: float
    messages_p50: float
    messages_p90: float
    messages_max: float
    rounds_mean: float
    extra: dict = field(default_factory=dict)

    def as_scaling_point(self):
        """The legacy :class:`~repro.analysis.scaling.ScalingPoint` view."""
        from repro.analysis.scaling import ScalingPoint

        return ScalingPoint(
            n=self.n,
            messages_mean=self.messages_mean,
            messages_std=self.messages_std,
            rounds_mean=self.rounds_mean,
            success_rate=self.success_rate,
            trials=self.trials,
            extra=dict(self.extra),
        )


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    rank = math.ceil(q * len(sorted_values))
    return sorted_values[max(0, min(len(sorted_values) - 1, rank - 1))]


def aggregate_trials(n: int, outcomes: list[TrialOutcome]) -> TrialSet:
    """Fold per-trial outcomes at one size into a :class:`TrialSet`."""
    if not outcomes:
        raise ValueError(f"no trial outcomes to aggregate at n={n}")
    messages = [float(o.messages) for o in outcomes]
    rounds = [float(o.rounds) for o in outcomes]
    successes = sum(bool(o.success) for o in outcomes)
    extras = [o.extra for o in outcomes]
    merged_extra: dict = {}
    for key in extras[0] if extras else ():
        numeric = [e[key] for e in extras if isinstance(e.get(key), (int, float))]
        if len(numeric) == len(extras):
            merged_extra[key] = statistics.fmean(numeric)
    ordered = sorted(messages)
    return TrialSet(
        n=n,
        trials=len(outcomes),
        success_rate=successes / len(outcomes),
        messages_mean=statistics.fmean(messages),
        messages_std=statistics.pstdev(messages) if len(messages) > 1 else 0.0,
        messages_p50=_percentile(ordered, 0.5),
        messages_p90=_percentile(ordered, 0.9),
        messages_max=ordered[-1],
        rounds_mean=statistics.fmean(rounds),
        extra=merged_extra,
    )


@dataclass(frozen=True)
class ScenarioRun:
    """One scenario's aggregated measurements over its whole size grid.

    ``meta`` records *how* the run executed — the executor ("pool" or
    "fabric"), the requested and resolved job counts, the host's CPU
    count — without ever affecting the aggregates themselves.  It exists
    because :func:`resolve_jobs` used to clamp silently on 1-CPU hosts:
    ``jobs=None`` would quietly run serially with no way to detect it.
    """

    scenario: Scenario
    trial_sets: tuple[TrialSet, ...]
    meta: dict = field(default_factory=dict)

    @property
    def sizes(self) -> list[int]:
        return [ts.n for ts in self.trial_sets]

    @property
    def messages(self) -> list[float]:
        return [ts.messages_mean for ts in self.trial_sets]

    def overall_success_rate(self) -> float:
        total = sum(ts.trials for ts in self.trial_sets)
        good = sum(ts.success_rate * ts.trials for ts in self.trial_sets)
        return good / total if total else 0.0

    def to_series(self, label: str | None = None):
        """Feed the unchanged fitting pipeline (ScalingSeries/PowerLawFit)."""
        from repro.analysis.scaling import ScalingSeries

        return ScalingSeries(
            label=label if label is not None else self.scenario.name,
            points=[ts.as_scaling_point() for ts in self.trial_sets],
        )


def resolve_jobs(jobs: int | None) -> int:
    """None → all cores; explicit values must be >= 1.

    On a 1-CPU host (or when ``os.cpu_count()`` is unknowable) ``None``
    resolves to 1 — an effectively serial run.  Callers cannot see that
    from the aggregates, so :func:`run_scenario` surfaces the resolved
    value in ``ScenarioRun.meta["jobs_resolved"]``.
    """
    if jobs is None:
        return os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def fan_out(fn, tasks: list, jobs: int | None = 1) -> list:
    """Map ``fn`` over ``tasks``, preserving order, optionally in processes.

    ``fn`` and every task must be picklable (module-level functions and
    frozen dataclasses are).  With ``jobs=1`` (or a single task) everything
    runs in-process — same results, by construction.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    jobs = min(resolve_jobs(jobs), len(tasks))
    if jobs <= 1:
        return [fn(task) for task in tasks]
    # Prefer fork on Linux (fast, inherits sys.path); elsewhere the platform
    # default — forking is unsafe on macOS once numpy/Accelerate is loaded.
    context = (
        multiprocessing.get_context("fork") if sys.platform == "linux" else None
    )
    chunksize = max(1, len(tasks) // (jobs * 4))
    with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
        return list(pool.map(fn, tasks, chunksize=chunksize))


def _scenario_trial(task) -> TrialOutcome:
    scenario, n, rng = task
    return scenario.run_trial(n, rng)


def _scenario_trial_telemetry(task):
    """Pool-worker trial with telemetry: outcome plus registry/profiler deltas.

    Forked workers each own a process-local registry and profiler, so
    their increments would be lost when the pool exits; returning deltas
    lets the parent fold them in at aggregate time.  Trial spans are
    emitted here — inside the worker — so concurrent trials interleave
    whole records in the shared trace file.  None of this touches the
    trial RNG: outcomes are bit-identical to :func:`_scenario_trial`.
    """
    scenario, n, rng, position, trial = task
    registry = metrics_registry()
    prof = current_profiler()
    reg_before = registry.snapshot()
    prof_before = prof.snapshot() if prof is not None else None
    tracer = current_tracer()
    if tracer.enabled:
        tracer.emit(
            "trial_start",
            scenario=scenario.name,
            protocol=scenario.protocol,
            n=n,
            position=position,
            trial=trial,
        )
    start = perf_counter()
    outcome = scenario.run_trial(n, rng)
    elapsed = perf_counter() - start
    registry.histogram("repro_trial_seconds").observe(elapsed)
    if tracer.enabled:
        tracer.emit(
            "trial_end",
            scenario=scenario.name,
            protocol=scenario.protocol,
            n=n,
            position=position,
            trial=trial,
            rounds=outcome.rounds,
            messages=outcome.messages,
            success=bool(outcome.success),
            seconds=elapsed,
        )
    return (
        outcome,
        registry.delta(reg_before),
        prof.delta(prof_before) if prof is not None else None,
    )


def run_scenario(
    scenario: Scenario,
    jobs: int | None = 1,
    sizes: list[int] | None = None,
    trials: int | None = None,
    seed: int | None = None,
    store=None,
    executor: str = "pool",
    fabric_dir=None,
    fabric_options: dict | None = None,
) -> ScenarioRun:
    """Run every (size, trial) point of ``scenario`` and aggregate.

    Seeds for all trials are derived up front, in grid order, from the
    scenario seed — so the aggregates are identical for any ``jobs``.

    With a :class:`~repro.runtime.store.ResultStore`, sizes whose trial set
    is already cached are loaded instead of recomputed and fresh sizes are
    written back — *appending* sizes to a grid only pays for the new ones.
    Seeds are derived for every grid point in order and cache keys include
    the grid position, so a partially-cached run is bit-identical to a
    cold one (reordered or prepended grids recompute rather than reuse
    entries from a different seed stream).

    ``executor`` selects how trials are distributed: ``"pool"`` (the
    in-process path above, optionally over a local process pool) or
    ``"fabric"`` — the multi-host work-queue executor of
    :mod:`repro.fabric`, which lays the grid out as shards under
    ``fabric_dir``, drives ``jobs`` local worker processes against it
    (remote workers may join with ``repro worker``), and collects
    bit-identical aggregates from the content-addressed store.
    ``fabric_options`` passes through to
    :func:`repro.fabric.run_fabric_sweep` (``lease_ttl``,
    ``fault_plans``, ``poll``, ``timeout``).

    The returned run's ``meta`` records the executor and the resolved
    job count — on a 1-CPU host ``jobs=None`` resolves to 1, which used
    to happen silently.
    """
    if executor not in ("pool", "fabric"):
        raise ValueError(
            f"executor must be 'pool' or 'fabric', got {executor!r}"
        )
    if sizes is not None or trials is not None or seed is not None:
        scenario = scenario.with_overrides(sizes=sizes, trials=trials, seed=seed)
    resolved_jobs = resolve_jobs(jobs)
    meta = {
        "executor": executor,
        "jobs_requested": jobs,
        "jobs_resolved": resolved_jobs,
        "cpu_count": os.cpu_count(),
    }
    tracer = current_tracer()
    prof = current_profiler()
    prof_before = prof.snapshot() if prof is not None else None
    if tracer.enabled:
        tracer.emit(
            "run_start",
            scenario=scenario.name,
            protocol=scenario.protocol,
            sizes=list(scenario.sizes),
            trials=scenario.trials,
            seed=scenario.seed,
            executor=executor,
        )
    if executor == "fabric":
        if fabric_dir is None:
            raise ValueError("executor='fabric' needs a fabric_dir")
        from repro.fabric import run_fabric_sweep

        run = run_fabric_sweep(
            scenario,
            fabric_dir,
            workers=resolved_jobs,
            store=store,
            meta=meta,
            **(fabric_options or {}),
        )
        if prof is not None:
            run.meta["profile"] = prof.delta(prof_before)
        if tracer.enabled:
            tracer.emit(
                "run_end",
                scenario=scenario.name,
                protocol=scenario.protocol,
                positions=len(run.trial_sets),
                from_cache=0,
            )
        return run
    root = RandomSource(scenario.seed)
    grid_rngs = [
        [root.spawn() for _ in range(scenario.trials)] for _ in scenario.sizes
    ]
    cached: dict[int, TrialSet] = {}  # grid position → cached trial set
    if store is not None:
        for position, n in enumerate(scenario.sizes):
            hit = store.load(scenario, n, position)
            if hit is not None:
                cached[position] = hit
    pending = [p for p in range(len(scenario.sizes)) if p not in cached]
    tasks = [
        (scenario, scenario.sizes[p], rng, p, trial)
        for p in pending
        for trial, rng in enumerate(grid_rngs[p])
    ]
    results = fan_out(_scenario_trial_telemetry, tasks, jobs)
    # With a real pool, every trial ran in a forked worker whose registry
    # and profiler die with it — fold the returned deltas in here.  In
    # the in-process case (fan_out's jobs<=1 path) the trial already
    # charged this process directly, so merging would double-count.
    pooled = bool(tasks) and min(resolved_jobs, len(tasks)) > 1
    outcomes = []
    registry = metrics_registry()
    for outcome, reg_delta, prof_delta in results:
        outcomes.append(outcome)
        if pooled:
            if reg_delta:
                registry.merge(reg_delta)
            if prof is not None and prof_delta:
                prof.merge(prof_delta)
    trial_sets = []
    for position, n in enumerate(scenario.sizes):
        if position in cached:
            trial_sets.append(cached[position])
            continue
        index = pending.index(position)
        chunk = outcomes[index * scenario.trials : (index + 1) * scenario.trials]
        trial_set = aggregate_trials(n, chunk)
        if store is not None:
            store.save(scenario, n, position, trial_set)
        trial_sets.append(trial_set)
    # Wall-time breakdown for `repro profile` — attached only when
    # profiling is on, after aggregates and store writes are final, so
    # profiled runs stay bit-identical to bare ones where it counts.
    if prof is not None:
        meta["profile"] = prof.delta(prof_before)
    if tracer.enabled:
        tracer.emit(
            "run_end",
            scenario=scenario.name,
            protocol=scenario.protocol,
            positions=len(scenario.sizes),
            from_cache=len(cached),
        )
    return ScenarioRun(
        scenario=scenario, trial_sets=tuple(trial_sets), meta=meta
    )
