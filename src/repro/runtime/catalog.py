"""Named scenario catalogue: every sweep the repo knows how to run.

Each entry binds a registered protocol to a topology family and a default
size grid.  Benchmarks and the CLI pull scenarios from here (overriding
grids/seeds as needed), so a new scenario family — LE on a torus, agreement
under skewed inputs, leader election under message loss — costs exactly
one declaration.  Fault-injected families carry an
:class:`~repro.adversary.AdversarySpec` (message drops, crash-stop
schedules, worst-case agreement inputs) that every trial replays
deterministically.

``EXPERIMENT_SWEEPS`` maps the paper's size-sweep experiments to their
quantum/classical scenario pair; experiments that sweep a parameter other
than n (E2's k trade-off, E8's ε law, E9's sampling tail, E11/E12's
ablations) are driven by their dedicated bench modules instead.
"""

from __future__ import annotations

from repro.adversary import AdversarySpec
from repro.runtime.scenario import Scenario, TopologySpec

__all__ = [
    "EXPERIMENT_SWEEPS",
    "SCENARIOS",
    "experiment_pair",
    "get_scenario",
]


def _catalogue() -> dict[str, Scenario]:
    complete = TopologySpec("complete")
    star = TopologySpec("star")
    scenarios = [
        # -- paper experiment sweeps (seeds match the legacy benches) ---------
        Scenario(
            name="complete-le/quantum",
            protocol="le-complete/quantum",
            topology=complete,
            sizes=(256, 1024, 4096),
            trials=3,
            seed=10,
            normalize_by="candidates",
            description="E1 quantum side: QuantumLE on K_n, msgs per candidate",
        ),
        Scenario(
            name="complete-le/classical",
            protocol="le-complete/classical",
            topology=complete,
            sizes=(256, 1024, 4096),
            trials=3,
            seed=11,
            normalize_by="candidates",
            description="E1 classical side: KPP-style LE on K_n",
        ),
        Scenario(
            name="mixing-le/quantum",
            protocol="le-mixing/quantum",
            topology=TopologySpec("hypercube"),
            sizes=(64, 256, 1024),
            trials=3,
            seed=30,
            normalize_by="candidates",
            description="E3 quantum side: QuantumRWLE on hypercubes",
        ),
        Scenario(
            name="mixing-le/classical",
            protocol="le-mixing/classical",
            topology=TopologySpec("hypercube"),
            sizes=(64, 256, 1024),
            trials=3,
            seed=31,
            normalize_by="candidates",
            description="E3 classical side: random-walk LE on hypercubes",
        ),
        Scenario(
            name="diameter2-le/quantum",
            protocol="le-diameter2/quantum",
            topology=TopologySpec("erdos-renyi", (("p", 0.5),), fixed_seed=1000),
            sizes=(128, 256, 512),
            params=(("schedule", "lean"),),
            trials=3,
            seed=40,
            normalize_by="candidates",
            description="E4 quantum side: QWLE on dense G(n, 1/2), shared graph per size",
        ),
        Scenario(
            name="diameter2-le/classical",
            protocol="le-diameter2/classical",
            topology=TopologySpec("erdos-renyi", (("p", 0.5),), fixed_seed=1000),
            sizes=(128, 256, 512),
            trials=3,
            seed=41,
            normalize_by="candidates",
            description="E4 classical side: CPR-style LE on dense G(n, 1/2)",
        ),
        Scenario(
            name="general-le/quantum",
            protocol="le-general/quantum",
            topology=TopologySpec("erdos-renyi", (("p", 0.1),)),
            sizes=(64, 128, 256),
            trials=3,
            seed=50,
            description="E5 quantum side: explicit LE on sparse G(n, 0.1)",
        ),
        Scenario(
            name="general-le/classical",
            protocol="le-general/classical",
            topology=TopologySpec("erdos-renyi", (("p", 0.1),)),
            sizes=(64, 128, 256),
            trials=3,
            seed=51,
            description="E5 classical side: tree-merging LE on sparse G(n, 0.1)",
        ),
        Scenario(
            name="agreement/quantum",
            protocol="agreement/quantum",
            topology=complete,
            sizes=(256, 1024, 4096),
            params=(("fraction", 0.3),),
            trials=3,
            seed=60,
            description="E6 quantum side: shared-coin agreement, 30% ones",
        ),
        Scenario(
            name="agreement/classical",
            protocol="agreement/classical-shared",
            topology=complete,
            sizes=(256, 1024, 4096),
            params=(("fraction", 0.3),),
            trials=3,
            seed=61,
            description="E6 classical side: AMP18 shared-coin agreement",
        ),
        Scenario(
            name="star-search/quantum",
            protocol="search-star/quantum",
            topology=star,
            sizes=(256, 1024, 4096),
            trials=5,
            seed=70,
            description="E7 quantum side: distributed Grover on a star",
        ),
        Scenario(
            name="star-search/classical",
            protocol="search-star/classical",
            topology=star,
            sizes=(256, 1024, 4096),
            trials=1,
            seed=71,
            description="E7 classical side: probe-every-leaf lower bound",
        ),
        Scenario(
            name="star-count/quantum",
            protocol="count-star/quantum",
            topology=star,
            sizes=(256, 1024),
            trials=3,
            seed=80,
            description="E8 quantum side: ApproxCount to ±εn on a star",
        ),
        Scenario(
            name="star-count/classical",
            protocol="count-star/classical",
            topology=star,
            sizes=(256, 1024),
            trials=3,
            seed=81,
            description="E8 classical side: Θ(1/ε²) sampling estimate",
        ),
        Scenario(
            name="mst/quantum",
            protocol="mst/quantum",
            topology=TopologySpec("random-regular", (("degree", 4),)),
            sizes=(64, 128, 256),
            trials=3,
            seed=90,
            description="E10 quantum side: Borůvka MST with Grover edge search",
        ),
        Scenario(
            name="mst/classical",
            protocol="mst/classical",
            topology=TopologySpec("random-regular", (("degree", 4),)),
            sizes=(64, 128, 256),
            trials=3,
            seed=91,
            description="E10 classical side: probe-all-ports Borůvka MST",
        ),
        Scenario(
            name="mst/boruvka-engine",
            protocol="mst/boruvka-engine",
            topology=TopologySpec(
                "random-regular", (("degree", 4),), fixed_seed=1200
            ),
            sizes=(32, 64, 128),
            trials=3,
            seed=92,
            description="Engine-executed Borůvka/GHS MST (batch-capable), "
            "real CONGEST message accounting",
        ),
        # -- new scenario families the runtime unlocks ------------------------
        Scenario(
            name="torus-le/quantum",
            protocol="le-mixing/quantum",
            topology=TopologySpec("torus"),
            sizes=(36, 64, 100),
            trials=3,
            seed=100,
            normalize_by="candidates",
            description="QuantumRWLE on 2-D tori (τ ~ √n mixing)",
        ),
        Scenario(
            name="torus-le/classical",
            protocol="le-mixing/classical",
            topology=TopologySpec("torus"),
            sizes=(36, 64, 100),
            trials=3,
            seed=101,
            normalize_by="candidates",
            description="Random-walk LE on 2-D tori",
        ),
        Scenario(
            name="lollipop-le/quantum",
            protocol="le-mixing/quantum",
            topology=TopologySpec("lollipop"),
            sizes=(24, 36),
            trials=2,
            seed=110,
            normalize_by="candidates",
            description="QuantumRWLE on lollipop graphs (bad mixing stress)",
        ),
        Scenario(
            name="agreement-skewed/quantum",
            protocol="agreement/quantum",
            topology=complete,
            sizes=(256, 1024),
            params=(("fraction", 0.05),),
            trials=3,
            seed=120,
            description="Agreement under heavily skewed inputs (5% ones)",
        ),
        Scenario(
            name="agreement-skewed/classical",
            protocol="agreement/classical-shared",
            topology=complete,
            sizes=(256, 1024),
            params=(("fraction", 0.05),),
            trials=3,
            seed=121,
            description="AMP18 agreement under skewed inputs (5% ones)",
        ),
        Scenario(
            name="ring-le/lcr",
            protocol="le-ring/lcr",
            topology=TopologySpec("cycle"),
            sizes=(64, 128, 256),
            trials=3,
            seed=130,
            description="LCR on rings (O(n²) message baseline)",
        ),
        Scenario(
            name="ring-le/hs",
            protocol="le-ring/hs",
            topology=TopologySpec("cycle"),
            sizes=(64, 128, 256),
            trials=3,
            seed=131,
            description="Hirschberg–Sinclair on rings (O(n log n) baseline)",
        ),
        # -- engine-driven agreement (array-native + fault-injectable) --------
        Scenario(
            name="agreement-engine/classical",
            protocol="agreement/amp18-engine",
            topology=complete,
            sizes=(64, 256, 1024),
            params=(("fraction", 0.3),),
            trials=3,
            seed=190,
            description="Engine-driven AMP18 agreement on K_n (batch node API)",
        ),
        Scenario(
            name="agreement-engine-lossy/classical",
            protocol="agreement/amp18-engine",
            topology=complete,
            sizes=(64, 256),
            params=(("fraction", 0.3),),
            trials=3,
            seed=191,
            adversary=AdversarySpec(drop_rate=0.05),
            description="Engine-driven AMP18 agreement under 5% transit loss",
        ),
        # -- fault-injected resilience families (repro.adversary) -------------
        Scenario(
            name="complete-le-lossy/classical",
            protocol="le-complete/classical",
            topology=complete,
            sizes=(64, 128, 256),
            trials=3,
            seed=140,
            adversary=AdversarySpec(drop_rate=0.05),
            description="KPP LE on K_n under 5% transit message loss",
        ),
        Scenario(
            name="ring-le-lossy/lcr",
            protocol="le-ring/lcr",
            topology=TopologySpec("cycle"),
            sizes=(32, 64, 128),
            trials=3,
            seed=150,
            adversary=AdversarySpec(drop_rate=0.02),
            description="LCR under 2% loss: does the halt wave survive?",
        ),
        Scenario(
            name="ring-le-crash/hs",
            protocol="le-ring/hs",
            topology=TopologySpec("cycle"),
            sizes=(32, 64),
            trials=3,
            seed=160,
            adversary=AdversarySpec(crash_count=2, crash_by=8),
            description="Hirschberg–Sinclair with 2 crash-stops in rounds 0-7",
        ),
        Scenario(
            name="diameter2-le-lossy/classical",
            protocol="le-diameter2/classical",
            topology=TopologySpec("erdos-renyi", (("p", 0.5),), fixed_seed=1000),
            sizes=(128, 256),
            trials=3,
            seed=170,
            normalize_by="candidates",
            adversary=AdversarySpec(drop_rate=0.05),
            description="CPR-style diameter-2 LE under 5% transit loss",
        ),
        # -- adaptive (traffic-conditioned) adversary families ----------------
        Scenario(
            name="wheel-le-adaptive/classical",
            protocol="le-diameter2/classical",
            topology=TopologySpec("wheel"),
            sizes=(32, 64, 128),
            trials=3,
            seed=200,
            adversary=AdversarySpec(adaptive="target-leader"),
            description="CPR LE on a wheel vs targeted-leader suppression "
            "(the adversary hunts the dominant sender — usually the hub)",
        ),
        Scenario(
            name="bipartite-le-lossy/classical",
            protocol="le-diameter2/classical",
            topology=TopologySpec("complete-bipartite"),
            sizes=(32, 64, 128),
            trials=3,
            seed=201,
            adversary=AdversarySpec(drop_rate=0.05),
            description="CPR LE on K_{a,b} (diameter 2) under 5% transit loss",
        ),
        Scenario(
            name="ring-le-congestion/lcr",
            protocol="le-ring/lcr",
            topology=TopologySpec("cycle"),
            sizes=(32, 64, 128),
            trials=3,
            seed=202,
            adversary=AdversarySpec(adaptive="congestion", adaptive_rate=0.3),
            description="LCR under reactive congestion drops: loss scales "
            "with observed per-edge load",
        ),
        Scenario(
            name="complete-le-eavesdrop/classical",
            protocol="le-complete/classical",
            topology=complete,
            sizes=(64, 128, 256),
            trials=3,
            seed=203,
            adversary=AdversarySpec(eavesdrop_rate=0.2, eavesdrop_drop_rate=0.5),
            description="KPP LE on K_n with 20% of edges tapped and half "
            "the tapped traffic intercepted (security ledger in meta)",
        ),
        Scenario(
            name="agreement-worstcase/quantum",
            protocol="agreement/quantum",
            topology=complete,
            sizes=(256, 1024),
            trials=3,
            seed=180,
            adversary=AdversarySpec(input_schedule="tie"),
            description="Quantum agreement against the worst-case tie input",
        ),
        Scenario(
            name="agreement-worstcase/classical",
            protocol="agreement/classical-shared",
            topology=complete,
            sizes=(256, 1024),
            trials=3,
            seed=181,
            adversary=AdversarySpec(input_schedule="tie"),
            description="AMP18 agreement against the worst-case tie input",
        ),
    ]
    return {scenario.name: scenario for scenario in scenarios}


SCENARIOS: dict[str, Scenario] = _catalogue()

#: Experiment id → (quantum scenario, classical scenario) for n-sweeps.
EXPERIMENT_SWEEPS: dict[str, tuple[str, str]] = {
    "E1": ("complete-le/quantum", "complete-le/classical"),
    "E3": ("mixing-le/quantum", "mixing-le/classical"),
    "E4": ("diameter2-le/quantum", "diameter2-le/classical"),
    "E5": ("general-le/quantum", "general-le/classical"),
    "E6": ("agreement/quantum", "agreement/classical"),
    "E7": ("star-search/quantum", "star-search/classical"),
    "E8": ("star-count/quantum", "star-count/classical"),
    "E10": ("mst/quantum", "mst/classical"),
}


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}"
        ) from None


def experiment_pair(experiment_id: str) -> tuple[Scenario, Scenario]:
    """The (quantum, classical) scenario pair reproducing one experiment."""
    try:
        quantum_name, classical_name = EXPERIMENT_SWEEPS[experiment_id]
    except KeyError:
        raise KeyError(
            f"experiment {experiment_id!r} has no size-sweep scenario pair "
            f"(parameter-sweep experiments run via their bench module); "
            f"sweepable: {sorted(EXPERIMENT_SWEEPS)}"
        ) from None
    return SCENARIOS[quantum_name], SCENARIOS[classical_name]
