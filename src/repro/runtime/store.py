"""On-disk result cache: resume and extend sweeps incrementally.

A :class:`ResultStore` persists one :class:`~repro.runtime.runner.TrialSet`
per JSON file under a cache directory (default
``benchmarks/results/cache/``, resolved against the working directory;
pin it with ``REPRO_RESULT_CACHE``).  The cache key digests everything
that determines a trial set bit-for-bit — protocol, topology spec,
protocol params, normalization, seed, trial count, size, and the size's
grid position (seeds are spawned in grid order) — so a cache hit is
always exact: ``repro sweep`` re-run with the same scenario skips straight
to aggregation, and appending sizes to the grid only computes the new
ones.

Engine backend and job count are deliberately *not* part of the key: both
are required (and tested) to leave aggregates bit-identical.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import re
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.runner import TrialSet
    from repro.runtime.scenario import Scenario

__all__ = ["DEFAULT_CACHE_DIR", "ResultStore"]

#: Default cache location, overridable via ``REPRO_RESULT_CACHE``.
DEFAULT_CACHE_DIR = "benchmarks/results/cache"

#: Bump when the on-disk layout changes; old entries are simply missed.
_FORMAT_VERSION = 1


def _default_root() -> pathlib.Path:
    return pathlib.Path(os.environ.get("REPRO_RESULT_CACHE", DEFAULT_CACHE_DIR))


def _slug(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", name)


class ResultStore:
    """Directory of cached trial sets keyed on (scenario identity, n)."""

    def __init__(self, root: str | os.PathLike | None = None):
        self.root = pathlib.Path(root) if root is not None else _default_root()

    # -- keying ----------------------------------------------------------------

    @staticmethod
    def identity(scenario: "Scenario", n: int, position: int) -> dict:
        """Everything that determines the trial set at size ``n``.

        ``position`` is the size's index in the grid: per-trial seeds are
        spawned from the scenario seed *in grid order*, so a trial set is
        only reusable at the same grid position.  Appending sizes to a grid
        keeps earlier positions stable (the resume pattern); reordering or
        prepending changes them and correctly misses the cache.
        """
        return {
            "version": _FORMAT_VERSION,
            "protocol": scenario.protocol,
            "topology": {
                "family": scenario.topology.family,
                "params": [list(item) for item in scenario.topology.params],
                "fixed_seed": scenario.topology.fixed_seed,
            },
            "params": [list(item) for item in scenario.params],
            "normalize_by": scenario.normalize_by,
            "seed": scenario.seed,
            "trials": scenario.trials,
            "n": n,
            "position": position,
        }

    def path_for(self, scenario: "Scenario", n: int, position: int) -> pathlib.Path:
        identity = self.identity(scenario, n, position)
        digest = hashlib.sha256(
            json.dumps(identity, sort_keys=True, default=str).encode()
        ).hexdigest()[:16]
        return self.root / f"{_slug(scenario.name)}-n{n}-{digest}.json"

    # -- IO --------------------------------------------------------------------

    def load(
        self, scenario: "Scenario", n: int, position: int
    ) -> "TrialSet | None":
        """The cached trial set for this exact (scenario, n, position)."""
        from repro.runtime.runner import TrialSet

        path = self.path_for(scenario, n, position)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("identity") != self.identity(scenario, n, position):
            return None  # digest collision or stale layout: recompute
        fields = payload["trial_set"]
        return TrialSet(
            n=int(fields["n"]),
            trials=int(fields["trials"]),
            success_rate=float(fields["success_rate"]),
            messages_mean=float(fields["messages_mean"]),
            messages_std=float(fields["messages_std"]),
            messages_p50=float(fields["messages_p50"]),
            messages_p90=float(fields["messages_p90"]),
            messages_max=float(fields["messages_max"]),
            rounds_mean=float(fields["rounds_mean"]),
            extra=dict(fields.get("extra", {})),
        )

    def save(
        self, scenario: "Scenario", n: int, position: int, trial_set: "TrialSet"
    ) -> pathlib.Path:
        """Persist one trial set; returns the file written."""
        import dataclasses

        path = self.path_for(scenario, n, position)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "identity": self.identity(scenario, n, position),
            "scenario": scenario.name,
            "trial_set": dataclasses.asdict(trial_set),
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True, default=str, indent=1))
        tmp.replace(path)  # atomic on POSIX: readers never see partial JSON
        return path

    def clear(self) -> int:
        """Delete every cache entry; returns how many files were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed
