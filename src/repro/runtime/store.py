"""On-disk result cache: resume and extend sweeps incrementally.

A :class:`ResultStore` persists one :class:`~repro.runtime.runner.TrialSet`
per JSON file under a cache directory (default
``benchmarks/results/cache/``, resolved against the working directory;
pin it with ``REPRO_RESULT_CACHE``).  The cache key digests everything
that determines a trial set bit-for-bit — protocol, topology spec,
protocol params, normalization, adversary spec, seed, trial count, size,
and the size's grid position (seeds are spawned in grid order) — so a
cache hit is
always exact: ``repro sweep`` re-run with the same scenario skips straight
to aggregation, and appending sizes to the grid only computes the new
ones.

Engine backend and job count are deliberately *not* part of the key: both
are required (and tested) to leave aggregates bit-identical.  The
*resolved* node API ("batch"/"scalar") **is** part of the key (format v3)
even though the two are parity-tested too — an entry should always be
reproducible under the dispatch path its key names.

Long-lived processes (``repro serve``) can additionally enable an
in-process **memory tier** (``memory_entries=N`` or
``REPRO_RESULT_CACHE_MEM``): a thread-safe LRU of deserialized trial
sets in front of the disk files, with a single-flight table so many
threads asking for the same key trigger exactly one disk read.  The
memory tier never changes what :meth:`load` returns — it only skips
re-parsing JSON — and it is off by default, so short-lived CLI runs and
multi-process fabric workers (whose memory would never be shared anyway)
keep the plain disk path.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import re
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.telemetry import metrics_registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.runner import TrialSet
    from repro.runtime.scenario import Scenario

__all__ = ["DEFAULT_CACHE_DIR", "DEFAULT_CACHE_MAX_ENTRIES", "ResultStore"]

#: Default cache location, overridable via ``REPRO_RESULT_CACHE``.
DEFAULT_CACHE_DIR = "benchmarks/results/cache"

#: Default entry cap, overridable via ``REPRO_RESULT_CACHE_MAX``.
DEFAULT_CACHE_MAX_ENTRIES = 4096

#: Bump when the on-disk layout changes; old entries are simply missed.
#: v2: identity gained the scenario's adversary spec.
#: v3: identity records the *resolved* node API ("batch"/"scalar"), so
#: cached scalar trial sets are never served for batch runs or vice versa.
#: Both APIs are tested bit-identical, but the key must tell them apart —
#: an entry should always reproduce under the dispatch path it names.
#: The adversary convention is unchanged: fault-free scenarios keep a
#: ``None`` adversary field, so fault-free keys stay stable within v3
#: regardless of which adversary flags other runs use.
#: v4: the adversary identity dict gained the adaptive/eavesdrop fields
#: (``adaptive``, ``adaptive_rate``, ``adaptive_after``,
#: ``eavesdrop_rate``, ``eavesdrop_edges``, ``eavesdrop_drop_rate``), so
#: a traffic-conditioned adversary never collides with the static spec
#: sharing its other fields.  Fault-free keys change only by the version
#: bump itself.
_FORMAT_VERSION = 4


def _default_root() -> pathlib.Path:
    return pathlib.Path(os.environ.get("REPRO_RESULT_CACHE", DEFAULT_CACHE_DIR))


def _default_max_entries() -> int:
    raw = os.environ.get("REPRO_RESULT_CACHE_MAX", "")
    return int(raw) if raw else DEFAULT_CACHE_MAX_ENTRIES


def _default_memory_entries() -> int:
    raw = os.environ.get("REPRO_RESULT_CACHE_MEM", "")
    return int(raw) if raw else 0


def _slug(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", name)


class _InFlightLoad:
    """One pending disk load; followers park on the event."""

    __slots__ = ("event", "result")

    def __init__(self):
        self.event = threading.Event()
        self.result: "TrialSet | None" = None


class ResultStore:
    """Directory of cached trial sets keyed on (scenario identity, n).

    The store is size-capped: whenever a save pushes the entry count past
    ``max_entries``, the least-recently-written files are evicted (an
    eviction only ever costs a recompute — every entry is reproducible
    from its scenario).
    """

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        max_entries: int | None = None,
        memory_entries: int | None = None,
    ):
        self.root = pathlib.Path(root) if root is not None else _default_root()
        self.max_entries = (
            max_entries if max_entries is not None else _default_max_entries()
        )
        if self.max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {self.max_entries}")
        self.memory_entries = (
            memory_entries
            if memory_entries is not None
            else _default_memory_entries()
        )
        if self.memory_entries < 0:
            raise ValueError(
                f"memory_entries must be >= 0, got {self.memory_entries}"
            )
        self._memory: OrderedDict[str, "TrialSet"] = OrderedDict()
        self._memory_lock = threading.Lock()
        self._inflight: dict[str, _InFlightLoad] = {}

    # -- keying ----------------------------------------------------------------

    @staticmethod
    def identity(scenario: "Scenario", n: int, position: int) -> dict:
        """Everything that determines the trial set at size ``n``.

        ``position`` is the size's index in the grid: per-trial seeds are
        spawned from the scenario seed *in grid order*, so a trial set is
        only reusable at the same grid position.  Appending sizes to a grid
        keeps earlier positions stable (the resume pattern); reordering or
        prepending changes them and correctly misses the cache.
        """
        return {
            "version": _FORMAT_VERSION,
            "protocol": scenario.protocol,
            "topology": {
                "family": scenario.topology.family,
                "params": [list(item) for item in scenario.topology.params],
                "fixed_seed": scenario.topology.fixed_seed,
            },
            "params": [list(item) for item in scenario.params],
            "normalize_by": scenario.normalize_by,
            "adversary": (
                scenario.adversary.key_dict()
                if scenario.adversary is not None
                else None
            ),
            "node_api": scenario.resolved_node_api,
            "seed": scenario.seed,
            "trials": scenario.trials,
            "n": n,
            "position": position,
        }

    def path_for(self, scenario: "Scenario", n: int, position: int) -> pathlib.Path:
        identity = self.identity(scenario, n, position)
        digest = hashlib.sha256(
            json.dumps(identity, sort_keys=True, default=str).encode()
        ).hexdigest()[:16]
        return self.root / f"{_slug(scenario.name)}-n{n}-{digest}.json"

    # -- IO --------------------------------------------------------------------

    def load(
        self, scenario: "Scenario", n: int, position: int
    ) -> "TrialSet | None":
        """The cached trial set for this exact (scenario, n, position).

        With the memory tier enabled, concurrent loads of one key are
        single-flighted: the first thread in does the disk read, everyone
        else waits on it and shares the same deserialized object.
        ``repro_store_memory_{hits,misses}_total`` count tier-1 traffic;
        the existing ``repro_store_{hits,misses}_total`` keep counting
        actual disk reads, so "one disk load for N callers" is visible in
        the metrics.
        """
        if not self.memory_entries:
            return self._load_disk(scenario, n, position)
        key = self.path_for(scenario, n, position).name
        registry = metrics_registry()
        with self._memory_lock:
            cached = self._memory.get(key)
            if cached is not None:
                self._memory.move_to_end(key)
                registry.counter("repro_store_memory_hits_total").inc()
                return cached
            flight = self._inflight.get(key)
            leader = flight is None
            if leader:
                flight = _InFlightLoad()
                self._inflight[key] = flight
        if not leader:
            flight.event.wait()
            tier1 = (
                "repro_store_memory_hits_total"
                if flight.result is not None
                else "repro_store_memory_misses_total"
            )
            registry.counter(tier1).inc()
            return flight.result
        registry.counter("repro_store_memory_misses_total").inc()
        try:
            result = self._load_disk(scenario, n, position)
            flight.result = result
            if result is not None:
                self._memory_put(key, result)
            return result
        finally:
            with self._memory_lock:
                self._inflight.pop(key, None)
            flight.event.set()

    def _memory_put(self, key: str, trial_set: "TrialSet") -> None:
        with self._memory_lock:
            self._memory[key] = trial_set
            self._memory.move_to_end(key)
            while len(self._memory) > self.memory_entries:
                self._memory.popitem(last=False)

    def _load_disk(
        self, scenario: "Scenario", n: int, position: int
    ) -> "TrialSet | None":
        from repro.runtime.runner import TrialSet

        path = self.path_for(scenario, n, position)
        registry = metrics_registry()
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            registry.counter("repro_store_misses_total").inc()
            return None
        if payload.get("identity") != self.identity(scenario, n, position):
            registry.counter("repro_store_misses_total").inc()
            return None  # digest collision or stale layout: recompute
        registry.counter("repro_store_hits_total").inc()
        fields = payload["trial_set"]
        return TrialSet(
            n=int(fields["n"]),
            trials=int(fields["trials"]),
            success_rate=float(fields["success_rate"]),
            messages_mean=float(fields["messages_mean"]),
            messages_std=float(fields["messages_std"]),
            messages_p50=float(fields["messages_p50"]),
            messages_p90=float(fields["messages_p90"]),
            messages_max=float(fields["messages_max"]),
            rounds_mean=float(fields["rounds_mean"]),
            extra=dict(fields.get("extra", {})),
        )

    def save(
        self, scenario: "Scenario", n: int, position: int, trial_set: "TrialSet"
    ) -> pathlib.Path:
        """Persist one trial set; returns the file written."""
        import dataclasses

        path = self.path_for(scenario, n, position)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "identity": self.identity(scenario, n, position),
            "scenario": scenario.name,
            "trial_set": dataclasses.asdict(trial_set),
        }
        # The tmp name is pid-unique: two processes saving the same key
        # concurrently (fabric workers deduping a shard, a takeover racing
        # a slow owner) must never interleave writes into one tmp file —
        # each replaces its own complete document atomically.
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True, default=str, indent=1))
        tmp.replace(path)  # atomic on POSIX: readers never see partial JSON
        metrics_registry().counter("repro_store_saves_total").inc()
        if self.memory_entries:
            self._memory_put(path.name, trial_set)
        self.evict()
        return path

    # -- hygiene ---------------------------------------------------------------

    def entries(self) -> list[pathlib.Path]:
        """Every cache file, oldest write first.

        Files that vanish mid-listing (a concurrent sweep's eviction or a
        ``clear``) are silently skipped — the cache directory is shared.
        """
        if not self.root.is_dir():
            return []
        stamped = []
        for path in self.root.glob("*.json"):
            try:
                stamped.append((path.stat().st_mtime, path.name, path))
            except OSError:
                continue
        return [path for _, _, path in sorted(stamped)]

    def stats(self) -> dict:
        """Cache summary: root, entry count, total bytes, entry cap."""
        paths = self.entries()
        total = 0
        for path in paths:
            try:
                total += path.stat().st_size
            except OSError:
                continue
        with self._memory_lock:
            memory_entries = len(self._memory)
        return {
            "root": str(self.root),
            "entries": len(paths),
            "bytes": total,
            "max_entries": self.max_entries,
            "memory_entries": memory_entries,
            "memory_entries_cap": self.memory_entries,
        }

    def evict(self) -> int:
        """Drop least-recently-written entries beyond ``max_entries``."""
        if not self.root.is_dir():
            return 0
        # Runs on every save: bail on a bare count before paying for the
        # per-file stat + sort that ordering the eviction needs.
        count = sum(1 for _ in self.root.glob("*.json"))
        if count <= self.max_entries:
            return 0
        paths = self.entries()
        excess = len(paths) - self.max_entries
        for path in paths[:excess]:
            path.unlink(missing_ok=True)
        if excess > 0:
            metrics_registry().counter("repro_store_evictions_total").inc(excess)
        return max(0, excess)

    def clear(self) -> int:
        """Delete every cache entry; returns how many files were removed.

        Also sweeps orphaned ``*.tmp`` files (a writer killed between its
        tmp write and the atomic replace); those never count as entries.
        """
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
            for path in self.root.glob("*.tmp"):
                path.unlink(missing_ok=True)
        with self._memory_lock:
            self._memory.clear()
        return removed
