"""Unified protocol registry + scenario runtime with parallel trial execution.

Three layers:

* :mod:`repro.runtime.registry` — every protocol registers a
  :class:`ProtocolSpec`; consumers dispatch by name instead of if/elif;
* :mod:`repro.runtime.scenario` — frozen (protocol × topology × size-grid)
  bindings with deterministic per-trial seed derivation;
* :mod:`repro.runtime.runner` — fans trials over a process pool and
  aggregates :class:`TrialSet` statistics that feed the unchanged
  ``ScalingSeries``/``PowerLawFit`` pipeline.

The named sweeps live in :mod:`repro.runtime.catalog`.  Two caches make
repeated sweeps cheap without changing any result: a per-worker topology
memo (:meth:`TopologySpec.build_cached`) and the on-disk
:class:`~repro.runtime.store.ResultStore` that lets ``repro sweep`` resume
and extend grids incrementally.
"""

from repro.adversary import AdversarySpec
from repro.runtime.catalog import (
    EXPERIMENT_SWEEPS,
    SCENARIOS,
    experiment_pair,
    get_scenario,
)
from repro.runtime.registry import (
    ProtocolRegistry,
    ProtocolSpec,
    TrialOutcome,
    default_registry,
    register_builtin_protocols,
)
from repro.runtime.runner import (
    ScenarioRun,
    TrialSet,
    aggregate_trials,
    fan_out,
    resolve_jobs,
    run_scenario,
)
from repro.runtime.scenario import (
    TOPOLOGY_FAMILIES,
    Scenario,
    TopologyFamily,
    TopologySpec,
    clear_topology_memo,
    topology_family,
    topology_memo_enabled,
)
from repro.runtime.store import DEFAULT_CACHE_DIR, ResultStore

__all__ = [
    "AdversarySpec",
    "DEFAULT_CACHE_DIR",
    "EXPERIMENT_SWEEPS",
    "ProtocolRegistry",
    "ProtocolSpec",
    "ResultStore",
    "SCENARIOS",
    "Scenario",
    "ScenarioRun",
    "TOPOLOGY_FAMILIES",
    "TopologyFamily",
    "TopologySpec",
    "TrialOutcome",
    "TrialSet",
    "aggregate_trials",
    "clear_topology_memo",
    "default_registry",
    "experiment_pair",
    "fan_out",
    "get_scenario",
    "register_builtin_protocols",
    "resolve_jobs",
    "run_scenario",
    "topology_family",
    "topology_memo_enabled",
]
