"""Scenario layer: named, reproducible (protocol × topology × size) bindings.

A :class:`Scenario` freezes everything one measurement needs — a topology
family from :mod:`repro.network.graphs`, a size grid, a registered protocol
name, and parameters — so that any point of the paper's experiment space is
a declarable object.  Per-trial randomness derives deterministically from
the scenario seed via :meth:`RandomSource.spawn`, which makes results
independent of how trials are scheduled (serial or process-parallel).

Topology families come in three flavours:

* deterministic (complete, star, hypercube, torus, ...): the trial RNG is
  handed to the protocol untouched — bit-identical to the legacy
  ``measure_scaling`` runners;
* random per-trial (erdos-renyi, random-regular, diameter2-gnp): the trial
  RNG is split once for the topology draw and once for the protocol;
* random but fixed per size (``fixed_seed``): the topology RNG is derived
  from ``fixed_seed + n`` only, so every trial at a size shares one graph
  (the benchmarks' convention for dense diameter-2 sweeps).
"""

from __future__ import annotations

import math
import os
from collections.abc import Callable
from dataclasses import dataclass, replace

from repro.network import graphs
from repro.network.topology import Topology
from repro.util.rng import RandomSource

__all__ = [
    "Scenario",
    "TOPOLOGY_FAMILIES",
    "TopologyFamily",
    "TopologySpec",
    "clear_topology_memo",
    "topology_family",
    "topology_memo_enabled",
]


@dataclass(frozen=True)
class TopologyFamily:
    """One named generator family: how to build it at a requested size."""

    name: str
    builder: Callable[..., Topology]
    needs_rng: bool
    description: str


def _build_hypercube(n: int) -> Topology:
    # Rounds n up to the next power of two (callers that care warn the user).
    return graphs.hypercube(max(2, (n - 1).bit_length()))


def _build_torus(n: int) -> Topology:
    rows = math.isqrt(n)
    if rows * rows != n:
        raise ValueError(f"torus scenarios need a square size, got n={n}")
    return graphs.torus(rows, rows)


def _build_barbell(n: int) -> Topology:
    if n % 2 or n < 6:
        raise ValueError(f"barbell scenarios need even n >= 6, got {n}")
    return graphs.barbell(n // 2)


def _build_lollipop(n: int) -> Topology:
    if n < 5:
        raise ValueError(f"lollipop scenarios need n >= 5, got {n}")
    clique = max(3, (2 * n) // 3)
    return graphs.lollipop(clique, n - clique)


def _build_complete_bipartite(n: int) -> Topology:
    return graphs.complete_bipartite(n // 2, n - n // 2)


def _build_random_regular(n: int, rng: RandomSource, degree: int = 4) -> Topology:
    return graphs.random_regular(n, degree, rng)


def _build_erdos_renyi(n: int, rng: RandomSource, p: float = 0.1) -> Topology:
    return graphs.erdos_renyi(n, p, rng)


TOPOLOGY_FAMILIES: dict[str, TopologyFamily] = {
    family.name: family
    for family in (
        TopologyFamily("complete", graphs.complete, False, "complete graph K_n"),
        TopologyFamily("star", graphs.star, False, "star with centre 0"),
        TopologyFamily("cycle", graphs.cycle, False, "cycle C_n"),
        TopologyFamily("path", graphs.path, False, "path P_n"),
        TopologyFamily("wheel", graphs.wheel, False, "wheel (hub + rim)"),
        TopologyFamily(
            "hypercube",
            _build_hypercube,
            False,
            "hypercube on 2^d nodes (n rounded up to a power of two)",
        ),
        TopologyFamily("torus", _build_torus, False, "2-D square torus (4-regular)"),
        TopologyFamily(
            "barbell", _build_barbell, False, "two n/2-cliques joined by one edge"
        ),
        TopologyFamily(
            "lollipop", _build_lollipop, False, "2n/3-clique with an n/3 tail"
        ),
        TopologyFamily(
            "complete-bipartite",
            _build_complete_bipartite,
            False,
            "complete bipartite K_{n/2,n/2}",
        ),
        TopologyFamily(
            "random-regular",
            _build_random_regular,
            True,
            "random d-regular expander (param: degree, default 4)",
        ),
        TopologyFamily(
            "erdos-renyi",
            _build_erdos_renyi,
            True,
            "connected G(n, p) (param: p, default 0.1)",
        ),
        TopologyFamily(
            "diameter2-gnp",
            graphs.diameter_two_gnp,
            True,
            "G(n, p) retried until diameter exactly 2",
        ),
    )
}

#: Per-family default params applied when the spec does not override them.
_FAMILY_DEFAULTS: dict[str, dict] = {
    "random-regular": {"degree": 4},
    "erdos-renyi": {"p": 0.1},
}


def topology_family(name: str) -> TopologyFamily:
    try:
        return TOPOLOGY_FAMILIES[name]
    except KeyError:
        raise KeyError(
            f"unknown topology family {name!r}; known: {sorted(TOPOLOGY_FAMILIES)}"
        ) from None


# -- per-worker topology memo --------------------------------------------------

#: Deterministically-buildable topologies keyed on
#: ``(family, params, fixed_seed, n)``.  Each worker process keeps its own
#: memo (workers share nothing), so a fixed-seed sweep builds each graph at
#: most once per worker instead of once per trial.  Specs that draw a fresh
#: random graph per trial are never memoized, so caching cannot change any
#: result — it only skips rebuilding identical graphs.
_TOPOLOGY_MEMO: dict[tuple, Topology] = {}
_TOPOLOGY_MEMO_MAX = 64


def topology_memo_enabled() -> bool:
    """False when ``REPRO_NO_TOPOLOGY_CACHE`` is set (CLI ``--no-cache``)."""
    return os.environ.get("REPRO_NO_TOPOLOGY_CACHE", "") not in ("1", "true", "yes")


def clear_topology_memo() -> None:
    """Drop every memoized topology in this process (tests, memory pressure)."""
    _TOPOLOGY_MEMO.clear()


@dataclass(frozen=True)
class TopologySpec:
    """A topology family plus its parameters, buildable at any grid size."""

    family: str
    params: tuple[tuple[str, object], ...] = ()
    #: When set, random families draw from ``RandomSource(fixed_seed + n)``
    #: instead of the trial RNG: one shared graph per size across trials.
    fixed_seed: int | None = None

    @property
    def param_dict(self) -> dict:
        merged = dict(_FAMILY_DEFAULTS.get(self.family, {}))
        merged.update(self.params)
        return merged

    @property
    def consumes_trial_rng(self) -> bool:
        return topology_family(self.family).needs_rng and self.fixed_seed is None

    def build(self, n: int, rng: RandomSource | None = None) -> Topology:
        family = topology_family(self.family)
        if not family.needs_rng:
            return family.builder(n, **self.param_dict)
        if self.fixed_seed is not None:
            rng = RandomSource(self.fixed_seed + n)
        if rng is None:
            raise ValueError(
                f"topology family {self.family!r} needs an rng (or a fixed_seed)"
            )
        return family.builder(n, rng, **self.param_dict)

    def build_cached(self, n: int) -> Topology:
        """Like :meth:`build`, but memoized per worker process.

        Only valid for specs whose build is a pure function of the spec and
        ``n`` — deterministic families and random families pinned by
        ``fixed_seed``.  The memo is keyed on
        ``(family, params, fixed_seed, n)`` and holds the built
        :class:`Topology` (including its lazily-built port table), so every
        trial at a size shares one graph object.
        """
        if self.consumes_trial_rng:
            raise ValueError(
                f"topology family {self.family!r} draws per-trial graphs and "
                f"cannot be memoized (set fixed_seed to share one graph)"
            )
        if not topology_memo_enabled():
            return self.build(n)
        key = (self.family, self.params, self.fixed_seed, n)
        topology = _TOPOLOGY_MEMO.get(key)
        if topology is None:
            if len(_TOPOLOGY_MEMO) >= _TOPOLOGY_MEMO_MAX:
                _TOPOLOGY_MEMO.clear()
            topology = self.build(n)
            _TOPOLOGY_MEMO[key] = topology
        return topology


#: Sentinel distinguishing "keep the current adversary" from "set None".
_KEEP = object()


@dataclass(frozen=True)
class Scenario:
    """A named, reproducible (protocol × topology × size-grid) binding."""

    name: str
    protocol: str  # registry name, e.g. "le-complete/quantum"
    topology: TopologySpec
    sizes: tuple[int, ...]
    params: tuple[tuple[str, object], ...] = ()
    trials: int = 3
    seed: int = 0
    #: Divide each trial's messages by this ``extra`` key (rounded), e.g.
    #: "candidates" for the benchmarks' per-candidate normalization.
    normalize_by: str | None = None
    #: Optional :class:`~repro.adversary.AdversarySpec` injected into every
    #: trial.  Participates in the result-store cache key; a null spec is
    #: normalized to None so it never perturbs identity or RNG streams.
    adversary: object | None = None
    #: Engine dispatch request: ``"auto"`` (array-native when the protocol
    #: declares the ``"batch"`` capability, scalar otherwise), ``"batch"``
    #: (required — rejected for scalar-only protocols), or ``"scalar"``.
    #: The *resolved* value participates in result-store cache keys, so
    #: scalar and batch trial sets never serve each other.
    node_api: str = "auto"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ValueError(f"scenario {self.name!r} has an empty size grid")
        if any(n < 2 for n in self.sizes):
            raise ValueError(f"scenario {self.name!r} has sizes < 2: {self.sizes}")
        if self.trials < 1:
            raise ValueError(f"scenario {self.name!r} needs >= 1 trial")
        if self.node_api not in ("auto", "batch", "scalar"):
            raise ValueError(
                f"scenario {self.name!r}: node_api must be 'auto', 'batch', "
                f"or 'scalar', got {self.node_api!r}"
            )
        if self.adversary is not None and self.adversary.is_null:
            object.__setattr__(self, "adversary", None)

    @property
    def param_dict(self) -> dict:
        return dict(self.params)

    @property
    def resolved_node_api(self) -> str:
        """The concrete node API this scenario's trials dispatch through.

        Resolves ``"auto"`` against the protocol's ``supports`` tags in
        the default registry; unknown protocols (unit-test fixtures) fall
        back to the raw request.
        """
        from repro.runtime.registry import default_registry

        try:
            spec = default_registry().get(self.protocol)
        except KeyError:
            return self.node_api
        return spec.resolve_node_api(self.node_api)

    def with_overrides(
        self,
        sizes: tuple[int, ...] | list[int] | None = None,
        trials: int | None = None,
        seed: int | None = None,
        params: dict | None = None,
        name: str | None = None,
        adversary: object = _KEEP,
        node_api: str | None = None,
    ) -> "Scenario":
        """A copy with grid/seed/params swapped out (bench & CLI overrides).

        ``adversary`` replaces the scenario's adversary spec when given
        (pass None to strip one off); omitted, the existing spec is kept.
        ``node_api`` replaces the dispatch request when given.
        """
        merged_params = self.param_dict
        if params:
            merged_params.update(params)
        return replace(
            self,
            name=name if name is not None else self.name,
            sizes=tuple(sizes) if sizes is not None else self.sizes,
            trials=trials if trials is not None else self.trials,
            seed=seed if seed is not None else self.seed,
            params=tuple(sorted(merged_params.items())),
            adversary=self.adversary if adversary is _KEEP else adversary,
            node_api=node_api if node_api is not None else self.node_api,
        )

    def run_trial(self, n: int, rng: RandomSource, registry=None):
        """One trial at size ``n`` with the given per-trial random source.

        Deterministic topologies hand ``rng`` to the protocol untouched;
        random per-trial topologies split it once for the draw and once for
        the protocol, so the stream layout is independent of scheduling.
        """
        from repro.runtime.registry import default_registry

        registry = registry if registry is not None else default_registry()
        spec = registry.get(self.protocol)
        run_params = self.param_dict
        # Resolve the node-API request up front (explicit "batch" on a
        # scalar-only protocol is rejected here, like unsupported
        # adversary capabilities); only batch-capable builders take the
        # kwarg, so legacy builders stay untouched.
        resolved_api = spec.resolve_node_api(self.node_api)
        if "batch" in spec.supports:
            run_params["node_api"] = resolved_api
        if self.adversary is not None:
            missing = self.adversary.required_capabilities() - set(spec.supports)
            if missing:
                raise ValueError(
                    f"scenario {self.name!r}: protocol {self.protocol!r} does "
                    f"not support adversary capabilities {sorted(missing)} "
                    f"(supports: {sorted(spec.supports) or 'none'})"
                )
            run_params["adversary"] = self.adversary
        if self.topology.consumes_trial_rng:
            topology = self.topology.build(n, rng.spawn())
            protocol_rng = rng.spawn()
        else:
            topology = self.topology.build_cached(n)
            protocol_rng = rng
        outcome = spec.run(topology, protocol_rng, **run_params)
        if self.normalize_by is not None:
            divisor = outcome.extra.get(self.normalize_by)
            if divisor is None:
                raise KeyError(
                    f"scenario {self.name!r} normalizes by {self.normalize_by!r} "
                    f"but the trial outcome only has {sorted(outcome.extra)}"
                )
            outcome = replace(
                outcome, messages=round(outcome.messages / max(1, divisor))
            )
        return outcome
