"""Dense state-vector simulator over mixed-dimension subsystems (qudits).

Used to validate the *formal model* of non-oblivious quantum routing
(Appendix A) exactly, on networks small enough for dense simulation.  The
registers of that model are qudits: a port register's basis is
{|⊥⟩, |m₁⟩, …}, so a qubit-only simulator would not fit naturally.
"""

from __future__ import annotations

import math

import numpy as np

from repro.util.rng import RandomSource

__all__ = ["DenseState"]


class DenseState:
    """A pure state over subsystems with arbitrary finite dimensions."""

    def __init__(self, dims: list[int]):
        if not dims:
            raise ValueError("need at least one subsystem")
        if any(d < 2 for d in dims):
            raise ValueError(f"every subsystem needs dimension >= 2, got {dims}")
        total = math.prod(dims)
        if total > 1 << 22:
            raise ValueError(
                f"state space of size {total} is too large for dense simulation"
            )
        self.dims = list(dims)
        self._state = np.zeros(total, dtype=complex)
        self._state[0] = 1.0

    # -- inspection --------------------------------------------------------------

    @property
    def subsystem_count(self) -> int:
        return len(self.dims)

    def amplitude(self, indices: tuple[int, ...]) -> complex:
        """Amplitude of the computational basis state |indices⟩."""
        return complex(self._state[self._flatten(indices)])

    def probabilities(self) -> np.ndarray:
        """|amplitude|² over the full computational basis."""
        return np.abs(self._state) ** 2

    def probability_of(self, indices: tuple[int, ...]) -> float:
        return float(abs(self.amplitude(indices)) ** 2)

    def marginal(self, targets: list[int]) -> np.ndarray:
        """Joint outcome distribution of the listed subsystems."""
        tensor = self._state.reshape(self.dims)
        axes = [i for i in range(len(self.dims)) if i not in targets]
        probabilities = np.abs(tensor) ** 2
        marginal = probabilities.sum(axis=tuple(axes)) if axes else probabilities
        order = np.argsort(np.argsort(targets))
        return np.transpose(marginal, axes=order) if marginal.ndim > 1 else marginal

    def norm(self) -> float:
        return float(np.linalg.norm(self._state))

    # -- preparation ---------------------------------------------------------------

    def set_basis_state(self, indices: tuple[int, ...]) -> None:
        """Reset to the computational basis state |indices⟩."""
        self._state[:] = 0.0
        self._state[self._flatten(indices)] = 1.0

    # -- evolution -------------------------------------------------------------------

    def apply(self, unitary: np.ndarray, targets: list[int]) -> None:
        """Apply a unitary to the listed subsystems (in the given order)."""
        if len(set(targets)) != len(targets):
            raise ValueError(f"duplicate targets in {targets}")
        for t in targets:
            if not 0 <= t < len(self.dims):
                raise ValueError(f"target {t} outside subsystem range")
        target_dim = math.prod(self.dims[t] for t in targets)
        if unitary.shape != (target_dim, target_dim):
            raise ValueError(
                f"unitary shape {unitary.shape} does not match target dimension "
                f"{target_dim}"
            )
        tensor = self._state.reshape(self.dims)
        rest = [i for i in range(len(self.dims)) if i not in targets]
        permuted = np.transpose(tensor, axes=targets + rest)
        folded = permuted.reshape(target_dim, -1)
        folded = unitary @ folded
        restored = folded.reshape([self.dims[t] for t in targets] + [self.dims[r] for r in rest])
        inverse = np.argsort(targets + rest)
        self._state = np.transpose(restored, axes=inverse).reshape(-1)

    def swap_subsystems(self, a: int, b: int) -> None:
        """Exchange two subsystems of equal dimension (used by Send)."""
        if self.dims[a] != self.dims[b]:
            raise ValueError(
                f"cannot swap subsystems of dimensions {self.dims[a]} and {self.dims[b]}"
            )
        tensor = self._state.reshape(self.dims)
        self._state = np.swapaxes(tensor, a, b).reshape(-1)

    # -- measurement --------------------------------------------------------------------

    def measure(self, target: int, rng: RandomSource) -> int:
        """Projectively measure one subsystem; collapses the state."""
        tensor = self._state.reshape(self.dims)
        probabilities = np.abs(tensor) ** 2
        axes = tuple(i for i in range(len(self.dims)) if i != target)
        outcome_distribution = probabilities.sum(axis=axes)
        outcome_distribution = outcome_distribution / outcome_distribution.sum()
        outcome = int(rng.generator.choice(self.dims[target], p=outcome_distribution))
        projector = [slice(None)] * len(self.dims)
        mask = np.zeros(self.dims[target])
        mask[outcome] = 1.0
        shape = [1] * len(self.dims)
        shape[target] = self.dims[target]
        tensor = tensor * mask.reshape(shape)
        tensor = tensor / np.linalg.norm(tensor)
        self._state = tensor.reshape(-1)
        return outcome

    # -- internals -------------------------------------------------------------------------

    def _flatten(self, indices: tuple[int, ...]) -> int:
        if len(indices) != len(self.dims):
            raise ValueError(
                f"need {len(self.dims)} indices, got {len(indices)}"
            )
        flat = 0
        for index, dim in zip(indices, self.dims):
            if not 0 <= index < dim:
                raise ValueError(f"index {index} outside subsystem dimension {dim}")
            flat = flat * dim + index
        return flat
