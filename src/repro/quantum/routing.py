"""Exact implementation of the quantum routing model (Appendix A).

Every port p = (u, v) owns an *emission* register (u→v) and a *reception*
register (u←v), each a qudit with basis {|⊥⟩, |m₁⟩, …, |m_A⟩} where |⊥⟩ is
the vacuum.  The round boundary applies

    Send_{u→v} : |m⟩_{u→v} |⊥⟩_{v←u} ↦ |⊥⟩_{u→v} |m⟩_{v←u}

on every directed pair simultaneously (the global ``Send`` operator).  A node
may choose its recipient *in superposition* via a local control register —
the superposition-of-trajectories mechanism of Section 3 — and the message
complexity of a round is the **maximum number of non-vacuum emission
registers over the superposed branches** (Section 3.1).

This module is exact but dense, so it is meant for small demonstration
networks (the star-graph example of Appendix A.2, tests).
"""

from __future__ import annotations

import math

import numpy as np

from repro.network.topology import Topology
from repro.quantum.gates import controlled, state_preparation
from repro.quantum.statevector import DenseState
from repro.util.rng import RandomSource

__all__ = ["QuantumRoutingNetwork", "VACUUM"]

#: Basis index of the vacuum state |⊥⟩ in every port register.
VACUUM = 0


class QuantumRoutingNetwork:
    """Dense simulation of a network with quantum port registers."""

    def __init__(self, topology: Topology, alphabet_size: int = 1):
        if alphabet_size < 1:
            raise ValueError(f"need at least one message symbol, got {alphabet_size}")
        self.topology = topology
        self.alphabet_size = alphabet_size
        self.register_dim = alphabet_size + 1  # vacuum + symbols

        self._local_dims: list[int] = []
        self._local_index: dict[tuple[int, str], int] = {}
        self._emission_index: dict[tuple[int, int], int] = {}
        self._reception_index: dict[tuple[int, int], int] = {}
        self._state: DenseState | None = None

    # -- construction ------------------------------------------------------------

    def allocate_local(self, node: int, name: str, dimension: int) -> None:
        """Reserve a local register for ``node`` (before :meth:`build`)."""
        if self._state is not None:
            raise RuntimeError("cannot allocate registers after build()")
        key = (node, name)
        if key in self._local_index:
            raise ValueError(f"register {name!r} already allocated at node {node}")
        self._local_index[key] = len(self._local_dims)
        self._local_dims.append(dimension)

    def build(self) -> None:
        """Materialize the dense state (all registers in vacuum / |0⟩)."""
        dims = list(self._local_dims)
        offset = len(dims)
        position = offset
        for u, v in self.topology.edges():
            for a, b in ((u, v), (v, u)):
                self._emission_index[(a, b)] = position
                dims.append(self.register_dim)
                position += 1
                self._reception_index[(b, a)] = position
                dims.append(self.register_dim)
                position += 1
        self._state = DenseState(dims)

    # -- register handles ------------------------------------------------------------

    @property
    def state(self) -> DenseState:
        if self._state is None:
            raise RuntimeError("call build() first")
        return self._state

    def local(self, node: int, name: str) -> int:
        return self._local_index[(node, name)]

    def emission(self, sender: int, receiver: int) -> int:
        """Subsystem index of the emission register sender→receiver."""
        return self._emission_index[(sender, receiver)]

    def reception(self, receiver: int, sender: int) -> int:
        """Subsystem index of the reception register receiver←sender."""
        return self._reception_index[(receiver, sender)]

    # -- operations ----------------------------------------------------------------------

    def prepare_recipient_superposition(
        self, node: int, name: str, amplitudes: dict[int, complex]
    ) -> None:
        """Load a local register with a superposition over neighbour ports.

        ``amplitudes`` maps neighbour ids to amplitudes; port order indexes
        the register's basis.  This is step (1) of Appendix A.2.
        """
        degree = self.topology.degree(node)
        register = self.local(node, name)
        if self.state.dims[register] < degree:
            raise ValueError(
                f"control register of dimension {self.state.dims[register]} cannot "
                f"address {degree} ports"
            )
        vector = np.zeros(self.state.dims[register], dtype=complex)
        for neighbour, amplitude in amplitudes.items():
            port = self.topology.port_to(node, neighbour)
            vector[port] = amplitude
        norm = np.linalg.norm(vector)
        if not math.isclose(norm, 1.0, rel_tol=1e-9):
            raise ValueError(f"amplitudes must be normalized, got norm {norm}")
        self.state.apply(state_preparation(vector), [register])

    def write_message_controlled(self, node: int, name: str, symbol: int) -> None:
        """Controlled-write of ``symbol`` into the port selected by a register.

        For each port j of ``node``, applies (controlled on the local register
        holding j) the permutation swapping |⊥⟩ ↔ |symbol⟩ on the emission
        register of port j — the control-swap of Appendix A.2 step (1).
        """
        if not 1 <= symbol <= self.alphabet_size:
            raise ValueError(f"symbol must be in [1, {self.alphabet_size}], got {symbol}")
        control = self.local(node, name)
        control_dim = self.state.dims[control]
        permutation = np.eye(self.register_dim, dtype=complex)
        permutation[[VACUUM, symbol]] = permutation[[symbol, VACUUM]]
        for port in range(self.topology.degree(node)):
            neighbour = self.topology.neighbor_at_port(node, port)
            target = self.emission(node, neighbour)
            gate = controlled(permutation, control_dim, active=port)
            self.state.apply(gate, [control, target])

    def write_message(self, sender: int, receiver: int, symbol: int) -> None:
        """Deterministic (classical-recipient) message write."""
        if not 1 <= symbol <= self.alphabet_size:
            raise ValueError(f"symbol must be in [1, {self.alphabet_size}], got {symbol}")
        permutation = np.eye(self.register_dim, dtype=complex)
        permutation[[VACUUM, symbol]] = permutation[[symbol, VACUUM]]
        self.state.apply(permutation, [self.emission(sender, receiver)])

    def send_all(self) -> None:
        """The global Send operator: swap every (u→v) with (v←u)."""
        for (sender, receiver), emission in self._emission_index.items():
            reception = self._reception_index[(receiver, sender)]
            self.state.swap_subsystems(emission, reception)

    def round_message_complexity(self, tolerance: float = 1e-12) -> int:
        """Message complexity of sending now (Section 3.1's max-over-branches).

        Counts, for each computational basis state with non-negligible
        amplitude, the number of non-vacuum *emission* registers, and returns
        the maximum.
        """
        emission_positions = sorted(self._emission_index.values())
        dims = self.state.dims
        probabilities = self.state.probabilities()
        support = np.nonzero(probabilities > tolerance)[0]
        if support.size == 0:
            return 0
        unraveled = np.array(np.unravel_index(support, dims)).T
        worst = 0
        for basis_indices in unraveled:
            occupied = sum(
                1 for position in emission_positions if basis_indices[position] != VACUUM
            )
            worst = max(worst, occupied)
        return worst

    def measure_reception(self, receiver: int, sender: int, rng: RandomSource) -> int:
        """Measure the reception register receiver←sender (0 means vacuum)."""
        return self.state.measure(self.reception(receiver, sender), rng)
