"""Outcome model for MNRS-style search via quantum walk (Theorem 4.4).

The MNRS framework amplifies the marked measure ε_f of a reversible Markov
chain using ~1/√ε phase-estimation-based reflections, each built from ~1/√δ
walk steps.  Its guarantee is a *constant* per-attempt success probability
whenever ε_f ≥ ε.

We model a WalkSearch attempt exactly like a randomized-iteration amplitude
amplification (the same rotation algebra as Grover, driven by the marked
measure of the chain's stationary distribution):

* per-attempt success probability = BBHT average law at cap m = ⌈1/√ε⌉,
  which is ≥ 1/4 whenever ε_f ≥ ε and exactly 0 when ε_f = 0;
* attempts are repeated O(log 1/α) times (Theorem 4.4's boosting).

This reproduces the theorem's guarantee (success ≥ 1 − α for ε_f ≥ ε, never a
false positive for ε_f = 0) while degrading gracefully — proportionally to
ε_f/ε — below the promise, as the real dynamics would.  The documented
modelling constant is the 1/4 BBHT floor.
"""

from __future__ import annotations

from repro.quantum.amplitude import bbht_average_success, worst_case_iterations
from repro.util.fault import FaultInjector
from repro.util.rng import RandomSource

__all__ = ["walk_attempt_success_probability", "sample_walk_attempt"]


def walk_attempt_success_probability(marked_fraction: float, epsilon: float) -> float:
    """Per-attempt success probability of a WalkSearch attempt."""
    if not 0.0 <= marked_fraction <= 1.0:
        raise ValueError(f"marked fraction must be in [0, 1], got {marked_fraction}")
    if marked_fraction == 0.0:
        return 0.0
    cap = worst_case_iterations(epsilon)
    return bbht_average_success(cap, marked_fraction)


def sample_walk_attempt(
    marked_fraction: float,
    epsilon: float,
    rng: RandomSource,
    faults: FaultInjector | None = None,
    fault_site: str = "walk.false_negative",
) -> bool:
    """Sample whether one WalkSearch attempt lands on a marked chain state."""
    if faults is not None and faults.should_fail(fault_site):
        return False
    probability = walk_attempt_success_probability(marked_fraction, epsilon)
    return rng.bernoulli(probability)
