"""Small gate library for the dense state-vector simulator."""

from __future__ import annotations

import numpy as np

__all__ = [
    "controlled",
    "hadamard",
    "identity",
    "pauli_x",
    "pauli_z",
    "phase_flip_on",
    "state_preparation",
    "swap_gate",
]


def identity(dimension: int) -> np.ndarray:
    return np.eye(dimension, dtype=complex)


def hadamard() -> np.ndarray:
    return np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2.0)


def pauli_x() -> np.ndarray:
    return np.array([[0, 1], [1, 0]], dtype=complex)


def pauli_z() -> np.ndarray:
    return np.array([[1, 0], [0, -1]], dtype=complex)


def swap_gate(dimension: int) -> np.ndarray:
    """SWAP of two subsystems of equal ``dimension`` (d² × d² matrix)."""
    d = dimension
    matrix = np.zeros((d * d, d * d), dtype=complex)
    for a in range(d):
        for b in range(d):
            matrix[b * d + a, a * d + b] = 1.0
    return matrix


def controlled(unitary: np.ndarray, control_dimension: int, active: int) -> np.ndarray:
    """Control ``unitary`` on the control qudit being in state ``active``.

    Returns a (c·d) × (c·d) block-diagonal unitary: identity on every control
    value except ``active``, where ``unitary`` is applied to the target.
    """
    if not 0 <= active < control_dimension:
        raise ValueError(
            f"active control value {active} outside [0, {control_dimension})"
        )
    d = unitary.shape[0]
    blocks = [
        unitary if value == active else identity(d)
        for value in range(control_dimension)
    ]
    result = np.zeros((control_dimension * d, control_dimension * d), dtype=complex)
    for value, block in enumerate(blocks):
        result[value * d : (value + 1) * d, value * d : (value + 1) * d] = block
    return result


def phase_flip_on(dimension: int, flipped: set[int]) -> np.ndarray:
    """Diagonal unitary putting a (−1) phase on the listed basis states."""
    diagonal = np.ones(dimension, dtype=complex)
    for index in flipped:
        if not 0 <= index < dimension:
            raise ValueError(f"basis index {index} outside [0, {dimension})")
        diagonal[index] = -1.0
    return np.diag(diagonal)


def state_preparation(target: np.ndarray) -> np.ndarray:
    """A unitary whose first column is the given (normalized) state.

    Used to prepare arbitrary superpositions — e.g. the superposed recipient
    register of Appendix A.2 — from the |0⟩ state.  Built by completing the
    target vector to an orthonormal basis via QR.
    """
    vector = np.asarray(target, dtype=complex).reshape(-1)
    norm = np.linalg.norm(vector)
    if not np.isclose(norm, 1.0, atol=1e-9):
        raise ValueError(f"state must be normalized, got norm {norm}")
    dimension = vector.shape[0]
    basis = np.eye(dimension, dtype=complex)
    basis[:, 0] = vector
    q, r = np.linalg.qr(basis)
    # QR fixes phases only up to signs on the diagonal of R; align column 0.
    phase = r[0, 0] / abs(r[0, 0])
    q = q * phase.conjugate()
    if not np.allclose(q[:, 0], vector, atol=1e-9):
        # Fall back to an explicit Gram-Schmidt completion.
        columns = [vector]
        for e in np.eye(dimension, dtype=complex).T:
            candidate = e.copy()
            for column in columns:
                candidate = candidate - np.vdot(column, candidate) * column
            norm = np.linalg.norm(candidate)
            if norm > 1e-9:
                columns.append(candidate / norm)
            if len(columns) == dimension:
                break
        q = np.stack(columns, axis=1)
    return q
