"""Johnson graphs J(n, k) — the quantum walk's state space in QuantumQWLE.

Algorithm 3 walks on J(deg(v), k): vertices are the k-subsets of v's
neighbourhood, and two subsets are adjacent when they differ in exactly one
element.  The walk is uniform, its stationary distribution is uniform over
subsets, and its spectral gap is exactly δ = n / (k·(n−k)) — which is Θ(1/k)
for k = o(n), the value Theorem 5.6's analysis uses.

Subsets are represented as ``frozenset`` of *universe indices*; the caller
maps indices to actual neighbour ids.
"""

from __future__ import annotations

import math

from repro.util.rng import RandomSource

__all__ = ["JohnsonGraph"]


class JohnsonGraph:
    """The Johnson graph J(universe_size, subset_size)."""

    def __init__(self, universe_size: int, subset_size: int):
        if universe_size < 2:
            raise ValueError(f"universe must have >= 2 elements, got {universe_size}")
        if not 1 <= subset_size < universe_size:
            raise ValueError(
                f"subset size must be in [1, {universe_size}), got {subset_size}"
            )
        self.universe_size = universe_size
        self.subset_size = subset_size

    # -- structure --------------------------------------------------------------

    @property
    def degree(self) -> int:
        """Every vertex has degree k·(n−k)."""
        return self.subset_size * (self.universe_size - self.subset_size)

    def vertex_count(self) -> int:
        """C(n, k) vertices."""
        return math.comb(self.universe_size, self.subset_size)

    def spectral_gap(self) -> float:
        """Exact gap of the uniform walk: δ = n / (k·(n−k)).

        The adjacency eigenvalues of J(n,k) are (k−j)(n−k−j) − j; dividing
        the second-largest (j = 1) by the degree and subtracting from 1
        gives n / (k(n−k)).
        """
        return self.universe_size / self.degree

    def are_adjacent(self, a: frozenset[int], b: frozenset[int]) -> bool:
        """Adjacent iff the subsets differ in exactly one element."""
        self._validate(a)
        self._validate(b)
        return len(a & b) == self.subset_size - 1

    # -- sampling ---------------------------------------------------------------

    def random_vertex(self, rng: RandomSource) -> frozenset[int]:
        """Uniform k-subset of the universe (the stationary distribution)."""
        chosen = rng.sample_without_replacement(self.universe_size, self.subset_size)
        return frozenset(int(i) for i in chosen)

    def random_neighbor(
        self, vertex: frozenset[int], rng: RandomSource
    ) -> tuple[frozenset[int], int, int]:
        """Uniform neighbour of ``vertex``; returns (W', removed, added)."""
        self._validate(vertex)
        inside = sorted(vertex)
        outside = [i for i in range(self.universe_size) if i not in vertex]
        removed = inside[rng.uniform_int(0, len(inside) - 1)]
        added = outside[rng.uniform_int(0, len(outside) - 1)]
        neighbour = frozenset((vertex - {removed}) | {added})
        return neighbour, removed, added

    # -- marked-set measure -------------------------------------------------------

    def hitting_fraction(self, good_count: int) -> float:
        """π-measure of {W : W ∩ G ≠ ∅} for a good set of size ``good_count``.

        Exactly 1 − C(n−g, k)/C(n, k), computed stably as a product of ratios.
        For g = 1 this is k/n — the ε = k/deg(v) requirement of Algorithm 3.
        """
        if not 0 <= good_count <= self.universe_size:
            raise ValueError(
                f"good count must be in [0, {self.universe_size}], got {good_count}"
            )
        if good_count == 0:
            return 0.0
        miss_probability = 1.0
        n, k, g = self.universe_size, self.subset_size, good_count
        if n - g < k:
            return 1.0  # every k-subset must intersect the good set
        for i in range(k):
            miss_probability *= (n - g - i) / (n - i)
        return 1.0 - miss_probability

    def sample_hitting_subset(
        self, good_indices: set[int], rng: RandomSource, max_rejections: int = 64
    ) -> frozenset[int]:
        """Uniform k-subset conditioned on intersecting ``good_indices``.

        Rejection-samples from the stationary distribution; after
        ``max_rejections`` misses falls back to exact conditional construction
        (choose the number of good elements j ≥ 1 with its true conditional
        weight, then uniform good/bad complements).
        """
        if not good_indices:
            raise ValueError("good set is empty; no hitting subset exists")
        for _ in range(max_rejections):
            candidate = self.random_vertex(rng)
            if candidate & good_indices:
                return candidate
        return self._exact_conditional_sample(good_indices, rng)

    def _exact_conditional_sample(
        self, good_indices: set[int], rng: RandomSource
    ) -> frozenset[int]:
        n, k = self.universe_size, self.subset_size
        good = sorted(good_indices)
        bad = [i for i in range(n) if i not in good_indices]
        g = len(good)
        weights = []
        supports = []
        for j in range(1, min(g, k) + 1):
            if k - j > len(bad):
                continue
            weights.append(math.comb(g, j) * math.comb(len(bad), k - j))
            supports.append(j)
        total = sum(weights)
        pick = rng.uniform() * total
        cumulative = 0.0
        chosen_j = supports[-1]
        for j, weight in zip(supports, weights):
            cumulative += weight
            if pick < cumulative:
                chosen_j = j
                break
        good_part = rng.choice(good, size=chosen_j, replace=False)
        bad_part = (
            rng.choice(bad, size=k - chosen_j, replace=False)
            if k - chosen_j > 0
            else []
        )
        return frozenset(int(i) for i in list(good_part) + list(bad_part))

    def _validate(self, vertex: frozenset[int]) -> None:
        if len(vertex) != self.subset_size:
            raise ValueError(
                f"vertex must have {self.subset_size} elements, got {len(vertex)}"
            )
        if any(not 0 <= i < self.universe_size for i in vertex):
            raise ValueError("vertex contains indices outside the universe")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JohnsonGraph(n={self.universe_size}, k={self.subset_size})"
