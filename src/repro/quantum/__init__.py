"""Quantum substrate: exact subroutine dynamics + dense routing-model simulator."""

from repro.quantum.amplitude import (
    attempts_for_confidence,
    bbht_average_success,
    grover_angle,
    grover_success_probability,
    optimal_iterations,
    worst_case_iterations,
)
from repro.quantum.exact_grover import ExactGroverRun, exact_star_grover
from repro.quantum.grover_dynamics import AttemptOutcome, sample_attempt
from repro.quantum.johnson import JohnsonGraph
from repro.quantum.phase_estimation import (
    counting_error_bound,
    counting_estimate_from_outcome,
    eigenphase_turns,
    qpe_distribution,
    sample_counting_estimate,
)
from repro.quantum.routing import VACUUM, QuantumRoutingNetwork
from repro.quantum.statevector import DenseState
from repro.quantum.walk_model import (
    sample_walk_attempt,
    walk_attempt_success_probability,
)

__all__ = [
    "AttemptOutcome",
    "DenseState",
    "ExactGroverRun",
    "exact_star_grover",
    "JohnsonGraph",
    "QuantumRoutingNetwork",
    "VACUUM",
    "attempts_for_confidence",
    "bbht_average_success",
    "counting_error_bound",
    "counting_estimate_from_outcome",
    "eigenphase_turns",
    "grover_angle",
    "grover_success_probability",
    "optimal_iterations",
    "qpe_distribution",
    "sample_attempt",
    "sample_counting_estimate",
    "sample_walk_attempt",
    "walk_attempt_success_probability",
    "worst_case_iterations",
]
