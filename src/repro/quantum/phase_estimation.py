"""Exact outcome distribution of quantum counting (Theorem 4.2).

Quantum counting [BHT98a] runs phase estimation on the Grover iterate G.  On
the uniform starting state, G has eigenvalues e^{±2iθ} with sin²θ = t/N, and
the start state is an equal-weight mixture of the two eigenvectors.  P-point
phase estimation of an eigenphase ω (in turns) returns y ∈ {0, …, P−1} with
the exact Fejér-type kernel

    Pr[y] = | sin(πP(ω − y/P)) / (P·sin(π(ω − y/P))) |².

The count estimate is t̃ = N·sin²(πy/P), and the error bound of Theorem 4.2,

    |t − t̃| < (2π/P)·√(tN) + (π²/P²)·N   with probability ≥ 8/π²,

follows from this distribution — we sample from the true law, so the bound
holds here for the same reason it holds on a quantum computer.
"""

from __future__ import annotations

import math

import numpy as np

from repro.util.rng import RandomSource

__all__ = [
    "counting_error_bound",
    "counting_estimate_from_outcome",
    "eigenphase_turns",
    "qpe_distribution",
    "sample_counting_estimate",
]


def eigenphase_turns(t: int, N: int) -> float:
    """ω = θ/π ∈ [0, 1/2]: the Grover eigenphase in units of full turns."""
    if N < 1:
        raise ValueError(f"N must be >= 1, got {N}")
    if not 0 <= t <= N:
        raise ValueError(f"t must be in [0, {N}], got {t}")
    theta = math.asin(math.sqrt(t / N))
    return theta / math.pi


def qpe_distribution(omega: float, P: int) -> np.ndarray:
    """Exact P-point phase-estimation outcome distribution for phase ω.

    Entry y holds Pr[measure y] = |sin(πPδ_y) / (P sin(πδ_y))|² with
    δ_y = ω − y/P (taken modulo 1); when δ_y is an integer the kernel is 1.
    """
    if P < 1:
        raise ValueError(f"P must be >= 1, got {P}")
    y = np.arange(P)
    delta = omega - y / P
    # Wrap to the principal branch; the kernel is 1-periodic in delta.
    delta = delta - np.round(delta)
    with np.errstate(divide="ignore", invalid="ignore"):
        numerator = np.sin(np.pi * P * delta)
        denominator = P * np.sin(np.pi * delta)
        kernel = np.where(np.abs(denominator) < 1e-300, 1.0, numerator / denominator)
    probabilities = kernel**2
    # Guard against tiny float drift before sampling.
    total = probabilities.sum()
    if not math.isclose(total, 1.0, rel_tol=1e-9):
        probabilities = probabilities / total
    return probabilities


def counting_estimate_from_outcome(y: int, N: int, P: int) -> float:
    """t̃ = N·sin²(πy/P) — the count estimate decoded from outcome y."""
    return N * math.sin(math.pi * y / P) ** 2


def sample_counting_estimate(
    t: int,
    N: int,
    P: int,
    rng: RandomSource,
) -> float:
    """Sample one quantum-counting estimate t̃ of the true count t among N.

    The starting state splits half/half over the two conjugate eigenvectors
    (for 0 < t < N); the degenerate endpoints t = 0 and t = N have a single
    eigenphase.
    """
    omega = eigenphase_turns(t, N)
    if 0 < t < N and rng.bernoulli(0.5):
        omega = 1.0 - omega  # the e^{-2iθ} eigenvector
    distribution = qpe_distribution(omega, P)
    y = int(rng.generator.choice(P, p=distribution))
    return counting_estimate_from_outcome(y, N, P)


def counting_error_bound(t: int, N: int, P: int) -> float:
    """Theorem 4.2's error radius: (2π/P)√(tN) + (π²/P²)N."""
    return (2.0 * math.pi / P) * math.sqrt(t * N) + (math.pi**2 / P**2) * N
