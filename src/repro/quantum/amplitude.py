"""Rotation algebra of Grover's iterate — the library's quantum ground truth.

Grover's operator R = D·S_f acts on the span of the uniform superpositions of
marked and unmarked elements as a rotation by 2θ, where sin²θ = ε_f is the
marked fraction.  Everything the paper's Theorem 4.1 needs — success
probabilities, iteration counts, the Boyer–Brassard–Høyer–Tapp (BBHT) law for
an unknown number of solutions — follows from this two-dimensional picture and
is computed here *exactly*.
"""

from __future__ import annotations

import math

from repro.util.mathx import ceil_div

__all__ = [
    "attempts_for_confidence",
    "bbht_average_success",
    "grover_angle",
    "grover_success_probability",
    "optimal_iterations",
    "worst_case_iterations",
]


def grover_angle(marked_fraction: float) -> float:
    """θ = asin(√ε_f): rotation half-angle of the Grover iterate."""
    if not 0.0 <= marked_fraction <= 1.0:
        raise ValueError(f"marked fraction must be in [0, 1], got {marked_fraction}")
    return math.asin(math.sqrt(marked_fraction))


def grover_success_probability(iterations: int, marked_fraction: float) -> float:
    """P[measuring a marked element] after ``iterations`` Grover iterations.

    Exactly sin²((2j+1)θ) — the textbook law, valid for every j ≥ 0 and
    every ε_f ∈ [0, 1].
    """
    if iterations < 0:
        raise ValueError(f"iterations must be non-negative, got {iterations}")
    theta = grover_angle(marked_fraction)
    return math.sin((2 * iterations + 1) * theta) ** 2


def optimal_iterations(marked_fraction: float) -> int:
    """⌊π/(4θ)⌋ — the iteration count maximizing the success probability."""
    if marked_fraction <= 0.0:
        raise ValueError("no marked elements: optimal iteration count undefined")
    theta = grover_angle(marked_fraction)
    return max(0, math.floor(math.pi / (4.0 * theta)))


def worst_case_iterations(epsilon: float) -> int:
    """m = ⌈1/√ε⌉ — the BBHT iteration cap under the promise ε_f ≥ ε.

    This is the per-attempt bound the synchronized network assumes
    (Theorem 4.1's proof: the network runs Checking for the worst possible
    number of iterations).
    """
    if not 0.0 < epsilon <= 1.0:
        raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
    return max(1, math.ceil(1.0 / math.sqrt(epsilon)))


def bbht_average_success(iteration_cap: int, marked_fraction: float) -> float:
    """Success probability of one BBHT attempt with j ~ U[0, iteration_cap).

    Closed form: E_j[sin²((2j+1)θ)] = 1/2 − sin(4mθ) / (4m·sin(2θ)).
    For m ≥ 1/sin(2θ) this is at least 1/4 ([BBHT98, Lemma 2]).
    """
    if iteration_cap < 1:
        raise ValueError(f"iteration cap must be >= 1, got {iteration_cap}")
    theta = grover_angle(marked_fraction)
    if theta == 0.0:
        return 0.0
    sin_2theta = math.sin(2.0 * theta)
    if abs(sin_2theta) < 1e-9:  # ε_f ≈ 1: sin²((2j+1)·π/2) = 1 for every j
        return 1.0
    m = iteration_cap
    # The expectation is in [0, 1] exactly; near θ = π/2 the ratio loses a
    # few ulps to cancellation and can overshoot by ~1e-9, so clamp.
    value = 0.5 - math.sin(4.0 * m * theta) / (4.0 * m * sin_2theta)
    return min(1.0, max(0.0, value))


def attempts_for_confidence(alpha: float, per_attempt_success: float = 0.25) -> int:
    """Attempts needed so that all-fail probability is at most ``alpha``.

    ⌈ln(1/α) / ln(1/(1−p))⌉ with p the per-attempt success floor; this is the
    ⌊a·log(1/α)⌋ attempt budget of Theorem 4.1's proof.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if not 0.0 < per_attempt_success < 1.0:
        raise ValueError(
            f"per-attempt success must be in (0, 1), got {per_attempt_success}"
        )
    numerator = math.log(1.0 / alpha)
    denominator = -math.log(1.0 - per_attempt_success)
    return max(1, math.ceil(numerator / denominator))
