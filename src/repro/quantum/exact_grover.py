"""Exact distributed Grover search on the quantum routing model.

This module closes the fidelity loop of the whole library: it executes the
distributed Grover search of Theorem 4.1 as a *genuine unitary simulation*
on the Appendix-A routing model — superposed recipient registers, Send
operators, phase kickback at the leaves, uncomputation, diffusion — with no
amplitude-level shortcuts.  Tests verify that its measurement statistics
match the closed-form law (`sin²((2j+1)θ)`) that the scalable simulator
(:mod:`repro.quantum.grover_dynamics`) samples from.

Scenario (the star-graph Searching example of Appendix B.2): the centre of a
star holds a query register over its deg(v) ports; each leaf j holds a bit
b_j.  One S_f application is four routed steps:

1. centre control-writes a probe symbol into the emission register selected
   by the (superposed) query register;
2. global Send delivers the probes;
3. each leaf with b_j = 1 applies a phase flip to its non-vacuum reception
   register (the phase-kickback form of Checking — the reply needs no extra
   round because the phase travels back with the uncomputation);
4. the centre uncomputes the probe (controlled write is an involution after
   Send⁻¹ returns the registers).

Costs are charged through the same MetricsRecorder contract as everywhere
else: one coherent Checking = 2 messages (probe out, probe back), 2 rounds.

Dense simulation is exponential in the number of leaves, so this is a
validation instrument for ≤ 6 leaves, not a production path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.network.metrics import MetricsRecorder
from repro.network.topology import StarTopology
from repro.quantum.gates import phase_flip_on, state_preparation
from repro.quantum.routing import VACUUM, QuantumRoutingNetwork
from repro.util.rng import RandomSource

__all__ = ["ExactGroverRun", "exact_star_grover"]

#: The probe symbol written into port registers (alphabet of size 1).
PROBE = 1


@dataclass
class ExactGroverRun:
    """Outcome of one exact routed Grover execution."""

    measured_leaf: int  # leaf index in 1..n_leaves
    measured_marked: bool
    iterations: int
    theory_probability: float  # the sin²((2j+1)θ) prediction
    messages: int
    rounds: int


class _RoutedGrover:
    """Unitary machinery for Grover on a star via routed port registers."""

    def __init__(self, leaf_bits: list[int]):
        if not 1 <= len(leaf_bits) <= 6:
            raise ValueError(
                f"dense routed simulation supports 1..6 leaves, got {len(leaf_bits)}"
            )
        if any(b not in (0, 1) for b in leaf_bits):
            raise ValueError("leaf bits must be 0/1")
        self.leaf_bits = leaf_bits
        self.leaves = len(leaf_bits)
        self.star = StarTopology(self.leaves + 1)
        self.network = QuantumRoutingNetwork(self.star, alphabet_size=1)
        self.network.allocate_local(0, "query", max(self.leaves, 2))
        self.network.build()
        self._prepare_uniform_query()

    # -- circuit pieces --------------------------------------------------------

    def _prepare_uniform_query(self) -> None:
        amplitude = 1.0 / math.sqrt(self.leaves)
        vector = np.zeros(self.network.state.dims[self.network.local(0, "query")])
        vector = vector.astype(complex)
        vector[: self.leaves] = amplitude
        self.network.state.apply(
            state_preparation(vector), [self.network.local(0, "query")]
        )

    def _controlled_probe(self) -> None:
        """Write (or uncompute) the probe into the query-selected port."""
        self.network.write_message_controlled(0, "query", PROBE)

    def _leaf_phase_flips(self) -> None:
        for leaf in range(1, self.leaves + 1):
            if self.leaf_bits[leaf - 1] == 1:
                register = self.network.reception(leaf, 0)
                self.network.state.apply(
                    phase_flip_on(self.network.register_dim, {PROBE}), [register]
                )

    def _send(self) -> None:
        self.network.send_all()  # Send is an involution on the swapped pairs

    def apply_oracle(self, metrics: MetricsRecorder) -> None:
        """One S_f: probe out, phase kick at the leaves, probe back."""
        self._controlled_probe()
        self._send()
        self._leaf_phase_flips()
        self._send()  # return trip: Send swaps the registers back
        self._controlled_probe()  # uncompute the probe
        metrics.charge("exact-grover.checking", messages=2, rounds=2)

    def apply_diffusion(self) -> None:
        """Reflection about the uniform query state (local to the centre)."""
        dim = self.network.state.dims[self.network.local(0, "query")]
        uniform = np.zeros(dim, dtype=complex)
        uniform[: self.leaves] = 1.0 / math.sqrt(self.leaves)
        reflection = 2.0 * np.outer(uniform, uniform.conj()) - np.eye(dim)
        self.network.state.apply(reflection, [self.network.local(0, "query")])

    def measure_query(self, rng: RandomSource) -> int:
        return self.network.state.measure(self.network.local(0, "query"), rng)

    def ports_all_vacuum(self) -> bool:
        """True when every port register is back in |⊥⟩ (catalyst property)."""
        for u, v in self.star.edges():
            for a, b in ((u, v), (v, u)):
                emission = self.network.state.marginal([self.network.emission(a, b)])
                reception = self.network.state.marginal([self.network.reception(b, a)])
                if not (
                    math.isclose(float(emission[VACUUM]), 1.0, abs_tol=1e-9)
                    and math.isclose(float(reception[VACUUM]), 1.0, abs_tol=1e-9)
                ):
                    return False
        return True


def exact_star_grover(
    leaf_bits: list[int],
    iterations: int,
    rng: RandomSource,
    metrics: MetricsRecorder | None = None,
) -> ExactGroverRun:
    """Run j Grover iterations exactly on the routed star and measure.

    Returns the measured leaf (1-based), whether it is marked, and the
    closed-form success probability the measurement statistics must follow.
    """
    if iterations < 0:
        raise ValueError(f"iterations must be non-negative, got {iterations}")
    if metrics is None:
        metrics = MetricsRecorder()

    machine = _RoutedGrover(leaf_bits)
    for _ in range(iterations):
        machine.apply_oracle(metrics)
        machine.apply_diffusion()
        if not machine.ports_all_vacuum():
            raise RuntimeError(
                "port registers did not return to vacuum: the network state "
                "failed to act as a catalyst (proof of Theorem 4.1)"
            )

    port = machine.measure_query(rng)
    leaf = port + 1  # centre's port p connects to leaf p+1
    marked = machine.leaf_bits[port] == 1

    marked_fraction = sum(leaf_bits) / len(leaf_bits)
    theta = math.asin(math.sqrt(marked_fraction))
    theory = math.sin((2 * iterations + 1) * theta) ** 2

    return ExactGroverRun(
        measured_leaf=leaf,
        measured_marked=marked,
        iterations=iterations,
        theory_probability=theory,
        messages=metrics.messages,
        rounds=metrics.rounds,
    )
