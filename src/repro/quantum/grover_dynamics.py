"""Exact sampling of Grover measurement outcomes.

The distributed Grover search of Theorem 4.1 is, from the measurement's point
of view, a sequence of *attempts*: pick an iteration count j, rotate, measure.
The measurement statistics live in the two-dimensional invariant subspace, so
they can be sampled exactly without a state vector:

* with probability sin²((2j+1)θ) the outcome is a uniformly random *marked*
  element,
* otherwise a uniformly random *unmarked* element.

This module samples those outcomes; the message/round accounting lives with
the distributed procedure in :mod:`repro.core.grover`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.quantum.amplitude import grover_success_probability
from repro.util.fault import FaultInjector
from repro.util.rng import RandomSource

__all__ = ["AttemptOutcome", "sample_attempt"]


@dataclass(frozen=True)
class AttemptOutcome:
    """Result of one Grover attempt: measured element class + success flag."""

    measured_marked: bool
    iterations: int


def sample_attempt(
    marked_fraction: float,
    iterations: int,
    rng: RandomSource,
    faults: FaultInjector | None = None,
    fault_site: str = "grover.false_negative",
) -> AttemptOutcome:
    """Sample the measurement outcome of one Grover attempt.

    ``faults`` may force a false negative (measurement lands on an unmarked
    element regardless of the true amplitude) so tests can exercise the
    surrounding protocol's failure branches deterministically.
    """
    if faults is not None and faults.should_fail(fault_site):
        return AttemptOutcome(measured_marked=False, iterations=iterations)
    probability = grover_success_probability(iterations, marked_fraction)
    return AttemptOutcome(
        measured_marked=rng.bernoulli(probability),
        iterations=iterations,
    )
