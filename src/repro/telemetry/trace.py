"""Structured JSONL tracing: versioned span/event records.

A tracer turns a run into an append-only timeline — one JSON object per
line — at run → trial → round granularity, plus adversary fault events
and fabric lease lifecycle events.  The design constraints, in order:

1. **Determinism is untouched.**  A tracer never draws from a run RNG
   stream and never feeds anything back into the protocol; a traced run
   is bit-identical to an untraced one (property-tested in
   ``tests/properties/test_trace_invariance_props.py``).
2. **Disabled overhead is ≈0.**  The :data:`NULL_TRACER` exposes
   ``enabled = False``; hot loops hoist that bool once and pay a single
   predicate per round.
3. **Multi-process safe.**  Records are written with one ``os.write``
   to an ``O_APPEND`` descriptor, so pool workers and fabric workers
   can interleave whole lines into a single file without locks (the
   same POSIX guarantee the fabric leans on for lease files).  The
   descriptor is reopened after ``fork`` via a pid check.

Every record carries ``v`` (schema version), ``event``, and ``ts``
(wall-clock epoch seconds — explicitly *not* a protocol input).  The
per-event required fields live in :data:`TRACE_EVENTS` and are enforced
by :func:`validate_record` / :func:`validate_file`, which CI runs over
every record emitted by the telemetry smoke leg.
"""

from __future__ import annotations

import json
import os
import time

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "TRACE_EVENTS",
    "TraceSchemaError",
    "NullTracer",
    "NULL_TRACER",
    "JsonlTracer",
    "validate_record",
    "validate_file",
]

#: Bump when a record shape changes incompatibly; validators reject
#: records from other versions so downstream consumers fail loudly.
TRACE_SCHEMA_VERSION = 1

#: Event name → fields required beyond the envelope (v / event / ts).
#: Extra fields are allowed — the schema is a floor, not a ceiling.
TRACE_EVENTS: dict[str, tuple[str, ...]] = {
    # Scenario span (emitted by run_scenario, both pool and fabric).
    "run_start": ("scenario", "protocol", "sizes", "trials", "executor"),
    "run_end": ("scenario", "protocol", "positions", "from_cache"),
    # Trial span (pool workers and fabric shard execution).
    "trial_start": ("scenario", "protocol", "n", "position", "trial"),
    "trial_end": ("scenario", "protocol", "n", "position", "trial", "rounds", "messages"),
    # Engine span with per-round events (all three dispatch paths).
    "engine_start": ("label", "n", "path", "max_rounds"),
    "round": ("label", "round", "sent", "units", "dropped", "delayed", "duplicated"),
    "crash": ("label", "round", "node"),
    "engine_end": ("label", "rounds", "in_flight", "dropped_protocol", "dropped_adversary"),
    # Fabric worker lifecycle and lease events.
    "worker_start": ("worker", "fabric"),
    "shard_claim": ("worker", "shard", "mode"),
    "shard_done": ("worker", "shard", "trials"),
    "worker_exit": ("worker", "shards", "trials"),
    # Serve lifecycle and per-request events (repro serve).  Additive in
    # schema v1: validators from before these events would reject them,
    # but no existing record shape changed.
    "serve_start": ("host", "port"),
    "serve_request": ("method", "path", "status"),
    "serve_exit": ("requests",),
}

_INT_FIELDS = frozenset(
    {
        "n",
        "position",
        "trial",
        "trials",
        "round",
        "rounds",
        "max_rounds",
        "sent",
        "units",
        "dropped",
        "delayed",
        "duplicated",
        "node",
        "in_flight",
        "dropped_protocol",
        "dropped_adversary",
        "positions",
        "shards",
        "port",
        "status",
        "requests",
    }
)


class TraceSchemaError(ValueError):
    """A trace record does not conform to the published schema."""


class NullTracer:
    """The disabled tracer: a falsy ``enabled`` flag and no-op emits.

    Call sites hoist ``tracer.enabled`` before hot loops, so the null
    tracer's per-round cost is one branch on a local bool.
    """

    enabled = False
    path = None

    def emit(self, event: str, **fields) -> None:  # pragma: no cover - no-op
        pass

    def close(self) -> None:  # pragma: no cover - no-op
        pass


#: Shared singleton — tracers carry no per-run state when disabled.
NULL_TRACER = NullTracer()


def _json_default(value):
    # numpy scalars and Paths reach emit() from engine/fabric call sites.
    if hasattr(value, "item"):
        return value.item()
    return str(value)


class JsonlTracer:
    """Appends one JSON record per line to ``path``.

    The file is opened lazily with ``O_APPEND`` and each record is a
    single ``os.write``, so concurrent writers (forked pool workers,
    fabric workers) interleave whole lines.  After a ``fork`` the child
    re-opens its own descriptor on first emit (pid check) rather than
    sharing the parent's file offset lock-free.
    """

    enabled = True

    def __init__(self, path):
        self.path = str(path)
        self._fd: int | None = None
        self._pid: int | None = None

    def _descriptor(self) -> int:
        pid = os.getpid()
        if self._fd is None or self._pid != pid:
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            self._pid = pid
        return self._fd

    def emit(self, event: str, **fields) -> None:
        record = {"v": TRACE_SCHEMA_VERSION, "event": event, "ts": time.time()}
        record.update(fields)
        line = json.dumps(record, default=_json_default, separators=(",", ":"))
        os.write(self._descriptor(), (line + "\n").encode("utf-8"))

    def close(self) -> None:
        if self._fd is not None and self._pid == os.getpid():
            os.close(self._fd)
        self._fd = None
        self._pid = None


def validate_record(record: dict) -> None:
    """Raise :class:`TraceSchemaError` unless ``record`` conforms."""
    if not isinstance(record, dict):
        raise TraceSchemaError(f"record is not an object: {record!r}")
    version = record.get("v")
    if version != TRACE_SCHEMA_VERSION:
        raise TraceSchemaError(
            f"schema version {version!r} != {TRACE_SCHEMA_VERSION}"
        )
    event = record.get("event")
    if event not in TRACE_EVENTS:
        raise TraceSchemaError(f"unknown event {event!r}")
    ts = record.get("ts")
    if not isinstance(ts, (int, float)):
        raise TraceSchemaError(f"{event}: ts must be numeric, got {ts!r}")
    for field in TRACE_EVENTS[event]:
        if field not in record:
            raise TraceSchemaError(f"{event}: missing required field {field!r}")
        value = record[field]
        if field in _INT_FIELDS and not isinstance(value, int):
            raise TraceSchemaError(
                f"{event}: field {field!r} must be an int, got {value!r}"
            )


def validate_file(path) -> dict[str, int]:
    """Validate every line of a JSONL trace; return per-event counts.

    Raises :class:`TraceSchemaError` naming the first offending line.
    """
    counts: dict[str, int] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceSchemaError(f"{path}:{lineno}: not JSON: {exc}") from exc
            try:
                validate_record(record)
            except TraceSchemaError as exc:
                raise TraceSchemaError(f"{path}:{lineno}: {exc}") from exc
            counts[record["event"]] = counts.get(record["event"], 0) + 1
    return counts
