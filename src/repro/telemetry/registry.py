"""Process-local metrics registry: counters, gauges, histograms.

A :class:`MetricsRegistry` is the always-on accounting layer of the
telemetry spine: cheap enough to leave enabled (every update is a dict
lookup plus an add at run/shard/cache-op granularity — never per
message), exportable as Prometheus text or JSON for the future ``repro
serve`` endpoint, and mergeable so per-worker registries fold into the
parent at aggregate time (the same pattern the trial runner uses for
its per-worker topology memo).

Metrics never feed back into results: nothing here touches a run RNG
stream, and no aggregate or store key depends on a metric value — the
registry observes, it does not participate.

The conventional instruments (all under the ``repro_`` prefix):

* engine — ``repro_engine_runs_total``, ``repro_engine_rounds_total``,
  ``repro_engine_message_units_total``, the adversary loss classes
  ``repro_engine_messages_{dropped,delayed,duplicated}_total``, and
  ``repro_engine_nodes_crashed_total``;
* result store — ``repro_store_{hits,misses,saves,evictions}_total``
  for the disk tier and ``repro_store_memory_{hits,misses}_total`` for
  the optional in-process tier;
* runner — the ``repro_trial_seconds`` histogram;
* fabric — ``repro_fabric_{claims,lease_breaks,shards_done}_total`` and
  the ``repro_fabric_shard_seconds`` histogram;
* serve — ``repro_serve_requests_total`` / ``repro_serve_errors_total``,
  the ``repro_serve_request_seconds`` latency histogram, the answer
  tiers ``repro_serve_hits_{memory,store}_total`` /
  ``repro_serve_cold_total``, and the dedup pair
  ``repro_serve_jobs_total`` /
  ``repro_serve_singleflight_attached_total`` (requests that attached
  to an already-in-flight identical job instead of spawning one).
"""

from __future__ import annotations

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics_registry",
    "reset_metrics",
]

#: Default histogram bucket upper bounds (seconds-flavoured: trials and
#: shards span microseconds to minutes).
DEFAULT_BUCKETS = (0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0, 60.0)


class Counter:
    """A monotonically increasing value."""

    kind = "counter"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        self.value += amount

    def state(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A value that can go up and down (last write wins on merge)."""

    kind = "gauge"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def dec(self, amount: int | float = 1) -> None:
        self.value -= amount

    def state(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Cumulative-bucket histogram (Prometheus convention: ``le`` bounds)."""

    kind = "histogram"
    __slots__ = ("name", "help", "buckets", "counts", "sum", "count")

    def __init__(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS):
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)  # last slot is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        slot = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                slot = i
                break
        self.counts[slot] += 1
        self.sum += value
        self.count += 1

    def state(self) -> dict:
        return {
            "kind": self.kind,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """A named collection of metrics with snapshot/delta/merge plumbing.

    ``snapshot``/``delta``/``merge`` speak plain JSON-ready dicts, so a
    worker process can ship its registry state across a pickle boundary
    (pool trials) or a heartbeat file (fabric workers) and the parent
    folds it in without sharing any objects.
    """

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    # -- instrument access -----------------------------------------------------

    def _instrument(self, cls, name: str, help: str, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._instrument(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._instrument(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets=DEFAULT_BUCKETS
    ) -> Histogram:
        return self._instrument(Histogram, name, help, buckets=buckets)

    def get(self, name: str):
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def reset(self) -> None:
        self._metrics.clear()

    # -- snapshot / delta / merge ----------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready state of every metric (the merge/delta currency)."""
        return {name: m.state() for name, m in sorted(self._metrics.items())}

    def delta(self, before: dict) -> dict:
        """What changed since ``before`` (a prior :meth:`snapshot`).

        Counters and histograms subtract; gauges report their current
        value.  Metrics that did not move are omitted, so per-trial
        deltas stay small on the pickle path.
        """
        out: dict = {}
        for name, state in self.snapshot().items():
            prior = before.get(name)
            if state["kind"] == "counter":
                base = prior["value"] if prior else 0
                moved = state["value"] - base
                if moved:
                    out[name] = {"kind": "counter", "value": moved}
            elif state["kind"] == "gauge":
                if prior is None or prior["value"] != state["value"]:
                    out[name] = dict(state)
            else:  # histogram
                base_counts = prior["counts"] if prior else [0] * len(state["counts"])
                base_sum = prior["sum"] if prior else 0.0
                base_count = prior["count"] if prior else 0
                if state["count"] != base_count:
                    out[name] = {
                        "kind": "histogram",
                        "buckets": state["buckets"],
                        "counts": [
                            a - b for a, b in zip(state["counts"], base_counts)
                        ],
                        "sum": state["sum"] - base_sum,
                        "count": state["count"] - base_count,
                    }
        return out

    def merge(self, snapshot: dict) -> None:
        """Fold a snapshot/delta from another registry into this one."""
        for name, state in sorted(snapshot.items()):
            kind = state.get("kind")
            if kind == "counter":
                self.counter(name).inc(state["value"])
            elif kind == "gauge":
                self.gauge(name).set(state["value"])
            elif kind == "histogram":
                metric = self.histogram(name, buckets=state["buckets"])
                if list(metric.buckets) != list(state["buckets"]):
                    raise ValueError(
                        f"histogram {name!r} bucket mismatch: "
                        f"{list(metric.buckets)} vs {state['buckets']}"
                    )
                for i, count in enumerate(state["counts"]):
                    metric.counts[i] += count
                metric.sum += state["sum"]
                metric.count += state["count"]
            else:
                raise ValueError(f"metric {name!r} has unknown kind {kind!r}")

    # -- exporters -------------------------------------------------------------

    def to_json(self) -> dict:
        """The ``repro serve`` JSON shape: one object per metric."""
        return {"metrics": self.snapshot()}

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (one block per metric)."""
        lines: list[str] = []
        for name, metric in sorted(self._metrics.items()):
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                cumulative = 0
                for bound, count in zip(metric.buckets, metric.counts):
                    cumulative += count
                    lines.append(f'{name}_bucket{{le="{bound}"}} {cumulative}')
                lines.append(f'{name}_bucket{{le="+Inf"}} {metric.count}')
                lines.append(f"{name}_sum {metric.sum}")
                lines.append(f"{name}_count {metric.count}")
            else:
                lines.append(f"{name} {metric.value}")
        return "\n".join(lines) + ("\n" if lines else "")


#: The process-local registry every instrumented layer charges into.
_REGISTRY = MetricsRegistry()


def metrics_registry() -> MetricsRegistry:
    """This process's registry (workers each have their own; see merge)."""
    return _REGISTRY


def reset_metrics() -> None:
    """Clear the process registry (tests and long-lived services)."""
    _REGISTRY.reset()
