"""The telemetry spine: tracing, metrics, and profiling.

Three independent, individually-toggleable layers share one contract —
they observe runs without participating in them.  None of them draws
from a run RNG stream, and traced/profiled runs are bit-identical to
bare ones (aggregates, store bytes, and store keys alike):

* :mod:`repro.telemetry.trace` — versioned JSONL span/event records
  (``REPRO_TRACE`` / ``--trace FILE``), off by default via a null
  tracer whose per-round cost is one branch.
* :mod:`repro.telemetry.registry` — an always-on process-local metrics
  registry with Prometheus-text and JSON exporters.
* :mod:`repro.telemetry.profiler` — phase wall-time breakdowns
  (``REPRO_PROFILE`` / ``--profile`` / ``repro profile``), off by
  default (``current_profiler()`` is ``None``).
"""

from .context import (
    ENV_PROFILE,
    ENV_TRACE,
    configure_logging,
    current_profiler,
    current_tracer,
    reset_telemetry,
    set_profiling,
    set_trace_path,
)
from .profiler import PhaseProfiler, format_profile
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics_registry,
    reset_metrics,
)
from .trace import (
    NULL_TRACER,
    TRACE_EVENTS,
    TRACE_SCHEMA_VERSION,
    JsonlTracer,
    NullTracer,
    TraceSchemaError,
    validate_file,
    validate_record,
)

__all__ = [
    "ENV_PROFILE",
    "ENV_TRACE",
    "configure_logging",
    "current_profiler",
    "current_tracer",
    "reset_telemetry",
    "set_profiling",
    "set_trace_path",
    "PhaseProfiler",
    "format_profile",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics_registry",
    "reset_metrics",
    "NULL_TRACER",
    "TRACE_EVENTS",
    "TRACE_SCHEMA_VERSION",
    "JsonlTracer",
    "NullTracer",
    "TraceSchemaError",
    "validate_file",
    "validate_record",
]
