"""Process-wide telemetry context: env-driven tracer/profiler resolution.

The runtime's existing configuration currency for fork/spawn workers is
environment variables (``REPRO_ENGINE``, ``REPRO_KERNEL``,
``REPRO_NO_TOPOLOGY_CACHE``, ...); telemetry follows the same pattern so
pool workers and fabric workers inherit the parent's choices without
any new plumbing through pickled task tuples:

* ``REPRO_TRACE=/path/to/file.jsonl`` — enable JSONL tracing.  All
  processes append to the same file (O_APPEND whole-line writes).
* ``REPRO_PROFILE=1`` — enable phase profiling.

``current_tracer()`` returns the shared :class:`~.trace.JsonlTracer`
(or the :data:`~.trace.NULL_TRACER`); ``current_profiler()`` returns
the shared :class:`~.profiler.PhaseProfiler` or ``None`` when off —
hot paths test ``is not None`` once per run.
"""

from __future__ import annotations

import logging
import os

from .profiler import PhaseProfiler
from .trace import NULL_TRACER, JsonlTracer

__all__ = [
    "ENV_TRACE",
    "ENV_PROFILE",
    "current_tracer",
    "current_profiler",
    "set_trace_path",
    "set_profiling",
    "reset_telemetry",
    "configure_logging",
]

ENV_TRACE = "REPRO_TRACE"
ENV_PROFILE = "REPRO_PROFILE"

_tracer = None  # resolved lazily; None means "look at the env again"
_tracer_path: str | None = None
_profiler: PhaseProfiler | None = None
_profiler_resolved = False


def current_tracer():
    """The process tracer: JSONL when ``REPRO_TRACE`` is set, else null."""
    global _tracer, _tracer_path
    path = os.environ.get(ENV_TRACE) or None
    if _tracer is None or path != _tracer_path:
        if _tracer is not None:
            _tracer.close()
        _tracer = JsonlTracer(path) if path else NULL_TRACER
        _tracer_path = path
    return _tracer


def current_profiler() -> PhaseProfiler | None:
    """The process profiler, or ``None`` when profiling is off."""
    global _profiler, _profiler_resolved
    enabled = os.environ.get(ENV_PROFILE, "") not in ("", "0")
    if not _profiler_resolved or enabled != (_profiler is not None):
        _profiler = PhaseProfiler() if enabled else None
        _profiler_resolved = True
    return _profiler


def set_trace_path(path) -> None:
    """Enable (or, with ``None``, disable) tracing for this process tree."""
    if path is None:
        os.environ.pop(ENV_TRACE, None)
    else:
        os.environ[ENV_TRACE] = str(path)
    current_tracer()


def set_profiling(enabled: bool) -> None:
    """Enable/disable phase profiling for this process tree."""
    if enabled:
        os.environ[ENV_PROFILE] = "1"
    else:
        os.environ.pop(ENV_PROFILE, None)
    current_profiler()


def reset_telemetry() -> None:
    """Drop cached tracer/profiler state (tests; after env manipulation)."""
    global _tracer, _tracer_path, _profiler, _profiler_resolved
    if _tracer is not None:
        _tracer.close()
    _tracer = None
    _tracer_path = None
    _profiler = None
    _profiler_resolved = False


#: logfmt-style layout so service log pipelines can parse without regex.
_LOG_FORMAT = 'ts=%(asctime)s level=%(levelname)s logger=%(name)s msg="%(message)s"'


def configure_logging(level: str | int = "WARNING") -> None:
    """Configure root logging with the repo's structured key=value format.

    Idempotent enough for CLI re-entry: an existing root handler is
    re-levelled rather than duplicated.
    """
    if isinstance(level, str):
        level = getattr(logging, level.upper(), logging.WARNING)
    root = logging.getLogger()
    if root.handlers:
        root.setLevel(level)
        for handler in root.handlers:
            handler.setLevel(level)
            handler.setFormatter(logging.Formatter(_LOG_FORMAT))
    else:
        logging.basicConfig(level=level, format=_LOG_FORMAT)
