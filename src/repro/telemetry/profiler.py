"""Phase-level wall-time profiling for engine and fabric hot paths.

A :class:`PhaseProfiler` accumulates ``perf_counter`` seconds per named
phase.  Engine paths charge ``engine.step`` / ``engine.gather`` /
``engine.deliver`` per round; fabric workers charge ``fabric.claim`` /
``fabric.serialize`` / ``fabric.execute`` / ``fabric.save`` per shard.
Like the tracer, the profiler never touches a run RNG stream and its
output never feeds a store key — ``ScenarioRun.meta["profile"]`` is
attached only when profiling is on, after results are aggregated and
saved.

Hot loops guard with ``if prof is not None`` so the disabled cost is a
single predicate per phase boundary.
"""

from __future__ import annotations

from time import perf_counter

__all__ = ["PhaseProfiler", "format_profile"]


class PhaseProfiler:
    """Accumulates wall-clock seconds and hit counts per phase name."""

    __slots__ = ("totals", "counts")

    def __init__(self):
        self.totals: dict[str, float] = {}
        self.counts: dict[str, int] = {}

    def add(self, phase: str, seconds: float, hits: int = 1) -> None:
        self.totals[phase] = self.totals.get(phase, 0.0) + seconds
        self.counts[phase] = self.counts.get(phase, 0) + hits

    def timer(self, phase: str):
        """Context manager charging its body's wall time to ``phase``."""
        return _PhaseTimer(self, phase)

    def snapshot(self) -> dict:
        """JSON-ready per-phase state (the merge/delta currency)."""
        return {
            phase: {"seconds": self.totals[phase], "hits": self.counts[phase]}
            for phase in sorted(self.totals)
        }

    def delta(self, before: dict) -> dict:
        out: dict = {}
        for phase, state in self.snapshot().items():
            prior = before.get(phase, {"seconds": 0.0, "hits": 0})
            hits = state["hits"] - prior["hits"]
            if hits:
                out[phase] = {
                    "seconds": state["seconds"] - prior["seconds"],
                    "hits": hits,
                }
        return out

    def merge(self, snapshot: dict) -> None:
        for phase, state in snapshot.items():
            self.add(phase, state["seconds"], state["hits"])

    def reset(self) -> None:
        self.totals.clear()
        self.counts.clear()


class _PhaseTimer:
    __slots__ = ("_profiler", "_phase", "_start")

    def __init__(self, profiler: PhaseProfiler, phase: str):
        self._profiler = profiler
        self._phase = phase

    def __enter__(self):
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._profiler.add(self._phase, perf_counter() - self._start)
        return False


def format_profile(profile: dict) -> str:
    """Render a profile snapshot as an aligned wall-time breakdown."""
    if not profile:
        return "(no phases recorded)"
    total = sum(state["seconds"] for state in profile.values()) or 1.0
    width = max(len(phase) for phase in profile)
    lines = [f"{'phase':<{width}}  {'seconds':>10}  {'share':>6}  {'hits':>8}"]
    for phase, state in sorted(
        profile.items(), key=lambda item: -item[1]["seconds"]
    ):
        lines.append(
            f"{phase:<{width}}  {state['seconds']:>10.4f}  "
            f"{100.0 * state['seconds'] / total:>5.1f}%  {state['hits']:>8}"
        )
    return "\n".join(lines)
