"""JSON round-tripping for :class:`~repro.runtime.scenario.Scenario`.

The fabric's queue directory must describe a sweep to workers that share
nothing but a filesystem, so the manifest carries the scenario as plain
JSON.  The round trip is exact: ``scenario_from_dict(scenario_to_dict(s))
== s`` for every catalogue scenario, including adversary specs — the
deserialized scenario derives the same per-trial RNG streams and the same
:class:`~repro.runtime.store.ResultStore` keys bit for bit.

Only JSON-scalar parameter values survive the trip (int/float/str/bool/
None).  Every catalogue scenario satisfies this; a scenario carrying an
exotic param value fails loudly at job-creation time rather than silently
on a worker.
"""

from __future__ import annotations

import json

from repro.adversary import AdversarySpec
from repro.runtime.scenario import Scenario, TopologySpec

__all__ = [
    "SERIAL_VERSION",
    "adversary_from_dict",
    "scenario_from_dict",
    "scenario_to_dict",
]

#: Bump when the wire layout changes; workers refuse unknown versions
#: instead of guessing (a fleet must never run a sweep it misparsed).
SERIAL_VERSION = 1

_SCALAR = (int, float, str, bool, type(None))


def _check_scalar_params(pairs, where: str) -> None:
    for key, value in pairs:
        if not isinstance(value, _SCALAR):
            raise ValueError(
                f"{where} parameter {key!r} has non-JSON-scalar value "
                f"{value!r} ({type(value).__name__}); fabric manifests only "
                f"carry int/float/str/bool/None parameter values"
            )


def scenario_to_dict(scenario: Scenario) -> dict:
    """A JSON-ready description that :func:`scenario_from_dict` inverts."""
    _check_scalar_params(scenario.params, f"scenario {scenario.name!r}")
    _check_scalar_params(
        scenario.topology.params, f"scenario {scenario.name!r} topology"
    )
    return {
        "version": SERIAL_VERSION,
        "name": scenario.name,
        "protocol": scenario.protocol,
        "topology": {
            "family": scenario.topology.family,
            "params": [list(item) for item in scenario.topology.params],
            "fixed_seed": scenario.topology.fixed_seed,
        },
        "sizes": list(scenario.sizes),
        "params": [list(item) for item in scenario.params],
        "trials": scenario.trials,
        "seed": scenario.seed,
        "normalize_by": scenario.normalize_by,
        "adversary": (
            scenario.adversary.key_dict()
            if scenario.adversary is not None
            else None
        ),
        "node_api": scenario.node_api,
        "description": scenario.description,
    }


def adversary_from_dict(payload: dict | None) -> AdversarySpec | None:
    """Invert :meth:`AdversarySpec.key_dict` (lists back into tuples)."""
    if payload is None:
        return None
    return AdversarySpec(
        drop_rate=payload["drop_rate"],
        delay_rate=payload["delay_rate"],
        delay_rounds=payload["delay_rounds"],
        duplicate_rate=payload["duplicate_rate"],
        drop_schedule=tuple(tuple(e) for e in payload["drop_schedule"]),
        crashes=tuple(tuple(e) for e in payload["crashes"]),
        crash_count=payload["crash_count"],
        crash_by=payload["crash_by"],
        input_schedule=payload["input_schedule"],
        flip_fraction=payload["flip_fraction"],
        adaptive=payload["adaptive"],
        adaptive_rate=payload["adaptive_rate"],
        adaptive_after=payload["adaptive_after"],
        eavesdrop_rate=payload["eavesdrop_rate"],
        eavesdrop_edges=tuple(tuple(e) for e in payload["eavesdrop_edges"]),
        eavesdrop_drop_rate=payload["eavesdrop_drop_rate"],
        seed=payload["seed"],
    )


def scenario_from_dict(payload: dict) -> Scenario:
    """Rebuild the exact scenario a manifest describes."""
    version = payload.get("version")
    if version != SERIAL_VERSION:
        raise ValueError(
            f"fabric manifest version {version!r} is not the supported "
            f"version {SERIAL_VERSION}; refusing to guess at the layout"
        )
    topology = payload["topology"]
    return Scenario(
        name=payload["name"],
        protocol=payload["protocol"],
        topology=TopologySpec(
            family=topology["family"],
            params=tuple((k, v) for k, v in topology["params"]),
            fixed_seed=topology["fixed_seed"],
        ),
        sizes=tuple(payload["sizes"]),
        params=tuple((k, v) for k, v in payload["params"]),
        trials=payload["trials"],
        seed=payload["seed"],
        normalize_by=payload["normalize_by"],
        adversary=adversary_from_dict(payload["adversary"]),
        node_api=payload["node_api"],
        description=payload["description"],
    )


def scenario_json(scenario: Scenario) -> str:
    """Canonical JSON text (sorted keys) — manifest identity comparisons."""
    return json.dumps(scenario_to_dict(scenario), sort_keys=True)
