"""File-based work queue: shard files, lease claims, done markers.

One fabric directory holds one sweep job::

    <root>/
      manifest.json        the sweep: serialized scenario + lease policy
      shards/p0003.json    one file per grid position (scenario, n, position)
      leases/p0003.json    claim held by the worker executing the shard
      done/p0003.json      completion marker (idempotent; duplicates merge)
      workers/<id>.json    worker registrations (mtime doubles as heartbeat)
      results/             the job's ResultStore (unless the manifest pins
                           another root) — content-addressed, key format v4

Every mutation is either an atomic create (``O_CREAT | O_EXCL`` — the
claim primitive) or an atomic replace (tmp + ``os.replace``), so workers
on a shared filesystem never observe partial JSON.

**Leases are an efficiency mechanism, not a correctness mechanism.**  A
shard's result is content-addressed in the :class:`ResultStore` (the key
digests the scenario identity, size, and grid position), so two workers
that both execute the same shard — a stale-lease takeover racing a slow
but live owner, or a broken double claim — write byte-identical files to
the same key.  Correctness never depends on mutual exclusion; leases only
keep the fleet from burning work.

A lease is *live* while its heartbeat is younger than the TTL, *expired*
after that, and *corrupt* when unparseable (fault injection, torn
external writes).  Expired and corrupt leases are re-issued: the elected
reaper (see :mod:`repro.fabric.coordinator`) breaks them as soon as they
expire, any other worker after an extra grace of ``2 × ttl`` — liveness
survives the reaper itself dying.

All time-dependent predicates take an explicit ``now`` so tests drive a
synthetic clock instead of sleeping.
"""

from __future__ import annotations

import json
import os
import pathlib
import socket
import time

from repro.fabric.serialize import scenario_from_dict, scenario_to_dict
from repro.runtime.scenario import Scenario
from repro.runtime.store import ResultStore
from repro.telemetry import metrics_registry

__all__ = [
    "DEFAULT_LEASE_TTL",
    "FabricQueue",
    "IncompleteSweepError",
]

#: Default lease heartbeat TTL in seconds.  Workers heartbeat once per
#: trial, so the TTL only needs to cover the slowest single trial plus
#: filesystem latency; tests shrink it to fractions of a second.
DEFAULT_LEASE_TTL = 30.0

#: Grace multiplier for non-reaper takeovers: a worker that is not the
#: elected reaper waits this many extra TTLs before breaking an expired
#: lease, so the common case is one reaper and no takeover herd.
_REAP_GRACE_TTLS = 2.0


class IncompleteSweepError(RuntimeError):
    """Raised when collecting a sweep whose shards are not all done."""


def _atomic_write(path: pathlib.Path, payload: dict) -> None:
    """Write JSON so concurrent readers only ever see complete documents."""
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
    tmp.replace(path)


def _read_json(path: pathlib.Path) -> dict | None:
    """The parsed document, or None when missing/torn/corrupt."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


class FabricQueue:
    """One sweep job's shared queue directory (see module docstring)."""

    def __init__(self, root: str | os.PathLike):
        self.root = pathlib.Path(root)

    # -- layout ----------------------------------------------------------------

    @property
    def manifest_path(self) -> pathlib.Path:
        return self.root / "manifest.json"

    @property
    def shards_dir(self) -> pathlib.Path:
        return self.root / "shards"

    @property
    def leases_dir(self) -> pathlib.Path:
        return self.root / "leases"

    @property
    def done_dir(self) -> pathlib.Path:
        return self.root / "done"

    @property
    def workers_dir(self) -> pathlib.Path:
        return self.root / "workers"

    def _shard_name(self, position: int) -> str:
        return f"p{position:04d}"

    # -- job lifecycle ---------------------------------------------------------

    def create_job(
        self,
        scenario: Scenario,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        store_root: str | os.PathLike | None = None,
        store_max_entries: int | None = None,
    ) -> dict:
        """Lay the job out on disk; idempotent for an identical scenario.

        Re-creating over an existing manifest is the resume path: the
        shard files and any done markers are kept, so a fresh fleet picks
        up exactly where the crashed one stopped.  A *different* scenario
        in the same directory is refused — one directory, one job.
        """
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be > 0, got {lease_ttl}")
        existing = _read_json(self.manifest_path)
        description = scenario_to_dict(scenario)
        if existing is not None:
            if existing.get("scenario") != description:
                raise ValueError(
                    f"fabric dir {self.root} already holds a different "
                    f"sweep ({existing.get('scenario', {}).get('name')!r}); "
                    f"one directory carries one job"
                )
            return existing
        for directory in (
            self.root, self.shards_dir, self.leases_dir,
            self.done_dir, self.workers_dir,
        ):
            directory.mkdir(parents=True, exist_ok=True)
        manifest = {
            "scenario": description,
            "lease_ttl": lease_ttl,
            "store_root": (None if store_root is None else str(store_root)),
            "store_max_entries": store_max_entries,
            "created_at": time.time(),
        }
        for position, n in enumerate(scenario.sizes):
            _atomic_write(
                self.shards_dir / f"{self._shard_name(position)}.json",
                {"shard": self._shard_name(position), "position": position, "n": n},
            )
        _atomic_write(self.manifest_path, manifest)
        return manifest

    def manifest(self) -> dict:
        payload = _read_json(self.manifest_path)
        if payload is None:
            raise FileNotFoundError(
                f"no fabric job at {self.root} (missing or unreadable "
                f"manifest.json); create one with `repro sweep --fabric` "
                f"or FabricQueue.create_job"
            )
        return payload

    def scenario(self) -> Scenario:
        return scenario_from_dict(self.manifest()["scenario"])

    def lease_ttl(self) -> float:
        return float(self.manifest()["lease_ttl"])

    def store(self) -> ResultStore:
        """The job's result store (shared by every worker)."""
        manifest = self.manifest()
        root = manifest.get("store_root") or self.root / "results"
        return ResultStore(root, max_entries=manifest.get("store_max_entries"))

    # -- shards ----------------------------------------------------------------

    def shard_ids(self) -> list[str]:
        return sorted(p.stem for p in self.shards_dir.glob("p*.json"))

    def shard(self, shard_id: str) -> dict:
        payload = _read_json(self.shards_dir / f"{shard_id}.json")
        if payload is None:
            raise KeyError(f"unknown shard {shard_id!r} in {self.root}")
        return payload

    def pending_shards(self) -> list[str]:
        """Shards without a completion marker, in position order."""
        done = {p.stem for p in self.done_dir.glob("p*.json")}
        return [s for s in self.shard_ids() if s not in done]

    def all_done(self) -> bool:
        return not self.pending_shards()

    # -- workers ---------------------------------------------------------------

    def register_worker(self, worker_id: str) -> None:
        _atomic_write(
            self.workers_dir / f"{worker_id}.json",
            {
                "worker": worker_id,
                "pid": os.getpid(),
                "host": socket.gethostname(),
                "joined_at": time.time(),
            },
        )

    def touch_worker(self, worker_id: str, counters: dict | None = None) -> None:
        """Refresh the registration heartbeat (file mtime is the signal).

        With ``counters`` the registration document is rewritten to carry
        the worker's live counters and an explicit ``heartbeat_at`` — the
        enriched heartbeat ``repro fabric status`` derives per-worker
        throughput from.  Without counters it stays the cheap ``utime``.
        """
        path = self.workers_dir / f"{worker_id}.json"
        if counters is None:
            try:
                os.utime(path)
            except OSError:
                self.register_worker(worker_id)
            return
        record = _read_json(path)
        if record is None:
            self.register_worker(worker_id)
            record = _read_json(path) or {"worker": worker_id}
        record["heartbeat_at"] = time.time()
        record["counters"] = dict(counters)
        _atomic_write(path, record)

    def registered_workers(self) -> list[str]:
        return sorted(p.stem for p in self.workers_dir.glob("*.json"))

    def worker_record(self, worker_id: str) -> dict | None:
        """The worker's registration document (None when missing/torn)."""
        return _read_json(self.workers_dir / f"{worker_id}.json")

    def live_workers(self, now: float | None = None) -> list[str]:
        """Workers whose registration heartbeat is fresh (within 3 TTLs).

        Different workers may momentarily see different live sets while a
        death propagates; that only risks a duplicated shard execution,
        which the content-addressed store dedupes.
        """
        now = time.time() if now is None else now
        horizon = 3.0 * self.lease_ttl()
        alive = []
        for path in self.workers_dir.glob("*.json"):
            try:
                if now - path.stat().st_mtime <= horizon:
                    alive.append(path.stem)
            except OSError:
                continue
        return sorted(alive)

    # -- leases ----------------------------------------------------------------

    def _lease_path(self, shard_id: str) -> pathlib.Path:
        return self.leases_dir / f"{shard_id}.json"

    def claim(
        self, shard_id: str, worker_id: str, now: float | None = None
    ) -> bool:
        """Atomically claim a free shard (``O_CREAT | O_EXCL``)."""
        now = time.time() if now is None else now
        path = self._lease_path(shard_id)
        payload = {
            "shard": shard_id,
            "worker": worker_id,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "claimed_at": now,
            "heartbeat": now,
        }
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, sort_keys=True)
        metrics_registry().counter("repro_fabric_claims_total").inc()
        return True

    def heartbeat(
        self, shard_id: str, worker_id: str, now: float | None = None
    ) -> None:
        """Refresh our lease (atomic replace; no-op if we lost it)."""
        now = time.time() if now is None else now
        lease = _read_json(self._lease_path(shard_id))
        if lease is None or lease.get("worker") != worker_id:
            return  # taken over (or corrupted) — the store dedupes the rest
        lease["heartbeat"] = now
        _atomic_write(self._lease_path(shard_id), lease)

    def release(self, shard_id: str, worker_id: str) -> None:
        """Drop our lease; leaves a takeover's lease untouched."""
        path = self._lease_path(shard_id)
        lease = _read_json(path)
        if lease is not None and lease.get("worker") != worker_id:
            return
        path.unlink(missing_ok=True)

    def lease_state(
        self, shard_id: str, now: float | None = None
    ) -> tuple[str, dict | None]:
        """``("free"|"live"|"expired"|"corrupt", lease_or_None)``.

        A corrupt lease carries no provable heartbeat; its file mtime
        stands in so a takeover still waits out the TTL (a torn write by
        a live owner heals on its next heartbeat).
        """
        now = time.time() if now is None else now
        path = self._lease_path(shard_id)
        if not path.exists():
            return "free", None
        lease = _read_json(path)
        if lease is None or "heartbeat" not in lease or "worker" not in lease:
            try:
                age = now - path.stat().st_mtime
            except OSError:
                return "free", None
            return ("expired" if age > self.lease_ttl() else "corrupt"), None
        age = now - float(lease["heartbeat"])
        return ("expired" if age > self.lease_ttl() else "live"), lease

    def break_lease(
        self, shard_id: str, worker_id: str, now: float | None = None
    ) -> bool:
        """Take over an expired/corrupt lease: unlink, then claim.

        Two breakers can race; at worst both run the shard and the store
        dedupes.  Returns True when our claim landed.
        """
        state, _ = self.lease_state(shard_id, now)
        if state not in ("expired", "corrupt"):
            return False
        self._lease_path(shard_id).unlink(missing_ok=True)
        if self.claim(shard_id, worker_id, now):
            metrics_registry().counter("repro_fabric_lease_breaks_total").inc()
            return True
        return False

    def may_reap(
        self,
        shard_id: str,
        worker_id: str,
        reaper: str | None,
        now: float | None = None,
    ) -> bool:
        """Is this worker allowed to break the shard's lease *now*?

        The elected reaper moves at expiry; everyone else waits an extra
        ``2 × ttl`` grace so the fleet does not stampede — but still
        converges if the reaper itself is the corpse.
        """
        now = time.time() if now is None else now
        state, lease = self.lease_state(shard_id, now)
        if state not in ("expired", "corrupt"):
            return False
        if worker_id == reaper or reaper is None:
            return True
        ttl = self.lease_ttl()
        if lease is None:
            try:
                age = now - self._lease_path(shard_id).stat().st_mtime
            except OSError:
                return True  # vanished: free to claim through claim()
        else:
            age = now - float(lease["heartbeat"])
        return age > ttl * (1.0 + _REAP_GRACE_TTLS)

    def reap_done_leases(self) -> int:
        """Unlink leases left behind on completed shards (crash between
        the done marker landing and the release)."""
        removed = 0
        done = {p.stem for p in self.done_dir.glob("p*.json")}
        for path in self.leases_dir.glob("p*.json"):
            if path.stem in done:
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    # -- completion ------------------------------------------------------------

    def mark_done(self, shard_id: str, worker_id: str, payload: dict) -> None:
        """Write the completion marker; duplicate completions are merged
        (first marker wins — both describe byte-identical results)."""
        path = self.done_dir / f"{shard_id}.json"
        if path.exists():
            return
        record = {
            "shard": shard_id,
            "worker": worker_id,
            "completed_at": time.time(),
        }
        record.update(payload)
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return
        with os.fdopen(fd, "w") as handle:
            json.dump(record, handle, sort_keys=True)
        metrics_registry().counter("repro_fabric_shards_done_total").inc()

    def done_record(self, shard_id: str) -> dict | None:
        return _read_json(self.done_dir / f"{shard_id}.json")

    # -- status ----------------------------------------------------------------

    def worker_detail(self, now: float | None = None) -> list[dict]:
        """Per-worker status rows with counter-derived throughput.

        Workers publishing enriched heartbeats (``touch_worker`` with
        counters) get ``trials_per_min``/``shards_per_min`` computed over
        their registered lifetime; legacy mtime-only heartbeats report
        ``counters: None`` and no rates.
        """
        now = time.time() if now is None else now
        live = set(self.live_workers(now))
        detail = []
        for worker_id in self.registered_workers():
            record = self.worker_record(worker_id) or {}
            counters = record.get("counters")
            joined_at = record.get("joined_at")
            heartbeat_at = record.get("heartbeat_at")
            row = {
                "worker": worker_id,
                "live": worker_id in live,
                "host": record.get("host"),
                "pid": record.get("pid"),
                "counters": counters,
                "trials_per_min": None,
                "shards_per_min": None,
                "age": (
                    None
                    if heartbeat_at is None
                    else round(now - float(heartbeat_at), 3)
                ),
            }
            if counters and joined_at is not None and heartbeat_at is not None:
                minutes = max(float(heartbeat_at) - float(joined_at), 1e-9) / 60.0
                row["trials_per_min"] = round(
                    counters.get("trials_executed", 0) / minutes, 3
                )
                row["shards_per_min"] = round(
                    counters.get("shards_completed", 0) / minutes, 3
                )
            detail.append(row)
        return detail

    def status(self, now: float | None = None) -> dict:
        """A JSON-ready snapshot for ``repro fabric status``."""
        now = time.time() if now is None else now
        manifest = self.manifest()
        shard_ids = self.shard_ids()
        done = {p.stem for p in self.done_dir.glob("p*.json")}
        leases = []
        for shard_id in shard_ids:
            state, lease = self.lease_state(shard_id, now)
            if state == "free":
                continue
            leases.append(
                {
                    "shard": shard_id,
                    "state": state,
                    "worker": None if lease is None else lease.get("worker"),
                    "age": (
                        None
                        if lease is None
                        else round(now - float(lease["heartbeat"]), 3)
                    ),
                }
            )
        return {
            "root": str(self.root),
            "scenario": manifest["scenario"]["name"],
            "protocol": manifest["scenario"]["protocol"],
            "sizes": manifest["scenario"]["sizes"],
            "trials": manifest["scenario"]["trials"],
            "lease_ttl": manifest["lease_ttl"],
            "shards": {
                "total": len(shard_ids),
                "done": len(done),
                "leased": len(leases),
                "pending": len(shard_ids) - len(done),
            },
            "workers": {
                "registered": self.registered_workers(),
                "live": self.live_workers(now),
                "detail": self.worker_detail(now),
            },
            "leases": leases,
        }

    def progress(self, now: float | None = None) -> dict:
        """A compact polling snapshot for ``repro serve`` job status.

        Cheaper than :meth:`status`: counts marker files instead of
        parsing every lease, and folds the workers' enriched heartbeat
        counters into a live trial total — the number a progress bar or
        SSE stream actually wants.
        """
        now = time.time() if now is None else now
        if _read_json(self.manifest_path) is None:
            return {
                "created": False,
                "shards": {"total": 0, "done": 0, "leased": 0, "pending": 0},
                "workers_live": 0,
                "trials_executed": 0,
            }
        shard_ids = self.shard_ids()
        done = {p.stem for p in self.done_dir.glob("p*.json")}
        leased = {p.stem for p in self.leases_dir.glob("p*.json")}
        trials = 0
        for worker_id in self.registered_workers():
            record = self.worker_record(worker_id) or {}
            counters = record.get("counters") or {}
            value = counters.get("trials_executed", 0)
            if isinstance(value, (int, float)):
                trials += int(value)
        return {
            "created": True,
            "shards": {
                "total": len(shard_ids),
                "done": len(done),
                "leased": len(leased - done),
                "pending": len(shard_ids) - len(done),
            },
            "workers_live": len(self.live_workers(now)),
            "trials_executed": trials,
        }

    def revalidate_done(self) -> int:
        """Drop done markers whose store entry has vanished; returns count.

        A done marker promises "the result is in the store", but the
        store is LRW-capped and shared — an eviction between runs can
        orphan the marker, and a resumed fleet would then collect a hole.
        Re-checking before spawning keeps :meth:`all_done` honest; the
        affected shards simply become pending again (recompute is always
        safe, the store is content-addressed).
        """
        scenario = self.scenario()
        store = self.store()
        removed = 0
        for marker in sorted(self.done_dir.glob("p*.json")):
            try:
                shard = self.shard(marker.stem)
            except KeyError:
                marker.unlink(missing_ok=True)
                removed += 1
                continue
            if store.load(scenario, int(shard["n"]), int(shard["position"])) is None:
                marker.unlink(missing_ok=True)
                removed += 1
        return removed


def list_jobs(root: str | os.PathLike) -> list[dict]:
    """One row per fabric job directory under ``root``, name-sorted.

    The ``repro serve`` job listing: each immediate subdirectory holding
    a readable manifest contributes its scenario identity plus a
    :meth:`FabricQueue.progress` snapshot.  Torn or foreign directories
    are skipped, not raised — the serve fabric root is long-lived.
    """
    root = pathlib.Path(root)
    rows: list[dict] = []
    if not root.is_dir():
        return rows
    for manifest_path in sorted(root.glob("*/manifest.json")):
        manifest = _read_json(manifest_path)
        if manifest is None:
            continue
        queue = FabricQueue(manifest_path.parent)
        scenario = manifest.get("scenario") or {}
        rows.append(
            {
                "job": manifest_path.parent.name,
                "dir": str(manifest_path.parent),
                "scenario": scenario.get("name"),
                "protocol": scenario.get("protocol"),
                "sizes": scenario.get("sizes"),
                "trials": scenario.get("trials"),
                "created_at": manifest.get("created_at"),
                "progress": queue.progress(),
            }
        )
    return rows
