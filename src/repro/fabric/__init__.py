"""Distributed sweep fabric: a multi-host work-queue executor.

``fan_out`` saturates one box; the fabric saturates a fleet.  A sweep is
decomposed into shards — one per grid position ``(scenario, n,
seed-position)`` — published as files in a shared queue directory.
Workers (``repro worker DIR``) pull shards under heartbeat leases,
execute them through the existing ``run_scenario`` trial path with
bit-identical per-trial RNG derivation, and push results into the
content-addressed :class:`~repro.runtime.store.ResultStore` (key format
v4).  Idempotent shards + atomic lease files make any sweep resumable
after worker crashes: a dead worker's lease expires and the shard is
re-issued; duplicate completions write byte-identical files.

The fleet dogfoods the repo's own protocols: the lease reaper is elected
by simulating the registry's ring LCR over the live workers (see
:mod:`repro.fabric.coordinator`).

Serial, process-pool, and fabric execution of the same grid produce
identical :class:`~repro.runtime.runner.TrialSet` aggregates and
identical store contents — property-tested, and exercised under fault
injection (mid-shard SIGKILL, corrupted leases, double claims) in
``tests/fabric/``.
"""

from repro.fabric.coordinator import (
    collect,
    elect_reaper,
    fabric_status,
    run_fabric_sweep,
    shard_preference,
)
from repro.fabric.queue import (
    DEFAULT_LEASE_TTL,
    FabricQueue,
    IncompleteSweepError,
    list_jobs,
)
from repro.fabric.serialize import (
    adversary_from_dict,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.fabric.worker import (
    FaultPlan,
    execute_shard,
    run_worker,
    shard_trial_rngs,
    worker_entry,
)

__all__ = [
    "DEFAULT_LEASE_TTL",
    "FabricQueue",
    "FaultPlan",
    "IncompleteSweepError",
    "adversary_from_dict",
    "collect",
    "elect_reaper",
    "execute_shard",
    "fabric_status",
    "list_jobs",
    "run_fabric_sweep",
    "run_worker",
    "scenario_from_dict",
    "scenario_to_dict",
    "shard_preference",
    "shard_trial_rngs",
    "worker_entry",
]
