"""Fleet coordination: leader election, shard assignment, supervised sweeps.

The fabric dogfoods the repo: the reaper (the worker allowed to break an
expired lease the moment it expires) is chosen by running the registry's
own ring LCR protocol (``le-ring/lcr``) on a cycle of the live workers.
Because the election is a *deterministic simulation* — seeded from the
job identity and the sorted live-worker set — every worker runs it
locally and arrives at the same leader with zero extra communication,
which is exactly the shared-randomness trick the scenario runtime is
built on.  The same elected view drives shard assignment: each worker
prefers the shard positions strided to its rank and steals the rest only
when its own range is exhausted.

Coordination is advisory everywhere: two workers with momentarily
different views of the fleet at worst both execute a shard, and the
content-addressed :class:`~repro.runtime.store.ResultStore` dedupes the
results.  See :mod:`repro.fabric.queue` for the underlying guarantees.
"""

from __future__ import annotations

import hashlib
import json
import logging
import multiprocessing
import sys
import time

from repro.fabric.queue import (
    DEFAULT_LEASE_TTL,
    FabricQueue,
    IncompleteSweepError,
)
from repro.runtime.runner import ScenarioRun
from repro.runtime.scenario import Scenario

logger = logging.getLogger(__name__)

__all__ = [
    "collect",
    "elect_reaper",
    "fabric_status",
    "run_fabric_sweep",
    "shard_preference",
]

#: Election memo: (job identity, worker tuple) → elected worker.  The
#: election is a pure function of its inputs, so caching cannot change
#: the result — it only skips re-simulating LCR once per claim attempt.
_ELECTION_MEMO: dict[tuple, str] = {}


def _election_seed(scenario: Scenario, workers: tuple[str, ...]) -> int:
    digest = hashlib.sha256(
        json.dumps(
            [scenario.name, scenario.seed, list(workers)], sort_keys=True
        ).encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")


def elect_reaper(
    queue: FabricQueue, workers: list[str] | None = None
) -> str | None:
    """The worker entitled to reap expired leases immediately.

    With three or more live workers this runs the registry's ring LCR on
    ``C_len(workers)`` — real CONGEST messages through the engine, the
    protocol this repo reproduces — and maps the elected node index onto
    the sorted worker list.  Fewer than three workers (LCR needs a cycle,
    and a cycle needs n ≥ 3) degenerate to "highest id wins", which is
    the LCR winner condition anyway.
    """
    workers = (
        queue.live_workers() if workers is None else sorted(workers)
    )
    if not workers:
        return None
    if len(workers) < 3:
        return workers[-1]
    scenario = queue.scenario()
    key = (scenario.name, scenario.seed, tuple(workers))
    cached = _ELECTION_MEMO.get(key)
    if cached is not None:
        return cached
    from repro.network import graphs
    from repro.runtime.registry import default_registry
    from repro.util.rng import RandomSource

    outcome = default_registry().get("le-ring/lcr").run(
        graphs.cycle(len(workers)),
        RandomSource(_election_seed(scenario, tuple(workers))),
    )
    leader = outcome.detail.get("leader")
    if not outcome.success or leader is None:
        elected = workers[-1]  # fault-free LCR always elects; belt and braces
    else:
        elected = workers[int(leader) % len(workers)]
    if len(_ELECTION_MEMO) > 128:
        _ELECTION_MEMO.clear()
    _ELECTION_MEMO[key] = elected
    logger.debug("elected reaper %s over %d live workers", elected, len(workers))
    return elected


def shard_preference(
    shard_ids: list[str], worker_id: str, workers: list[str]
) -> list[str]:
    """This worker's claim order: its strided range first, stealing after.

    The assignment derives from the same deterministic elected view on
    every worker, so ranges are disjoint while every worker still covers
    every shard eventually (work stealing keeps a dead worker's range
    from stalling the sweep).
    """
    if worker_id not in workers or len(workers) <= 1:
        return list(shard_ids)
    rank = workers.index(worker_id)
    width = len(workers)
    mine = [s for i, s in enumerate(shard_ids) if i % width == rank]
    rest = [s for i, s in enumerate(shard_ids) if i % width != rank]
    return mine + rest


def fabric_status(fabric_dir) -> dict:
    """Queue status plus the current election outcome."""
    queue = FabricQueue(fabric_dir)
    status = queue.status()
    status["reaper"] = elect_reaper(queue, status["workers"]["live"])
    return status


def collect(fabric_dir, meta: dict | None = None) -> ScenarioRun:
    """Assemble the finished sweep's :class:`ScenarioRun` from the store.

    Every shard's trial set was produced by the same per-trial RNG
    derivation and the same :func:`aggregate_trials` fold the in-process
    runner uses, so the assembled run is bit-identical to ``jobs=1``.
    """
    queue = FabricQueue(fabric_dir)
    scenario = queue.scenario()
    store = queue.store()
    trial_sets = []
    missing = []
    for position, n in enumerate(scenario.sizes):
        trial_set = store.load(scenario, n, position)
        if trial_set is None:
            missing.append(f"p{position:04d} (n={n})")
        else:
            trial_sets.append(trial_set)
    if missing:
        raise IncompleteSweepError(
            f"sweep at {queue.root} is incomplete: missing shards "
            f"{', '.join(missing)} — run more workers (repro worker "
            f"{queue.root}) and collect again"
        )
    queue.reap_done_leases()
    return ScenarioRun(
        scenario=scenario,
        trial_sets=tuple(trial_sets),
        meta=dict(meta or {"executor": "fabric"}),
    )


def run_fabric_sweep(
    scenario: Scenario,
    fabric_dir,
    workers: int = 1,
    store=None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    fault_plans: dict | None = None,
    poll: float = 0.05,
    timeout: float | None = None,
    meta: dict | None = None,
) -> ScenarioRun:
    """Create (or resume) the job and drive it with local worker processes.

    ``fault_plans`` maps a worker index to a
    :class:`~repro.fabric.worker.FaultPlan` — the fault-injection harness
    for the fabric itself.  The supervisor keeps the sweep live: when
    every worker has died (injected kills, real crashes) but shards
    remain, it spawns a replacement, so an injected mid-shard SIGKILL
    still resumes to completion.  Results are collected from the job's
    content-addressed store, bit-identical to ``jobs=1``.
    """
    if workers < 1:
        raise ValueError(f"fabric needs >= 1 worker, got {workers}")
    from repro.fabric.worker import worker_entry

    queue = FabricQueue(fabric_dir)
    queue.create_job(
        scenario,
        lease_ttl=lease_ttl,
        store_root=None if store is None else store.root,
        store_max_entries=None if store is None else store.max_entries,
    )
    context = (
        multiprocessing.get_context("fork")
        if sys.platform == "linux"
        else multiprocessing.get_context()
    )
    fault_plans = fault_plans or {}
    spawned = 0

    def spawn(index: int, tag: str = "local"):
        nonlocal spawned
        process = context.Process(
            target=worker_entry,
            args=(str(fabric_dir), f"{tag}-{index:02d}"),
            kwargs={"fault_plan": fault_plans.get(index), "poll": poll},
            daemon=True,
        )
        process.start()
        spawned += 1
        return process

    processes = [spawn(index) for index in range(workers)]
    deadline = None if timeout is None else time.time() + timeout
    respawns = 0
    try:
        while not queue.all_done():
            processes = [p for p in processes if p.is_alive()]
            if not processes:
                # The whole fleet died with shards pending: crash-safe
                # resume means the supervisor re-seeds it.  A bounded
                # budget turns a systematically-failing scenario into an
                # error instead of an infinite respawn loop.
                if respawns >= workers + 4:
                    raise RuntimeError(
                        f"fabric workers keep dying with shards pending at "
                        f"{queue.root} ({respawns} respawns); inspect "
                        f"`repro fabric status {queue.root}`"
                    )
                respawns += 1
                logger.warning(
                    "fabric fleet at %s died with %d shards pending; "
                    "respawning worker (%d/%d)",
                    queue.root,
                    len(queue.pending_shards()),
                    respawns,
                    workers + 4,
                )
                processes = [spawn(respawns, tag="respawn")]
            if deadline is not None and time.time() > deadline:
                raise IncompleteSweepError(
                    f"fabric sweep at {queue.root} did not finish within "
                    f"{timeout}s ({len(queue.pending_shards())} shards "
                    f"pending)"
                )
            time.sleep(min(poll, 0.1))
    finally:
        for process in processes:
            process.join(timeout=10.0)
        for process in processes:
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=5.0)
    run_meta = dict(meta or {})
    run_meta.setdefault("executor", "fabric")
    run_meta.update(
        fabric_dir=str(queue.root),
        workers_spawned=spawned,
        worker_respawns=respawns,
        shards=len(scenario.sizes),
    )
    return collect(fabric_dir, meta=run_meta)
