"""The fabric worker: pull shards, execute trials, push content-addressed
results.

A worker joins a fleet with nothing but the queue directory::

    repro worker /mnt/shared/sweep-42

Each shard is one grid position ``(scenario, n, seed-position)``.  The
worker re-derives the *exact* per-trial RNG streams the in-process runner
would use — the scenario root spawns one child per (size, trial) pair in
grid order, and the shard takes its contiguous slice — so a shard's
:class:`~repro.runtime.runner.TrialSet` is bit-identical no matter which
worker (or how many, or after how many crashes) executes it.  Results
land in the job's :class:`~repro.runtime.store.ResultStore` under the
same content-addressed keys (format v4) the cache layer uses, which makes
every shard idempotent: re-execution after a crash, a stale-lease
takeover, or a duplicated claim rewrites byte-identical files.

The worker heartbeats its lease once per trial.  A worker that dies
mid-shard simply stops heartbeating; the lease expires and the shard is
re-issued (see :mod:`repro.fabric.queue` for the reaping rules).

``SIGTERM`` is the *polite* stop: the worker finishes the trial it is
on, saves and marks the shard done if that trial was the last one,
releases its lease immediately (no TTL wait for the rest of the fleet),
and emits its ``worker_exit`` trace event with ``drained`` set.  Only
``SIGKILL`` still relies on lease expiry — that is the honest-crash
path :class:`FaultPlan` exercises.

:class:`FaultPlan` is the fault-injection harness for the fabric itself:
it lets tests and CI kill a worker mid-shard with a real ``SIGKILL`` (no
cleanup, no release — the honest crash) or scribble over its own lease
file, deterministically, after a fixed number of executed trials.
"""

from __future__ import annotations

import logging
import os
import signal
import socket
import threading
import time
from dataclasses import dataclass
from time import perf_counter

from repro.fabric.coordinator import elect_reaper, shard_preference
from repro.fabric.queue import FabricQueue
from repro.runtime.runner import TrialSet, aggregate_trials
from repro.runtime.scenario import Scenario
from repro.telemetry import current_profiler, current_tracer, metrics_registry
from repro.util.rng import RandomSource

logger = logging.getLogger(__name__)

__all__ = [
    "FaultPlan",
    "execute_shard",
    "run_worker",
    "shard_trial_rngs",
    "worker_entry",
]


class _DrainRequested(Exception):
    """Internal: SIGTERM asked us to stop after the trial that just ran."""


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault injection for fabric workers (tests, CI smoke).

    Counters are cumulative over every trial the worker executes, so a
    plan composes with any shard assignment.
    """

    #: After this many executed trials, SIGKILL ourselves mid-shard: the
    #: lease survives un-released with a fresh heartbeat — exactly the
    #: footprint of a worker whose host died.
    kill_after_trials: int | None = None
    #: After this many executed trials, overwrite our own lease file with
    #: garbage (a torn write / bad NFS client): the shard must still
    #: complete, through us or through a takeover.
    corrupt_lease_after_trials: int | None = None

    def fire(self, queue: FabricQueue, shard_id: str, trials_done: int) -> None:
        if (
            self.corrupt_lease_after_trials is not None
            and trials_done == self.corrupt_lease_after_trials
        ):
            (queue.leases_dir / f"{shard_id}.json").write_text("{torn lease")
        if (
            self.kill_after_trials is not None
            and trials_done >= self.kill_after_trials
        ):
            os.kill(os.getpid(), signal.SIGKILL)


def shard_trial_rngs(scenario: Scenario, position: int) -> list[RandomSource]:
    """The per-trial RNGs of one grid position, exactly as ``run_scenario``
    derives them.

    The runner spawns one child per (size, trial) pair in grid order;
    ``SeedSequence`` spawning is a pure function of (seed, child index),
    so slicing the same flat sequence reproduces the streams bit for bit.
    """
    root = RandomSource(scenario.seed)
    children = root.spawn_many(len(scenario.sizes) * scenario.trials)
    start = position * scenario.trials
    return children[start : start + scenario.trials]


def execute_shard(
    scenario: Scenario, position: int, on_trial=None
) -> TrialSet:
    """Run one shard's trials serially and fold them into a trial set.

    ``on_trial(index)`` fires after each completed trial (1-based) — the
    worker loop hangs its lease heartbeat and fault plan there.
    """
    n = scenario.sizes[position]
    outcomes = []
    for index, rng in enumerate(shard_trial_rngs(scenario, position)):
        outcomes.append(scenario.run_trial(n, rng))
        if on_trial is not None:
            on_trial(index + 1)
    return aggregate_trials(n, outcomes)


def _claim_next(queue: FabricQueue, worker_id: str) -> tuple[str, str] | None:
    """The next ``(shard_id, mode)`` this worker should run, or None to wait.

    Two passes over the deterministic preference order: free shards
    first (``mode="claim"``), then expired/corrupt leases this worker is
    entitled to reap (``mode="steal"`` — the elected reaper immediately,
    everyone else after the grace).
    """
    pending = queue.pending_shards()
    if not pending:
        return None
    workers = queue.live_workers()
    reaper = elect_reaper(queue, workers)
    order = shard_preference(pending, worker_id, workers)
    for shard_id in order:
        state, _ = queue.lease_state(shard_id)
        if state == "free" and queue.claim(shard_id, worker_id):
            return shard_id, "claim"
    for shard_id in order:
        if queue.may_reap(shard_id, worker_id, reaper) and queue.break_lease(
            shard_id, worker_id
        ):
            return shard_id, "steal"
    return None


def run_worker(
    fabric_dir,
    worker_id: str | None = None,
    poll: float = 0.2,
    max_shards: int | None = None,
    fault_plan: FaultPlan | None = None,
    drain: threading.Event | None = None,
) -> dict:
    """Join the fleet at ``fabric_dir`` and work until the sweep is done.

    Returns a summary dict (worker id, completed shard ids, trials run,
    whether the exit was a drain).  The loop is crash-oriented: every
    step either completes a shard idempotently or leaves a lease that
    expires on its own — there is no state a ``SIGKILL`` at any
    instruction can corrupt.

    ``drain`` is the graceful-stop signal: when set (by SIGTERM — wired
    up automatically when running on the main thread — or by a caller),
    the worker finishes the trial in flight, abandons the rest of the
    shard, releases its lease, and exits cleanly.  A drain that lands on
    a shard's *last* trial lets the normal save + mark-done path finish
    first, so the work is never thrown away needlessly.
    """
    drain = threading.Event() if drain is None else drain
    installed = False
    previous_sigterm = None
    if threading.current_thread() is threading.main_thread():
        previous_sigterm = signal.signal(
            signal.SIGTERM, lambda signum, frame: drain.set()
        )
        installed = True
    try:
        return _run_worker_loop(
            fabric_dir, worker_id, poll, max_shards, fault_plan, drain
        )
    finally:
        if installed:
            signal.signal(
                signal.SIGTERM,
                signal.SIG_DFL if previous_sigterm is None else previous_sigterm,
            )


def _run_worker_loop(
    fabric_dir,
    worker_id: str | None,
    poll: float,
    max_shards: int | None,
    fault_plan: FaultPlan | None,
    drain: threading.Event,
) -> dict:
    queue = FabricQueue(fabric_dir)
    # The manifest parse is the worker's serialize cost — charged to its
    # phase breakdown so `repro profile`/status can show where slow
    # shared-filesystem startups go.
    t_serialize = perf_counter()
    scenario = queue.scenario()
    store = queue.store()
    serialize_seconds = perf_counter() - t_serialize
    if worker_id is None:
        worker_id = f"{socket.gethostname()}-{os.getpid()}"
    queue.register_worker(worker_id)
    tracer = current_tracer()
    prof = current_profiler()
    if prof is not None:
        prof.add("fabric.serialize", serialize_seconds)
    if tracer.enabled:
        tracer.emit("worker_start", worker=worker_id, fabric=str(fabric_dir))
    logger.info("worker %s joined fabric %s", worker_id, fabric_dir)
    registry = metrics_registry()
    #: Live counters published through the enriched worker heartbeat —
    #: `repro fabric status` derives shards/min and trials/min from them.
    counters: dict = {
        "trials_executed": 0,
        "shards_claimed": 0,
        "shards_stolen": 0,
        "shards_completed": 0,
        "store_hits": 0,
        "claim_seconds": 0.0,
        "serialize_seconds": round(serialize_seconds, 6),
        "execute_seconds": 0.0,
        "save_seconds": 0.0,
    }
    completed: list[str] = []
    trials_done = 0
    while (
        not drain.is_set()
        and (max_shards is None or len(completed) < max_shards)
    ):
        queue.touch_worker(worker_id, counters=counters)
        t_claim = perf_counter()
        claimed = _claim_next(queue, worker_id)
        claim_seconds = perf_counter() - t_claim
        counters["claim_seconds"] = round(
            counters["claim_seconds"] + claim_seconds, 6
        )
        if prof is not None:
            prof.add("fabric.claim", claim_seconds)
        if claimed is None:
            if queue.all_done():
                break
            time.sleep(poll)
            continue
        shard_id, mode = claimed
        counters["shards_stolen" if mode == "steal" else "shards_claimed"] += 1
        if tracer.enabled:
            tracer.emit(
                "shard_claim", worker=worker_id, shard=shard_id, mode=mode
            )
        if mode == "steal":
            logger.warning("worker %s stole expired lease on %s", worker_id, shard_id)
        shard = queue.shard(shard_id)
        position, n = int(shard["position"]), int(shard["n"])
        shard_trials = 0
        abandoned = False
        try:
            trial_set = store.load(scenario, n, position)
            if trial_set is None:

                def on_trial(index: int) -> None:
                    nonlocal trials_done, shard_trials
                    trials_done += 1
                    shard_trials += 1
                    counters["trials_executed"] += 1
                    queue.heartbeat(shard_id, worker_id)
                    queue.touch_worker(worker_id, counters=counters)
                    if fault_plan is not None:
                        fault_plan.fire(queue, shard_id, trials_done)
                    # A drain landing on the shard's last trial changes
                    # nothing — let the normal save/mark-done finish.
                    if drain.is_set() and index < scenario.trials:
                        raise _DrainRequested

                t_execute = perf_counter()
                try:
                    trial_set = execute_shard(scenario, position, on_trial)
                except _DrainRequested:
                    abandoned = True
                execute_seconds = perf_counter() - t_execute
                counters["execute_seconds"] = round(
                    counters["execute_seconds"] + execute_seconds, 6
                )
                if prof is not None:
                    prof.add("fabric.execute", execute_seconds)
                if abandoned:
                    logger.info(
                        "worker %s draining: abandoning %s after trial %d/%d",
                        worker_id, shard_id, shard_trials, scenario.trials,
                    )
                else:
                    registry.histogram("repro_fabric_shard_seconds").observe(
                        execute_seconds
                    )
                    t_save = perf_counter()
                    path = store.save(scenario, n, position, trial_set)
                    save_seconds = perf_counter() - t_save
                    counters["save_seconds"] = round(
                        counters["save_seconds"] + save_seconds, 6
                    )
                    if prof is not None:
                        prof.add("fabric.save", save_seconds)
            else:
                # Resume/dedup: the result is already content-addressed
                # in the store — only the done marker is missing.
                counters["store_hits"] += 1
                path = store.path_for(scenario, n, position)
            if not abandoned:
                queue.mark_done(
                    shard_id,
                    worker_id,
                    {"position": position, "n": n, "store_file": path.name},
                )
                completed.append(shard_id)
                counters["shards_completed"] += 1
                if tracer.enabled:
                    tracer.emit(
                        "shard_done",
                        worker=worker_id,
                        shard=shard_id,
                        trials=shard_trials,
                        n=n,
                        position=position,
                    )
                logger.info(
                    "worker %s completed %s (n=%d)", worker_id, shard_id, n
                )
        finally:
            # Releasing here is what makes the drain *graceful*: the
            # abandoned shard is free for the rest of the fleet right
            # now, not after a lease-TTL expiry.
            queue.release(shard_id, worker_id)
    queue.touch_worker(worker_id, counters=counters)
    queue.reap_done_leases()
    drained = drain.is_set()
    if tracer.enabled:
        tracer.emit(
            "worker_exit",
            worker=worker_id,
            shards=len(completed),
            trials=trials_done,
            drained=drained,
        )
    logger.info(
        "worker %s exiting%s: %d shards, %d trials",
        worker_id, " (drained)" if drained else "", len(completed), trials_done,
    )
    return {
        "worker": worker_id,
        "completed": completed,
        "trials": trials_done,
        "all_done": queue.all_done(),
        "drained": drained,
        "counters": dict(counters),
    }


def worker_entry(
    fabric_dir: str,
    worker_id: str | None = None,
    fault_plan: FaultPlan | None = None,
    poll: float = 0.2,
) -> None:
    """Module-level process target (picklable under any start method)."""
    run_worker(fabric_dir, worker_id=worker_id, poll=poll, fault_plan=fault_plan)
