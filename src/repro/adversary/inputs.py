"""Input-schedule adversaries for agreement protocols.

The agreement protocols of Section 6 take an initial 0/1 assignment; their
interesting guarantees are against an adversary that picks the *worst*
assignment (the shared coin is oblivious to it).  This module materializes
that adversary: given the benign default (a prefix of ones sized by
``fraction``), a spec's ``input_schedule`` re-arranges the assignment and
``flip_fraction`` flips adversary-chosen bits afterwards.

Schedules:

* ``"blocks"`` — the benign default: ``int(fraction*n)`` leading ones;
* ``"spread"`` — the same number of ones spread evenly over the nodes
  (defeats position-based sampling heuristics);
* ``"tie"``    — the worst case: exactly ``ceil(n/2)`` ones regardless of
  ``fraction``, maximizing estimation variance near the decision threshold;
* ``"shuffle"`` — the benign counts at adversary-chosen positions.

Only ``"shuffle"`` and ``flip_fraction`` consume adversary randomness.
"""

from __future__ import annotations

from repro.adversary.spec import AdversarySpec
from repro.util.rng import RandomSource

__all__ = ["adversarial_inputs", "benign_inputs"]


def benign_inputs(n: int, fraction: float) -> list[int]:
    """The library-wide benign convention: int(fraction*n) leading ones."""
    ones = int(fraction * n)
    return [1] * ones + [0] * (n - ones)


def adversarial_inputs(
    n: int,
    fraction: float,
    spec: AdversarySpec | None,
    trial_rng: RandomSource,
    *,
    engine_capable: bool = False,
) -> list[int]:
    """The 0/1 input vector after the spec's input adversary acted.

    With no spec (or no input faults armed) this is exactly
    :func:`benign_inputs`.  Message/crash/adaptive faults in the spec are
    rejected here unless ``engine_capable`` is set: analytic agreement
    protocols do not run on the synchronous engine, so an engine-fault
    spec routed at them would be silently meaningless.  Engine-driven
    agreement builders (which arm the same spec on their engine) pass
    ``engine_capable=True`` so a combined input+fault spec flows through.
    """
    if spec is None or spec.is_null:
        return benign_inputs(n, fraction)
    unsupported = spec.required_capabilities() - {"inputs"}
    if engine_capable:
        unsupported -= {"faults", "adaptive"}
    if unsupported:
        raise ValueError(
            f"agreement protocols only support the input adversary; spec "
            f"{spec.describe()!r} also needs {sorted(unsupported)}"
        )
    if not spec.has_input_faults:
        return benign_inputs(n, fraction)
    schedule = spec.input_schedule or "blocks"
    ones = int(fraction * n)
    if schedule == "blocks":
        inputs = benign_inputs(n, fraction)
    elif schedule == "spread":
        inputs = [0] * n
        for j in range(ones):
            inputs[(j * n) // ones] = 1
    elif schedule == "tie":
        ones = (n + 1) // 2
        inputs = [1] * ones + [0] * (n - ones)
    elif schedule == "shuffle":
        inputs = benign_inputs(n, fraction)
    else:  # pragma: no cover - spec validation rejects unknown names
        raise ValueError(f"unknown input schedule {schedule!r}")
    needs_rng = schedule == "shuffle" or spec.flip_fraction > 0
    if needs_rng:
        rng = spec.derive_rng(trial_rng)
        if schedule == "shuffle":
            inputs = rng.shuffled(inputs)
        if spec.flip_fraction > 0:
            flips = min(n, round(spec.flip_fraction * n))
            if flips:
                for index in rng.sample_without_replacement(n, flips).tolist():
                    inputs[index] ^= 1
    return inputs
