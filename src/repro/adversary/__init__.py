"""Deterministic fault & schedule injection for the CONGEST runtime.

Four layers:

* :mod:`repro.adversary.spec` — :class:`AdversarySpec`, the frozen,
  hashable description of message faults (drop/delay/duplicate, rate-based
  or per-edge scheduled), node faults (crash-stop schedules), agreement
  input schedules, adaptive traffic-conditioned strategies, and
  per-edge eavesdropping;
* :mod:`repro.adversary.armed` — :class:`ArmedAdversary`, the per-run
  mutable state (crash plan, delay queue, fault accounting) every
  :class:`~repro.network.engine.SynchronousEngine` dispatch path consumes;
* :mod:`repro.adversary.adaptive` — :class:`AdaptiveAdversary`, the
  traffic-conditioned subclass fed by the engine's per-round observation
  callback (targeted-leader suppression/crash, reactive congestion drops,
  eavesdropping with a security-accounting ledger);
* :mod:`repro.adversary.inputs` — adversarial initial-value assignment for
  the agreement protocols.

Everything is seed-reproducible: the adversary draws from its own
:class:`~repro.util.rng.RandomSource` stream (derived per trial, or pinned
via ``AdversarySpec.seed``), consumed identically by every engine dispatch
path — property tests assert bit-identical trial results across the
``fast``/``reference``/batch paths under the same spec and seed, static
and adaptive alike.
"""

from repro.adversary.adaptive import AdaptiveAdversary
from repro.adversary.armed import ArmedAdversary
from repro.adversary.inputs import adversarial_inputs, benign_inputs
from repro.adversary.spec import (
    ADAPTIVE_STRATEGIES,
    INPUT_SCHEDULES,
    NULL_ADVERSARY,
    AdversarySpec,
)

__all__ = [
    "ADAPTIVE_STRATEGIES",
    "INPUT_SCHEDULES",
    "NULL_ADVERSARY",
    "AdaptiveAdversary",
    "AdversarySpec",
    "ArmedAdversary",
    "adversarial_inputs",
    "benign_inputs",
]
