"""Deterministic fault & schedule injection for the CONGEST runtime.

Three layers:

* :mod:`repro.adversary.spec` — :class:`AdversarySpec`, the frozen,
  hashable description of message faults (drop/delay/duplicate, rate-based
  or per-edge scheduled), node faults (crash-stop schedules), and
  agreement input schedules;
* :mod:`repro.adversary.armed` — :class:`ArmedAdversary`, the per-run
  mutable state (crash plan, delay queue, fault accounting) both
  :class:`~repro.network.engine.SynchronousEngine` backends consume;
* :mod:`repro.adversary.inputs` — adversarial initial-value assignment for
  the agreement protocols.

Everything is seed-reproducible: the adversary draws from its own
:class:`~repro.util.rng.RandomSource` stream (derived per trial, or pinned
via ``AdversarySpec.seed``), consumed identically by the ``fast`` and
``reference`` engine backends — a property test asserts bit-identical
trial results across backends under the same spec and seed.
"""

from repro.adversary.armed import ArmedAdversary
from repro.adversary.inputs import adversarial_inputs, benign_inputs
from repro.adversary.spec import INPUT_SCHEDULES, NULL_ADVERSARY, AdversarySpec

__all__ = [
    "INPUT_SCHEDULES",
    "NULL_ADVERSARY",
    "AdversarySpec",
    "ArmedAdversary",
    "adversarial_inputs",
    "benign_inputs",
]
