"""Declarative adversary specifications.

An :class:`AdversarySpec` is a frozen, hashable, picklable description of
everything an adversary may do to one protocol run:

* **message faults** — drop/delay/duplicate each sent message with a fixed
  rate, plus an explicit per-edge drop schedule ``(round, sender, port)``;
* **node faults** — crash-stop schedules: explicit ``(node, round)`` pairs
  ("fail before executing round r") and/or ``crash_count`` random victims
  crashing before a uniformly drawn round in ``[0, crash_by)``;
* **input faults** — adversarial initial-value assignments for agreement
  protocols (worst-case ties, evenly spread ones, shuffles, targeted bit
  flips);
* **adaptive faults** — traffic-conditioned strategies
  (:data:`ADAPTIVE_STRATEGIES`) whose fault decisions react to the
  per-round sends the engine feeds back through its observation callback:
  targeted-leader suppression/crash and reactive congestion drops;
* **eavesdropping** — per-directed-edge wiretaps (a Bernoulli tap rate
  and/or an explicit ``(sender, port)`` edge list) with a security
  ledger (edges tapped, messages read, first-compromise round) and
  optional in-transit interception (``eavesdrop_drop_rate``).

Being pure data, a spec can sit inside a frozen
:class:`~repro.runtime.scenario.Scenario`, travel to worker processes, and
participate in result-store cache keys.  All randomness is drawn from a
:class:`~repro.util.rng.RandomSource` derived per trial (or pinned with
``seed``), so the same spec + seed reproduces the same faults bit for bit on
either engine backend.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.rng import RandomSource

__all__ = [
    "ADAPTIVE_STRATEGIES",
    "AdversarySpec",
    "INPUT_SCHEDULES",
    "NULL_ADVERSARY",
]

#: Recognized agreement input-schedule names (None means the protocol's
#: default prefix-of-ones assignment).
INPUT_SCHEDULES = ("blocks", "spread", "tie", "shuffle")

#: Recognized adaptive (traffic-conditioned) strategy names.
#:
#: * ``"target-leader"`` — suppress the node whose cumulative outbound
#:   volume dominates: its sends are dropped at ``adaptive_rate``;
#: * ``"target-leader-crash"`` — one-shot variant: crash-stop the
#:   dominant sender before the next round instead of dropping;
#: * ``"congestion"`` — reactive loss: each message is dropped with
#:   probability ``adaptive_rate`` scaled by its directed edge's share of
#:   the heaviest observed edge load.
ADAPTIVE_STRATEGIES = ("target-leader", "target-leader-crash", "congestion")

#: Full ``parse`` grammar, echoed by every parse error so a mistyped
#: clause teaches the accepted language instead of a bare rejection.
_GRAMMAR = """\
accepted adversary grammar — comma-separated key=value clauses:
  drop=RATE             drop each sent message with probability RATE
  delay=RATE            delay each sent message with probability RATE
  delay-rounds=N        delayed messages arrive N rounds late (default 1)
  dup=RATE              duplicate each delivered message with probability RATE
  drop-edge=R:S:P       drop node S's port-P send in round R (repeatable)
  crash=N[@R]           crash N random nodes before rounds < R (default R=1)
  crash-node=V[@R]      crash node V before round R (default 0; repeatable)
  input=NAME            agreement inputs: blocks|spread|tie|shuffle
  flip=FRACTION         flip this fraction of assigned agreement inputs
  adaptive=STRATEGY     traffic-conditioned faults: target-leader|\
target-leader-crash|congestion
  adaptive-rate=RATE    intensity of the adaptive strategy (default 1.0)
  adaptive-after=N      observe N rounds before the strategy engages (default 1)
  eavesdrop=RATE|S:P[+S:P...]  tap each directed edge with probability RATE,
                        or tap exactly the listed sender:port edges
  eavesdrop-drop=RATE   intercept (drop) tapped messages with probability RATE
  seed=N                pin the adversary's random stream
example: drop=0.05,adaptive=target-leader,eavesdrop=0.2,eavesdrop-drop=0.5"""


@dataclass(frozen=True)
class AdversarySpec:
    """One adversary: message, node, and input fault policies.

    The null spec (all defaults) arms nothing and is treated everywhere as
    "no adversary", so passing ``AdversarySpec()`` is exactly equivalent to
    passing ``None``.
    """

    #: Probability that a sent message is silently discarded in transit.
    drop_rate: float = 0.0
    #: Probability that a sent message arrives ``delay_rounds`` rounds late.
    delay_rate: float = 0.0
    #: How late a delayed message arrives (>= 1 extra round).
    delay_rounds: int = 1
    #: Probability that a delivered message arrives twice.
    duplicate_rate: float = 0.0
    #: Explicit transit drops: ``(round, sender, port)`` triples.
    drop_schedule: tuple[tuple[int, int, int], ...] = ()
    #: Explicit crash-stop schedule: ``(node, round)`` — the node fails
    #: *before* executing the given round.
    crashes: tuple[tuple[int, int], ...] = ()
    #: Additionally crash this many uniformly random nodes ...
    crash_count: int = 0
    #: ... each before a round drawn uniformly from ``[0, crash_by)``.
    crash_by: int = 1
    #: Agreement input assignment: one of :data:`INPUT_SCHEDULES` or None.
    input_schedule: str | None = None
    #: Flip this fraction of the assigned inputs (adversary-chosen nodes).
    flip_fraction: float = 0.0
    #: Traffic-conditioned strategy: one of :data:`ADAPTIVE_STRATEGIES`
    #: or None.  Adaptive specs arm an
    #: :class:`~repro.adversary.adaptive.AdaptiveAdversary`, which the
    #: engine feeds each round's canonical sends before fault masks are
    #: drawn — decisions react to observed traffic, not a fixed seed plan.
    adaptive: str | None = None
    #: Intensity of the adaptive strategy: the drop probability applied to
    #: the targeted node's sends (``target-leader``) or the peak per-edge
    #: drop probability (``congestion``).
    adaptive_rate: float = 1.0
    #: Rounds of observation before the adaptive strategy engages (the
    #: default 1 makes the first faulted round genuinely *reactive*).
    adaptive_after: int = 1
    #: Tap each directed edge with this probability the first time it
    #: carries a message (Bernoulli per edge, not per message).
    eavesdrop_rate: float = 0.0
    #: Explicitly tapped directed edges as ``(sender, port)`` pairs.
    eavesdrop_edges: tuple[tuple[int, int], ...] = ()
    #: Interception: drop each message on a tapped edge with this
    #: probability (0 = passive wiretap that only reads).
    eavesdrop_drop_rate: float = 0.0
    #: Pin the adversary's random stream.  None (default) derives a fresh
    #: stream from the trial RNG, so trials see independent fault patterns
    #: while staying reproducible from the scenario seed.
    seed: int | None = None

    def __post_init__(self) -> None:
        for name in ("drop_rate", "delay_rate", "duplicate_rate", "flip_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.delay_rounds < 1:
            raise ValueError(f"delay_rounds must be >= 1, got {self.delay_rounds}")
        if self.crash_count < 0:
            raise ValueError(f"crash_count must be >= 0, got {self.crash_count}")
        if self.crash_by < 1:
            raise ValueError(f"crash_by must be >= 1, got {self.crash_by}")
        if self.input_schedule is not None and self.input_schedule not in INPUT_SCHEDULES:
            raise ValueError(
                f"input_schedule must be one of {INPUT_SCHEDULES}, "
                f"got {self.input_schedule!r}"
            )
        for entry in self.drop_schedule:
            if len(entry) != 3 or any(x < 0 for x in entry):
                raise ValueError(
                    f"drop_schedule entries are (round, sender, port) triples "
                    f"of non-negative ints, got {entry!r}"
                )
        for entry in self.crashes:
            if len(entry) != 2 or any(x < 0 for x in entry):
                raise ValueError(
                    f"crashes entries are (node, round) pairs of non-negative "
                    f"ints, got {entry!r}"
                )
        for name in ("adaptive_rate", "eavesdrop_rate", "eavesdrop_drop_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.adaptive is not None and self.adaptive not in ADAPTIVE_STRATEGIES:
            raise ValueError(
                f"adaptive must be one of {ADAPTIVE_STRATEGIES}, "
                f"got {self.adaptive!r}"
            )
        if self.adaptive_after < 0:
            raise ValueError(
                f"adaptive_after must be >= 0, got {self.adaptive_after}"
            )
        for entry in self.eavesdrop_edges:
            if len(entry) != 2 or any(x < 0 for x in entry):
                raise ValueError(
                    f"eavesdrop_edges entries are (sender, port) pairs of "
                    f"non-negative ints, got {entry!r}"
                )
        if self.eavesdrop_drop_rate > 0 and not self.has_eavesdrop:
            raise ValueError(
                "eavesdrop_drop_rate needs a tap to intercept through: set "
                "eavesdrop_rate > 0 or list eavesdrop_edges"
            )

    # -- classification --------------------------------------------------------

    @property
    def has_message_faults(self) -> bool:
        return (
            self.drop_rate > 0
            or self.delay_rate > 0
            or self.duplicate_rate > 0
            or bool(self.drop_schedule)
            or self.adaptive_may_drop
        )

    @property
    def has_crashes(self) -> bool:
        return (
            self.crash_count > 0
            or bool(self.crashes)
            or self.adaptive == "target-leader-crash"
        )

    @property
    def has_input_faults(self) -> bool:
        return self.input_schedule is not None or self.flip_fraction > 0

    @property
    def has_eavesdrop(self) -> bool:
        """True when any directed edge may be tapped."""
        return self.eavesdrop_rate > 0 or bool(self.eavesdrop_edges)

    @property
    def has_adaptive(self) -> bool:
        """True when the spec needs the engine's observation callback."""
        return self.adaptive is not None or self.has_eavesdrop

    @property
    def adaptive_may_drop(self) -> bool:
        """True when an adaptive/eavesdrop clause can discard messages."""
        return (
            self.adaptive in ("target-leader", "congestion")
            and self.adaptive_rate > 0
        ) or (self.has_eavesdrop and self.eavesdrop_drop_rate > 0)

    @property
    def is_null(self) -> bool:
        """True when the spec arms nothing at all.

        A passive wiretap (``eavesdrop`` with no interception) is *not*
        null: it never perturbs the run, but it observes traffic and
        fills the security ledger.
        """
        return not (
            self.has_message_faults
            or self.has_crashes
            or self.has_input_faults
            or self.has_adaptive
        )

    def required_capabilities(self) -> set[str]:
        """Capability tags a protocol must declare to honour this spec.

        ``"faults"`` — engine-level message/crash faults; ``"inputs"`` —
        adversarial initial-value assignment; ``"adaptive"`` — the
        protocol runs on an engine path that feeds the observation
        callback (adaptive specs also imply ``"faults"``: they need the
        same arming seam even when purely eavesdropping).  Matches
        :attr:`~repro.runtime.registry.ProtocolSpec.supports`.
        """
        needed: set[str] = set()
        if self.has_message_faults or self.has_crashes:
            needed.add("faults")
        if self.has_input_faults:
            needed.add("inputs")
        if self.has_adaptive:
            needed.update(("adaptive", "faults"))
        return needed

    # -- derivation ------------------------------------------------------------

    def derive_rng(self, trial_rng: RandomSource) -> RandomSource:
        """The adversary's private random stream for one trial.

        With ``seed`` unset, a child of the trial RNG: every trial draws an
        independent (but seed-reproducible) fault pattern.  With ``seed``
        set, a fixed stream: every trial suffers the *same* fault pattern.
        """
        if self.seed is not None:
            return RandomSource(self.seed)
        return trial_rng.spawn()

    def arm(self, rng: RandomSource, n: int, max_rounds: int | None = None):
        """Instantiate runtime state for one run on an n-node network.

        Adaptive specs arm an
        :class:`~repro.adversary.adaptive.AdaptiveAdversary`; everything
        else arms the static :class:`~repro.adversary.armed.ArmedAdversary`.
        Passing the run's ``max_rounds`` validates the crash schedule
        immediately (a crash round at or past the budget warns that it can
        never fire); the engine repeats the check at ``run()`` either way.
        """
        if self.has_adaptive:
            from repro.adversary.adaptive import AdaptiveAdversary

            armed = AdaptiveAdversary(self, rng, n)
        else:
            from repro.adversary.armed import ArmedAdversary

            armed = ArmedAdversary(self, rng, n)
        if max_rounds is not None:
            armed.check_crash_horizon(max_rounds)
        return armed

    # -- identity / serialization ---------------------------------------------

    def key_dict(self) -> dict:
        """JSON-ready identity for result-store cache keys."""
        return {
            "drop_rate": self.drop_rate,
            "delay_rate": self.delay_rate,
            "delay_rounds": self.delay_rounds,
            "duplicate_rate": self.duplicate_rate,
            "drop_schedule": [list(e) for e in self.drop_schedule],
            "crashes": [list(e) for e in self.crashes],
            "crash_count": self.crash_count,
            "crash_by": self.crash_by,
            "input_schedule": self.input_schedule,
            "flip_fraction": self.flip_fraction,
            "adaptive": self.adaptive,
            "adaptive_rate": self.adaptive_rate,
            "adaptive_after": self.adaptive_after,
            "eavesdrop_rate": self.eavesdrop_rate,
            "eavesdrop_edges": [list(e) for e in self.eavesdrop_edges],
            "eavesdrop_drop_rate": self.eavesdrop_drop_rate,
            "seed": self.seed,
        }

    def describe(self) -> str:
        """Compact human-readable summary (CLI/table output)."""
        parts: list[str] = []
        if self.drop_rate:
            parts.append(f"drop={self.drop_rate:g}")
        if self.drop_schedule:
            parts.append(f"drop-edges={len(self.drop_schedule)}")
        if self.delay_rate:
            parts.append(f"delay={self.delay_rate:g}x{self.delay_rounds}")
        if self.duplicate_rate:
            parts.append(f"dup={self.duplicate_rate:g}")
        if self.crash_count:
            parts.append(f"crash={self.crash_count}@<{self.crash_by}")
        if self.crashes:
            parts.append(f"crash-nodes={len(self.crashes)}")
        if self.input_schedule is not None:
            parts.append(f"input={self.input_schedule}")
        if self.flip_fraction:
            parts.append(f"flip={self.flip_fraction:g}")
        if self.adaptive is not None:
            parts.append(f"adaptive={self.adaptive}")
            if self.adaptive_rate != 1.0:
                parts.append(f"adaptive-rate={self.adaptive_rate:g}")
            if self.adaptive_after != 1:
                parts.append(f"adaptive-after={self.adaptive_after}")
        if self.eavesdrop_rate:
            parts.append(f"eavesdrop={self.eavesdrop_rate:g}")
        if self.eavesdrop_edges:
            parts.append(f"eavesdrop-edges={len(self.eavesdrop_edges)}")
        if self.eavesdrop_drop_rate:
            parts.append(f"eavesdrop-drop={self.eavesdrop_drop_rate:g}")
        if self.seed is not None:
            parts.append(f"seed={self.seed}")
        return ",".join(parts) if parts else "none"

    @staticmethod
    def parse_eavesdrop(value: str) -> dict:
        """Parse one ``eavesdrop=`` clause value into spec field updates.

        ``RATE`` (a float) taps each directed edge with that probability;
        ``S:P[+S:P...]`` taps exactly the listed ``sender:port`` edges.
        Shared by :meth:`parse` and the CLI's ``--eavesdrop`` shorthand.
        """
        if ":" in value:
            edges = []
            for pair in value.split("+"):
                sender, _, port = pair.partition(":")
                edges.append((int(sender), int(port)))
            return {"eavesdrop_edges": tuple(edges)}
        return {"eavesdrop_rate": float(value)}

    @classmethod
    def parse(cls, text: str | None) -> "AdversarySpec":
        """Parse the CLI's compact spec grammar into a spec.

        Comma-separated ``key=value`` clauses::

            drop=0.1,delay=0.05,delay-rounds=2,dup=0.01,
            crash=3@5,crash-node=7@2,drop-edge=1:0:3,
            input=tie,flip=0.1,adaptive=target-leader,adaptive-rate=0.5,
            eavesdrop=0.2,eavesdrop-drop=0.5,seed=42

        ``crash=N@R`` crashes N random nodes before rounds < R (``@R``
        optional, default 1); ``crash-node`` and ``drop-edge`` may repeat;
        ``eavesdrop`` takes either a per-edge tap rate or a ``+``-joined
        ``sender:port`` edge list.  Empty text or ``"none"`` parses to the
        null spec.  Every rejection echoes the full grammar.
        """
        if text is None or not text.strip() or text.strip() == "none":
            return cls()
        kwargs: dict = {}
        crashes: list[tuple[int, int]] = []
        drop_schedule: list[tuple[int, int, int]] = []
        for clause in text.split(","):
            clause = clause.strip()
            if not clause:
                continue
            if "=" not in clause:
                raise ValueError(
                    f"adversary clause {clause!r} is not key=value\n{_GRAMMAR}"
                )
            key, _, value = clause.partition("=")
            key = key.strip()
            value = value.strip()
            if key not in (
                "drop", "delay", "delay-rounds", "dup", "crash",
                "crash-node", "drop-edge", "input", "flip", "adaptive",
                "adaptive-rate", "adaptive-after", "eavesdrop",
                "eavesdrop-drop", "seed",
            ):
                raise ValueError(f"unknown adversary key {key!r}\n{_GRAMMAR}")
            try:
                if key == "drop":
                    kwargs["drop_rate"] = float(value)
                elif key == "delay":
                    kwargs["delay_rate"] = float(value)
                elif key == "delay-rounds":
                    kwargs["delay_rounds"] = int(value)
                elif key == "dup":
                    kwargs["duplicate_rate"] = float(value)
                elif key == "crash":
                    count, _, by = value.partition("@")
                    kwargs["crash_count"] = int(count)
                    kwargs["crash_by"] = int(by) if by else 1
                elif key == "crash-node":
                    node, _, rnd = value.partition("@")
                    crashes.append((int(node), int(rnd) if rnd else 0))
                elif key == "drop-edge":
                    rnd, sender, port = value.split(":")
                    drop_schedule.append((int(rnd), int(sender), int(port)))
                elif key == "input":
                    kwargs["input_schedule"] = value
                elif key == "flip":
                    kwargs["flip_fraction"] = float(value)
                elif key == "adaptive":
                    kwargs["adaptive"] = value
                elif key == "adaptive-rate":
                    kwargs["adaptive_rate"] = float(value)
                elif key == "adaptive-after":
                    kwargs["adaptive_after"] = int(value)
                elif key == "eavesdrop":
                    kwargs.update(cls.parse_eavesdrop(value))
                elif key == "eavesdrop-drop":
                    kwargs["eavesdrop_drop_rate"] = float(value)
                else:
                    kwargs["seed"] = int(value)
            except ValueError:
                hints = {
                    "drop-edge": "ROUND:SENDER:PORT",
                    "eavesdrop": "a rate or SENDER:PORT[+SENDER:PORT...]",
                    "crash": "N[@R]",
                    "crash-node": "NODE[@ROUND]",
                }
                raise ValueError(
                    f"bad adversary clause {clause!r}: expected "
                    f"{hints.get(key, 'a number')}\n{_GRAMMAR}"
                ) from None
        if crashes:
            kwargs["crashes"] = tuple(crashes)
        if drop_schedule:
            kwargs["drop_schedule"] = tuple(drop_schedule)
        try:
            return cls(**kwargs)
        except ValueError as error:
            raise ValueError(f"{error}\n{_GRAMMAR}") from None

    def with_updates(self, **changes) -> "AdversarySpec":
        """A copy with some fields replaced (CLI flag merging)."""
        return replace(self, **changes)


#: The do-nothing adversary; equivalent to passing None everywhere.
NULL_ADVERSARY = AdversarySpec()
