"""Declarative adversary specifications.

An :class:`AdversarySpec` is a frozen, hashable, picklable description of
everything an adversary may do to one protocol run:

* **message faults** — drop/delay/duplicate each sent message with a fixed
  rate, plus an explicit per-edge drop schedule ``(round, sender, port)``;
* **node faults** — crash-stop schedules: explicit ``(node, round)`` pairs
  ("fail before executing round r") and/or ``crash_count`` random victims
  crashing before a uniformly drawn round in ``[0, crash_by)``;
* **input faults** — adversarial initial-value assignments for agreement
  protocols (worst-case ties, evenly spread ones, shuffles, targeted bit
  flips).

Being pure data, a spec can sit inside a frozen
:class:`~repro.runtime.scenario.Scenario`, travel to worker processes, and
participate in result-store cache keys.  All randomness is drawn from a
:class:`~repro.util.rng.RandomSource` derived per trial (or pinned with
``seed``), so the same spec + seed reproduces the same faults bit for bit on
either engine backend.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.rng import RandomSource

__all__ = ["AdversarySpec", "INPUT_SCHEDULES", "NULL_ADVERSARY"]

#: Recognized agreement input-schedule names (None means the protocol's
#: default prefix-of-ones assignment).
INPUT_SCHEDULES = ("blocks", "spread", "tie", "shuffle")


@dataclass(frozen=True)
class AdversarySpec:
    """One adversary: message, node, and input fault policies.

    The null spec (all defaults) arms nothing and is treated everywhere as
    "no adversary", so passing ``AdversarySpec()`` is exactly equivalent to
    passing ``None``.
    """

    #: Probability that a sent message is silently discarded in transit.
    drop_rate: float = 0.0
    #: Probability that a sent message arrives ``delay_rounds`` rounds late.
    delay_rate: float = 0.0
    #: How late a delayed message arrives (>= 1 extra round).
    delay_rounds: int = 1
    #: Probability that a delivered message arrives twice.
    duplicate_rate: float = 0.0
    #: Explicit transit drops: ``(round, sender, port)`` triples.
    drop_schedule: tuple[tuple[int, int, int], ...] = ()
    #: Explicit crash-stop schedule: ``(node, round)`` — the node fails
    #: *before* executing the given round.
    crashes: tuple[tuple[int, int], ...] = ()
    #: Additionally crash this many uniformly random nodes ...
    crash_count: int = 0
    #: ... each before a round drawn uniformly from ``[0, crash_by)``.
    crash_by: int = 1
    #: Agreement input assignment: one of :data:`INPUT_SCHEDULES` or None.
    input_schedule: str | None = None
    #: Flip this fraction of the assigned inputs (adversary-chosen nodes).
    flip_fraction: float = 0.0
    #: Pin the adversary's random stream.  None (default) derives a fresh
    #: stream from the trial RNG, so trials see independent fault patterns
    #: while staying reproducible from the scenario seed.
    seed: int | None = None

    def __post_init__(self) -> None:
        for name in ("drop_rate", "delay_rate", "duplicate_rate", "flip_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.delay_rounds < 1:
            raise ValueError(f"delay_rounds must be >= 1, got {self.delay_rounds}")
        if self.crash_count < 0:
            raise ValueError(f"crash_count must be >= 0, got {self.crash_count}")
        if self.crash_by < 1:
            raise ValueError(f"crash_by must be >= 1, got {self.crash_by}")
        if self.input_schedule is not None and self.input_schedule not in INPUT_SCHEDULES:
            raise ValueError(
                f"input_schedule must be one of {INPUT_SCHEDULES}, "
                f"got {self.input_schedule!r}"
            )
        for entry in self.drop_schedule:
            if len(entry) != 3 or any(x < 0 for x in entry):
                raise ValueError(
                    f"drop_schedule entries are (round, sender, port) triples "
                    f"of non-negative ints, got {entry!r}"
                )
        for entry in self.crashes:
            if len(entry) != 2 or any(x < 0 for x in entry):
                raise ValueError(
                    f"crashes entries are (node, round) pairs of non-negative "
                    f"ints, got {entry!r}"
                )

    # -- classification --------------------------------------------------------

    @property
    def has_message_faults(self) -> bool:
        return (
            self.drop_rate > 0
            or self.delay_rate > 0
            or self.duplicate_rate > 0
            or bool(self.drop_schedule)
        )

    @property
    def has_crashes(self) -> bool:
        return self.crash_count > 0 or bool(self.crashes)

    @property
    def has_input_faults(self) -> bool:
        return self.input_schedule is not None or self.flip_fraction > 0

    @property
    def is_null(self) -> bool:
        """True when the spec arms nothing at all."""
        return not (self.has_message_faults or self.has_crashes or self.has_input_faults)

    def required_capabilities(self) -> set[str]:
        """Capability tags a protocol must declare to honour this spec.

        ``"faults"`` — engine-level message/crash faults; ``"inputs"`` —
        adversarial initial-value assignment.  Matches
        :attr:`~repro.runtime.registry.ProtocolSpec.supports`.
        """
        needed: set[str] = set()
        if self.has_message_faults or self.has_crashes:
            needed.add("faults")
        if self.has_input_faults:
            needed.add("inputs")
        return needed

    # -- derivation ------------------------------------------------------------

    def derive_rng(self, trial_rng: RandomSource) -> RandomSource:
        """The adversary's private random stream for one trial.

        With ``seed`` unset, a child of the trial RNG: every trial draws an
        independent (but seed-reproducible) fault pattern.  With ``seed``
        set, a fixed stream: every trial suffers the *same* fault pattern.
        """
        if self.seed is not None:
            return RandomSource(self.seed)
        return trial_rng.spawn()

    def arm(self, rng: RandomSource, n: int):
        """Instantiate runtime state for one run on an n-node network."""
        from repro.adversary.armed import ArmedAdversary

        return ArmedAdversary(self, rng, n)

    # -- identity / serialization ---------------------------------------------

    def key_dict(self) -> dict:
        """JSON-ready identity for result-store cache keys."""
        return {
            "drop_rate": self.drop_rate,
            "delay_rate": self.delay_rate,
            "delay_rounds": self.delay_rounds,
            "duplicate_rate": self.duplicate_rate,
            "drop_schedule": [list(e) for e in self.drop_schedule],
            "crashes": [list(e) for e in self.crashes],
            "crash_count": self.crash_count,
            "crash_by": self.crash_by,
            "input_schedule": self.input_schedule,
            "flip_fraction": self.flip_fraction,
            "seed": self.seed,
        }

    def describe(self) -> str:
        """Compact human-readable summary (CLI/table output)."""
        parts: list[str] = []
        if self.drop_rate:
            parts.append(f"drop={self.drop_rate:g}")
        if self.drop_schedule:
            parts.append(f"drop-edges={len(self.drop_schedule)}")
        if self.delay_rate:
            parts.append(f"delay={self.delay_rate:g}x{self.delay_rounds}")
        if self.duplicate_rate:
            parts.append(f"dup={self.duplicate_rate:g}")
        if self.crash_count:
            parts.append(f"crash={self.crash_count}@<{self.crash_by}")
        if self.crashes:
            parts.append(f"crash-nodes={len(self.crashes)}")
        if self.input_schedule is not None:
            parts.append(f"input={self.input_schedule}")
        if self.flip_fraction:
            parts.append(f"flip={self.flip_fraction:g}")
        if self.seed is not None:
            parts.append(f"seed={self.seed}")
        return ",".join(parts) if parts else "none"

    @classmethod
    def parse(cls, text: str | None) -> "AdversarySpec":
        """Parse the CLI's compact spec grammar into a spec.

        Comma-separated ``key=value`` clauses::

            drop=0.1,delay=0.05,delay-rounds=2,dup=0.01,
            crash=3@5,crash-node=7@2,drop-edge=1:0:3,
            input=tie,flip=0.1,seed=42

        ``crash=N@R`` crashes N random nodes before rounds < R (``@R``
        optional, default 1); ``crash-node`` and ``drop-edge`` may repeat.
        Empty text or ``"none"`` parses to the null spec.
        """
        if text is None or not text.strip() or text.strip() == "none":
            return cls()
        kwargs: dict = {}
        crashes: list[tuple[int, int]] = []
        drop_schedule: list[tuple[int, int, int]] = []
        for clause in text.split(","):
            clause = clause.strip()
            if not clause:
                continue
            if "=" not in clause:
                raise ValueError(f"adversary clause {clause!r} is not key=value")
            key, _, value = clause.partition("=")
            key = key.strip()
            value = value.strip()
            if key not in (
                "drop", "delay", "delay-rounds", "dup", "crash",
                "crash-node", "drop-edge", "input", "flip", "seed",
            ):
                raise ValueError(f"unknown adversary key {key!r}")
            try:
                if key == "drop":
                    kwargs["drop_rate"] = float(value)
                elif key == "delay":
                    kwargs["delay_rate"] = float(value)
                elif key == "delay-rounds":
                    kwargs["delay_rounds"] = int(value)
                elif key == "dup":
                    kwargs["duplicate_rate"] = float(value)
                elif key == "crash":
                    count, _, by = value.partition("@")
                    kwargs["crash_count"] = int(count)
                    kwargs["crash_by"] = int(by) if by else 1
                elif key == "crash-node":
                    node, _, rnd = value.partition("@")
                    crashes.append((int(node), int(rnd) if rnd else 0))
                elif key == "drop-edge":
                    rnd, sender, port = value.split(":")
                    drop_schedule.append((int(rnd), int(sender), int(port)))
                elif key == "input":
                    kwargs["input_schedule"] = value
                elif key == "flip":
                    kwargs["flip_fraction"] = float(value)
                else:
                    kwargs["seed"] = int(value)
            except ValueError:
                raise ValueError(
                    f"bad adversary clause {clause!r}: expected "
                    f"{'ROUND:SENDER:PORT' if key == 'drop-edge' else 'a number'}"
                ) from None
        if crashes:
            kwargs["crashes"] = tuple(crashes)
        if drop_schedule:
            kwargs["drop_schedule"] = tuple(drop_schedule)
        return cls(**kwargs)

    def with_updates(self, **changes) -> "AdversarySpec":
        """A copy with some fields replaced (CLI flag merging)."""
        return replace(self, **changes)


#: The do-nothing adversary; equivalent to passing None everywhere.
NULL_ADVERSARY = AdversarySpec()
