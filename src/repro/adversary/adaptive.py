"""Traffic-conditioned (adaptive) adversaries with eavesdropping ledgers.

An :class:`AdaptiveAdversary` is an :class:`~repro.adversary.armed.ArmedAdversary`
whose fault decisions react to the traffic it observes.  The engine feeds
it every round's canonical sends through :meth:`observe_round` — invoked
at the same point by all three dispatch paths (``reference``, ``fast``,
and the batch path), immediately after routing and immediately before
fault masks are drawn — so fast ≡ batch ≡ reference stays bit-identical
under identical adversary seeds.

Strategies (:data:`~repro.adversary.spec.ADAPTIVE_STRATEGIES`):

* **target-leader** — suppress the node whose cumulative outbound volume
  dominates (ties break to the lowest id): once engaged, its sends are
  dropped with probability ``adaptive_rate``.  The target is re-elected
  every round from the volumes observed so far, so suppression follows
  the protocol's actual communication leader as it shifts.
* **target-leader-crash** — one-shot variant: the first time the strategy
  engages, the dominant sender is crash-stopped before the *next* round
  (recorded in :attr:`crash_target`).
* **congestion** — reactive loss: each message is dropped with
  probability ``adaptive_rate`` scaled by its directed edge's share of
  the heaviest observed per-edge load, so hot edges lose proportionally
  more traffic than cold ones.

Eavesdropping composes with any strategy (or stands alone): directed
edges are tapped either explicitly (``eavesdrop_edges`` as
``(sender, port)`` pairs) or by a Bernoulli draw at ``eavesdrop_rate``
the first time an edge carries a message.  Every message on a tapped edge
is *read* into the security ledger (edges tapped, messages read, per-edge
detail, first-compromise round); with ``eavesdrop_drop_rate > 0`` tapped
messages are additionally *intercepted* (dropped in transit).

Determinism contract (the adaptive extension of the base class's):

* :meth:`observe_round` is called exactly once per round with at least
  one message, before :meth:`message_masks`, with the round's sends in
  canonical order — so every path presents identical arrays;
* adaptive RNG draws happen in a fixed order inside the observe/mask
  pair: new-edge tap decisions (ascending edge slot, one vectorized draw,
  only when ``0 < eavesdrop_rate < 1`` and new edges appeared), then in
  :meth:`message_masks` the congestion draw, the target-suppression draw
  (only when ``0 < adaptive_rate < 1``), the interception draw (only when
  ``0 < eavesdrop_drop_rate < 1`` and a tapped message is in flight) —
  and finally the base class's static drop/delay/duplicate draws;
* the strategy sees traffic *through the current round* (a rushing
  adversary: it may react to sends still in flight), but only engages
  after ``adaptive_after`` fully observed rounds.
"""

from __future__ import annotations

import numpy as np

from repro.adversary.armed import ArmedAdversary
from repro.adversary.spec import AdversarySpec
from repro.util.rng import RandomSource

__all__ = ["AdaptiveAdversary"]


class AdaptiveAdversary(ArmedAdversary):
    """Per-run state for a traffic-conditioned adversary."""

    observes = True

    def __init__(self, spec: AdversarySpec, rng: RandomSource, n: int):
        super().__init__(spec, rng, n)
        # Observed traffic: cumulative outbound sends per node and
        # cumulative load per directed edge (slot = sender * n + port;
        # unique because port < degree <= n - 1).
        self._out_volume = np.zeros(n, dtype=np.int64)
        self._edge_load: dict[int, int] = {}
        self._max_edge_load = 0
        self._rounds_observed = 0
        # Strategy state.
        self._target = -1
        self._crash_fired = False
        #: The node crash-stopped by ``target-leader-crash`` (None until
        #: the one-shot strategy fires).
        self.crash_target: int | None = None
        # Eavesdropping: tap decisions are per directed edge, made once —
        # explicit edges at arm time, rate-tapped edges the first time
        # they carry a message.
        self._tap_decided: set[int] = set()
        self._tapped: set[int] = set()
        for sender, port in spec.eavesdrop_edges:
            if sender < n and port < n:
                slot = sender * n + port
                self._tap_decided.add(slot)
                self._tapped.add(slot)
        self._tapped_arr: np.ndarray | None = None
        self._edge_ledger: dict[int, dict] = {}
        # Per-round decision state handed from observe_round to
        # message_masks (consumed within the same round).
        self._round_tap_mask: np.ndarray | None = None
        self._round_rates: np.ndarray | None = None
        # Ledger totals.
        self.edges_tapped = len(self._tapped)
        self.messages_read = 0
        self.messages_intercepted = 0
        self.first_compromise_round: int | None = None

    # -- observation -----------------------------------------------------------

    @property
    def current_target(self) -> int | None:
        """The node currently suppressed by ``target-leader`` (or None)."""
        return self._target if self._target >= 0 else None

    def observe_round(
        self,
        round_index: int,
        senders: np.ndarray,
        ports: np.ndarray,
        receivers: np.ndarray,
    ) -> None:
        """Feed one round's canonical sends into the adversary's view.

        Called by every engine path with the same arrays it hands to
        :meth:`message_masks` (plus the resolved receivers), immediately
        before the masks are drawn.  Updates the traffic accumulators,
        makes tap decisions for newly seen edges, records reads into the
        security ledger, and stages this round's strategy decisions.
        """
        spec = self.spec
        n = self.n
        slots = senders * n + ports
        # Tap decisions for edges seen for the first time, in ascending
        # slot order (identical across paths: same arrays in, one draw).
        if spec.eavesdrop_rate > 0:
            fresh = [
                slot
                for slot in np.unique(slots).tolist()
                if slot not in self._tap_decided
            ]
            if fresh:
                if spec.eavesdrop_rate >= 1.0:
                    taps = [True] * len(fresh)
                else:
                    taps = (
                        self._generator.random(len(fresh)) < spec.eavesdrop_rate
                    ).tolist()
                for slot, tapped in zip(fresh, taps):
                    self._tap_decided.add(slot)
                    if tapped:
                        self._tapped.add(slot)
                        self.edges_tapped += 1
                self._tapped_arr = None
        # Reads on tapped edges.
        self._round_tap_mask = None
        if self._tapped:
            if self._tapped_arr is None:
                self._tapped_arr = np.fromiter(
                    self._tapped, dtype=np.int64, count=len(self._tapped)
                )
                self._tapped_arr.sort()
            tap_mask = np.isin(slots, self._tapped_arr)
            reads = int(np.count_nonzero(tap_mask))
            if reads:
                self.messages_read += reads
                if self.first_compromise_round is None:
                    self.first_compromise_round = round_index
                read_idx = np.nonzero(tap_mask)[0]
                uniq, first_pos, counts = np.unique(
                    slots[read_idx], return_index=True, return_counts=True
                )
                for slot, pos, count in zip(
                    uniq.tolist(), first_pos.tolist(), counts.tolist()
                ):
                    entry = self._edge_ledger.get(slot)
                    if entry is None:
                        i = int(read_idx[pos])
                        self._edge_ledger[slot] = {
                            "sender": slot // n,
                            "port": slot % n,
                            "receiver": int(receivers[i]),
                            "messages_read": count,
                            "first_round": round_index,
                        }
                    else:
                        entry["messages_read"] += count
                if spec.eavesdrop_drop_rate > 0:
                    self._round_tap_mask = tap_mask
        # Traffic accumulators (this round's sends included: a rushing
        # adversary reacts to traffic still in flight).
        np.add.at(self._out_volume, senders, 1)
        if spec.adaptive == "congestion":
            uniq, counts = np.unique(slots, return_counts=True)
            load = self._edge_load
            for slot, count in zip(uniq.tolist(), counts.tolist()):
                total = load.get(slot, 0) + count
                load[slot] = total
                if total > self._max_edge_load:
                    self._max_edge_load = total
        engaged = self._rounds_observed >= spec.adaptive_after
        self._rounds_observed += 1
        # Stage this round's strategy decisions for message_masks.
        self._round_rates = None
        if not engaged:
            return
        if spec.adaptive == "target-leader":
            self._target = int(self._out_volume.argmax())
        elif spec.adaptive == "target-leader-crash":
            if not self._crash_fired:
                target = int(self._out_volume.argmax())
                self._crash_rounds.setdefault(round_index + 1, []).append(target)
                self._crash_fired = True
                self.crash_target = target
        elif spec.adaptive == "congestion" and spec.adaptive_rate > 0:
            loads = np.fromiter(
                (self._edge_load[slot] for slot in slots.tolist()),
                dtype=np.float64,
                count=len(slots),
            )
            self._round_rates = spec.adaptive_rate * loads / self._max_edge_load

    # -- fault masks -----------------------------------------------------------

    def message_masks(
        self, round_index: int, senders: np.ndarray, ports: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Adaptive drops merged under the base class's static masks.

        Adaptive decisions staged by :meth:`observe_round` become a forced
        drop mask that :meth:`~ArmedAdversary._draw_masks` merges before
        the delay/duplicate draws, so accounting (and the eavesdropping
        ledger) reconciles exactly with the ``fault_*`` totals.
        """
        spec = self.spec
        count = len(senders)
        forced: np.ndarray | None = None
        if self._round_rates is not None:
            forced = self._generator.random(count) < self._round_rates
            self._round_rates = None
        if (
            spec.adaptive == "target-leader"
            and self._target >= 0
            and spec.adaptive_rate > 0
        ):
            mask = senders == self._target
            if spec.adaptive_rate < 1.0:
                mask = mask & (self._generator.random(count) < spec.adaptive_rate)
            forced = mask if forced is None else forced | mask
        if self._round_tap_mask is not None:
            mask = self._round_tap_mask
            self._round_tap_mask = None
            if spec.eavesdrop_drop_rate < 1.0:
                mask = mask & (
                    self._generator.random(count) < spec.eavesdrop_drop_rate
                )
            self.messages_intercepted += int(np.count_nonzero(mask))
            forced = mask if forced is None else forced | mask
        return self._draw_masks(round_index, senders, ports, forced)

    # -- accounting ------------------------------------------------------------

    def stats(self, rounds_executed: int) -> dict:
        """Base fault accounting plus the eavesdropping ledger totals.

        ``eavesdrop_first_compromise_round`` is -1 when no tapped edge
        ever carried a message (keys stay numeric so sweep aggregation
        keeps them).
        """
        data = super().stats(rounds_executed)
        data["eavesdrop_edges_tapped"] = self.edges_tapped
        data["eavesdrop_messages_read"] = self.messages_read
        data["eavesdrop_messages_intercepted"] = self.messages_intercepted
        data["eavesdrop_first_compromise_round"] = (
            -1 if self.first_compromise_round is None else self.first_compromise_round
        )
        return data

    def security_ledger(self) -> dict:
        """The full security-accounting ledger, per-edge detail included.

        ``edges`` rows are sorted by ``(sender, port)`` and carry the
        resolved receiver, so the ledger reads as "who overheard whom".
        The totals reconcile with :meth:`stats`: ``messages_read`` is the
        sum of the per-edge counts, and every intercepted message was
        read first (``messages_intercepted <= messages_read``).
        """
        return {
            "edges_tapped": self.edges_tapped,
            "messages_read": self.messages_read,
            "messages_intercepted": self.messages_intercepted,
            "first_compromise_round": self.first_compromise_round,
            "edges": [
                dict(self._edge_ledger[slot])
                for slot in sorted(self._edge_ledger)
            ],
        }
