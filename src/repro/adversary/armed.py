"""Runtime adversary state for one engine run.

An :class:`ArmedAdversary` is the mutable counterpart of a frozen
:class:`~repro.adversary.spec.AdversarySpec`: it owns the adversary's
private random generator, the materialized crash plan, the delayed-message
queue, and the fault accounting for one protocol run.

Determinism contract (what makes fast-vs-reference trace equivalence hold):

* both engine backends flatten each round's sends into the same canonical
  order (sender ascending, outbox position within a sender), so
  :meth:`message_masks` is called with identical ``(senders, ports)`` arrays;
* the generator is consumed in a fixed draw order — drop, then delay, then
  duplicate — and a fault class whose rate is zero draws nothing;
* rate draws are vectorized (one ``random(count)`` per armed fault class
  per round), which is also what lets the fast backend apply faults as
  numpy masks on its batched outbox arrays.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.adversary.spec import AdversarySpec
from repro.util.rng import RandomSource

__all__ = ["ArmedAdversary"]


class ArmedAdversary:
    """Mutable per-run fault state derived from a spec and an RNG."""

    #: Whether the engine must feed this adversary the per-round traffic
    #: observation callback (``observe_round``) before drawing fault
    #: masks.  Static adversaries never observe; the adaptive subclass
    #: (:class:`~repro.adversary.adaptive.AdaptiveAdversary`) flips this.
    observes = False

    def __init__(self, spec: AdversarySpec, rng: RandomSource, n: int):
        if n < 1:
            raise ValueError(f"need n >= 1 nodes, got {n}")
        self.spec = spec
        self.n = n
        self._generator = rng.generator
        # Crash plan: node -> round it fails before executing.  Explicit
        # schedule entries win over random victims; duplicate explicit
        # entries keep the earliest round.
        plan: dict[int, int] = {}
        for node, round_index in spec.crashes:
            if node < n:
                current = plan.get(node)
                plan[node] = round_index if current is None else min(current, round_index)
        if spec.crash_count > 0:
            count = min(spec.crash_count, n)
            victims = rng.sample_without_replacement(n, count)
            rounds = self._generator.integers(0, spec.crash_by, size=count)
            for victim, round_index in zip(victims.tolist(), rounds.tolist()):
                plan.setdefault(int(victim), int(round_index))
        self._crash_rounds: dict[int, list[int]] = {}
        for node, round_index in sorted(plan.items()):
            self._crash_rounds.setdefault(round_index, []).append(node)
        # Scheduled drops per round, encoded as sender * n + port slots
        # (unique: port < degree <= n - 1 < n).
        self._drop_slots: dict[int, np.ndarray] = {}
        slots_by_round: dict[int, list[int]] = {}
        for round_index, sender, port in spec.drop_schedule:
            slots_by_round.setdefault(round_index, []).append(sender * n + port)
        for round_index, slots in slots_by_round.items():
            self._drop_slots[round_index] = np.asarray(sorted(set(slots)), dtype=np.int64)
        # Delayed messages keyed by the round whose inbox they join:
        # round -> list of (receiver, arrival_port, message).
        self._delayed: dict[int, list[tuple[int, int, object]]] = {}
        self._pending_delayed = 0
        # Fault accounting.
        self.messages_dropped = 0
        self.messages_delayed = 0
        self.messages_duplicated = 0
        #: Drops forced by an adaptive strategy that the static fault
        #: classes would *not* have caused (always 0 for static specs).
        self.messages_lost_to_adaptivity = 0
        self.nodes_crashed = 0
        self.last_fault_round: int | None = None
        self._horizon_checked = False

    # -- classification passthrough -------------------------------------------

    @property
    def has_message_faults(self) -> bool:
        return self.spec.has_message_faults

    # -- node faults -----------------------------------------------------------

    def crashes_at(self, round_index: int) -> list[int]:
        """Nodes that fail before executing ``round_index`` (ascending)."""
        return self._crash_rounds.get(round_index, [])

    def unreachable_crashes(self, max_rounds: int) -> list[tuple[int, int]]:
        """``(node, round)`` crash-plan entries at or past the round budget.

        A node scheduled to crash before round ``r >= max_rounds`` can
        never fire: the engine stops consuming the plan once the budget
        elapses, so the scenario silently runs fault-free.
        """
        return sorted(
            (node, round_index)
            for round_index, nodes in self._crash_rounds.items()
            if round_index >= max_rounds
            for node in nodes
        )

    def check_crash_horizon(self, max_rounds: int) -> None:
        """Warn once when part of the crash plan can never fire.

        Called by :meth:`AdversarySpec.arm` when the caller knows the
        round budget, and again (idempotently) by
        ``SynchronousEngine.run`` — so a misconfigured crash schedule
        fails loudly no matter how the adversary was armed.
        """
        if self._horizon_checked:
            return
        self._horizon_checked = True
        unreachable = self.unreachable_crashes(max_rounds)
        if unreachable:
            detail = ", ".join(
                f"node {node} before round {round_index}"
                for node, round_index in unreachable
            )
            warnings.warn(
                f"adversary crash schedule is partly unreachable: {detail} "
                f"— the run budget is {max_rounds} rounds, so crashes "
                f"scheduled at round >= {max_rounds} never fire",
                RuntimeWarning,
                stacklevel=3,
            )

    def note_crash(self, round_index: int) -> None:
        self.nodes_crashed += 1
        self.note_fault(round_index)

    # -- message faults --------------------------------------------------------

    def message_masks(
        self, round_index: int, senders: np.ndarray, ports: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(drop, delay, duplicate) boolean masks over one round's sends.

        ``senders``/``ports`` must list the round's messages in canonical
        order.  The masks are disjoint by construction: a dropped message is
        neither delayed nor duplicated, and only delivered (non-delayed)
        messages may be duplicated.  Accounting is updated here, so call
        exactly once per round with at least one message.
        """
        return self._draw_masks(round_index, senders, ports, None)

    def _draw_masks(
        self,
        round_index: int,
        senders: np.ndarray,
        ports: np.ndarray,
        forced_drop: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Shared mask core: static fault classes plus adaptive forced drops.

        ``forced_drop`` (from the adaptive subclass) is merged into the
        drop mask *before* the delay/duplicate draws and before any
        accounting, so a force-dropped message is never also counted as
        delayed or duplicated — the ledger and ``fault_*`` totals stay
        reconcilable.  The RNG draw order is fixed: static drop, delay,
        duplicate (adaptive draws happen earlier, in the subclass).
        """
        spec = self.spec
        count = len(senders)
        if spec.drop_rate > 0:
            drop = self._generator.random(count) < spec.drop_rate
        else:
            drop = np.zeros(count, dtype=bool)
        scheduled = self._drop_slots.get(round_index)
        if scheduled is not None:
            drop |= np.isin(senders * self.n + ports, scheduled)
        if forced_drop is not None:
            self.messages_lost_to_adaptivity += int(
                np.count_nonzero(forced_drop & ~drop)
            )
            drop = drop | forced_drop
        if spec.delay_rate > 0:
            delay = (self._generator.random(count) < spec.delay_rate) & ~drop
        else:
            delay = np.zeros(count, dtype=bool)
        if spec.duplicate_rate > 0:
            duplicate = (
                (self._generator.random(count) < spec.duplicate_rate) & ~drop & ~delay
            )
        else:
            duplicate = np.zeros(count, dtype=bool)
        dropped = int(drop.sum())
        delayed = int(delay.sum())
        duplicated = int(duplicate.sum())
        self.messages_dropped += dropped
        self.messages_delayed += delayed
        self.messages_duplicated += duplicated
        if dropped or delayed or duplicated:
            self.note_fault(round_index)
        return drop, delay, duplicate

    # -- delayed-message queue -------------------------------------------------

    def push_delayed(self, arrival_round: int, receiver: int, port: int, message) -> None:
        """Queue one delayed message for the inbox read in ``arrival_round``."""
        self._delayed.setdefault(arrival_round, []).append((receiver, port, message))
        self._pending_delayed += 1

    def push_delayed_many(
        self, arrival_round: int, entries: list[tuple[int, int, object]]
    ) -> None:
        """Queue a whole round's delayed ``(receiver, port, payload)`` rows.

        The batch dispatch path collects its delayed rows in one list (in
        canonical send order — the same order repeated :meth:`push_delayed`
        calls would enqueue them) and hands them over in one call.
        """
        self._delayed.setdefault(arrival_round, []).extend(entries)
        self._pending_delayed += len(entries)

    def pop_delayed(self, arrival_round: int) -> list[tuple[int, int, object]]:
        """Messages whose delay expires at ``arrival_round`` (queue order)."""
        entries = self._delayed.pop(arrival_round, [])
        self._pending_delayed -= len(entries)
        return entries

    @property
    def pending_delayed(self) -> int:
        """Delayed messages still queued (in flight at end of run)."""
        return self._pending_delayed

    # -- accounting ------------------------------------------------------------

    def note_fault(self, round_index: int) -> None:
        if self.last_fault_round is None or round_index > self.last_fault_round:
            self.last_fault_round = round_index

    def stats(self, rounds_executed: int) -> dict:
        """Numeric fault accounting for result meta (``fault_*`` keys).

        ``fault_rounds_to_recovery`` counts the clean rounds the protocol
        ran after the last fault fired.  Always present (sweep aggregation
        keeps only keys present in every trial): with no fault fired the
        whole run is clean, so it equals ``rounds_executed`` — the same
        formula with the "last fault" taken to precede round 0.
        """
        last = self.last_fault_round if self.last_fault_round is not None else -1
        return {
            "fault_messages_dropped": self.messages_dropped,
            "fault_messages_delayed": self.messages_delayed,
            "fault_messages_duplicated": self.messages_duplicated,
            "fault_messages_lost_to_adaptivity": self.messages_lost_to_adaptivity,
            "fault_nodes_crashed": self.nodes_crashed,
            "fault_rounds_to_recovery": max(0, rounds_executed - 1 - last),
        }
