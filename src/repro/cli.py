"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``                      — list the reproduced experiments (E1–E12);
* ``info E4``                   — show one experiment's claim and modules;
* ``elect --topology complete`` — run a leader election and print the result;
* ``agree``                     — run quantum vs classical agreement;
* ``routing-demo``              — the Appendix-A superposed-send demo.

The CLI is a thin veneer over the public API; anything it does is three
lines of Python (see examples/).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.experiments import EXPERIMENTS, get_experiment

__all__ = ["build_parser", "main"]

TOPOLOGIES = ("complete", "hypercube", "diameter2", "general")


def _cmd_list(_args) -> int:
    width = max(len(e.paper_result) for e in EXPERIMENTS.values())
    for key in sorted(EXPERIMENTS, key=lambda k: int(k[1:])):
        experiment = EXPERIMENTS[key]
        print(f"{key:>4}  {experiment.paper_result:<{width}}  {experiment.bench}")
    return 0


def _cmd_info(args) -> int:
    try:
        experiment = get_experiment(args.experiment)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2
    print(f"{experiment.id} — {experiment.paper_result}")
    print(f"\n{experiment.claim}\n")
    if experiment.quantum_exponent is not None:
        print(f"quantum exponent  : {experiment.quantum_exponent:.3f}")
    if experiment.classical_exponent is not None:
        print(f"classical exponent: {experiment.classical_exponent:.3f}")
    print("modules           : " + ", ".join(experiment.modules))
    print(f"benchmark         : {experiment.bench}")
    return 0


def _cmd_elect(args) -> int:
    from repro import (
        RandomSource,
        classical_le_complete,
        classical_le_diameter2,
        classical_le_general,
        classical_le_mixing,
        quantum_general_le,
        quantum_le_complete,
        quantum_qwle,
        quantum_rwle,
    )
    from repro.core.leader_election import QWLEParameters
    from repro.network import graphs

    rng = RandomSource(args.seed)
    n = args.n
    if args.topology == "complete":
        quantum = quantum_le_complete(n, rng.spawn())
        classical = classical_le_complete(n, rng.spawn())
    elif args.topology == "hypercube":
        dimension = max(2, (n - 1).bit_length())
        topology = graphs.hypercube(dimension)
        tau = 2 * dimension
        quantum = quantum_rwle(topology, rng.spawn(), tau=tau)
        classical = classical_le_mixing(topology, rng.spawn(), tau=tau)
        n = topology.n
    elif args.topology == "diameter2":
        topology = graphs.erdos_renyi(n, 0.5, rng.spawn())
        quantum = quantum_qwle(
            topology, rng.spawn(), QWLEParameters(alpha=1 / 8, inner_alpha=1 / 8)
        )
        classical = classical_le_diameter2(topology, rng.spawn())
    else:  # general
        topology = graphs.erdos_renyi(n, 0.1, rng.spawn())
        quantum = quantum_general_le(topology, rng.spawn(), alpha=1 / 8)
        classical = classical_le_general(topology, rng.spawn())

    print(f"leader election on {args.topology}, n={n}")
    print(
        f"  quantum  : leader={quantum.leader} messages={quantum.messages:,} "
        f"rounds={quantum.rounds:,} success={quantum.success}"
    )
    print(
        f"  classical: leader={classical.leader} messages={classical.messages:,} "
        f"rounds={classical.rounds:,} success={classical.success}"
    )
    return 0 if quantum.success and classical.success else 1


def _cmd_agree(args) -> int:
    from repro import (
        RandomSource,
        classical_agreement_shared,
        quantum_agreement,
    )

    rng = RandomSource(args.seed)
    ones = int(args.fraction * args.n)
    inputs = [1] * ones + [0] * (args.n - ones)
    quantum = quantum_agreement(inputs, rng.spawn())
    classical = classical_agreement_shared(inputs, rng.spawn())
    print(f"implicit agreement on K_{args.n} ({ones} ones)")
    print(
        f"  quantum  : value={quantum.agreed_value} messages={quantum.messages:,} "
        f"valid={quantum.success}"
    )
    print(
        f"  classical: value={classical.agreed_value} "
        f"messages={classical.messages:,} valid={classical.success}"
    )
    return 0 if quantum.success and classical.success else 1


def _cmd_routing_demo(args) -> int:
    import math

    from repro.network import graphs
    from repro.quantum.routing import QuantumRoutingNetwork

    leaves = args.leaves
    network = QuantumRoutingNetwork(graphs.star(leaves + 1), alphabet_size=1)
    network.allocate_local(0, "ctl", max(leaves, 2))
    network.build()
    amplitude = 1.0 / math.sqrt(leaves)
    network.prepare_recipient_superposition(
        0, "ctl", {leaf: amplitude for leaf in range(1, leaves + 1)}
    )
    network.write_message_controlled(0, "ctl", symbol=1)
    print(
        f"superposed send to one of {leaves} leaves: message complexity = "
        f"{network.round_message_complexity()} (classical broadcast: {leaves})"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Quantum Communication Advantage for "
        "Leader Election and Agreement' (PODC 2025).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list reproduced experiments").set_defaults(
        handler=_cmd_list
    )

    info = commands.add_parser("info", help="describe one experiment")
    info.add_argument("experiment", help="experiment id, e.g. E4")
    info.set_defaults(handler=_cmd_info)

    elect = commands.add_parser("elect", help="run a leader election")
    elect.add_argument("--topology", choices=TOPOLOGIES, default="complete")
    elect.add_argument("--n", type=int, default=1024)
    elect.add_argument("--seed", type=int, default=0)
    elect.set_defaults(handler=_cmd_elect)

    agree = commands.add_parser("agree", help="run implicit agreement")
    agree.add_argument("--n", type=int, default=4096)
    agree.add_argument("--fraction", type=float, default=0.3)
    agree.add_argument("--seed", type=int, default=0)
    agree.set_defaults(handler=_cmd_agree)

    demo = commands.add_parser("routing-demo", help="Appendix-A superposed send")
    demo.add_argument("--leaves", type=int, default=3)
    demo.set_defaults(handler=_cmd_routing_demo)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)
