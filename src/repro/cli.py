"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``                      — list the reproduced experiments (E1–E12);
* ``info E4``                   — show one experiment's claim and modules;
* ``elect --topology complete`` — run a paired leader election and print the
                                  result; ``elect le-ring/lcr --topology
                                  cycle -n 1000000`` runs a single registered
                                  protocol on any topology family instead;
* ``agree``                     — run quantum vs classical agreement;
* ``sweep --experiment E1``     — run an experiment's scenario pair across
                                  its size grid, trials fanned over cores
                                  (``--engine fast|reference`` picks the
                                  backend; per-size results are cached under
                                  ``benchmarks/results/cache/`` unless
                                  ``--no-cache``);
* ``worker DIR``                — join a distributed sweep fleet: pull
                                  shards from the fabric queue directory
                                  under heartbeat leases, push results into
                                  its content-addressed store;
* ``fabric status DIR``         — inspect a fabric job (shards done/leased/
                                  pending, live workers, elected reaper);
* ``scenarios``                 — list the scenario catalogue (``--json``
                                  for a machine-readable dump);
* ``protocols``                 — list the protocol registry with its
                                  capability tags (``--json`` for tooling);
* ``cache list|stats|clear``    — inspect or empty the on-disk result cache;
* ``profile --scenario S``      — run a scenario with phase profiling forced
                                  on and print the wall-time breakdown
                                  (engine.step/gather/deliver, fabric
                                  serialize/claim/execute/save);
* ``trace validate FILE...``    — check JSONL trace files against the
                                  versioned trace schema;
* ``routing-demo``              — the Appendix-A superposed-send demo.

``elect``, ``agree``, and ``sweep`` accept ``--node-api {auto,batch,scalar}``
selecting the engine dispatch for protocols that declare the ``batch``
capability: ``auto`` (the default) runs the array-native
:class:`~repro.network.batch.BatchProtocol` implementation when one
exists, ``scalar`` forces the legacy per-node path, and ``batch``
requires the array-native path (an error for scalar-only protocols).
Both paths are bit-identical under the same seeds and adversary specs.

The same three commands accept ``--kernel {auto,numba,numpy}`` (env
``REPRO_KERNEL``) selecting the compiled-kernel tier behind the batch
engine's PortTable gathers: ``auto`` uses numba when importable, ``numpy``
is the always-available bit-identical fallback, and an explicit ``numba``
errors out when numba is missing rather than silently degrading.  The
kernel tier never changes results, so it is deliberately excluded from
result-cache keys.

``sweep`` additionally accepts ``--fabric DIR --workers N``: instead of
the in-process pool, the grid is laid out as shards in a work-queue
directory and executed by N local worker processes (remote hosts sharing
the directory join with ``repro worker DIR``).  Aggregates are
bit-identical to any ``--jobs`` value; an injected or real worker crash
mid-shard is resumed via lease expiry (``--inject-kill W@T`` is the
fault-injection harness CI uses to prove it).

``elect``, ``agree``, and ``sweep`` accept adversary flags (``--drop-rate``,
``--crash N[@R]``, and the full ``--adversary`` spec grammar of
:meth:`repro.adversary.AdversarySpec.parse`) for deterministic
fault-injected runs; results then carry fault accounting and cache under
adversary-aware keys.

``elect``, ``agree``, ``sweep``, and ``worker`` accept the telemetry
flags ``--trace FILE`` (append versioned JSONL span/event records; pool
and fabric workers inherit via ``REPRO_TRACE`` and append to the same
file) and ``--profile`` (phase wall-time breakdowns in the run meta via
``REPRO_PROFILE``).  Telemetry never draws from run RNG streams: traced
or profiled runs are bit-identical to bare ones.  The root-level
``--log-level`` flag turns on structured (logfmt) ``logging`` output
for the fabric's worker/coordinator loggers.

Protocol dispatch goes through :mod:`repro.runtime`: the registry resolves
protocols by name and the scenario layer binds topologies, so the CLI holds
no per-protocol wiring of its own.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys

from repro.analysis.experiments import EXPERIMENTS, get_experiment

__all__ = ["build_parser", "main"]


def _apply_engine(engine: str | None) -> None:
    """Select the engine backend process-wide (workers inherit the env)."""
    if engine is not None:
        os.environ["REPRO_ENGINE"] = engine


def _apply_kernel(kernel: str | None) -> str:
    """Select the kernel tier process-wide; returns the resolved tier.

    Raises RuntimeError for an explicit ``numba`` request when numba is
    not installed — an explicit request never silently degrades.
    """
    from repro.network.kernels import resolve_kernel

    resolved = resolve_kernel(kernel)
    # Only export after a successful resolve: a rejected explicit request
    # must not poison the process-wide default for later commands.
    if kernel is not None:
        os.environ["REPRO_KERNEL"] = kernel
    return resolved


def _adversary_from_args(args):
    """Merge ``--adversary`` / ``--drop-rate`` / ``--crash`` into one spec.

    Returns None when no adversary flag was given at all.  When flags were
    given, returns the merged spec *even if null* — an explicit
    ``--drop-rate 0`` or ``--adversary none`` is a request for the
    fault-free baseline, which on a catalogue fault scenario means
    stripping its built-in adversary.  Shorthand flags override the spec
    string's fields.
    """
    from repro.adversary import AdversarySpec

    text = getattr(args, "adversary", None)
    drop_rate = getattr(args, "drop_rate", None)
    crash = getattr(args, "crash", None)
    adaptive = getattr(args, "adaptive", None)
    eavesdrop = getattr(args, "eavesdrop", None)
    if (
        text is None
        and drop_rate is None
        and crash is None
        and adaptive is None
        and eavesdrop is None
    ):
        return None
    spec = AdversarySpec.parse(text)
    updates: dict = {}
    if drop_rate is not None:
        updates["drop_rate"] = drop_rate
    if crash is not None:
        count, _, by = crash.partition("@")
        updates["crash_count"] = int(count)
        if by:
            updates["crash_by"] = int(by)
    if adaptive is not None:
        updates["adaptive"] = adaptive
    if eavesdrop is not None:
        updates.update(AdversarySpec.parse_eavesdrop(eavesdrop))
    if updates:
        spec = spec.with_updates(**updates)
    return spec


def _add_node_api_flag(parser) -> None:
    parser.add_argument(
        "--node-api",
        choices=("auto", "batch", "scalar"),
        default="auto",
        help="engine dispatch for batch-capable protocols: array-native "
        "'batch', legacy per-node 'scalar', or 'auto' (batch when "
        "available; both are bit-identical)",
    )


def _add_kernel_flag(parser) -> None:
    parser.add_argument(
        "--kernel",
        choices=("auto", "numba", "numpy"),
        default=None,
        help="kernel tier for the engine's array primitives: 'numba' "
        "requires the optional numba dependency, 'numpy' is the "
        "always-available bit-identical fallback, 'auto' (default, or "
        "the REPRO_KERNEL env var) picks numba when installed",
    )


def _add_adversary_flags(parser) -> None:
    parser.add_argument(
        "--drop-rate",
        type=float,
        default=None,
        help="adversary: drop each sent message with this probability",
    )
    parser.add_argument(
        "--crash",
        default=None,
        metavar="N[@R]",
        help="adversary: crash-stop N random nodes before rounds < R "
        "(default R=1: before the first round)",
    )
    from repro.adversary import ADAPTIVE_STRATEGIES

    parser.add_argument(
        "--adaptive",
        choices=ADAPTIVE_STRATEGIES,
        default=None,
        help="adversary: traffic-conditioned strategy (fault decisions "
        "react to observed per-round sends; see also adaptive-rate=/"
        "adaptive-after= in --adversary)",
    )
    parser.add_argument(
        "--eavesdrop",
        default=None,
        metavar="RATE|S:P[+S:P...]",
        help="adversary: tap each directed edge with probability RATE (or "
        "tap exactly the listed sender:port edges); security ledger lands "
        "in result meta, eavesdrop-drop= in --adversary intercepts",
    )
    parser.add_argument(
        "--adversary",
        default=None,
        metavar="SPEC",
        help="full adversary spec, e.g. 'drop=0.1,delay=0.05,dup=0.01,"
        "crash=2@4,input=tie,adaptive=target-leader,eavesdrop=0.2,"
        "eavesdrop-drop=0.5,seed=7'",
    )

def _add_telemetry_flags(parser) -> None:
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="append JSONL span/event records (run/trial/round, faults, "
        "fabric leases) to FILE; workers inherit via REPRO_TRACE and "
        "append atomically to the same file; never changes results",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="collect phase wall-time breakdowns (engine step/gather/"
        "deliver, fabric serialize/claim/execute/save) into the run "
        "meta via REPRO_PROFILE; never changes results",
    )


def _apply_telemetry(args) -> None:
    """Export ``--trace``/``--profile`` process-wide (workers inherit)."""
    trace = getattr(args, "trace", None)
    profile = getattr(args, "profile", False)
    if trace is None and not profile:
        return
    from repro.telemetry import set_profiling, set_trace_path

    if trace is not None:
        set_trace_path(trace)
    if profile:
        set_profiling(True)


#: elect topology → (quantum protocol, classical protocol, topology family,
#: topology params).  One table, no if/elif chain.
ELECT_SETUPS: dict[str, tuple[str, str, str, tuple]] = {
    "complete": ("le-complete/quantum", "le-complete/classical", "complete", ()),
    "hypercube": ("le-mixing/quantum", "le-mixing/classical", "hypercube", ()),
    "diameter2": (
        "le-diameter2/quantum", "le-diameter2/classical", "diameter2-gnp", (),
    ),
    "general": (
        "le-general/quantum", "le-general/classical", "erdos-renyi", (("p", 0.1),),
    ),
}

#: Per-side parameter overrides keyed by (topology, side); values that
#: depend on n are computed in the handler.  The diameter-2 row relaxes the
#: failure budgets to 1/8 (the benchmarks' constant-α convention) so a
#: single interactive run stays fast.
_ELECT_SIDE_PARAMS: dict[tuple[str, str], dict] = {
    ("diameter2", "quantum"): {"alpha": 1 / 8, "inner_alpha": 1 / 8},
    ("general", "quantum"): {"alpha": 1 / 8},
}

TOPOLOGIES = tuple(ELECT_SETUPS)


def _cmd_list(_args) -> int:
    width = max(len(e.paper_result) for e in EXPERIMENTS.values())
    for key in sorted(EXPERIMENTS, key=lambda k: int(k[1:])):
        experiment = EXPERIMENTS[key]
        print(f"{key:>4}  {experiment.paper_result:<{width}}  {experiment.bench}")
    return 0


def _cmd_info(args) -> int:
    try:
        experiment = get_experiment(args.experiment)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2
    print(f"{experiment.id} — {experiment.paper_result}")
    print(f"\n{experiment.claim}\n")
    if experiment.quantum_exponent is not None:
        print(f"quantum exponent  : {experiment.quantum_exponent:.3f}")
    if experiment.classical_exponent is not None:
        print(f"classical exponent: {experiment.classical_exponent:.3f}")
    print("modules           : " + ", ".join(experiment.modules))
    print(f"benchmark         : {experiment.bench}")
    return 0


def _cmd_elect_single(args) -> int:
    """Single-protocol elect: any registered protocol on any family.

    The million-node path: ``repro elect le-ring/lcr --topology cycle
    -n 1000000 --kernel auto`` runs one protocol without the paired
    quantum/classical comparison (and without materializing edges on
    arithmetic port-table families).
    """
    from repro.runtime import TopologySpec, default_registry
    from repro.runtime.scenario import TOPOLOGY_FAMILIES
    from repro.util.rng import RandomSource

    registry = default_registry()
    try:
        spec = registry.get(args.protocol)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2
    family = args.topology or spec.topologies[0]
    if family not in TOPOLOGY_FAMILIES:
        print(
            f"unknown topology family {family!r}; available: "
            f"{sorted(TOPOLOGY_FAMILIES)}",
            file=sys.stderr,
        )
        return 2

    params: dict = {}
    try:
        adversary = _adversary_from_args(args)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    if adversary is not None and adversary.is_null:
        adversary = None
    if adversary is not None:
        missing = adversary.required_capabilities() - set(spec.supports)
        if missing:
            print(
                f"protocol {spec.name!r} does not support adversary "
                f"capabilities {sorted(missing)}",
                file=sys.stderr,
            )
            return 2
        params["adversary"] = adversary
    try:
        resolved_api = spec.resolve_node_api(args.node_api)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    if "batch" in spec.supports:
        params["node_api"] = resolved_api

    rng = RandomSource(args.seed)
    topo_spec = TopologySpec(family)
    if topo_spec.consumes_trial_rng:
        topology = topo_spec.build(args.n, rng.spawn())
    else:
        topology = topo_spec.build(args.n)
    outcome = spec.run(topology, rng.spawn(), **params)
    kernel = os.environ.get("REPRO_KERNEL", "auto")
    print(
        f"{spec.name} on {family}, n={topology.n} "
        f"(node-api {resolved_api}, kernel {kernel})"
    )
    detail = " ".join(
        f"{key}={value}" for key, value in sorted(outcome.detail.items())
    )
    print(
        f"  messages={int(outcome.messages):,} rounds={int(outcome.rounds):,} "
        f"success={outcome.success}" + (f" {detail}" if detail else "")
    )
    return 0 if outcome.success else 1


def _cmd_elect(args) -> int:
    from repro.runtime import TopologySpec, default_registry
    from repro.util.rng import RandomSource

    _apply_engine(args.engine)
    _apply_telemetry(args)
    try:
        _apply_kernel(args.kernel)
    except (RuntimeError, ValueError) as error:
        print(error, file=sys.stderr)
        return 2
    if args.protocol is not None:
        return _cmd_elect_single(args)
    if args.topology is not None and args.topology not in ELECT_SETUPS:
        print(
            f"paired elect does not support --topology {args.topology!r}: "
            f"choose one of {sorted(ELECT_SETUPS)}; "
            f"other families need an explicit protocol argument "
            f"(e.g. repro elect le-ring/lcr --topology cycle)",
            file=sys.stderr,
        )
        return 2
    registry = default_registry()
    topology_key = args.topology or "complete"
    quantum_name, classical_name, family, topo_params = ELECT_SETUPS[topology_key]
    rng = RandomSource(args.seed)

    quantum_params = dict(_ELECT_SIDE_PARAMS.get((topology_key, "quantum"), {}))
    classical_params = dict(_ELECT_SIDE_PARAMS.get((topology_key, "classical"), {}))

    try:
        adversary = _adversary_from_args(args)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    if adversary is not None and adversary.is_null:
        adversary = None  # elect has no catalogue adversary to strip
    if adversary is not None:
        classical_spec = registry.get(classical_name)
        missing = adversary.required_capabilities() - set(classical_spec.supports)
        if missing:
            print(
                f"protocol {classical_name!r} does not support adversary "
                f"capabilities {sorted(missing)}",
                file=sys.stderr,
            )
            return 2
        classical_params["adversary"] = adversary
        print(
            f"adversary [{adversary.describe()}] armed on the engine-driven "
            f"classical side (the quantum protocol runs fault-free)",
            file=sys.stderr,
        )

    classical_spec = registry.get(classical_name)
    try:
        resolved_api = classical_spec.resolve_node_api(args.node_api)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    if "batch" in classical_spec.supports:
        classical_params["node_api"] = resolved_api

    spec = TopologySpec(family, topo_params)
    if spec.consumes_trial_rng:
        topology = spec.build(args.n, rng.spawn())
    else:
        topology = spec.build(args.n)
    n = topology.n
    if topology_key == "hypercube":
        if n != args.n:
            print(
                f"warning: hypercube rounds --n up to a power of two "
                f"({args.n} -> {n})",
                file=sys.stderr,
            )
        # Nodes know the mixing-time bound τ = 2d on a d-dimensional cube.
        quantum_params["tau"] = classical_params["tau"] = 2 * (n.bit_length() - 1)

    quantum = registry.get(quantum_name).run(topology, rng.spawn(), **quantum_params)
    classical = registry.get(classical_name).run(
        topology, rng.spawn(), **classical_params
    )

    print(f"leader election on {topology_key}, n={n}")
    for label, outcome in (("quantum  ", quantum), ("classical", classical)):
        print(
            f"  {label}: leader={outcome.detail.get('leader')} "
            f"messages={int(outcome.messages):,} "
            f"rounds={int(outcome.rounds):,} success={outcome.success}"
        )
    return 0 if quantum.success and classical.success else 1


def _cmd_agree(args) -> int:
    from repro.network.topology import CompleteTopology
    from repro.runtime import default_registry
    from repro.util.rng import RandomSource

    _apply_telemetry(args)
    try:
        _apply_kernel(args.kernel)
    except (RuntimeError, ValueError) as error:
        print(error, file=sys.stderr)
        return 2
    registry = default_registry()
    rng = RandomSource(args.seed)
    topology = CompleteTopology(args.n)
    try:
        adversary = _adversary_from_args(args)
        if adversary is not None and adversary.is_null:
            adversary = None  # agree has no catalogue adversary to strip
        engine_caps: set = set()
        if adversary is not None:
            # Input schedules apply to every row; engine-level fault and
            # adaptive capabilities only make sense on the engine-driven
            # AMP18 row (the analytic rows exchange no real messages).
            engine_caps = adversary.required_capabilities() - {"inputs"}
            if engine_caps:
                engine_supports = set(
                    registry.get("agreement/amp18-engine").supports
                )
                missing = engine_caps - engine_supports
                if missing:
                    raise ValueError(
                        f"agreement/amp18-engine does not support adversary "
                        f"capabilities {sorted(missing)} "
                        f"(supports: {sorted(engine_supports)})"
                    )
                if args.n < 3:
                    raise ValueError(
                        f"adversary capabilities {sorted(engine_caps)} arm "
                        f"the engine-driven row, which needs n >= 3"
                    )
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    side_params = {"fraction": args.fraction}
    if adversary is not None and engine_caps:
        # Analytic rows only see the input-schedule projection of the spec.
        from repro.adversary import AdversarySpec

        input_only = AdversarySpec(
            input_schedule=adversary.input_schedule,
            flip_fraction=adversary.flip_fraction,
            seed=adversary.seed,
        )
        if not input_only.is_null:
            side_params["adversary"] = input_only
        print(
            f"adversary capabilities {sorted(engine_caps)} armed on the "
            f"engine-driven row only (analytic rows exchange no real "
            f"messages)",
            file=sys.stderr,
        )
    elif adversary is not None:
        side_params["adversary"] = adversary
    quantum = registry.get("agreement/quantum").run(
        topology, rng.spawn(), **side_params
    )
    classical = registry.get("agreement/classical-shared").run(
        topology, rng.spawn(), **side_params
    )
    # Third row: the engine-driven AMP18 realization (real CONGEST
    # messages), dispatched through the requested node API.  It needs a
    # ring of successors to inform, so the degenerate K_2 (which the
    # analytical rows accept) simply omits the row.
    rows = [("quantum  ", quantum), ("classical", classical)]
    if args.n >= 3:
        engine_spec = registry.get("agreement/amp18-engine")
        engine_params = dict(side_params)
        if adversary is not None:
            engine_params["adversary"] = adversary
        engine_params["node_api"] = engine_spec.resolve_node_api(args.node_api)
        engine_side = engine_spec.run(topology, rng.spawn(), **engine_params)
        rows.append((f"engine[{engine_params['node_api']}]", engine_side))
    ones = int(args.fraction * args.n)
    suffix = f", adversary [{adversary.describe()}]" if adversary is not None else ""
    print(f"implicit agreement on K_{args.n} ({ones} benign ones{suffix})")
    for label, outcome in rows:
        print(
            f"  {label}: value={outcome.detail.get('value')} "
            f"messages={int(outcome.messages):,} valid={outcome.success}"
        )
    return 0 if all(outcome.success for _, outcome in rows) else 1


def _parse_sizes(text: str | None) -> tuple[int, ...] | None:
    if text is None:
        return None
    try:
        sizes = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise ValueError(f"--sizes must be comma-separated integers, got {text!r}")
    if not sizes:
        raise ValueError("--sizes must name at least one size")
    return sizes


def _parse_inject_kill(text: str | None) -> dict:
    """``W@T`` → {worker index: FaultPlan(kill after T trials)}."""
    if text is None:
        return {}
    from repro.fabric import FaultPlan

    worker, _, trials = text.partition("@")
    try:
        return {int(worker): FaultPlan(kill_after_trials=int(trials or 1))}
    except ValueError:
        raise ValueError(
            f"--inject-kill must be W[@T] (worker index, trials before "
            f"SIGKILL), got {text!r}"
        ) from None


def _cmd_sweep(args) -> int:
    from repro.analysis.fitting import fit_power_law
    from repro.analysis.tables import comparison_table, render_table
    from repro.runtime import ResultStore, experiment_pair, get_scenario, run_scenario

    if args.jobs is not None and args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.trials is not None and args.trials < 1:
        print(f"--trials must be >= 1, got {args.trials}", file=sys.stderr)
        return 2
    if args.fabric is None and (
        args.workers is not None or args.inject_kill is not None
    ):
        print(
            "--workers/--inject-kill configure the fabric executor and "
            "need --fabric DIR",
            file=sys.stderr,
        )
        return 2
    if args.workers is not None and args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    try:
        sizes = _parse_sizes(args.sizes)
        adversary = _adversary_from_args(args)
        fault_plans = _parse_inject_kill(args.inject_kill)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    _apply_engine(args.engine)
    _apply_telemetry(args)
    try:
        _apply_kernel(args.kernel)
    except (RuntimeError, ValueError) as error:
        print(error, file=sys.stderr)
        return 2
    if args.no_cache:
        # Disable both caches: the on-disk result store and the per-worker
        # topology memo (workers read the env).
        os.environ["REPRO_NO_TOPOLOGY_CACHE"] = "1"
        store = None
    else:
        store = ResultStore()
    overrides = dict(sizes=sizes, trials=args.trials, store=store)
    jobs = args.jobs
    if args.fabric is not None:
        jobs = args.workers if args.workers is not None else args.jobs
        fabric_options: dict = {"fault_plans": fault_plans}
        if args.lease_ttl is not None:
            fabric_options["lease_ttl"] = args.lease_ttl
        overrides.update(executor="fabric", fabric_options=fabric_options)

    if (args.experiment is None) == (args.scenario is None):
        print("sweep needs exactly one of --experiment or --scenario", file=sys.stderr)
        return 2

    if args.experiment is not None:
        try:
            quantum_scenario, classical_scenario = experiment_pair(args.experiment)
        except KeyError as error:
            print(error, file=sys.stderr)
            return 2
        if args.node_api != "auto":
            # Like adversary arming: an explicit batch request applies to
            # the sides that have an array-native implementation; scalar
            # applies everywhere.
            from repro.runtime import default_registry

            registry = default_registry()
            sides = {"quantum": quantum_scenario, "classical": classical_scenario}
            skipped = []
            for label, side_scenario in sides.items():
                supports = registry.get(side_scenario.protocol).supports
                if args.node_api == "batch" and "batch" not in supports:
                    skipped.append(label)
                else:
                    sides[label] = side_scenario.with_overrides(
                        node_api=args.node_api
                    )
            if args.node_api == "batch" and len(skipped) == 2:
                print(
                    f"neither side of {args.experiment} has an array-native "
                    f"implementation (--node-api batch)",
                    file=sys.stderr,
                )
                return 2
            if skipped:
                print(
                    f"--node-api batch applies to the "
                    f"{' and '.join(sorted(set(sides) - set(skipped)))} side "
                    f"only ({' and '.join(skipped)} stays scalar)",
                    file=sys.stderr,
                )
            quantum_scenario = sides["quantum"]
            classical_scenario = sides["classical"]
        if adversary is not None and adversary.is_null:
            # Explicit fault-free baseline: strip any catalogue adversary.
            quantum_scenario = quantum_scenario.with_overrides(adversary=None)
            classical_scenario = classical_scenario.with_overrides(adversary=None)
        elif adversary is not None:
            # Arm each side only where the protocol supports the spec (the
            # quantum protocols are not engine-driven, so e.g. --drop-rate
            # on E1 applies to the classical side alone, as in `elect`).
            from repro.runtime import default_registry

            registry = default_registry()
            armed_sides = []
            unarmed_sides = []
            sides = {"quantum": quantum_scenario, "classical": classical_scenario}
            for label, side_scenario in sides.items():
                supports = set(registry.get(side_scenario.protocol).supports)
                if adversary.required_capabilities() <= supports:
                    sides[label] = side_scenario.with_overrides(adversary=adversary)
                    armed_sides.append(label)
                else:
                    unarmed_sides.append(label)
            if not armed_sides:
                print(
                    f"neither side of {args.experiment} supports adversary "
                    f"capabilities {sorted(adversary.required_capabilities())}",
                    file=sys.stderr,
                )
                return 2
            if unarmed_sides:
                print(
                    f"adversary [{adversary.describe()}] armed on the "
                    f"{' and '.join(armed_sides)} side only "
                    f"({' and '.join(unarmed_sides)} runs fault-free)",
                    file=sys.stderr,
                )
            quantum_scenario = sides["quantum"]
            classical_scenario = sides["classical"]
        # Independent seeds per side (the catalogue convention: the classical
        # series must not share the quantum series' RNG streams).
        quantum_seed = args.seed
        classical_seed = None if args.seed is None else args.seed + 1
        quantum_kwargs = dict(overrides)
        classical_kwargs = dict(overrides)
        if args.fabric is not None:
            # One queue directory carries one job: the pair gets subdirs.
            base = pathlib.Path(args.fabric)
            quantum_kwargs["fabric_dir"] = base / "quantum"
            classical_kwargs["fabric_dir"] = base / "classical"
        try:
            quantum = run_scenario(
                quantum_scenario, jobs=jobs, seed=quantum_seed, **quantum_kwargs
            )
            classical = run_scenario(
                classical_scenario, jobs=jobs, seed=classical_seed, **classical_kwargs
            )
        except (ValueError, RuntimeError) as error:
            print(error, file=sys.stderr)
            return 2
        q_series = quantum.to_series("quantum")
        c_series = classical.to_series("classical")
        print(
            comparison_table(
                q_series,
                c_series,
                title=f"{args.experiment} — {quantum_scenario.name} vs "
                f"{classical_scenario.name}",
            )
        )
        if len(q_series.sizes) >= 2:
            q_fit = fit_power_law(q_series.sizes, q_series.messages)
            c_fit = fit_power_law(c_series.sizes, c_series.messages)
            print(f"quantum  : measured {q_fit}")
            print(f"classical: measured {c_fit}")
        print(
            f"success rates: quantum {quantum.overall_success_rate():.2f}, "
            f"classical {classical.overall_success_rate():.2f}"
        )
        return 0

    try:
        scenario = get_scenario(args.scenario)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2
    if adversary is not None:
        scenario = scenario.with_overrides(adversary=adversary)
    if args.node_api != "auto":
        scenario = scenario.with_overrides(node_api=args.node_api)
    if args.fabric is not None:
        overrides["fabric_dir"] = args.fabric
    try:
        run = run_scenario(scenario, jobs=jobs, seed=args.seed, **overrides)
    except (ValueError, RuntimeError) as error:
        print(error, file=sys.stderr)
        return 2
    rows = [
        [
            str(ts.n),
            f"{ts.messages_mean:,.1f}",
            f"{ts.messages_p50:,.0f}",
            f"{ts.messages_p90:,.0f}",
            f"{ts.rounds_mean:,.1f}",
            f"{ts.success_rate:.2f}",
        ]
        for ts in run.trial_sets
    ]
    adversary_note = (
        f", adversary [{scenario.adversary.describe()}]"
        if scenario.adversary is not None
        else ""
    )
    api_note = (
        f", node-api {scenario.resolved_node_api}"
        if scenario.resolved_node_api != "scalar"
        else ""
    )
    print(
        render_table(
            ["n", "msgs mean", "p50", "p90", "rounds", "success"],
            rows,
            title=f"{scenario.name} ({scenario.protocol} on "
            f"{scenario.topology.family}, {run.trial_sets[0].trials} "
            f"trials/size{adversary_note}{api_note})",
        )
    )
    if len(run.sizes) >= 2:
        print(f"fit: {fit_power_law(run.sizes, run.messages)}")
    return 0


def _cmd_worker(args) -> int:
    from repro.fabric import FaultPlan, run_worker

    _apply_telemetry(args)
    fault_plan = None
    if args.inject_kill_after is not None:
        fault_plan = FaultPlan(kill_after_trials=args.inject_kill_after)
    try:
        summary = run_worker(
            args.dir,
            worker_id=args.id,
            poll=args.poll,
            max_shards=args.max_shards,
            fault_plan=fault_plan,
        )
    except FileNotFoundError as error:
        print(error, file=sys.stderr)
        return 2
    print(
        f"worker {summary['worker']}: completed {len(summary['completed'])} "
        f"shard(s), {summary['trials']} trial(s); job "
        f"{'done' if summary['all_done'] else 'still has pending shards'}"
    )
    return 0


def _render_fabric_status(status) -> None:
    shards = status["shards"]
    workers = status["workers"]
    print(f"fabric job at {status['root']}")
    print(
        f"  scenario : {status['scenario']} ({status['protocol']}, sizes "
        f"{status['sizes']}, {status['trials']} trials/size)"
    )
    print(
        f"  shards   : {shards['done']} done, {shards['leased']} leased, "
        f"{shards['pending']} pending of {shards['total']}"
    )
    for lease in status["leases"]:
        owner = lease["worker"] or "?"
        age = "?" if lease["age"] is None else f"{lease['age']:.1f}s"
        print(f"    {lease['shard']}: {lease['state']} by {owner} (age {age})")
    live = ", ".join(workers["live"]) or "none"
    print(
        f"  workers  : {len(workers['live'])} live of "
        f"{len(workers['registered'])} registered ({live})"
    )
    for row in workers.get("detail", []):
        state = "live" if row["live"] else "stale"
        counters = row.get("counters") or {}
        if row.get("trials_per_min") is None:
            # mtime-only heartbeat (legacy worker): no counters to rate.
            rates = "no counters"
        else:
            rates = (
                f"{counters.get('shards_completed', 0)} shards / "
                f"{counters.get('trials_executed', 0)} trials "
                f"({row['shards_per_min']:.1f} shards/min, "
                f"{row['trials_per_min']:.1f} trials/min)"
            )
        age = "?" if row.get("age") is None else f"{row['age']:.1f}s"
        print(f"    {row['worker']}: {state}, {rates}, heartbeat {age} ago")
    print(f"  reaper   : {status['reaper'] or 'none (no live workers)'}")


def _cmd_fabric(args) -> int:
    import json as json_module
    import time as time_module

    from repro.fabric import fabric_status

    watch = getattr(args, "watch", False)
    while True:
        try:
            status = fabric_status(args.dir)
        except FileNotFoundError as error:
            print(error, file=sys.stderr)
            return 2
        if args.json:
            print(json_module.dumps(status, indent=2, sort_keys=True))
        else:
            if watch:
                print("\x1b[2J\x1b[H", end="")  # clear screen, home cursor
            _render_fabric_status(status)
        shards = status["shards"]
        if not watch or (shards["pending"] == 0 and shards["leased"] == 0):
            return 0
        time_module.sleep(args.interval)


def _cmd_serve(args) -> int:
    _apply_engine(args.engine)
    _apply_telemetry(args)
    try:
        _apply_kernel(args.kernel)
    except (ValueError, RuntimeError) as error:
        print(error, file=sys.stderr)
        return 2
    from repro.runtime import ResultStore
    from repro.serve import ServeApp, serve_forever

    store = ResultStore(
        root=args.store, memory_entries=args.store_memory
    )
    app = ServeApp(
        fabric_root=args.fabric_dir,
        store=store,
        workers=args.workers,
        max_jobs=args.max_jobs,
        lease_ttl=args.lease_ttl,
        run_memory=args.run_memory,
    )

    def ready(server) -> None:
        host, port = server.server_address[:2]
        print(
            f"repro serve listening on http://{host}:{port} "
            f"({args.workers} fabric workers/job, {args.max_jobs} "
            f"concurrent jobs, fabric {args.fabric_dir}, store {store.root})",
            flush=True,
        )

    serve_forever(app, host=args.host, port=args.port, ready_callback=ready)
    print(
        f"repro serve drained cleanly after {app.requests} request(s)",
        flush=True,
    )
    return 0


def _cmd_metrics(args) -> int:
    import json

    from repro.telemetry import metrics_registry

    if (args.scenario is None) == (args.fabric is None):
        print(
            "metrics needs exactly one of --scenario or --fabric",
            file=sys.stderr,
        )
        return 2
    registry = metrics_registry()
    if args.scenario is not None:
        _apply_engine(args.engine)
        try:
            _apply_kernel(args.kernel)
            sizes = _parse_sizes(args.sizes)
        except (ValueError, RuntimeError) as error:
            print(error, file=sys.stderr)
            return 2
        from repro.runtime import get_scenario, run_scenario

        try:
            scenario = get_scenario(args.scenario)
        except KeyError as error:
            print(error, file=sys.stderr)
            return 2
        try:
            run_scenario(
                scenario,
                jobs=args.jobs,
                sizes=sizes,
                trials=args.trials,
                seed=args.seed,
                store=None,
            )
        except (ValueError, RuntimeError) as error:
            print(error, file=sys.stderr)
            return 2
    else:
        from repro.fabric import FabricQueue

        queue = FabricQueue(args.fabric)
        try:
            queue.manifest()
        except FileNotFoundError as error:
            print(error, file=sys.stderr)
            return 2
        # Fold the fleet's enriched heartbeat counters into registry
        # shape, so a finished (or running) fabric job exports through
        # the same Prometheus/JSON formatters a live process would.
        merged: dict[str, float] = {}
        for worker_id in queue.registered_workers():
            counters = (queue.worker_record(worker_id) or {}).get(
                "counters"
            ) or {}
            for key, value in counters.items():
                if isinstance(value, (int, float)):
                    merged[key] = merged.get(key, 0) + value
        for key, value in sorted(merged.items()):
            registry.counter(
                f"repro_fabric_worker_{key}",
                help="summed from fabric worker heartbeat counters",
            ).inc(value)
        progress = queue.progress()
        registry.gauge("repro_fabric_shards_total").set(
            progress["shards"]["total"]
        )
        registry.gauge("repro_fabric_shards_done").set(
            progress["shards"]["done"]
        )
    if args.format == "json":
        print(json.dumps(registry.to_json(), indent=2, sort_keys=True))
    else:
        print(registry.to_prometheus(), end="")
    return 0


def _cmd_protocols(args) -> int:
    import json

    from repro.analysis.tables import render_table
    from repro.runtime import default_registry

    if getattr(args, "json", False):
        # The same payload `repro serve` answers on GET /v1/protocols.
        from repro.serve.api import protocols_payload

        print(json.dumps(protocols_payload(), indent=2))
        return 0
    rows = [
        [
            spec.name,
            spec.side,
            spec.family,
            ",".join(sorted(spec.supports)) or "-",
            spec.description,
        ]
        for spec in default_registry()
    ]
    print(render_table(["protocol", "side", "family", "supports", "claim"],
                       rows, title="registered protocols"))
    return 0


def _cmd_scenarios(args) -> int:
    import json

    from repro.analysis.tables import render_table
    from repro.runtime import SCENARIOS

    if args.protocols:
        return _cmd_protocols(args)
    if getattr(args, "json", False):
        # The same payload `repro serve` answers on GET /v1/scenarios.
        from repro.serve.api import scenarios_payload

        print(json.dumps(scenarios_payload(), indent=2))
        return 0
    rows = [
        [
            scenario.name,
            scenario.protocol,
            scenario.topology.family,
            ",".join(str(n) for n in scenario.sizes),
            str(scenario.trials),
            scenario.adversary.describe() if scenario.adversary else "-",
        ]
        for _, scenario in sorted(SCENARIOS.items())
    ]
    print(
        render_table(
            ["scenario", "protocol", "topology", "sizes", "trials", "adversary"],
            rows,
            title="scenario catalogue (run with: repro sweep --scenario <name>)",
        )
    )
    return 0


def _cmd_cache(args) -> int:
    import json

    from repro.analysis.tables import render_table
    from repro.runtime import ResultStore

    store = ResultStore()
    if args.cache_command == "stats":
        stats = store.stats()
        print(f"root       : {stats['root']}")
        print(f"entries    : {stats['entries']}")
        print(f"bytes      : {stats['bytes']:,}")
        print(f"entry cap  : {stats['max_entries']:,}")
        return 0
    if args.cache_command == "clear":
        removed = store.clear()
        print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'}")
        return 0
    # list: oldest writes first — the order eviction will take them in,
    # so the head of the listing is exactly what the cap claims next.
    paths = store.entries()
    shown = paths[: args.limit] if args.limit > 0 else paths
    rows = []
    for path in shown:
        try:
            size = f"{path.stat().st_size:,}"
            payload = json.loads(path.read_text())
            scenario = str(payload.get("scenario", "?"))
            n = str(payload.get("trial_set", {}).get("n", "?"))
            adversary = payload.get("identity", {}).get("adversary")
            fault = "yes" if adversary else "-"
        except (OSError, json.JSONDecodeError):
            scenario, n, fault, size = "<unreadable>", "?", "?", "?"
        rows.append([path.name, scenario, n, fault, size])
    if not rows:
        print(f"result cache at {store.root} is empty")
        return 0
    print(
        render_table(
            ["file", "scenario", "n", "adversary", "bytes"],
            rows,
            title=f"result cache ({len(paths)} entries, oldest/evicted-first, "
            f"showing {len(rows)})",
        )
    )
    return 0


def _cmd_profile(args) -> int:
    """Run one scenario with profiling forced on; print the phase table."""
    from repro.runtime import get_scenario, run_scenario
    from repro.telemetry import format_profile, set_profiling

    _apply_engine(args.engine)
    _apply_telemetry(args)
    set_profiling(True)
    try:
        _apply_kernel(args.kernel)
    except (RuntimeError, ValueError) as error:
        print(error, file=sys.stderr)
        return 2
    try:
        sizes = _parse_sizes(args.sizes)
        scenario = get_scenario(args.scenario)
    except (KeyError, ValueError) as error:
        print(error, file=sys.stderr)
        return 2
    if args.node_api != "auto":
        scenario = scenario.with_overrides(node_api=args.node_api)
    try:
        # store=None: a cache hit executes nothing, which would profile
        # nothing — the profile command always computes.
        run = run_scenario(
            scenario,
            jobs=args.jobs,
            seed=args.seed,
            sizes=sizes,
            trials=args.trials,
            store=None,
        )
    except (ValueError, RuntimeError) as error:
        print(error, file=sys.stderr)
        return 2
    total_trials = sum(ts.trials for ts in run.trial_sets)
    print(
        f"phase profile: {scenario.name} ({scenario.protocol}), sizes "
        f"{list(run.sizes)}, {total_trials} trials"
    )
    print(format_profile(run.meta.get("profile", {})))
    return 0


def _cmd_trace(args) -> int:
    """Validate JSONL trace files against the versioned trace schema."""
    from repro.telemetry import TraceSchemaError, validate_file

    failures = 0
    for path in args.files:
        try:
            counts = validate_file(path)
        except OSError as error:
            print(error, file=sys.stderr)
            failures += 1
            continue
        except TraceSchemaError as error:
            print(f"invalid trace: {error}", file=sys.stderr)
            failures += 1
            continue
        total = sum(counts.values())
        detail = " ".join(
            f"{event}:{count}" for event, count in sorted(counts.items())
        )
        print(f"{path}: ok ({total} records) {detail}")
    return 2 if failures else 0


def _cmd_routing_demo(args) -> int:
    import math

    from repro.network import graphs
    from repro.quantum.routing import QuantumRoutingNetwork

    leaves = args.leaves
    network = QuantumRoutingNetwork(graphs.star(leaves + 1), alphabet_size=1)
    network.allocate_local(0, "ctl", max(leaves, 2))
    network.build()
    amplitude = 1.0 / math.sqrt(leaves)
    network.prepare_recipient_superposition(
        0, "ctl", {leaf: amplitude for leaf in range(1, leaves + 1)}
    )
    network.write_message_controlled(0, "ctl", symbol=1)
    print(
        f"superposed send to one of {leaves} leaves: message complexity = "
        f"{network.round_message_complexity()} (classical broadcast: {leaves})"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Quantum Communication Advantage for "
        "Leader Election and Agreement' (PODC 2025).",
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default=None,
        help="enable structured (logfmt) logging at this level; fabric "
        "workers and the coordinator log joins, steals, completions, "
        "elections, and respawns",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list reproduced experiments").set_defaults(
        handler=_cmd_list
    )

    info = commands.add_parser("info", help="describe one experiment")
    info.add_argument("experiment", help="experiment id, e.g. E4")
    info.set_defaults(handler=_cmd_info)

    elect = commands.add_parser("elect", help="run a leader election")
    elect.add_argument(
        "protocol",
        nargs="?",
        default=None,
        help="optional registered protocol name (e.g. le-ring/lcr) for a "
        "single-protocol run on any topology family; omit for the paired "
        "quantum-vs-classical comparison",
    )
    elect.add_argument(
        "--topology",
        default=None,
        help=f"paired mode: one of {sorted(ELECT_SETUPS)} (default "
        f"complete); single-protocol mode: any topology family name "
        f"(e.g. cycle)",
    )
    elect.add_argument("-n", "--n", type=int, default=1024)
    elect.add_argument("--seed", type=int, default=0)
    elect.add_argument(
        "--engine",
        choices=("fast", "reference"),
        default=None,
        help="engine backend: vectorized 'fast' (default) or the "
        "'reference' oracle loop (both are trace-equivalent)",
    )
    _add_node_api_flag(elect)
    _add_kernel_flag(elect)
    _add_adversary_flags(elect)
    _add_telemetry_flags(elect)
    elect.set_defaults(handler=_cmd_elect)

    agree = commands.add_parser("agree", help="run implicit agreement")
    agree.add_argument("--n", type=int, default=4096)
    agree.add_argument("--fraction", type=float, default=0.3)
    agree.add_argument("--seed", type=int, default=0)
    _add_node_api_flag(agree)
    _add_kernel_flag(agree)
    _add_adversary_flags(agree)
    _add_telemetry_flags(agree)
    agree.set_defaults(handler=_cmd_agree)

    sweep = commands.add_parser(
        "sweep",
        help="run a scenario sweep with parallel trials",
        description="Run an experiment's scenario pair (or a single "
        "scenario) across its size grid.  Trials fan out over --jobs "
        "worker processes; per-size aggregates are cached on disk under "
        "benchmarks/results/cache/ so re-running or extending a grid only "
        "computes the missing sizes (disable with --no-cache).  Aggregates "
        "are bit-identical for any --jobs value and either --engine "
        "backend.",
    )
    sweep.add_argument("--experiment", help="experiment id with a scenario pair, e.g. E1")
    sweep.add_argument("--scenario", help="a single scenario name (see: scenarios)")
    sweep.add_argument("--sizes", help="comma-separated size grid override")
    sweep.add_argument("--trials", type=int, help="trials per size override")
    sweep.add_argument("--seed", type=int, help="scenario seed override")
    sweep.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for trials (default: all cores)",
    )
    sweep.add_argument(
        "--engine",
        choices=("fast", "reference"),
        default=None,
        help="engine backend: vectorized 'fast' (default) or the "
        "'reference' oracle loop (both are trace-equivalent)",
    )
    sweep.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the on-disk result cache and the per-worker topology "
        "memo; every trial recomputes from scratch",
    )
    sweep.add_argument(
        "--fabric",
        metavar="DIR",
        default=None,
        help="execute through the distributed work-queue fabric rooted at "
        "DIR instead of the in-process pool; remote hosts sharing DIR "
        "join with `repro worker DIR`",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        help="local fabric worker processes to spawn (with --fabric; "
        "default: --jobs resolution)",
    )
    sweep.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        help="fabric lease heartbeat TTL in seconds (with --fabric)",
    )
    sweep.add_argument(
        "--inject-kill",
        metavar="W[@T]",
        default=None,
        help="fault-injection harness (with --fabric): SIGKILL local "
        "worker index W after T executed trials (default 1); the sweep "
        "must still resume to completion",
    )
    _add_node_api_flag(sweep)
    _add_kernel_flag(sweep)
    _add_adversary_flags(sweep)
    _add_telemetry_flags(sweep)
    sweep.set_defaults(handler=_cmd_sweep)

    worker = commands.add_parser(
        "worker",
        help="join a distributed sweep fleet (fabric queue directory)",
        description="Pull shards from the fabric queue at DIR under "
        "heartbeat leases, execute their trials with the exact RNG "
        "streams the in-process runner derives, and push results into "
        "the job's content-addressed store.  Runs until the sweep is "
        "done (or --max-shards is hit).",
    )
    worker.add_argument("dir", help="fabric queue directory (shared)")
    worker.add_argument(
        "--id", default=None, help="worker id (default: <host>-<pid>)"
    )
    worker.add_argument(
        "--poll",
        type=float,
        default=0.2,
        help="seconds between queue polls when no shard is claimable",
    )
    worker.add_argument(
        "--max-shards",
        type=int,
        default=None,
        help="stop after completing this many shards",
    )
    worker.add_argument(
        "--inject-kill-after",
        type=int,
        default=None,
        metavar="T",
        help="fault injection: SIGKILL this worker after T executed trials",
    )
    _add_telemetry_flags(worker)
    worker.set_defaults(handler=_cmd_worker)

    fabric = commands.add_parser(
        "fabric", help="inspect a distributed sweep fabric job"
    )
    fabric_commands = fabric.add_subparsers(dest="fabric_command", required=True)
    fabric_status_parser = fabric_commands.add_parser(
        "status",
        help="shards done/leased/pending, live workers, elected reaper",
    )
    fabric_status_parser.add_argument("dir", help="fabric queue directory")
    fabric_status_parser.add_argument(
        "--json", action="store_true", help="machine-readable snapshot"
    )
    fabric_status_parser.add_argument(
        "--watch",
        action="store_true",
        help="refresh the snapshot every --interval seconds until the "
        "job has no pending or leased shards",
    )
    fabric_status_parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between --watch refreshes",
    )
    fabric_status_parser.set_defaults(handler=_cmd_fabric)

    serve = commands.add_parser(
        "serve",
        help="long-running HTTP scenario service with tiered caching",
        description="Serve the scenario runtime over HTTP: GET "
        "/v1/protocols and /v1/scenarios dump the catalogue, POST "
        "/v1/runs answers hot scenarios straight from the tiered result "
        "cache (in-process LRU over the on-disk store) and queues cold "
        "ones as single-flighted fabric jobs with a bounded worker "
        "fleet; GET /v1/runs/<id> polls, /v1/runs/<id>/events streams "
        "progress, /metrics exports Prometheus text, /healthz reports "
        "liveness.  SIGTERM drains gracefully: stop accepting, finish "
        "in-flight jobs, release leases.",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    serve.add_argument(
        "--port", type=int, default=8765, help="bind port (0: pick a free one)"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="fabric worker processes per cold job",
    )
    serve.add_argument(
        "--max-jobs",
        type=int,
        default=2,
        help="cold jobs computing concurrently (further ones queue)",
    )
    serve.add_argument(
        "--fabric-dir",
        default="benchmarks/results/serve-fabric",
        metavar="DIR",
        help="root directory for the server's fabric job queues",
    )
    serve.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="result store root (default: REPRO_RESULT_CACHE or the "
        "standard cache directory)",
    )
    serve.add_argument(
        "--store-memory",
        type=int,
        default=256,
        metavar="N",
        help="trial sets held in the store's in-process memory tier",
    )
    serve.add_argument(
        "--run-memory",
        type=int,
        default=128,
        metavar="N",
        help="assembled scenario runs held in the tier-1 LRU",
    )
    serve.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        help="fabric lease heartbeat TTL for serve-owned jobs (seconds)",
    )
    serve.add_argument(
        "--engine",
        choices=("fast", "reference"),
        default=None,
        help="engine backend for computed runs (workers inherit)",
    )
    _add_kernel_flag(serve)
    _add_telemetry_flags(serve)
    serve.set_defaults(handler=_cmd_serve)

    cache = commands.add_parser(
        "cache", help="inspect or empty the on-disk result cache"
    )
    cache_commands = cache.add_subparsers(dest="cache_command", required=True)
    cache_list = cache_commands.add_parser("list", help="list cache entries")
    cache_list.add_argument(
        "--limit",
        type=int,
        default=20,
        help="show at most this many oldest entries (0: all)",
    )
    cache_list.set_defaults(handler=_cmd_cache)
    cache_commands.add_parser(
        "stats", help="entry count / total size / cap"
    ).set_defaults(handler=_cmd_cache)
    cache_commands.add_parser(
        "clear", help="delete every cache entry"
    ).set_defaults(handler=_cmd_cache)

    scenarios = commands.add_parser(
        "scenarios", help="list the scenario catalogue / protocol registry"
    )
    scenarios.add_argument(
        "--protocols", action="store_true", help="list registered protocols instead"
    )
    scenarios.add_argument(
        "--json",
        action="store_true",
        help="machine-readable catalogue dump (adversary specs, node-api, "
        "grids) for tooling and CI",
    )
    scenarios.set_defaults(handler=_cmd_scenarios)

    protocols = commands.add_parser(
        "protocols", help="list the protocol registry with capability tags"
    )
    protocols.add_argument(
        "--json",
        action="store_true",
        help="machine-readable registry dump (supports tags, defaults, "
        "topologies) for tooling and CI",
    )
    protocols.set_defaults(handler=_cmd_protocols)

    profile = commands.add_parser(
        "profile",
        help="run a scenario with phase profiling and print the breakdown",
        description="Run one scenario from the catalogue with phase "
        "profiling forced on and print where the wall time went "
        "(engine.step/gather/deliver per dispatch path; fabric "
        "serialize/claim/execute/save when workers report in).  The "
        "result cache is bypassed so every trial actually executes; "
        "profiling never changes the computed aggregates.",
    )
    profile.add_argument(
        "--scenario", required=True, help="scenario name (see: scenarios)"
    )
    profile.add_argument("--sizes", help="comma-separated size grid override")
    profile.add_argument("--trials", type=int, help="trials per size override")
    profile.add_argument("--seed", type=int, help="scenario seed override")
    profile.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for trials (default: all cores; per-worker "
        "phase deltas are merged into the report)",
    )
    profile.add_argument(
        "--engine",
        choices=("fast", "reference"),
        default=None,
        help="engine backend to profile (reference paths report rounds "
        "but no per-phase split)",
    )
    _add_node_api_flag(profile)
    _add_kernel_flag(profile)
    profile.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="also append JSONL trace records to FILE while profiling",
    )
    profile.set_defaults(handler=_cmd_profile, profile=False)

    metrics = commands.add_parser(
        "metrics",
        help="run a scenario (or read a fabric job) and dump the registry",
        description="Export the telemetry metrics registry without "
        "standing up the server: --scenario runs one catalogue scenario "
        "in-process and dumps the counters/histograms it charged; "
        "--fabric folds a fabric job's worker heartbeat counters into "
        "registry shape instead.  --format picks Prometheus text "
        "(what `repro serve` answers on GET /metrics) or JSON.",
    )
    metrics.add_argument(
        "--scenario", default=None, help="scenario name (see: scenarios)"
    )
    metrics.add_argument(
        "--fabric",
        default=None,
        metavar="DIR",
        help="read a fabric job's worker counters instead of running",
    )
    metrics.add_argument(
        "--format",
        choices=("prom", "json"),
        default="prom",
        help="output format (default: Prometheus text exposition)",
    )
    metrics.add_argument("--sizes", help="comma-separated size grid override")
    metrics.add_argument("--trials", type=int, help="trials per size override")
    metrics.add_argument("--seed", type=int, help="scenario seed override")
    metrics.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for trials (default: all cores; per-worker "
        "registry deltas merge into the dump)",
    )
    metrics.add_argument(
        "--engine",
        choices=("fast", "reference"),
        default=None,
        help="engine backend for the scenario run",
    )
    _add_kernel_flag(metrics)
    metrics.set_defaults(handler=_cmd_metrics)

    trace = commands.add_parser(
        "trace", help="work with JSONL trace files"
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)
    trace_validate = trace_commands.add_parser(
        "validate",
        help="check trace files against the versioned record schema",
    )
    trace_validate.add_argument(
        "files", nargs="+", help="JSONL trace files (from --trace FILE)"
    )
    trace_validate.set_defaults(handler=_cmd_trace)

    demo = commands.add_parser("routing-demo", help="Appendix-A superposed send")
    demo.add_argument("--leaves", type=int, default=3)
    demo.set_defaults(handler=_cmd_routing_demo)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_level is not None:
        from repro.telemetry import configure_logging

        configure_logging(args.log_level)
    return args.handler(args)
