"""repro — reproduction of "Quantum Communication Advantage for Leader Election
and Agreement" (Dufoulon, Magniez, Pandurangan; PODC 2025, arXiv:2502.07416).

The package implements the paper's distributed quantum subroutines (Grover
search, quantum counting, search via quantum walk), its five protocols
(QuantumLE, QuantumRWLE, QuantumQWLE, QuantumGeneralLE, QuantumAgreement),
the classical baselines they are measured against, and the CONGEST network
substrate underneath — see DESIGN.md for the full inventory.

Quickstart::

    from repro import RandomSource, quantum_le_complete

    result = quantum_le_complete(n=1024, rng=RandomSource(0))
    assert result.success
    print(result.leader, result.messages, result.rounds)
"""

from repro.adversary import AdversarySpec
from repro.classical import (
    classical_agreement_private,
    classical_agreement_shared,
    classical_le_complete,
    classical_le_diameter2,
    classical_le_general,
    classical_le_mixing,
    classical_mst,
    hirschberg_sinclair_ring,
    lcr_ring,
)
from repro.core import (
    AgreementResult,
    LeaderElectionResult,
    approx_count,
    distributed_grover_search,
    quantum_count,
    quantum_minimum,
    walk_search,
)
from repro.core.agreement import quantum_agreement
from repro.core.leader_election import (
    MSTResult,
    QWLEParameters,
    make_explicit,
    quantum_general_le,
    quantum_le_complete,
    quantum_mst,
    quantum_qwle,
    quantum_rwle,
)
from repro.quantum import exact_star_grover
from repro.network import MetricsRecorder, Status
from repro.runtime import (
    ProtocolRegistry,
    ProtocolSpec,
    Scenario,
    ScenarioRun,
    TopologySpec,
    TrialOutcome,
    TrialSet,
    default_registry,
    get_scenario,
    run_scenario,
)
from repro.util import FaultInjector, RandomSource, SharedCoin

__version__ = "1.2.0"

__all__ = [
    "AdversarySpec",
    "AgreementResult",
    "FaultInjector",
    "LeaderElectionResult",
    "MSTResult",
    "MetricsRecorder",
    "ProtocolRegistry",
    "ProtocolSpec",
    "QWLEParameters",
    "RandomSource",
    "Scenario",
    "ScenarioRun",
    "SharedCoin",
    "Status",
    "TopologySpec",
    "TrialOutcome",
    "TrialSet",
    "approx_count",
    "classical_agreement_private",
    "classical_agreement_shared",
    "classical_le_complete",
    "classical_le_diameter2",
    "classical_le_general",
    "classical_le_mixing",
    "classical_mst",
    "default_registry",
    "distributed_grover_search",
    "exact_star_grover",
    "get_scenario",
    "hirschberg_sinclair_ring",
    "lcr_ring",
    "make_explicit",
    "quantum_agreement",
    "quantum_count",
    "quantum_general_le",
    "quantum_le_complete",
    "quantum_minimum",
    "quantum_mst",
    "quantum_qwle",
    "quantum_rwle",
    "run_scenario",
    "walk_search",
]
