"""Compiled kernel tier for the engine's per-round array operations.

The batch path (:meth:`SynchronousEngine._run_fast_batch`) spends its
rounds in a handful of array primitives: the routing gather through a
:class:`~repro.network.porttable.PortTable`, the stable receiver sort
that canonicalizes the inbox, and the per-protocol scatter folds
(max/min/lexicographic-min).  This module gives each primitive two
interchangeable implementations:

* ``numpy`` — pure numpy, always available, the bit-identity baseline;
* ``numba`` — ``@njit``-compiled loops, used only when numba is
  importable.  Every numba kernel computes the *same function* as its
  numpy twin (identical outputs, including tie-breaking), so switching
  tiers can never change a trial — only its wall-clock.

Selection goes through the ``kernel`` knob: ``auto`` (numba when
available, else numpy), ``numpy``, or ``numba``.  The default comes from
the ``REPRO_KERNEL`` environment variable (the CLI's ``--kernel`` flag
sets it process-wide so worker processes inherit).  Requesting
``numba`` explicitly when numba is not installed raises — an explicit
request must never silently degrade.

Because the tiers are bit-identical, the kernel choice is deliberately
*excluded* from :class:`~repro.runtime.store.ResultStore` cache keys:
results computed under either tier serve both.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "KERNEL_CHOICES",
    "KernelSet",
    "default_kernel",
    "get_kernels",
    "numba_available",
    "resolve_kernel",
]

#: Valid values of the ``kernel`` knob / ``REPRO_KERNEL`` env var.
KERNEL_CHOICES = ("auto", "numba", "numpy")

_NUMBA_AVAILABLE: bool | None = None


def numba_available() -> bool:
    """True when the optional numba dependency is importable."""
    global _NUMBA_AVAILABLE
    if _NUMBA_AVAILABLE is None:
        try:
            import numba  # noqa: F401

            _NUMBA_AVAILABLE = True
        except ImportError:
            _NUMBA_AVAILABLE = False
    return _NUMBA_AVAILABLE


def default_kernel() -> str:
    """The process-wide kernel request (``REPRO_KERNEL``, default auto)."""
    name = os.environ.get("REPRO_KERNEL", "auto")
    if name not in KERNEL_CHOICES:
        raise ValueError(
            f"REPRO_KERNEL must be one of {KERNEL_CHOICES}, got {name!r}"
        )
    return name


def resolve_kernel(name: str | None = None) -> str:
    """Resolve a kernel request to the concrete tier ("numpy"/"numba").

    ``None`` reads the process default (:func:`default_kernel`).  An
    explicit ``"numba"`` request with numba absent raises — silently
    falling back would misreport what actually ran.
    """
    if name is None:
        name = default_kernel()
    if name not in KERNEL_CHOICES:
        raise ValueError(f"kernel must be one of {KERNEL_CHOICES}, got {name!r}")
    if name == "auto":
        return "numba" if numba_available() else "numpy"
    if name == "numba" and not numba_available():
        raise RuntimeError(
            "kernel='numba' was requested but numba is not installed; "
            "install numba or use kernel=auto / kernel=numpy (the numpy "
            "tier is bit-identical)"
        )
    return name


class KernelSet:
    """The pure-numpy kernel tier (and the contract numba must match)."""

    name = "numpy"
    is_numba = False

    # -- routing / inbox canonicalization ----------------------------------

    def route_csr(self, offsets, neighbors, reverse, senders, ports):
        """CSR routing gather: (receivers, arrival ports) for each row."""
        base = offsets[senders] + ports
        return neighbors[base], reverse[base]

    def stable_receiver_order(self, receivers, n_groups):
        """Permutation sorting rows by receiver, ties in original order.

        ``n_groups`` bounds the receiver values (they are node ids < n);
        the numba tier uses it for an O(n + k) counting sort that yields
        the exact same permutation as numpy's stable argsort.
        """
        return np.argsort(receivers, kind="stable")

    # -- protocol scatter folds --------------------------------------------

    def scatter_max(self, target, idx, values) -> None:
        """target[idx] = max(target[idx], values), duplicate-safe."""
        np.maximum.at(target, idx, values)

    def scatter_min(self, target, idx, values) -> None:
        """target[idx] = min(target[idx], values), duplicate-safe."""
        np.minimum.at(target, idx, values)

    def group_argmin_lex3(self, groups, w, a, b, size):
        """Per-group row index of the lexicographic minimum (w, a, b).

        Returns an int64 array of length ``size``: for each group id the
        position (into the input rows) of its smallest (w, a, b) triple,
        or -1 for groups with no rows.  Exact ties keep the earliest row,
        matching a sequential first-wins scan.
        """
        pos = np.full(size, -1, dtype=np.int64)
        if len(groups) == 0:
            return pos
        order = np.lexsort((b, a, w))
        # Reverse order: later assignments overwrite, so each group ends
        # up holding its best row (stable lexsort ⇒ earliest row on ties).
        rev = order[::-1]
        pos[groups[rev]] = rev
        return pos

    def scatter_min_lex3(self, best_w, best_a, best_b, idx, w, a, b) -> None:
        """Fold rows into per-slot lexicographic minima, in place.

        ``best_*`` are parallel per-slot state columns; each row
        (w, a, b) at slot ``idx`` replaces the slot's triple when
        strictly smaller in lexicographic order.
        """
        pos = self.group_argmin_lex3(idx, w, a, b, len(best_w))
        hit = np.nonzero(pos >= 0)[0]
        if len(hit) == 0:
            return
        p = pos[hit]
        better = (w[p] < best_w[hit]) | (
            (w[p] == best_w[hit])
            & (
                (a[p] < best_a[hit])
                | ((a[p] == best_a[hit]) & (b[p] < best_b[hit]))
            )
        )
        g = hit[better]
        p = p[better]
        best_w[g] = w[p]
        best_a[g] = a[p]
        best_b[g] = b[p]


class _NumbaKernelSet(KernelSet):
    """Numba-compiled twins of every numpy kernel (bit-identical)."""

    name = "numba"
    is_numba = True

    def __init__(self):
        funcs = _compiled_numba_kernels()
        self._route_csr = funcs["route_csr"]
        self._counting_order = funcs["counting_order"]
        self._scatter_max = funcs["scatter_max"]
        self._scatter_min = funcs["scatter_min"]
        self._group_argmin_lex3 = funcs["group_argmin_lex3"]
        self._scatter_min_lex3 = funcs["scatter_min_lex3"]

    def route_csr(self, offsets, neighbors, reverse, senders, ports):
        return self._route_csr(offsets, neighbors, reverse, senders, ports)

    def stable_receiver_order(self, receivers, n_groups):
        # A counting sort is O(n_groups + k); for sparse rounds (k ≪ n)
        # the argsort is cheaper.  Both yield the identical permutation.
        if len(receivers) * 16 < n_groups:
            return np.argsort(receivers, kind="stable")
        return self._counting_order(receivers, n_groups)

    def scatter_max(self, target, idx, values) -> None:
        self._scatter_max(target, idx, values)

    def scatter_min(self, target, idx, values) -> None:
        self._scatter_min(target, idx, values)

    def group_argmin_lex3(self, groups, w, a, b, size):
        return self._group_argmin_lex3(
            groups, np.asarray(w, dtype=np.float64), a, b, size
        )

    def scatter_min_lex3(self, best_w, best_a, best_b, idx, w, a, b) -> None:
        self._scatter_min_lex3(
            best_w, best_a, best_b, idx, np.asarray(w, dtype=np.float64), a, b
        )


_NUMBA_FUNCS: dict | None = None


def _compiled_numba_kernels() -> dict:
    """Compile (once per process) the ``@njit`` kernel twins."""
    global _NUMBA_FUNCS
    if _NUMBA_FUNCS is not None:
        return _NUMBA_FUNCS
    import numba

    @numba.njit(cache=True)
    def route_csr(offsets, neighbors, reverse, senders, ports):
        count = senders.shape[0]
        receivers = np.empty(count, dtype=np.int64)
        arrivals = np.empty(count, dtype=np.int64)
        for i in range(count):
            base = offsets[senders[i]] + ports[i]
            receivers[i] = neighbors[base]
            arrivals[i] = reverse[base]
        return receivers, arrivals

    @numba.njit(cache=True)
    def counting_order(receivers, n_groups):
        count = receivers.shape[0]
        counts = np.zeros(n_groups + 1, dtype=np.int64)
        for i in range(count):
            counts[receivers[i] + 1] += 1
        for g in range(1, n_groups + 1):
            counts[g] += counts[g - 1]
        order = np.empty(count, dtype=np.int64)
        for i in range(count):
            g = receivers[i]
            order[counts[g]] = i
            counts[g] += 1
        return order

    @numba.njit(cache=True)
    def scatter_max(target, idx, values):
        for i in range(idx.shape[0]):
            j = idx[i]
            if values[i] > target[j]:
                target[j] = values[i]

    @numba.njit(cache=True)
    def scatter_min(target, idx, values):
        for i in range(idx.shape[0]):
            j = idx[i]
            if values[i] < target[j]:
                target[j] = values[i]

    @numba.njit(cache=True)
    def group_argmin_lex3(groups, w, a, b, size):
        pos = np.full(size, -1, dtype=np.int64)
        for i in range(groups.shape[0]):
            g = groups[i]
            p = pos[g]
            if p < 0 or (
                w[i] < w[p]
                or (w[i] == w[p] and (a[i] < a[p] or (a[i] == a[p] and b[i] < b[p])))
            ):
                pos[g] = i
        return pos

    @numba.njit(cache=True)
    def scatter_min_lex3(best_w, best_a, best_b, idx, w, a, b):
        for i in range(idx.shape[0]):
            g = idx[i]
            if w[i] < best_w[g] or (
                w[i] == best_w[g]
                and (
                    a[i] < best_a[g]
                    or (a[i] == best_a[g] and b[i] < best_b[g])
                )
            ):
                best_w[g] = w[i]
                best_a[g] = a[i]
                best_b[g] = b[i]

    _NUMBA_FUNCS = {
        "route_csr": route_csr,
        "counting_order": counting_order,
        "scatter_max": scatter_max,
        "scatter_min": scatter_min,
        "group_argmin_lex3": group_argmin_lex3,
        "scatter_min_lex3": scatter_min_lex3,
    }
    return _NUMBA_FUNCS


_KERNEL_SETS: dict[str, KernelSet] = {}


def get_kernels(name: str | None = None) -> KernelSet:
    """The kernel set for a request (cached singletons per tier)."""
    resolved = resolve_kernel(name)
    kernels = _KERNEL_SETS.get(resolved)
    if kernels is None:
        kernels = KernelSet() if resolved == "numpy" else _NumbaKernelSet()
        _KERNEL_SETS[resolved] = kernels
    return kernels
