"""Synchronous round-by-round execution engine (classical CONGEST).

This engine is a *faithful* simulator: it delivers messages port-to-port,
enforces the CONGEST constraint of one message per directed edge per round,
and charges every delivered message to the metrics recorder.  It is used by
the classical baselines whose round counts are small enough to simulate
directly (ring LE, KPP complete-graph LE, CPR diameter-2 LE, ...).

Two interchangeable backends implement :meth:`SynchronousEngine.run`:

* ``"fast"`` (the default) batches each round's outboxes into parallel
  arrays and resolves all receivers and arrival ports with numpy gathers
  through the topology's precomputed
  :class:`~repro.network.porttable.PortTable` — O(1) routing per message
  and vectorized CONGEST-violation detection;
* ``"reference"`` is the original one-message-at-a-time Python loop, kept
  as the differential-testing oracle.

Both backends are trace-equivalent by construction — same delivery order,
same metrics charges, same RNG consumption — which the test suite asserts
across every topology family.  The default backend can be overridden
per-engine (``backend=``) or process-wide via the ``REPRO_ENGINE``
environment variable (which worker processes inherit).

Note on buffer reuse: inbox lists are recycled across rounds, so a node
that wants to retain its inbox beyond the current ``step`` call must copy
it (all in-repo protocols already do).
"""

from __future__ import annotations

import gc
import itertools
import operator
import os

import numpy as np

from repro.network.message import Message, congest_capacity_bits
from repro.network.metrics import MetricsRecorder
from repro.network.node import Node
from repro.network.topology import Topology

__all__ = [
    "BACKENDS",
    "CongestViolation",
    "SynchronousEngine",
    "default_backend",
]

#: Engine backends selectable via ``SynchronousEngine(backend=...)``.
BACKENDS = ("fast", "reference")


def default_backend() -> str:
    """The process-wide default backend (``REPRO_ENGINE`` env, or "fast")."""
    backend = os.environ.get("REPRO_ENGINE", "fast")
    if backend not in BACKENDS:
        raise ValueError(
            f"REPRO_ENGINE must be one of {BACKENDS}, got {backend!r}"
        )
    return backend


class CongestViolation(RuntimeError):
    """Raised when a node sends more than one message per port per round."""


class SynchronousEngine:
    """Runs :class:`~repro.network.node.Node` instances in lockstep rounds."""

    def __init__(
        self,
        topology: Topology,
        nodes: list[Node],
        metrics: MetricsRecorder,
        label: str = "engine",
        backend: str | None = None,
    ):
        if len(nodes) != topology.n:
            raise ValueError(
                f"topology has {topology.n} nodes but {len(nodes)} were provided"
            )
        backend = backend if backend is not None else default_backend()
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        self.topology = topology
        self.nodes = nodes
        self.metrics = metrics
        self.label = label
        self.backend = backend
        self.rounds_executed = 0
        self._in_flight = 0

    def run(self, max_rounds: int) -> int:
        """Run until all nodes halt or ``max_rounds`` elapse; returns rounds used."""
        if self.backend == "fast":
            return self._run_fast(max_rounds)
        return self._run_reference(max_rounds)

    # -- reference backend -----------------------------------------------------

    def _run_reference(self, max_rounds: int) -> int:
        n = self.topology.n
        self._in_flight = 0
        dropped = 0
        inboxes: list[list[tuple[int, Message]]] = [[] for _ in range(n)]
        spare: list[list[tuple[int, Message]]] = [[] for _ in range(n)]
        alive = sum(not node.halted for node in self.nodes)
        for _ in range(max_rounds):
            if alive == 0:
                break
            round_index = self.rounds_executed
            next_inboxes = spare
            messages_this_round = 0
            for v, node in enumerate(self.nodes):
                if node.halted:
                    dropped += len(inboxes[v])
                    continue
                outbox = node.step(round_index, inboxes[v])
                if node.halted:
                    alive -= 1
                used_ports: set[int] = set()
                for port, message in outbox:
                    if port in used_ports:
                        raise CongestViolation(
                            f"node {v} sent two messages on port {port} in "
                            f"round {round_index}"
                        )
                    used_ports.add(port)
                    receiver = self.topology.neighbor_at_port(v, port)
                    receiver_port = self.topology.port_to(receiver, v)
                    message.sender = v
                    message.sender_port = port
                    next_inboxes[receiver].append((receiver_port, message))
                    messages_this_round += message.message_units(n)
            self.metrics.charge(self.label, messages=messages_this_round, rounds=1)
            spare = inboxes
            inboxes = next_inboxes
            for box in spare:
                box.clear()
            self.rounds_executed += 1
        self._in_flight = dropped + sum(len(inbox) for inbox in inboxes)
        return self.rounds_executed

    # -- fast (vectorized) backend ---------------------------------------------

    def _run_fast(self, max_rounds: int) -> int:
        # The hot loop allocates thousands of acyclic containers (inbox
        # tuples, outbox lists) per round; CPython's generation-0 collector
        # re-scans them constantly for cycles that cannot exist.  Pausing
        # collection for the duration of the run is worth ~1.5x on dense
        # rounds; protocols that allocate cyclic garbage inside ``step``
        # just defer its collection until the run returns.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            return self._run_fast_inner(max_rounds)
        finally:
            if gc_was_enabled:
                gc.enable()

    def _run_fast_inner(self, max_rounds: int) -> int:
        n = self.topology.n
        table = self.topology.port_table()
        max_ports = max(1, table.max_ports)
        capacity = congest_capacity_bits(n) if n >= 2 else 1
        self._in_flight = 0
        dropped = 0
        inboxes: list[list[tuple[int, Message]]] = [[] for _ in range(n)]
        spare: list[list[tuple[int, Message]]] = [[] for _ in range(n)]
        alive = sum(not node.halted for node in self.nodes)
        for _ in range(max_rounds):
            if alive == 0:
                break
            round_index = self.rounds_executed
            # Collect all outboxes into parallel per-node chunks; everything
            # per-message below runs at C speed (zip/chain/numpy), leaving
            # only the sender-stamp loop in Python.
            sending_nodes: list[int] = []
            chunk_sizes: list[int] = []
            port_chunks: list[tuple] = []
            message_chunks: list[tuple] = []
            for v, node in enumerate(self.nodes):
                if node.halted:
                    dropped += len(inboxes[v])
                    continue
                outbox = node.step(round_index, inboxes[v])
                if node.halted:
                    alive -= 1
                if outbox:
                    out_ports, out_messages = zip(*outbox)
                    sending_nodes.append(v)
                    chunk_sizes.append(len(out_ports))
                    port_chunks.append(out_ports)
                    message_chunks.append(out_messages)
            next_inboxes = spare
            if chunk_sizes:
                payloads: list[Message] = list(
                    itertools.chain.from_iterable(message_chunks)
                )
                count = len(payloads)
                sender_arr = np.repeat(
                    np.asarray(sending_nodes, dtype=np.int64),
                    np.asarray(chunk_sizes, dtype=np.int64),
                )
                port_arr = np.fromiter(
                    itertools.chain.from_iterable(port_chunks),
                    dtype=np.int64,
                    count=count,
                )
                bad_index = table.find_bad_port(sender_arr, port_arr)
                if bad_index is not None:
                    raise ValueError(
                        f"node {int(sender_arr[bad_index])} sent on invalid "
                        f"port {int(port_arr[bad_index])} in round {round_index}"
                    )
                self._check_congest(
                    sender_arr, port_arr, max_ports, round_index
                )
                receiver_arr = table.receivers(sender_arr, port_arr)
                arrival_arr = table.reverse_ports(
                    sender_arr, port_arr, receiver_arr
                )
                if any(message.bits for message in payloads):
                    bits = np.fromiter(
                        (m.bits for m in payloads), dtype=np.int64, count=count
                    )
                    units = np.maximum(1, -(-bits // capacity))
                    messages_this_round = int(units.sum())
                else:
                    messages_this_round = count
                # Stamp sender identity exactly like the reference engine
                # (reusing the original Python ints — no unboxing needed).
                sender_ints = itertools.chain.from_iterable(
                    itertools.repeat(v, k)
                    for v, k in zip(sending_nodes, chunk_sizes)
                )
                port_ints = itertools.chain.from_iterable(port_chunks)
                for message, sender, port in zip(payloads, sender_ints, port_ints):
                    message.sender = sender
                    message.sender_port = port
                # Deliver grouped by receiver.  The stable sort preserves
                # (sender, outbox-position) order within each inbox —
                # identical to the reference engine's append order.
                pairs = list(zip(arrival_arr.tolist(), payloads))
                if count > 1:
                    order = np.argsort(receiver_arr, kind="stable")
                    sorted_receivers = receiver_arr[order]
                    grouped = operator.itemgetter(*order.tolist())(pairs)
                    boundaries = np.nonzero(np.diff(sorted_receivers))[0] + 1
                    starts = [0, *boundaries.tolist(), count]
                    targets = sorted_receivers[
                        np.concatenate(([0], boundaries))
                    ].tolist()
                    for i, receiver in enumerate(targets):
                        next_inboxes[receiver].extend(
                            grouped[starts[i] : starts[i + 1]]
                        )
                else:
                    next_inboxes[int(receiver_arr[0])].append(pairs[0])
            else:
                messages_this_round = 0
            self.metrics.charge(self.label, messages=messages_this_round, rounds=1)
            spare = inboxes
            inboxes = next_inboxes
            for box in spare:
                box.clear()
            self.rounds_executed += 1
        self._in_flight = dropped + sum(len(inbox) for inbox in inboxes)
        return self.rounds_executed

    @staticmethod
    def _check_congest(senders, ports, max_ports: int, round_index: int) -> None:
        """Duplicate (sender, port) pairs violate one-message-per-edge."""
        slots = senders * max_ports + ports
        slots.sort()
        duplicates = np.nonzero(np.diff(slots) == 0)[0]
        if duplicates.size:
            slot = int(slots[duplicates[0]])
            raise CongestViolation(
                f"node {slot // max_ports} sent two messages on port "
                f"{slot % max_ports} in round {round_index}"
            )

    def undelivered(self) -> int:
        """Messages never consumed when :meth:`run` last returned.

        Non-zero only when the engine halted mid-protocol: the round budget
        ran out with sends pending, or messages were addressed to nodes
        that had already halted and so never read them.
        """
        return self._in_flight
