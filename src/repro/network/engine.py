"""Synchronous round-by-round execution engine (classical CONGEST).

This engine is a *faithful* simulator: it delivers messages port-to-port,
enforces the CONGEST constraint of one message per directed edge per round,
and charges every delivered message to the metrics recorder.  It is used by
the classical baselines whose round counts are small enough to simulate
directly (ring LE, KPP complete-graph LE, CPR diameter-2 LE, ...).
"""

from __future__ import annotations

from repro.network.message import Message
from repro.network.metrics import MetricsRecorder
from repro.network.node import Node
from repro.network.topology import Topology

__all__ = ["CongestViolation", "SynchronousEngine"]


class CongestViolation(RuntimeError):
    """Raised when a node sends more than one message per port per round."""


class SynchronousEngine:
    """Runs :class:`~repro.network.node.Node` instances in lockstep rounds."""

    def __init__(
        self,
        topology: Topology,
        nodes: list[Node],
        metrics: MetricsRecorder,
        label: str = "engine",
    ):
        if len(nodes) != topology.n:
            raise ValueError(
                f"topology has {topology.n} nodes but {len(nodes)} were provided"
            )
        self.topology = topology
        self.nodes = nodes
        self.metrics = metrics
        self.label = label
        self.rounds_executed = 0
        self._in_flight = 0

    def run(self, max_rounds: int) -> int:
        """Run until all nodes halt or ``max_rounds`` elapse; returns rounds used."""
        n = self.topology.n
        self._in_flight = 0
        dropped = 0
        inboxes: list[list[tuple[int, Message]]] = [[] for _ in range(n)]
        for _ in range(max_rounds):
            if all(node.halted for node in self.nodes):
                break
            round_index = self.rounds_executed
            next_inboxes: list[list[tuple[int, Message]]] = [[] for _ in range(n)]
            messages_this_round = 0
            for v, node in enumerate(self.nodes):
                if node.halted:
                    dropped += len(inboxes[v])
                    continue
                outbox = node.step(round_index, inboxes[v])
                used_ports: set[int] = set()
                for port, message in outbox:
                    if port in used_ports:
                        raise CongestViolation(
                            f"node {v} sent two messages on port {port} in "
                            f"round {round_index}"
                        )
                    used_ports.add(port)
                    receiver = self.topology.neighbor_at_port(v, port)
                    receiver_port = self.topology.port_to(receiver, v)
                    message.sender = v
                    message.sender_port = port
                    next_inboxes[receiver].append((receiver_port, message))
                    messages_this_round += message.message_units(n)
            self.metrics.charge(self.label, messages=messages_this_round, rounds=1)
            inboxes = next_inboxes
            self.rounds_executed += 1
        self._in_flight = dropped + sum(len(inbox) for inbox in inboxes)
        return self.rounds_executed

    def undelivered(self) -> int:
        """Messages never consumed when :meth:`run` last returned.

        Non-zero only when the engine halted mid-protocol: the round budget
        ran out with sends pending, or messages were addressed to nodes
        that had already halted and so never read them.
        """
        return self._in_flight
