"""Synchronous round-by-round execution engine (classical CONGEST).

This engine is a *faithful* simulator: it delivers messages port-to-port,
enforces the CONGEST constraint of one message per directed edge per round,
and charges every delivered message to the metrics recorder.  It is used by
the classical baselines whose round counts are small enough to simulate
directly (ring LE, KPP complete-graph LE, CPR diameter-2 LE, ...).

Three dispatch paths implement :meth:`SynchronousEngine.run`:

* ``"fast"`` (the default scalar backend) batches each round's outboxes
  into parallel arrays and resolves all receivers and arrival ports with
  numpy gathers through the topology's precomputed
  :class:`~repro.network.porttable.PortTable` — O(1) routing per message
  and vectorized CONGEST-violation detection;
* ``"reference"`` is the original one-message-at-a-time Python loop, kept
  as the differential-testing oracle;
* the **batch** path (:meth:`_run_fast_batch`) engages automatically when
  the engine is constructed with a
  :class:`~repro.network.batch.BatchProtocol` instead of a node list: the
  whole round is one ``step_batch`` call over array inboxes/outboxes fed
  straight from the port-table gathers — no per-node dispatch, no tuple
  materialization.  It reuses the fast backend's routing arrays and is
  backend-independent (selecting ``backend="reference"`` with a batch
  program still runs the batch path; the differential oracle for a batch
  protocol is its *scalar* implementation on either scalar backend).

Both backends are trace-equivalent by construction — same delivery order,
same metrics charges, same RNG consumption — which the test suite asserts
across every topology family.  The default backend can be overridden
per-engine (``backend=``) or process-wide via the ``REPRO_ENGINE``
environment variable (which worker processes inherit).

Fault injection: the engine optionally takes an armed adversary
(:meth:`repro.adversary.AdversarySpec.arm`) that may drop, delay, or
duplicate messages in transit and crash-stop nodes on a schedule.  Both
backends consume the adversary identically — each round's sends are
flattened in canonical order (sender ascending, outbox position) before
fault masks are drawn — so trial results stay bit-identical across
backends under the same adversary seed.  The fast backend applies the
masks directly on its batched outbox arrays; the reference backend is the
differential oracle for faulty runs too.  Undelivered-message accounting
distinguishes adversary losses from protocol slack
(:meth:`SynchronousEngine.undelivered_detail`).

Adaptive adversaries (``ArmedAdversary.observes``) additionally receive a
per-round traffic observation callback: every dispatch path calls
``observe_round(round_index, senders, ports, receivers)`` at the same
canonical point — after routing resolves, before fault masks are drawn,
once per round with at least one message — so traffic-conditioned fault
decisions (and their RNG draws) are bit-identical across all three paths.
``run()`` also validates the armed crash schedule against the round
budget, warning about crash rounds that can never fire.

Note on buffer reuse: inbox lists are recycled across rounds, so a node
that wants to retain its inbox beyond the current ``step`` call must copy
it (all in-repo protocols already do).
"""

from __future__ import annotations

import gc
import itertools
import operator
import os
import warnings
from time import perf_counter

import numpy as np

from repro.network.batch import BatchProtocol, MessageBatch
from repro.network.kernels import get_kernels
from repro.network.message import (
    Message,
    congest_capacity_bits,
    message_units_array,
)
from repro.network.metrics import MetricsRecorder
from repro.network.node import Node
from repro.network.topology import Topology
from repro.telemetry import current_profiler, current_tracer, metrics_registry

__all__ = [
    "BACKENDS",
    "CongestViolation",
    "SynchronousEngine",
    "default_backend",
]

#: Engine backends selectable via ``SynchronousEngine(backend=...)``.
BACKENDS = ("fast", "reference")


def default_backend() -> str:
    """The process-wide default backend (``REPRO_ENGINE`` env, or "fast")."""
    backend = os.environ.get("REPRO_ENGINE", "fast")
    if backend not in BACKENDS:
        raise ValueError(
            f"REPRO_ENGINE must be one of {BACKENDS}, got {backend!r}"
        )
    return backend


class CongestViolation(RuntimeError):
    """Raised when a node sends more than one message per port per round."""


class SynchronousEngine:
    """Runs a node program — scalar ``Node`` list or ``BatchProtocol`` —
    in lockstep rounds.

    ``program`` is either a list of :class:`~repro.network.node.Node`
    instances (dispatched per node through the ``fast``/``reference``
    backends) or one :class:`~repro.network.batch.BatchProtocol`
    (dispatched whole-network-per-round through the batch path).  The
    legacy ``nodes=`` keyword still works but is deprecated — prefer the
    positional ``program`` argument, or better, build runs through the
    protocol registry (:mod:`repro.runtime`), which owns the node-API
    selection (``--node-api``).
    """

    def __init__(
        self,
        topology: Topology,
        program=None,
        metrics: MetricsRecorder = None,
        label: str = "engine",
        backend: str | None = None,
        adversary=None,
        kernel: str | None = None,
        *,
        nodes: list[Node] | None = None,
        tracer=None,
        profiler=None,
    ):
        if nodes is not None:
            if program is not None:
                raise TypeError(
                    "pass either the positional `program` argument or the "
                    "legacy nodes= keyword, not both"
                )
            warnings.warn(
                "SynchronousEngine(nodes=...) is deprecated; pass the node "
                "list (or a BatchProtocol) as the second positional "
                "`program` argument, or dispatch through the protocol "
                "registry (repro.runtime), which selects the node API",
                DeprecationWarning,
                stacklevel=2,
            )
            program = nodes
        if program is None:
            raise TypeError("SynchronousEngine needs a node program")
        if metrics is None:
            raise TypeError("SynchronousEngine needs a MetricsRecorder")
        if isinstance(program, BatchProtocol):
            if program.n != topology.n:
                raise ValueError(
                    f"topology has {topology.n} nodes but the batch program "
                    f"has {program.n}"
                )
            self.program: BatchProtocol | None = program
            self.nodes = []
        else:
            if len(program) != topology.n:
                raise ValueError(
                    f"topology has {topology.n} nodes but {len(program)} "
                    f"were provided"
                )
            self.program = None
            self.nodes = program
        backend = backend if backend is not None else default_backend()
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        self.topology = topology
        self.metrics = metrics
        self.label = label
        self.backend = backend
        #: Kernel tier for the per-round array primitives (routing gather,
        #: stable receiver sort).  ``None`` resolves the process default
        #: (``REPRO_KERNEL``); both tiers are bit-identical, so the choice
        #: affects wall-clock only.
        self.kernels = get_kernels(kernel)
        #: An :class:`~repro.adversary.ArmedAdversary` (or None).  Armed
        #: state is single-use: one adversary per engine per protocol run.
        self.adversary = adversary
        #: Telemetry hooks resolve from the process context (``REPRO_TRACE``
        #: / ``REPRO_PROFILE`` env) unless passed explicitly.  Neither ever
        #: draws from a run RNG stream or alters delivery, so traced and
        #: profiled runs stay bit-identical to bare ones.
        self.tracer = tracer if tracer is not None else current_tracer()
        self.profiler = profiler if profiler is not None else current_profiler()
        self.rounds_executed = 0
        self._in_flight = 0
        self._dropped_protocol = 0
        self._dropped_adversary = 0
        self._crashed: set[int] = set()
        #: Always-on reconciliation counters, accumulated independently of
        #: the adversary's own ledger so :meth:`reconcile_accounting` can
        #: cross-check the two sources (plus ``undelivered_detail``) after
        #: every faulty run.
        self._units_total = 0
        self._adv_dropped = 0
        self._adv_delayed = 0
        self._adv_duplicated = 0
        self._dropped_to_crashed = 0

    def run(self, max_rounds: int) -> int:
        """Run until all nodes halt or ``max_rounds`` elapse; returns rounds used."""
        if self.adversary is not None:
            # Fail loudly (once) on crash schedules the budget can never
            # reach — a silent no-op fault plan is a misconfigured scenario.
            self.adversary.check_crash_horizon(max_rounds)
        tracer = self.tracer
        if self.program is not None:
            if self.backend == "reference":
                warnings.warn(
                    "backend='reference' has no effect on a BatchProtocol "
                    "program: the batch dispatch path will run.  The "
                    "differential oracle for a batch protocol is its scalar "
                    "implementation — select it with node_api='scalar' "
                    "(CLI: --node-api scalar)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            path = "batch"
        elif self.backend == "fast":
            path = "fast"
        else:
            path = "reference"
        if tracer.enabled:
            tracer.emit(
                "engine_start",
                label=self.label,
                n=self.topology.n,
                path=path,
                max_rounds=max_rounds,
                adversary=self.adversary is not None,
            )
        if path == "batch":
            rounds = self._run_fast_batch(max_rounds)
        elif path == "fast":
            rounds = self._run_fast(max_rounds)
        elif self.adversary is not None:
            rounds = self._run_reference_adversary(max_rounds)
        else:
            rounds = self._run_reference(max_rounds)
        if tracer.enabled:
            tracer.emit(
                "engine_end",
                label=self.label,
                rounds=rounds,
                units=self._units_total,
                **self.undelivered_detail(),
            )
        if self.adversary is not None:
            self.reconcile_accounting()
        self._charge_registry(rounds)
        return rounds

    def _charge_registry(self, rounds: int) -> None:
        """Fold this run's totals into the process metrics registry.

        Charged once per run (not per round) so the always-on cost stays
        out of the hot loops.
        """
        registry = metrics_registry()
        registry.counter("repro_engine_runs_total").inc()
        registry.counter("repro_engine_rounds_total").inc(rounds)
        registry.counter("repro_engine_message_units_total").inc(self._units_total)
        if self.adversary is not None:
            registry.counter("repro_engine_messages_dropped_total").inc(
                self._adv_dropped
            )
            registry.counter("repro_engine_messages_delayed_total").inc(
                self._adv_delayed
            )
            registry.counter("repro_engine_messages_duplicated_total").inc(
                self._adv_duplicated
            )
            registry.counter("repro_engine_nodes_crashed_total").inc(
                len(self._crashed)
            )

    def reconcile_accounting(self) -> dict:
        """Cross-check the engine's fault counters against the adversary.

        Three accounting sources describe a faulty run: the engine's own
        per-round telemetry counters, the armed adversary's ledger
        (``fault_stats``), and the undelivered-message classification
        (``undelivered_detail``).  They are derived independently, so any
        drift between them is a bug in exactly one of the three — this
        raises ``RuntimeError`` naming the divergent quantity instead of
        letting it leak into published aggregates.  Runs automatically at
        the end of every adversarial :meth:`run`; returns the agreed
        values.
        """
        adv = self.adversary
        if adv is None:
            return {}
        checks = {
            "messages_dropped": (self._adv_dropped, adv.messages_dropped),
            "messages_delayed": (self._adv_delayed, adv.messages_delayed),
            "messages_duplicated": (self._adv_duplicated, adv.messages_duplicated),
            "nodes_crashed": (len(self._crashed), adv.nodes_crashed),
            "dropped_adversary": (
                self._dropped_adversary,
                self._adv_dropped + self._dropped_to_crashed,
            ),
        }
        drift = {key: pair for key, pair in checks.items() if pair[0] != pair[1]}
        if drift:
            detail = ", ".join(
                f"{key}: engine={a} ledger={b}"
                for key, (a, b) in sorted(drift.items())
            )
            raise RuntimeError(
                f"fault accounting drift on engine {self.label!r}: {detail}"
            )
        return {key: pair[0] for key, pair in checks.items()}

    def _apply_crashes(self, round_index: int, alive: int) -> int:
        """Crash-stop scheduled victims before they execute ``round_index``."""
        tracer = self.tracer
        for v in self.adversary.crashes_at(round_index):
            node = self.nodes[v]
            if not node.halted:
                node.halted = True
                self._crashed.add(v)
                self.adversary.note_crash(round_index)
                if tracer.enabled:
                    tracer.emit(
                        "crash", label=self.label, round=round_index, node=v
                    )
                alive -= 1
        return alive

    # -- reference backend -----------------------------------------------------

    def _run_reference(self, max_rounds: int) -> int:
        n = self.topology.n
        self._in_flight = 0
        self._dropped_adversary = 0
        dropped = 0
        inboxes: list[list[tuple[int, Message]]] = [[] for _ in range(n)]
        spare: list[list[tuple[int, Message]]] = [[] for _ in range(n)]
        alive = sum(not node.halted for node in self.nodes)
        tracer = self.tracer
        trace_rounds = tracer.enabled
        for _ in range(max_rounds):
            if alive == 0:
                break
            round_index = self.rounds_executed
            next_inboxes = spare
            messages_this_round = 0
            round_sent = 0
            for v, node in enumerate(self.nodes):
                if node.halted:
                    dropped += len(inboxes[v])
                    continue
                outbox = node.step(round_index, inboxes[v])
                if node.halted:
                    alive -= 1
                used_ports: set[int] = set()
                for port, message in outbox:
                    if port in used_ports:
                        raise CongestViolation(
                            f"node {v} sent two messages on port {port} in "
                            f"round {round_index}"
                        )
                    used_ports.add(port)
                    receiver = self.topology.neighbor_at_port(v, port)
                    receiver_port = self.topology.port_to(receiver, v)
                    message.sender = v
                    message.sender_port = port
                    next_inboxes[receiver].append((receiver_port, message))
                    round_sent += 1
                    messages_this_round += message.message_units(n)
            self.metrics.charge(self.label, messages=messages_this_round, rounds=1)
            self._units_total += messages_this_round
            if trace_rounds:
                tracer.emit(
                    "round",
                    label=self.label,
                    round=round_index,
                    sent=round_sent,
                    units=messages_this_round,
                    dropped=0,
                    delayed=0,
                    duplicated=0,
                )
            spare = inboxes
            inboxes = next_inboxes
            for box in spare:
                box.clear()
            self.rounds_executed += 1
        self._dropped_protocol = dropped
        self._in_flight = sum(len(inbox) for inbox in inboxes)
        return self.rounds_executed

    def _run_reference_adversary(self, max_rounds: int) -> int:
        """Reference oracle under faults: collect, then fault, then deliver.

        The two-pass shape keeps the round's sends in the same canonical
        order (sender ascending, outbox position) the fast backend batches
        them in, so both backends hand :meth:`ArmedAdversary.message_masks`
        identical arrays and consume the adversary stream identically.
        """
        n = self.topology.n
        adv = self.adversary
        delay_rounds = adv.spec.delay_rounds
        self._in_flight = 0
        dropped_protocol = 0
        dropped_adversary = 0
        inboxes: list[list[tuple[int, Message]]] = [[] for _ in range(n)]
        spare: list[list[tuple[int, Message]]] = [[] for _ in range(n)]
        alive = sum(not node.halted for node in self.nodes)
        tracer = self.tracer
        trace_rounds = tracer.enabled
        for _ in range(max_rounds):
            round_index = self.rounds_executed
            alive = self._apply_crashes(round_index, alive)
            if alive == 0:
                break
            sends: list[tuple[int, int, Message]] = []
            messages_this_round = 0
            round_dropped = round_delayed = round_duplicated = 0
            for v, node in enumerate(self.nodes):
                if node.halted:
                    if v in self._crashed:
                        dropped_adversary += len(inboxes[v])
                        self._dropped_to_crashed += len(inboxes[v])
                    else:
                        dropped_protocol += len(inboxes[v])
                    continue
                outbox = node.step(round_index, inboxes[v])
                if node.halted:
                    alive -= 1
                used_ports: set[int] = set()
                for port, message in outbox:
                    if port in used_ports:
                        raise CongestViolation(
                            f"node {v} sent two messages on port {port} in "
                            f"round {round_index}"
                        )
                    used_ports.add(port)
                    message.sender = v
                    message.sender_port = port
                    sends.append((v, port, message))
                    messages_this_round += message.message_units(n)
            self.metrics.charge(self.label, messages=messages_this_round, rounds=1)
            self._units_total += messages_this_round
            next_inboxes = spare
            for receiver, port, message in adv.pop_delayed(round_index + 1):
                next_inboxes[receiver].append((port, message))
            masks = None
            if sends and (adv.has_message_faults or adv.observes):
                count = len(sends)
                senders_arr = np.fromiter(
                    (s for s, _, _ in sends), dtype=np.int64, count=count
                )
                ports_arr = np.fromiter(
                    (p for _, p, _ in sends), dtype=np.int64, count=count
                )
                if adv.observes:
                    # Canonical observation point: after routing resolves,
                    # before fault masks are drawn — identical to the
                    # fast and batch paths, so adaptive decisions (and
                    # their RNG draws) match bit for bit.
                    receivers_arr = np.fromiter(
                        (
                            self.topology.neighbor_at_port(v, p)
                            for v, p, _ in sends
                        ),
                        dtype=np.int64,
                        count=count,
                    )
                    adv.observe_round(
                        round_index, senders_arr, ports_arr, receivers_arr
                    )
                if adv.has_message_faults:
                    masks = adv.message_masks(round_index, senders_arr, ports_arr)
                    round_dropped = int(masks[0].sum())
                    round_delayed = int(masks[1].sum())
                    round_duplicated = int(masks[2].sum())
                    self._adv_dropped += round_dropped
                    self._adv_delayed += round_delayed
                    self._adv_duplicated += round_duplicated
            for i, (v, port, message) in enumerate(sends):
                receiver = self.topology.neighbor_at_port(v, port)
                receiver_port = self.topology.port_to(receiver, v)
                if masks is not None:
                    drop, delay, duplicate = masks
                    if drop[i]:
                        dropped_adversary += 1
                        continue
                    if delay[i]:
                        adv.push_delayed(
                            round_index + 1 + delay_rounds,
                            receiver,
                            receiver_port,
                            message,
                        )
                        continue
                    next_inboxes[receiver].append((receiver_port, message))
                    if duplicate[i]:
                        next_inboxes[receiver].append((receiver_port, message))
                else:
                    next_inboxes[receiver].append((receiver_port, message))
            if trace_rounds:
                tracer.emit(
                    "round",
                    label=self.label,
                    round=round_index,
                    sent=len(sends),
                    units=messages_this_round,
                    dropped=round_dropped,
                    delayed=round_delayed,
                    duplicated=round_duplicated,
                )
            spare = inboxes
            inboxes = next_inboxes
            for box in spare:
                box.clear()
            self.rounds_executed += 1
        self._dropped_protocol = dropped_protocol
        self._dropped_adversary = dropped_adversary
        self._in_flight = sum(len(inbox) for inbox in inboxes) + adv.pending_delayed
        return self.rounds_executed

    # -- fast (vectorized) backend ---------------------------------------------

    def _run_fast(self, max_rounds: int) -> int:
        # The hot loop allocates thousands of acyclic containers (inbox
        # tuples, outbox lists) per round; CPython's generation-0 collector
        # re-scans them constantly for cycles that cannot exist.  Pausing
        # collection for the duration of the run is worth ~1.5x on dense
        # rounds; protocols that allocate cyclic garbage inside ``step``
        # just defer its collection until the run returns.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            return self._run_fast_inner(max_rounds)
        finally:
            if gc_was_enabled:
                gc.enable()

    def _run_fast_inner(self, max_rounds: int) -> int:
        n = self.topology.n
        table = self.topology.port_table()
        max_ports = max(1, table.max_ports)
        capacity = congest_capacity_bits(n) if n >= 2 else 1
        adv = self.adversary
        self._in_flight = 0
        dropped_protocol = 0
        dropped_adversary = 0
        inboxes: list[list[tuple[int, Message]]] = [[] for _ in range(n)]
        spare: list[list[tuple[int, Message]]] = [[] for _ in range(n)]
        alive = sum(not node.halted for node in self.nodes)
        # Telemetry hooks, hoisted so the disabled cost per round is a
        # handful of local-bool branches (the ≤1% overhead gate in
        # benchmarks/bench_engine.py holds the hot loops to that).
        tracer = self.tracer
        trace_rounds = tracer.enabled
        prof = self.profiler
        for _ in range(max_rounds):
            round_index = self.rounds_executed
            if adv is not None:
                alive = self._apply_crashes(round_index, alive)
            if alive == 0:
                break
            round_sent = round_dropped = round_delayed = round_duplicated = 0
            if prof is not None:
                t_phase = perf_counter()
            # Collect all outboxes into parallel per-node chunks; everything
            # per-message below runs at C speed (zip/chain/numpy), leaving
            # only the sender-stamp loop in Python.
            sending_nodes: list[int] = []
            chunk_sizes: list[int] = []
            port_chunks: list[tuple] = []
            message_chunks: list[tuple] = []
            for v, node in enumerate(self.nodes):
                if node.halted:
                    if v in self._crashed:
                        dropped_adversary += len(inboxes[v])
                        self._dropped_to_crashed += len(inboxes[v])
                    else:
                        dropped_protocol += len(inboxes[v])
                    continue
                outbox = node.step(round_index, inboxes[v])
                if node.halted:
                    alive -= 1
                if outbox:
                    out_ports, out_messages = zip(*outbox)
                    sending_nodes.append(v)
                    chunk_sizes.append(len(out_ports))
                    port_chunks.append(out_ports)
                    message_chunks.append(out_messages)
            if prof is not None:
                t_now = perf_counter()
                prof.add("engine.step", t_now - t_phase)
                t_phase = t_now
            next_inboxes = spare
            if adv is not None:
                for receiver, port, message in adv.pop_delayed(round_index + 1):
                    next_inboxes[receiver].append((port, message))
            if chunk_sizes:
                payloads: list[Message] = list(
                    itertools.chain.from_iterable(message_chunks)
                )
                count = len(payloads)
                round_sent = count
                sender_arr = np.repeat(
                    np.asarray(sending_nodes, dtype=np.int64),
                    np.asarray(chunk_sizes, dtype=np.int64),
                )
                port_arr = np.fromiter(
                    itertools.chain.from_iterable(port_chunks),
                    dtype=np.int64,
                    count=count,
                )
                bad_index = table.find_bad_port(sender_arr, port_arr)
                if bad_index is not None:
                    raise ValueError(
                        f"node {int(sender_arr[bad_index])} sent on invalid "
                        f"port {int(port_arr[bad_index])} in round {round_index}"
                    )
                self._check_congest(
                    sender_arr, port_arr, max_ports, round_index
                )
                receiver_arr, arrival_arr = table.route(
                    sender_arr, port_arr, self.kernels
                )
                if any(message.bits for message in payloads):
                    bits = np.fromiter(
                        (m.bits for m in payloads), dtype=np.int64, count=count
                    )
                    units = message_units_array(bits, capacity)
                    messages_this_round = int(units.sum())
                else:
                    messages_this_round = count
                # Stamp sender identity exactly like the reference engine
                # (reusing the original Python ints — no unboxing needed).
                sender_ints = itertools.chain.from_iterable(
                    itertools.repeat(v, k)
                    for v, k in zip(sending_nodes, chunk_sizes)
                )
                port_ints = itertools.chain.from_iterable(port_chunks)
                for message, sender, port in zip(payloads, sender_ints, port_ints):
                    message.sender = sender
                    message.sender_port = port
                if adv is not None and adv.observes:
                    # Canonical observation point (same as the reference
                    # and batch paths): routed arrays in canonical send
                    # order, before any fault mask is drawn.
                    adv.observe_round(
                        round_index, sender_arr, port_arr, receiver_arr
                    )
                if adv is not None and adv.has_message_faults:
                    # Fault masks over the whole batched round: dropped
                    # messages vanish (charged but undelivered), delayed
                    # ones join a later round's inbox, duplicated ones
                    # appear twice back-to-back — all by index gymnastics
                    # on the same parallel arrays, no per-message loop.
                    drop, delay, duplicate = adv.message_masks(
                        round_index, sender_arr, port_arr
                    )
                    # Mask sums double as reconciliation counters: the
                    # masks are disjoint, so these equal the adversary's
                    # own ledger increments for this round.
                    round_dropped = int(drop.sum())
                    round_delayed = int(delay.sum())
                    round_duplicated = int(duplicate.sum())
                    self._adv_dropped += round_dropped
                    self._adv_delayed += round_delayed
                    self._adv_duplicated += round_duplicated
                    if round_dropped or round_delayed or round_duplicated:
                        dropped_adversary += round_dropped
                        if round_delayed:
                            arrival_round = round_index + 1 + adv.spec.delay_rounds
                            for i in np.nonzero(delay)[0].tolist():
                                adv.push_delayed(
                                    arrival_round,
                                    int(receiver_arr[i]),
                                    int(arrival_arr[i]),
                                    payloads[i],
                                )
                        keep = np.nonzero(~(drop | delay))[0]
                        if round_duplicated:
                            keep = np.repeat(
                                keep, np.where(duplicate[keep], 2, 1)
                            )
                        receiver_arr = receiver_arr[keep]
                        arrival_arr = arrival_arr[keep]
                        payloads = [payloads[i] for i in keep.tolist()]
                        count = len(payloads)
                if prof is not None:
                    t_now = perf_counter()
                    prof.add("engine.gather", t_now - t_phase)
                    t_phase = t_now
                # Deliver grouped by receiver.  The stable sort preserves
                # (sender, outbox-position) order within each inbox —
                # identical to the reference engine's append order.
                pairs = list(zip(arrival_arr.tolist(), payloads))
                if count > 1:
                    order = np.argsort(receiver_arr, kind="stable")
                    sorted_receivers = receiver_arr[order]
                    grouped = operator.itemgetter(*order.tolist())(pairs)
                    boundaries = np.nonzero(np.diff(sorted_receivers))[0] + 1
                    starts = [0, *boundaries.tolist(), count]
                    targets = sorted_receivers[
                        np.concatenate(([0], boundaries))
                    ].tolist()
                    for i, receiver in enumerate(targets):
                        next_inboxes[receiver].extend(
                            grouped[starts[i] : starts[i + 1]]
                        )
                elif count == 1:
                    next_inboxes[int(receiver_arr[0])].append(pairs[0])
                if prof is not None:
                    prof.add("engine.deliver", perf_counter() - t_phase)
            else:
                messages_this_round = 0
            self.metrics.charge(self.label, messages=messages_this_round, rounds=1)
            self._units_total += messages_this_round
            if trace_rounds:
                tracer.emit(
                    "round",
                    label=self.label,
                    round=round_index,
                    sent=round_sent,
                    units=messages_this_round,
                    dropped=round_dropped,
                    delayed=round_delayed,
                    duplicated=round_duplicated,
                )
            spare = inboxes
            inboxes = next_inboxes
            for box in spare:
                box.clear()
            self.rounds_executed += 1
        self._dropped_protocol = dropped_protocol
        self._dropped_adversary = dropped_adversary
        self._in_flight = sum(len(inbox) for inbox in inboxes)
        if adv is not None:
            self._in_flight += adv.pending_delayed
        return self.rounds_executed

    # -- batch (array-native) dispatch path ------------------------------------

    def _apply_crashes_batch(self, round_index: int, alive: int) -> int:
        """Crash-stop scheduled victims of a :class:`BatchProtocol` program."""
        program = self.program
        halted = program.halted_mask()
        tracer = self.tracer
        for v in self.adversary.crashes_at(round_index):
            if not halted[v]:
                program.force_halt(v)
                self._crashed.add(v)
                self.adversary.note_crash(round_index)
                if tracer.enabled:
                    tracer.emit(
                        "crash", label=self.label, round=round_index, node=v
                    )
                alive -= 1
        return alive

    def _run_fast_batch(self, max_rounds: int) -> int:
        # Same GC rationale as the scalar fast path; batch protocols that
        # stay array-native allocate almost nothing per round, but the
        # ScalarAdapter's tuple churn benefits exactly like _run_fast.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            return self._run_fast_batch_inner(max_rounds)
        finally:
            if gc_was_enabled:
                gc.enable()

    def _run_fast_batch_inner(self, max_rounds: int) -> int:
        """One ``step_batch`` call per round over the whole alive network.

        Trace-equivalent to the scalar backends by construction: inbound
        rows to halted nodes are dropped with the same accounting, fault
        masks are drawn over the same canonically-ordered ``(senders,
        ports)`` arrays, delayed arrivals precede the round's direct
        sends, and the stable receiver sort reproduces the scalar
        backends' per-inbox append order.
        """
        program = self.program
        n = self.topology.n
        table = self.topology.port_table()
        max_ports = max(1, table.max_ports)
        capacity = congest_capacity_bits(n) if n >= 2 else 1
        adv = self.adversary
        object_mode = program.uses_messages
        self._in_flight = 0
        dropped_protocol = 0
        dropped_adversary = 0
        empty = MessageBatch.empty(object_mode)
        inbox = empty
        #: Extras column layout ((name, dtype), ...) captured from the
        #: first outbox that carries typed extra payload columns; the
        #: delay queue and inbox assembly preserve it for the whole run.
        extra_schema: tuple | None = None
        alive = program.alive_count()
        # Same hoisting as the scalar fast path: disabled telemetry costs
        # a few local-bool branches per round.
        tracer = self.tracer
        trace_rounds = tracer.enabled
        prof = self.profiler
        for _ in range(max_rounds):
            round_index = self.rounds_executed
            if adv is not None:
                alive = self._apply_crashes_batch(round_index, alive)
            if alive == 0:
                break
            round_dropped = round_delayed = round_duplicated = 0
            if prof is not None:
                t_phase = perf_counter()
            if len(inbox):
                # Halted receivers drop their pending inbox rows — same
                # classification as the scalar paths (crash-stopped nodes
                # charge the adversary, self-halted ones the protocol).
                to_halted = program.halted_mask()[inbox.receivers]
                if to_halted.any():
                    if self._crashed:
                        crashed = np.fromiter(
                            self._crashed, dtype=np.int64, count=len(self._crashed)
                        )
                        to_crashed = to_halted & np.isin(inbox.receivers, crashed)
                        crashed_count = int(np.count_nonzero(to_crashed))
                        dropped_adversary += crashed_count
                        self._dropped_to_crashed += crashed_count
                        dropped_protocol += int(
                            np.count_nonzero(to_halted & ~to_crashed)
                        )
                    else:
                        dropped_protocol += int(np.count_nonzero(to_halted))
                    inbox = inbox.take(np.nonzero(~to_halted)[0])
            outbox = program.step_batch(round_index, inbox)
            alive = program.alive_count()
            if prof is not None:
                t_now = perf_counter()
                prof.add("engine.step", t_now - t_phase)
                t_phase = t_now
            count = 0 if outbox is None else len(outbox)
            round_sent = count
            messages_this_round = 0
            delayed = adv.pop_delayed(round_index + 1) if adv is not None else []
            receiver_arr = arrival_arr = None
            if count:
                senders = outbox.senders
                ports = outbox.ports
                if count > 1 and np.any(np.diff(senders) < 0):
                    raise ValueError(
                        f"step_batch outbox violates canonical sender order "
                        f"in round {round_index} (senders must be ascending)"
                    )
                bad_index = table.find_bad_port(senders, ports)
                if bad_index is not None:
                    raise ValueError(
                        f"node {int(senders[bad_index])} sent on invalid "
                        f"port {int(ports[bad_index])} in round {round_index}"
                    )
                self._check_congest(senders, ports, max_ports, round_index)
                receiver_arr, arrival_arr = table.route(
                    senders, ports, self.kernels
                )
                if not object_mode and outbox.extras is not None:
                    if extra_schema is None:
                        extra_schema = tuple(
                            (name, column.dtype)
                            for name, column in outbox.extras.items()
                        )
                    elif [name for name, _ in extra_schema] != list(
                        outbox.extras
                    ):
                        raise ValueError(
                            f"step_batch outbox changed its extras schema in "
                            f"round {round_index}: expected columns "
                            f"{[name for name, _ in extra_schema]}, got "
                            f"{list(outbox.extras)}"
                        )
                if object_mode:
                    payloads = outbox.payloads
                    for message, sender, port in zip(
                        payloads, senders.tolist(), ports.tolist()
                    ):
                        message.sender = sender
                        message.sender_port = port
                    if any(message.bits for message in payloads):
                        bits = np.fromiter(
                            (m.bits for m in payloads), dtype=np.int64, count=count
                        )
                        units = message_units_array(bits, capacity)
                        messages_this_round = int(units.sum())
                    else:
                        messages_this_round = count
                elif outbox.bits is not None and np.any(outbox.bits):
                    units = message_units_array(outbox.bits, capacity)
                    messages_this_round = int(units.sum())
                else:
                    messages_this_round = count
                if adv is not None and adv.observes:
                    # Canonical observation point (same as both scalar
                    # paths): routed arrays in canonical send order,
                    # before any fault mask is drawn.
                    adv.observe_round(round_index, senders, ports, receiver_arr)
                if adv is not None and adv.has_message_faults:
                    # Same single message_masks call per round, over the
                    # same canonical arrays, as both scalar backends.
                    drop, delay, duplicate = adv.message_masks(
                        round_index, senders, ports
                    )
                    # Disjoint-mask sums: the same values the adversary's
                    # ledger just accrued, kept for reconciliation.
                    round_dropped = int(drop.sum())
                    round_delayed = int(delay.sum())
                    round_duplicated = int(duplicate.sum())
                    self._adv_dropped += round_dropped
                    self._adv_delayed += round_delayed
                    self._adv_duplicated += round_duplicated
                    if round_dropped or round_delayed or round_duplicated:
                        dropped_adversary += round_dropped
                        if round_delayed:
                            arrival_round = round_index + 1 + adv.spec.delay_rounds
                            held = np.nonzero(delay)[0].tolist()
                            if object_mode:
                                held_payloads = [payloads[i] for i in held]
                            else:
                                extra_held = (
                                    ()
                                    if outbox.extras is None
                                    else tuple(
                                        outbox.extras[name][held].tolist()
                                        for name, _ in extra_schema
                                    )
                                )
                                held_payloads = list(
                                    zip(
                                        senders[held].tolist(),
                                        outbox.kinds[held].tolist(),
                                        outbox.values[held].tolist(),
                                        (
                                            [0] * len(held)
                                            if outbox.bits is None
                                            else outbox.bits[held].tolist()
                                        ),
                                        *extra_held,
                                    )
                                )
                            adv.push_delayed_many(
                                arrival_round,
                                list(
                                    zip(
                                        receiver_arr[held].tolist(),
                                        arrival_arr[held].tolist(),
                                        held_payloads,
                                    )
                                ),
                            )
                        keep = np.nonzero(~(drop | delay))[0]
                        if round_duplicated:
                            keep = np.repeat(keep, np.where(duplicate[keep], 2, 1))
                        receiver_arr = receiver_arr[keep]
                        arrival_arr = arrival_arr[keep]
                        outbox = outbox.take(keep)
                        count = len(outbox)
            if prof is not None:
                t_now = perf_counter()
                prof.add("engine.gather", t_now - t_phase)
                t_phase = t_now
            # Assemble next round's inbox: delayed arrivals precede the
            # round's direct sends (the scalar backends' append order);
            # one stable sort groups rows by receiver while preserving it.
            total = len(delayed) + count
            if total:
                d = len(delayed)
                recv = np.empty(total, dtype=np.int64)
                arrp = np.empty(total, dtype=np.int64)
                orig = np.empty(total, dtype=np.int64)
                if object_mode:
                    pay: list = [None] * total
                else:
                    kinds = np.empty(total, dtype=np.int64)
                    values = np.empty(total, dtype=np.int64)
                    bits_col = np.zeros(total, dtype=np.int64)
                    extra_cols = (
                        []
                        if extra_schema is None
                        else [
                            np.zeros(total, dtype=dtype)
                            for _, dtype in extra_schema
                        ]
                    )
                for i, (receiver, port, payload) in enumerate(delayed):
                    recv[i] = receiver
                    arrp[i] = port
                    if object_mode:
                        orig[i] = payload.sender
                        pay[i] = payload
                    else:
                        orig[i], kinds[i], values[i], bits_col[i] = payload[:4]
                        # Rows delayed before the schema appeared carry no
                        # extras tail; their columns stay zero-filled.
                        for j, value in enumerate(payload[4:]):
                            extra_cols[j][i] = value
                if count:
                    recv[d:] = receiver_arr
                    arrp[d:] = arrival_arr
                    orig[d:] = outbox.senders
                    if object_mode:
                        pay[d:] = outbox.payloads
                    else:
                        kinds[d:] = outbox.kinds
                        values[d:] = outbox.values
                        if outbox.bits is not None:
                            bits_col[d:] = outbox.bits
                        if outbox.extras is not None:
                            for j, (name, _) in enumerate(extra_schema):
                                extra_cols[j][d:] = outbox.extras[name]
                order = self.kernels.stable_receiver_order(recv, n)
                inbox = MessageBatch(
                    senders=orig[order],
                    ports=arrp[order],
                    kinds=None if object_mode else kinds[order],
                    values=None if object_mode else values[order],
                    bits=None if object_mode else bits_col[order],
                    payloads=(
                        [pay[i] for i in order.tolist()] if object_mode else None
                    ),
                    extras=(
                        None
                        if object_mode or extra_schema is None
                        else {
                            name: column[order]
                            for (name, _), column in zip(
                                extra_schema, extra_cols
                            )
                        }
                    ),
                    receivers=recv[order],
                )
            else:
                inbox = empty
            if prof is not None:
                prof.add("engine.deliver", perf_counter() - t_phase)
            self.metrics.charge(self.label, messages=messages_this_round, rounds=1)
            self._units_total += messages_this_round
            if trace_rounds:
                tracer.emit(
                    "round",
                    label=self.label,
                    round=round_index,
                    sent=round_sent,
                    units=messages_this_round,
                    dropped=round_dropped,
                    delayed=round_delayed,
                    duplicated=round_duplicated,
                )
            self.rounds_executed += 1
        self._dropped_protocol = dropped_protocol
        self._dropped_adversary = dropped_adversary
        self._in_flight = len(inbox)
        if adv is not None:
            self._in_flight += adv.pending_delayed
        return self.rounds_executed

    @staticmethod
    def _check_congest(senders, ports, max_ports: int, round_index: int) -> None:
        """Duplicate (sender, port) pairs violate one-message-per-edge."""
        slots = senders * max_ports + ports
        slots.sort()
        duplicates = np.nonzero(np.diff(slots) == 0)[0]
        if duplicates.size:
            slot = int(slots[duplicates[0]])
            raise CongestViolation(
                f"node {slot // max_ports} sent two messages on port "
                f"{slot % max_ports} in round {round_index}"
            )

    # -- accounting ------------------------------------------------------------

    @property
    def crashed_nodes(self) -> frozenset:
        """Nodes the adversary crash-stopped (empty without an adversary).

        Protocols hand this to their result so correctness conditions can
        be evaluated over the surviving nodes, the standard crash-stop
        convention.
        """
        return frozenset(self._crashed)

    def undelivered(self) -> int:
        """Total messages never consumed when :meth:`run` last returned.

        The sum of :meth:`undelivered_detail`'s three classes; non-zero
        only when the engine halted mid-protocol or an adversary interfered.
        """
        return self._in_flight + self._dropped_protocol + self._dropped_adversary

    def undelivered_detail(self) -> dict:
        """Undelivered messages split by cause.

        * ``in_flight`` — sends still queued when the round budget ran out
          (including adversary-delayed messages whose delay never expired);
        * ``dropped_protocol`` — protocol slack: messages addressed to
          nodes that had already halted on their own;
        * ``dropped_adversary`` — adversary losses: transit drops plus
          messages addressed to crash-stopped nodes.
        """
        return {
            "in_flight": self._in_flight,
            "dropped_protocol": self._dropped_protocol,
            "dropped_adversary": self._dropped_adversary,
        }

    def fault_stats(self) -> dict | None:
        """The armed adversary's fault accounting, or None when unarmed."""
        if self.adversary is None:
            return None
        return self.adversary.stats(self.rounds_executed)

    def accounting_meta(self) -> dict:
        """Result-meta entries for undelivered and fault accounting.

        Without an adversary, entries appear only when something went
        undelivered (the legacy convention).  With an adversary armed,
        every key is always present — including zeros — so per-trial
        extras aggregate cleanly across a sweep.
        """
        meta: dict = {}
        total = self.undelivered()
        if total or self.adversary is not None:
            meta["undelivered"] = total
            meta["undelivered_in_flight"] = self._in_flight
            meta["undelivered_dropped_protocol"] = self._dropped_protocol
            meta["undelivered_dropped_adversary"] = self._dropped_adversary
        stats = self.fault_stats()
        if stats is not None:
            meta.update(stats)
        return meta
