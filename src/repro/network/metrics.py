"""Message/round accounting shared by every protocol in the library.

A :class:`MetricsRecorder` is the single point through which simulated
protocols report cost.  Quantum charges follow the paper's rule (Section 3.1):
a round of quantum communication in a superposition of configurations costs
the *maximum* message count over the superposed branches — so one coherent
Checking invocation is charged once, regardless of how many classical
recipients appear in the superposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.ledger import CostLedger

__all__ = ["MetricsRecorder", "PhaseMetrics"]


@dataclass
class PhaseMetrics:
    """Cost snapshot of one named protocol phase."""

    label: str
    messages: int
    rounds: int


class MetricsRecorder:
    """Accumulates message and round totals plus a labelled ledger."""

    def __init__(self) -> None:
        self.ledger = CostLedger()
        self._message_total = 0
        self._round_total = 0

    # -- charging -------------------------------------------------------------

    def charge(self, label: str, messages: int = 0, rounds: int = 0) -> None:
        """Record ``messages`` CONGEST messages over ``rounds`` rounds."""
        self.ledger.charge(label, messages=messages, rounds=rounds)
        self._message_total += messages
        self._round_total += rounds

    def charge_messages(self, label: str, messages: int) -> None:
        self.charge(label, messages=messages, rounds=0)

    def advance_rounds(self, label: str, rounds: int) -> None:
        self.charge(label, messages=0, rounds=rounds)

    # -- reading --------------------------------------------------------------

    @property
    def messages(self) -> int:
        """Total CONGEST messages charged so far."""
        return self._message_total

    @property
    def rounds(self) -> int:
        """Total synchronized rounds elapsed so far."""
        return self._round_total

    def snapshot(self) -> tuple[int, int]:
        """(messages, rounds) pair, for measuring a phase with :meth:`delta`."""
        return self._message_total, self._round_total

    def delta(self, snapshot: tuple[int, int], label: str = "phase") -> PhaseMetrics:
        """Cost accrued since ``snapshot``."""
        messages, rounds = snapshot
        return PhaseMetrics(
            label=label,
            messages=self._message_total - messages,
            rounds=self._round_total - rounds,
        )

    def merge(self, other: "MetricsRecorder") -> None:
        """Fold another recorder's ledger and totals into this one."""
        self.ledger.merge(other.ledger)
        self._message_total += other.messages
        self._round_total += other.rounds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsRecorder(messages={self.messages}, rounds={self.rounds})"
