"""Classical CONGEST substrate: topologies, messages, metrics, engine, walks."""

from repro.network.batch import (
    STATUS_CODES,
    BatchProtocol,
    MessageBatch,
    ScalarAdapter,
)
from repro.network.engine import (
    BACKENDS,
    CongestViolation,
    SynchronousEngine,
    default_backend,
)
from repro.network.message import (
    CONGEST_FACTOR,
    Message,
    congest_capacity_bits,
    messages_for_bits,
)
from repro.network.metrics import MetricsRecorder, PhaseMetrics
from repro.network.node import Node, Status
from repro.network.random_walk import (
    RandomWalk,
    WalkToken,
    estimate_mixing_time,
    lazy_transition_matrix,
    spectral_gap,
    stationary_distribution,
)
from repro.network.spanning import (
    SpanningTree,
    bfs_tree,
    charge_broadcast,
    charge_convergecast,
)
from repro.network.porttable import (
    BipartitePortTable,
    CSRPortTable,
    CompletePortTable,
    HypercubePortTable,
    PortTable,
    StarPortTable,
)
from repro.network.topology import (
    CompleteBipartiteTopology,
    CompleteTopology,
    ExplicitTopology,
    HypercubeTopology,
    StarTopology,
    Topology,
    bfs_distances,
    diameter,
    eccentricity,
    is_connected,
)

__all__ = [
    "BACKENDS",
    "BatchProtocol",
    "BipartitePortTable",
    "CONGEST_FACTOR",
    "CSRPortTable",
    "CompleteBipartiteTopology",
    "CompletePortTable",
    "CompleteTopology",
    "CongestViolation",
    "ExplicitTopology",
    "HypercubePortTable",
    "HypercubeTopology",
    "Message",
    "MessageBatch",
    "MetricsRecorder",
    "Node",
    "PhaseMetrics",
    "PortTable",
    "RandomWalk",
    "STATUS_CODES",
    "ScalarAdapter",
    "SpanningTree",
    "StarPortTable",
    "StarTopology",
    "Status",
    "SynchronousEngine",
    "Topology",
    "WalkToken",
    "bfs_distances",
    "default_backend",
    "bfs_tree",
    "charge_broadcast",
    "charge_convergecast",
    "congest_capacity_bits",
    "diameter",
    "eccentricity",
    "estimate_mixing_time",
    "is_connected",
    "lazy_transition_matrix",
    "messages_for_bits",
    "spectral_gap",
    "stationary_distribution",
]
