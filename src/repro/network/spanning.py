"""Spanning trees and the broadcast/convergecast primitives built on them.

Section 4.1 recalls the standard primitives a coordinating node uses:
broadcast and convergecast over a spanning tree, each costing one message per
tree edge and a number of rounds equal to the tree height.  QuantumGeneralLE
uses per-cluster trees (built incrementally by merging); the final explicit
leader announcement uses a network-wide BFS tree.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.network.metrics import MetricsRecorder
from repro.network.topology import Topology

__all__ = [
    "SpanningTree",
    "bfs_tree",
    "charge_broadcast",
    "charge_convergecast",
]


@dataclass
class SpanningTree:
    """Rooted spanning tree of (a connected subset of) a topology."""

    root: int
    parent: dict[int, int]  # node -> parent; root maps to -1
    depth: dict[int, int]

    @property
    def size(self) -> int:
        return len(self.parent)

    @property
    def edge_total(self) -> int:
        return self.size - 1

    @property
    def height(self) -> int:
        return max(self.depth.values()) if self.depth else 0

    def children(self) -> dict[int, list[int]]:
        """Child lists derived from the parent map."""
        result: dict[int, list[int]] = {v: [] for v in self.parent}
        for v, p in self.parent.items():
            if p >= 0:
                result[p].append(v)
        return result

    def path_to_root(self, v: int) -> list[int]:
        """Nodes from v up to (and including) the root."""
        path = [v]
        while self.parent[path[-1]] >= 0:
            path.append(self.parent[path[-1]])
        return path


def bfs_tree(topology: Topology, root: int) -> SpanningTree:
    """Breadth-first spanning tree of the (connected) topology."""
    topology.validate_node(root)
    parent = {root: -1}
    depth = {root: 0}
    frontier = deque([root])
    while frontier:
        v = frontier.popleft()
        for u in topology.neighbors(v):
            if u not in parent:
                parent[u] = v
                depth[u] = depth[v] + 1
                frontier.append(u)
    if len(parent) != topology.n:
        raise ValueError("topology is disconnected; spanning tree incomplete")
    return SpanningTree(root=root, parent=parent, depth=depth)


def charge_broadcast(
    tree: SpanningTree, metrics: MetricsRecorder, label: str = "broadcast"
) -> None:
    """Charge a root-to-leaves broadcast: one message per tree edge."""
    metrics.charge(label, messages=tree.edge_total, rounds=max(tree.height, 1))


def charge_convergecast(
    tree: SpanningTree, metrics: MetricsRecorder, label: str = "convergecast"
) -> None:
    """Charge a leaves-to-root aggregation: one message per tree edge."""
    metrics.charge(label, messages=tree.edge_total, rounds=max(tree.height, 1))
