"""Random walks, stationary measures, spectral gaps and mixing times.

QuantumRWLE (Section 5.2) assumes nodes know (an upper bound on) the network's
mixing time τ.  This module provides:

* step-by-step walk simulation (the classical referee walks),
* exact t-step distributions via sparse matrix-vector products (used to
  compute the exact marked fraction ε_f seen by the Grover phase),
* spectral-gap and mixing-time estimation for the lazy walk.

We use the *lazy* walk P = (I + D⁻¹A)/2 throughout so that periodicity (e.g.
on bipartite graphs like the hypercube) never spoils convergence.
"""

from __future__ import annotations

import math

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.network.graphs import as_explicit
from repro.network.topology import ExplicitTopology, Topology
from repro.util.rng import RandomSource

__all__ = [
    "RandomWalk",
    "WalkToken",
    "estimate_mixing_time",
    "lazy_transition_matrix",
    "spectral_gap",
    "stationary_distribution",
]


def lazy_transition_matrix(topology: Topology) -> sp.csr_matrix:
    """Row-stochastic lazy transition matrix P = (I + D⁻¹A)/2."""
    explicit = as_explicit(topology)
    n = explicit.n
    rows, cols, values = [], [], []
    for v in range(n):
        neighbours = explicit.adjacency_list(v)
        degree = len(neighbours)
        if degree == 0:
            raise ValueError(f"node {v} is isolated; walks undefined")
        rows.append(v)
        cols.append(v)
        values.append(0.5)
        weight = 0.5 / degree
        for u in neighbours:
            rows.append(v)
            cols.append(u)
            values.append(weight)
    return sp.csr_matrix((values, (rows, cols)), shape=(n, n))


def stationary_distribution(topology: Topology) -> np.ndarray:
    """π(v) = deg(v) / 2m — stationary for both the simple and lazy walks."""
    degrees = np.array([topology.degree(v) for v in topology.nodes()], dtype=float)
    return degrees / degrees.sum()


def spectral_gap(topology: Topology) -> float:
    """Spectral gap 1 - λ₂ of the lazy walk (λ₂ = second-largest eigenvalue).

    Uses the symmetric normalized form D^{1/2} P D^{-1/2} so that ``eigsh``
    applies.  All lazy-walk eigenvalues lie in [0, 1], so the gap is positive
    for connected graphs.
    """
    explicit = as_explicit(topology)
    n = explicit.n
    transition = lazy_transition_matrix(explicit)
    degrees = np.array([explicit.degree(v) for v in range(n)], dtype=float)
    scale = np.sqrt(degrees)
    symmetric = sp.diags(scale) @ transition @ sp.diags(1.0 / scale)
    symmetric = (symmetric + symmetric.T) / 2.0
    if n <= 256:
        eigenvalues = np.linalg.eigvalsh(symmetric.toarray())
        second = eigenvalues[-2]
    else:
        eigenvalues = spla.eigsh(symmetric, k=2, which="LA", return_eigenvectors=False)
        second = np.sort(eigenvalues)[0]
    return float(max(1.0 - second, 1e-12))


def estimate_mixing_time(topology: Topology, accuracy: float | None = None) -> int:
    """Mixing-time estimate τ ≈ ln(n/accuracy·π_min) / gap for the lazy walk.

    This is the standard relaxation-time bound
    τ(δ) <= (1/gap)·ln(1/(δ·π_min)); protocols only need an upper bound on τ,
    which is exactly what the paper assumes nodes know.
    """
    n = topology.n
    if accuracy is None:
        accuracy = 1.0 / (4.0 * n)
    gap = spectral_gap(topology)
    pi_min = float(stationary_distribution(topology).min())
    tau = math.log(1.0 / (accuracy * pi_min)) / gap
    return max(1, math.ceil(tau))


class WalkToken:
    """A classical token performing a walk, for the referee phase of RWLE."""

    __slots__ = ("origin", "position", "steps", "payload")

    def __init__(self, origin: int, payload=None):
        self.origin = origin
        self.position = origin
        self.steps = 0
        self.payload = payload


class RandomWalk:
    """Simulation and exact analysis of lazy random walks on a topology."""

    def __init__(self, topology: Topology):
        self._topology = as_explicit(topology)
        self._transition: sp.csr_matrix | None = None

    @property
    def topology(self) -> ExplicitTopology:
        return self._topology

    def _matrix(self) -> sp.csr_matrix:
        if self._transition is None:
            self._transition = lazy_transition_matrix(self._topology)
        return self._transition

    # -- simulation ------------------------------------------------------------

    def step(self, position: int, rng: RandomSource) -> int:
        """One lazy step from ``position`` using private randomness."""
        if rng.bernoulli(0.5):
            return position
        neighbours = self._topology.adjacency_list(position)
        return int(neighbours[rng.uniform_int(0, len(neighbours) - 1)])

    def run(self, start: int, length: int, rng: RandomSource) -> list[int]:
        """Trajectory of a ``length``-step lazy walk (including the start)."""
        trajectory = [start]
        position = start
        for _ in range(length):
            position = self.step(position, rng)
            trajectory.append(position)
        return trajectory

    def endpoint(self, start: int, length: int, rng: RandomSource) -> int:
        """Endpoint of a ``length``-step lazy walk."""
        position = start
        for _ in range(length):
            position = self.step(position, rng)
        return position

    def choices_for_walk(self, length: int, rng: RandomSource) -> list[tuple[bool, float]]:
        """Pre-drawn random choices for a walk, as QuantumRWLE's initiator does.

        Each entry is (lazy?, fraction); the fraction indexes uniformly into
        the current node's neighbour list.  Pre-committing the choices is what
        lets the *centralized* Grover search treat a walk as a classical input
        x ∈ X (Section 5.2), at the cost of shipping Θ(τ log n) bits.
        """
        return [(rng.bernoulli(0.5), rng.uniform()) for _ in range(length)]

    def follow_choices(self, start: int, choices: list[tuple[bool, float]]) -> int:
        """Deterministically replay pre-drawn choices from ``start``."""
        position = start
        for lazy, fraction in choices:
            if lazy:
                continue
            neighbours = self._topology.adjacency_list(position)
            index = min(int(fraction * len(neighbours)), len(neighbours) - 1)
            position = int(neighbours[index])
        return position

    # -- exact analysis ----------------------------------------------------------

    def distribution_after(self, start: int, steps: int) -> np.ndarray:
        """Exact distribution of the walk position after ``steps`` steps."""
        state = np.zeros(self._topology.n)
        state[start] = 1.0
        matrix = self._matrix()
        for _ in range(steps):
            state = matrix.T @ state
        return state

    def hit_probability(self, start: int, steps: int, targets: set[int]) -> float:
        """P[walk endpoint ∈ targets] after exactly ``steps`` steps."""
        if not targets:
            return 0.0
        distribution = self.distribution_after(start, steps)
        return float(sum(distribution[t] for t in targets))
