"""CONGEST messages and bandwidth accounting.

The CONGEST model (Section 2.1) allows one message of O(log n) bits per edge
per round.  We fix the constant: a single message carries at most
``CONGEST_FACTOR * ceil(log2 n)`` bits.  Payloads larger than that must be
split and charged as multiple messages — this is exactly how the τ → τ²
message blow-up of QuantumRWLE's Checking procedure arises (Section 5.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.util.mathx import ceil_div

__all__ = [
    "CONGEST_FACTOR",
    "Message",
    "congest_capacity_bits",
    "message_units_array",
    "messages_for_bits",
]

#: Number of log2(n)-bit words a single CONGEST message may carry.
CONGEST_FACTOR = 8


def congest_capacity_bits(n: int, factor: int = CONGEST_FACTOR) -> int:
    """Capacity in bits of one CONGEST message in an n-node network."""
    if n < 2:
        raise ValueError(f"network must have at least 2 nodes, got {n}")
    return factor * max(1, math.ceil(math.log2(n)))


def messages_for_bits(bits: int, n: int, factor: int = CONGEST_FACTOR) -> int:
    """Number of CONGEST messages needed to ship ``bits`` bits over one edge."""
    if bits < 0:
        raise ValueError(f"bits must be non-negative, got {bits}")
    if bits == 0:
        return 0
    return ceil_div(bits, congest_capacity_bits(n, factor))


def message_units_array(bits, capacity: int):
    """Vectorized :meth:`Message.message_units` over a bits column.

    ``bits`` is an int64 numpy array of declared wire sizes, ``capacity``
    the single-message bit capacity (:func:`congest_capacity_bits`);
    returns the per-message CONGEST unit counts (minimum 1, matching the
    scalar rule).  Shared by the engine's batched accounting paths so the
    array and scalar charge rules cannot drift apart.
    """
    return np.maximum(1, -(-np.asarray(bits) // capacity))


@dataclass
class Message:
    """One message travelling over one edge in one round.

    ``kind`` is a short protocol-level tag ("rank", "reply", ...), ``payload``
    arbitrary simulation data, and ``bits`` the declared wire size used for
    CONGEST accounting (defaults to one log-n word's worth, i.e. size 0 means
    "fits trivially").
    """

    kind: str
    payload: Any = None
    bits: int = 0
    sender: int = -1
    sender_port: int = -1

    meta: dict = field(default_factory=dict)

    def message_units(self, n: int) -> int:
        """How many CONGEST messages this logical message counts as."""
        return max(1, messages_for_bits(self.bits, n))
