"""Precomputed port-routing tables for vectorized message delivery.

In the KT0 port model every directed message is addressed as ``(sender,
port)``; delivering it needs two lookups — the receiver
(``neighbor_at_port(sender, port)``) and the receiver-side port
(``port_to(receiver, sender)``).  Doing those one Python call at a time is
what bounds the synchronous engine: on K_n the naive ``port_to`` fallback
is O(n) *per message*.

A :class:`PortTable` precomputes both directions so a whole round of
messages resolves with a handful of numpy gathers:

* :class:`CSRPortTable` materializes flat CSR-style arrays (degree
  offsets, neighbor array, reverse-port array) for any explicit graph —
  O(m) memory, O(1) per lookup;
* the implicit families (:class:`CompletePortTable`,
  :class:`StarPortTable`, :class:`BipartitePortTable`,
  :class:`HypercubePortTable`) compute both directions arithmetically,
  so K_n routing never materializes its Θ(n²) edge set.

Tables are exposed through :meth:`repro.network.topology.Topology.port_table`,
which caches one instance per topology object.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "BipartitePortTable",
    "CSRPortTable",
    "CompletePortTable",
    "CyclePortTable",
    "HypercubePortTable",
    "PortTable",
    "StarPortTable",
]


class PortTable(ABC):
    """Vectorized two-way port routing for one fixed topology.

    All array methods accept int64 numpy arrays of equal length and return
    int64 arrays; entries are *not* validated (the engine validates port
    ranges once per round via :meth:`degrees_of`).
    """

    @property
    @abstractmethod
    def n(self) -> int:
        """Number of nodes."""

    @property
    @abstractmethod
    def max_ports(self) -> int:
        """Maximum degree; ``sender * max_ports + port`` is a unique
        directed-edge slot id (used for CONGEST duplicate detection)."""

    @abstractmethod
    def degrees_of(self, nodes: np.ndarray) -> np.ndarray:
        """Degree of each node in ``nodes``."""

    @abstractmethod
    def receivers(self, senders: np.ndarray, ports: np.ndarray) -> np.ndarray:
        """``neighbor_at_port`` vectorized: who each message reaches."""

    @abstractmethod
    def reverse_ports(
        self, senders: np.ndarray, ports: np.ndarray, receivers: np.ndarray
    ) -> np.ndarray:
        """``port_to(receiver, sender)`` vectorized: the arrival port."""

    def find_bad_port(self, senders: np.ndarray, ports: np.ndarray) -> int | None:
        """Index of the first out-of-range port, or None when all are valid.

        Uniform-degree tables override this with two O(1)-allocation
        reductions; this generic version gathers per-sender degrees.
        """
        bad = (ports < 0) | (ports >= self.degrees_of(senders))
        if bad.any():
            return int(np.argmax(bad))
        return None

    def _find_bad_port_uniform(
        self, ports: np.ndarray, degree: int
    ) -> int | None:
        if ports.size and (int(ports.min()) < 0 or int(ports.max()) >= degree):
            return int(np.argmax((ports < 0) | (ports >= degree)))
        return None

    def route(
        self, senders: np.ndarray, ports: np.ndarray, kernels=None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Both routing gathers at once: (receivers, arrival ports).

        ``kernels`` is an optional
        :class:`~repro.network.kernels.KernelSet`; tables whose routing is
        a memory gather (CSR) dispatch it through the compiled tier when
        one is active.  Arithmetic tables ignore it — their numpy
        expressions are already O(1) per row.
        """
        receivers = self.receivers(senders, ports)
        return receivers, self.reverse_ports(senders, ports, receivers)

    def port_to(self, v: int, u: int) -> int:
        """Scalar port of ``v`` leading to neighbour ``u``."""
        s = np.asarray([v], dtype=np.int64)
        deg = int(self.degrees_of(s)[0])
        ports = np.arange(deg, dtype=np.int64)
        hits = np.nonzero(self.receivers(np.full(deg, v, dtype=np.int64), ports) == u)[0]
        if hits.size == 0:
            raise ValueError(f"{u} is not a neighbour of {v}")
        return int(hits[0])


class CSRPortTable(PortTable):
    """Materialized CSR routing arrays for an arbitrary explicit graph.

    ``neighbors[offsets[v] + p]`` is the neighbour behind port ``p`` of
    ``v``; ``reverse[offsets[v] + p]`` is the port at which that neighbour
    sees ``v`` back.  Scalar ``port_to`` runs in O(log deg) through a
    key-sorted index built once at construction.
    """

    def __init__(self, offsets: np.ndarray, neighbors: np.ndarray):
        self._offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        self._neighbors = np.ascontiguousarray(neighbors, dtype=np.int64)
        self._n = len(self._offsets) - 1
        n = self._n
        degrees = np.diff(self._offsets)
        self._max_ports = int(degrees.max()) if n else 0
        src = np.repeat(np.arange(n, dtype=np.int64), degrees)
        keys = src * n + self._neighbors
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        # Index of each directed edge's mirror (u → v for v → u); a simple
        # undirected graph always has one.
        rev_pos = np.searchsorted(sorted_keys, self._neighbors * n + src)
        if np.any(rev_pos >= len(sorted_keys)) or np.any(
            sorted_keys[np.minimum(rev_pos, len(sorted_keys) - 1)]
            != self._neighbors * n + src
        ):
            raise ValueError("adjacency is not symmetric: not an undirected graph")
        self._reverse = order[rev_pos] - self._offsets[self._neighbors]
        self._sorted_keys = sorted_keys
        self._order = order

    @classmethod
    def from_adjacency(cls, adjacency: list[list[int]]) -> "CSRPortTable":
        """Build from per-node neighbour lists in port order."""
        degrees = np.fromiter(
            (len(nbrs) for nbrs in adjacency), dtype=np.int64, count=len(adjacency)
        )
        offsets = np.zeros(len(adjacency) + 1, dtype=np.int64)
        np.cumsum(degrees, out=offsets[1:])
        if int(offsets[-1]):
            neighbors = np.concatenate(
                [np.asarray(nbrs, dtype=np.int64) for nbrs in adjacency if nbrs]
            )
        else:
            neighbors = np.empty(0, dtype=np.int64)
        return cls(offsets, neighbors)

    @classmethod
    def from_topology(cls, topology) -> "CSRPortTable":
        """Build from any :class:`~repro.network.topology.Topology`."""
        return cls.from_adjacency(
            [list(topology.neighbors(v)) for v in range(topology.n)]
        )

    @property
    def n(self) -> int:
        return self._n

    @property
    def max_ports(self) -> int:
        return self._max_ports

    def degrees_of(self, nodes: np.ndarray) -> np.ndarray:
        return self._offsets[nodes + 1] - self._offsets[nodes]

    def receivers(self, senders: np.ndarray, ports: np.ndarray) -> np.ndarray:
        return self._neighbors[self._offsets[senders] + ports]

    def reverse_ports(
        self, senders: np.ndarray, ports: np.ndarray, receivers: np.ndarray
    ) -> np.ndarray:
        return self._reverse[self._offsets[senders] + ports]

    def route(
        self, senders: np.ndarray, ports: np.ndarray, kernels=None
    ) -> tuple[np.ndarray, np.ndarray]:
        if kernels is not None and kernels.is_numba:
            return kernels.route_csr(
                self._offsets, self._neighbors, self._reverse, senders, ports
            )
        base = self._offsets[senders] + ports
        return self._neighbors[base], self._reverse[base]

    def port_to(self, v: int, u: int) -> int:
        key = v * self._n + u
        pos = int(np.searchsorted(self._sorted_keys, key))
        if pos < len(self._sorted_keys) and self._sorted_keys[pos] == key:
            return int(self._order[pos] - self._offsets[v])
        raise ValueError(f"{u} is not a neighbour of {v}")


class CompletePortTable(PortTable):
    """K_n: port ``p`` of ``v`` reaches ``(v + 1 + p) mod n`` — all arithmetic."""

    def __init__(self, n: int):
        self._n = n

    @property
    def n(self) -> int:
        return self._n

    @property
    def max_ports(self) -> int:
        return self._n - 1

    def degrees_of(self, nodes: np.ndarray) -> np.ndarray:
        return np.full(len(nodes), self._n - 1, dtype=np.int64)

    def receivers(self, senders: np.ndarray, ports: np.ndarray) -> np.ndarray:
        return (senders + 1 + ports) % self._n

    def reverse_ports(
        self, senders: np.ndarray, ports: np.ndarray, receivers: np.ndarray
    ) -> np.ndarray:
        return (senders - receivers - 1) % self._n

    def find_bad_port(self, senders: np.ndarray, ports: np.ndarray) -> int | None:
        return self._find_bad_port_uniform(ports, self._n - 1)

    def port_to(self, v: int, u: int) -> int:
        if u == v:
            raise ValueError("no port to self")
        return (u - v - 1) % self._n


class StarPortTable(PortTable):
    """Star: centre 0's port ``p`` reaches leaf ``p + 1``; leaves have port 0."""

    def __init__(self, n: int):
        self._n = n

    @property
    def n(self) -> int:
        return self._n

    @property
    def max_ports(self) -> int:
        return self._n - 1

    def degrees_of(self, nodes: np.ndarray) -> np.ndarray:
        return np.where(nodes == 0, self._n - 1, 1).astype(np.int64)

    def receivers(self, senders: np.ndarray, ports: np.ndarray) -> np.ndarray:
        return np.where(senders == 0, ports + 1, 0).astype(np.int64)

    def reverse_ports(
        self, senders: np.ndarray, ports: np.ndarray, receivers: np.ndarray
    ) -> np.ndarray:
        return np.where(senders == 0, 0, senders - 1).astype(np.int64)

    def port_to(self, v: int, u: int) -> int:
        if v == 0 and 1 <= u < self._n:
            return u - 1
        if v != 0 and u == 0:
            return 0
        raise ValueError(f"{u} is not a neighbour of {v}")


class BipartitePortTable(PortTable):
    """K_{a,b}: left node's port ``p`` reaches ``a + p``; right's reaches ``p``."""

    def __init__(self, a: int, b: int):
        self._a = a
        self._b = b

    @property
    def n(self) -> int:
        return self._a + self._b

    @property
    def max_ports(self) -> int:
        return max(self._a, self._b)

    def degrees_of(self, nodes: np.ndarray) -> np.ndarray:
        return np.where(nodes < self._a, self._b, self._a).astype(np.int64)

    def receivers(self, senders: np.ndarray, ports: np.ndarray) -> np.ndarray:
        return np.where(senders < self._a, self._a + ports, ports).astype(np.int64)

    def reverse_ports(
        self, senders: np.ndarray, ports: np.ndarray, receivers: np.ndarray
    ) -> np.ndarray:
        return np.where(senders < self._a, senders, senders - self._a).astype(np.int64)

    def port_to(self, v: int, u: int) -> int:
        if (v < self._a) == (u < self._a):
            raise ValueError(f"{u} is not a neighbour of {v}")
        return u - self._a if v < self._a else u


class HypercubePortTable(PortTable):
    """Q_d: port ``p`` flips bit ``p``, so the reverse port is ``p`` itself."""

    def __init__(self, dimension: int):
        self._d = dimension
        self._n = 1 << dimension

    @property
    def n(self) -> int:
        return self._n

    @property
    def max_ports(self) -> int:
        return self._d

    def degrees_of(self, nodes: np.ndarray) -> np.ndarray:
        return np.full(len(nodes), self._d, dtype=np.int64)

    def receivers(self, senders: np.ndarray, ports: np.ndarray) -> np.ndarray:
        return np.bitwise_xor(senders, np.left_shift(np.int64(1), ports))

    def reverse_ports(
        self, senders: np.ndarray, ports: np.ndarray, receivers: np.ndarray
    ) -> np.ndarray:
        return ports

    def find_bad_port(self, senders: np.ndarray, ports: np.ndarray) -> int | None:
        return self._find_bad_port_uniform(ports, self._d)

    def port_to(self, v: int, u: int) -> int:
        diff = u ^ v
        if diff == 0 or diff & (diff - 1):
            raise ValueError(f"{u} is not a neighbour of {v}")
        return diff.bit_length() - 1


class CyclePortTable(PortTable):
    """C_n: both ports of every node computed arithmetically.

    Million-node rings never materialize their edge list.  The port
    convention matches the explicit builder's sorted-adjacency order
    exactly (so the two representations are trace-interchangeable): port
    0 reaches the *smaller*-id neighbour, port 1 the larger.  For a
    middle node ``v`` that is ``v-1``/``v+1``; the wrap nodes 0 and
    ``n-1`` see their neighbours re-sorted (0: ports → 1, n−1;
    n−1: ports → 0, n−2).
    """

    def __init__(self, n: int):
        if n < 3:
            raise ValueError(f"cycle needs at least 3 nodes, got {n}")
        self._n = n

    @property
    def n(self) -> int:
        return self._n

    @property
    def max_ports(self) -> int:
        return 2

    def degrees_of(self, nodes: np.ndarray) -> np.ndarray:
        return np.full(len(nodes), 2, dtype=np.int64)

    def _sorted_neighbors(
        self, nodes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        n = self._n
        prev = (nodes - 1) % n
        nxt = (nodes + 1) % n
        return np.minimum(prev, nxt), np.maximum(prev, nxt)

    def receivers(self, senders: np.ndarray, ports: np.ndarray) -> np.ndarray:
        lo, hi = self._sorted_neighbors(senders)
        return np.where(ports == 0, lo, hi)

    def reverse_ports(
        self, senders: np.ndarray, ports: np.ndarray, receivers: np.ndarray
    ) -> np.ndarray:
        lo, _ = self._sorted_neighbors(receivers)
        return np.where(senders == lo, 0, 1).astype(np.int64)

    def find_bad_port(self, senders: np.ndarray, ports: np.ndarray) -> int | None:
        return self._find_bad_port_uniform(ports, 2)

    def port_to(self, v: int, u: int) -> int:
        n = self._n
        prev, nxt = (v - 1) % n, (v + 1) % n
        if u not in (prev, nxt):
            raise ValueError(f"{u} is not a neighbour of {v}")
        return 0 if u == min(prev, nxt) else 1
