"""Node state for protocols running on the synchronous engine.

Every node carries the special ``status`` variable of the leader-election
problem definition (Section 2.2): initially ⊥ (``Status.UNDECIDED``), finally
exactly one ELECTED and the rest NON_ELECTED.  Agreement protocols use the
separate ``decision`` field (None encodes ⊥).
"""

from __future__ import annotations

import enum

from repro.network.message import Message
from repro.util.rng import RandomSource

__all__ = ["Node", "Status"]


class Status(enum.Enum):
    """Leader-election status values from Section 2.2."""

    UNDECIDED = "undecided"  # the paper's ⊥
    ELECTED = "elected"
    NON_ELECTED = "non-elected"


class Node:
    """Base class for engine-driven nodes (KT0: knows only its port count).

    Subclasses override :meth:`step`, which receives the messages delivered
    this round as ``(port, Message)`` pairs and returns the messages to send
    as ``(port, Message)`` pairs.  A node that sets ``halted`` stops being
    scheduled.
    """

    def __init__(self, uid: int, degree: int, rng: RandomSource):
        self.uid = uid
        self.degree = degree
        self.rng = rng
        self.status = Status.UNDECIDED
        self.decision: int | None = None
        self.halted = False

    def step(self, round_index: int, inbox: list[tuple[int, Message]]) -> list[tuple[int, Message]]:
        """One synchronous round; default behaviour is silence."""
        return []

    def halt(self) -> None:
        """Stop participating in the protocol from the next round on.

        Halt semantics are identical across all three engine dispatch
        paths (``fast``, ``reference``, and the batch path of
        :class:`~repro.network.batch.BatchProtocol` programs):

        * messages returned by the *same* ``step`` call that halts are
          still sent (halting takes effect after the round's sends);
        * from the next round on the node is never stepped again and any
          message addressed to it is dropped on arrival — charged to the
          sender's metrics when sent, then counted as ``dropped_protocol``
          in :meth:`SynchronousEngine.undelivered_detail` (or
          ``dropped_adversary`` when the halt was a crash-stop);
        * the engine stops as soon as every node has halted.
        """
        self.halted = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(uid={self.uid}, status={self.status.value})"
