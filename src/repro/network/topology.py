"""Network topologies with a uniform, KT0-friendly interface.

Nodes are integers ``0..n-1``.  In the KT0 (clean network) model a node knows
only its *ports* ``0..deg(v)-1``; the mapping from port to neighbour id is a
property of the wiring that protocols may discover only by communicating.
The :class:`Topology` interface therefore exposes neighbours *by port*.

Two representations coexist behind the same interface:

* :class:`ExplicitTopology` stores adjacency lists — any graph.
* Implicit families (:class:`CompleteTopology`, :class:`StarTopology`,
  :class:`CompleteBipartiteTopology`, :class:`HypercubeTopology`) compute
  neighbours on demand so that benchmarks on K_n never materialize the
  Θ(n²) edge set.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from collections.abc import Iterable, Iterator

from repro.util.mathx import is_power_of_two

__all__ = [
    "CompleteBipartiteTopology",
    "CompleteTopology",
    "CycleTopology",
    "ExplicitTopology",
    "HypercubeTopology",
    "StarTopology",
    "Topology",
    "bfs_distances",
    "diameter",
    "eccentricity",
    "is_connected",
]


class Topology(ABC):
    """Abstract undirected, connected, simple graph on nodes 0..n-1."""

    @property
    @abstractmethod
    def n(self) -> int:
        """Number of nodes."""

    @abstractmethod
    def degree(self, v: int) -> int:
        """Degree of node v."""

    @abstractmethod
    def neighbor_at_port(self, v: int, port: int) -> int:
        """Neighbour reached through port ``port`` of node ``v``."""

    @abstractmethod
    def has_edge(self, u: int, v: int) -> bool:
        """True when {u, v} is an edge."""

    @abstractmethod
    def edge_count(self) -> int:
        """Number of undirected edges m."""

    # -- derived helpers -------------------------------------------------------

    def neighbors(self, v: int) -> Iterator[int]:
        """Iterate over the neighbours of v in port order."""
        for port in range(self.degree(v)):
            yield self.neighbor_at_port(v, port)

    def port_to(self, v: int, u: int) -> int:
        """Port of v leading to neighbour u (via the cached port table).

        Subclasses with arithmetic port structure override this with O(1)
        formulas; the generic path costs O(log deg) after the table is
        built once.
        """
        self.validate_node(v)
        self.validate_node(u)
        return self.port_table().port_to(v, u)

    def port_table(self):
        """The cached :class:`~repro.network.porttable.PortTable`.

        Built lazily on first use and shared by every consumer of this
        topology object (the fast engine, ``port_to``, ...).
        """
        table = getattr(self, "_port_table_cache", None)
        if table is None:
            table = self._build_port_table()
            self._port_table_cache = table
        return table

    def _build_port_table(self):
        from repro.network.porttable import CSRPortTable

        return CSRPortTable.from_topology(self)

    def nodes(self) -> range:
        return range(self.n)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over undirected edges as (u, v) with u < v."""
        for v in self.nodes():
            for u in self.neighbors(v):
                if v < u:
                    yield (v, u)

    def validate_node(self, v: int) -> None:
        if not 0 <= v < self.n:
            raise ValueError(f"node {v} outside range [0, {self.n})")

    def average_degree(self) -> float:
        return 2.0 * self.edge_count() / self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n={self.n}, m={self.edge_count()})"


class ExplicitTopology(Topology):
    """Adjacency-list topology for arbitrary graphs."""

    def __init__(self, n: int, edges: Iterable[tuple[int, int]]):
        if n < 1:
            raise ValueError(f"need at least one node, got n={n}")
        adjacency: list[list[int]] = [[] for _ in range(n)]
        seen: set[tuple[int, int]] = set()
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop at node {u} not allowed")
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u}, {v}) outside node range [0, {n})")
            key = (min(u, v), max(u, v))
            if key in seen:
                continue
            seen.add(key)
            adjacency[u].append(v)
            adjacency[v].append(u)
        self._n = n
        self._adjacency = [sorted(nbrs) for nbrs in adjacency]
        self._adjacency_sets = [set(nbrs) for nbrs in self._adjacency]
        self._m = len(seen)
        self._port_index: list[dict[int, int] | None] = [None] * n

    @classmethod
    def from_networkx(cls, graph) -> "ExplicitTopology":
        """Build from a networkx graph with integer-convertible labels."""
        nodes = sorted(graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in graph.edges()]
        return cls(len(nodes), edges)

    @property
    def n(self) -> int:
        return self._n

    def degree(self, v: int) -> int:
        self.validate_node(v)
        return len(self._adjacency[v])

    def neighbor_at_port(self, v: int, port: int) -> int:
        self.validate_node(v)
        return self._adjacency[v][port]

    def neighbors(self, v: int) -> Iterator[int]:
        self.validate_node(v)
        return iter(self._adjacency[v])

    def port_to(self, v: int, u: int) -> int:
        self.validate_node(v)
        index = self._port_index[v]
        if index is None:
            index = {nbr: port for port, nbr in enumerate(self._adjacency[v])}
            self._port_index[v] = index
        try:
            return index[u]
        except KeyError:
            raise ValueError(f"{u} is not a neighbour of {v}") from None

    def has_edge(self, u: int, v: int) -> bool:
        self.validate_node(u)
        self.validate_node(v)
        return v in self._adjacency_sets[u]

    def edge_count(self) -> int:
        return self._m

    def adjacency_list(self, v: int) -> list[int]:
        """Sorted neighbour list (internal, used by walk machinery)."""
        return self._adjacency[v]

    def _build_port_table(self):
        from repro.network.porttable import CSRPortTable

        return CSRPortTable.from_adjacency(self._adjacency)


class CompleteTopology(Topology):
    """K_n without materialized edges; port i of v maps to (v + 1 + i) mod n."""

    def __init__(self, n: int):
        if n < 2:
            raise ValueError(f"complete graph needs n >= 2, got {n}")
        self._n = n

    @property
    def n(self) -> int:
        return self._n

    def degree(self, v: int) -> int:
        self.validate_node(v)
        return self._n - 1

    def neighbor_at_port(self, v: int, port: int) -> int:
        self.validate_node(v)
        if not 0 <= port < self._n - 1:
            raise ValueError(f"port {port} outside [0, {self._n - 1})")
        return (v + 1 + port) % self._n

    def port_to(self, v: int, u: int) -> int:
        self.validate_node(v)
        self.validate_node(u)
        if u == v:
            raise ValueError("no port to self")
        return (u - v - 1) % self._n

    def has_edge(self, u: int, v: int) -> bool:
        self.validate_node(u)
        self.validate_node(v)
        return u != v

    def edge_count(self) -> int:
        return self._n * (self._n - 1) // 2

    def _build_port_table(self):
        from repro.network.porttable import CompletePortTable

        return CompletePortTable(self._n)


class CycleTopology(Topology):
    """C_n with arithmetic ports — million-node rings stay O(1) memory.

    Port order matches :class:`ExplicitTopology`'s sorted adjacency (port
    0 → smaller-id neighbour), so ``graphs.cycle`` swapping to this class
    changes no trace: for a middle node that is ``v-1``/``v+1``; node 0's
    ports reach 1 then n−1, node n−1's reach 0 then n−2.
    """

    def __init__(self, n: int):
        if n < 3:
            raise ValueError(f"cycle needs at least 3 nodes, got {n}")
        self._n = n

    @property
    def n(self) -> int:
        return self._n

    def degree(self, v: int) -> int:
        self.validate_node(v)
        return 2

    def _sorted_neighbors(self, v: int) -> tuple[int, int]:
        prev, nxt = (v - 1) % self._n, (v + 1) % self._n
        return (prev, nxt) if prev < nxt else (nxt, prev)

    def neighbor_at_port(self, v: int, port: int) -> int:
        self.validate_node(v)
        if port not in (0, 1):
            raise ValueError(f"port {port} outside [0, 2)")
        return self._sorted_neighbors(v)[port]

    def port_to(self, v: int, u: int) -> int:
        self.validate_node(v)
        self.validate_node(u)
        lo, hi = self._sorted_neighbors(v)
        if u == lo:
            return 0
        if u == hi:
            return 1
        raise ValueError(f"{u} is not a neighbour of {v}")

    def has_edge(self, u: int, v: int) -> bool:
        self.validate_node(u)
        self.validate_node(v)
        diff = (u - v) % self._n
        return diff in (1, self._n - 1)

    def edge_count(self) -> int:
        return self._n

    def _build_port_table(self):
        from repro.network.porttable import CyclePortTable

        return CyclePortTable(self._n)


class StarTopology(Topology):
    """Star S_n: node 0 is the centre, 1..n-1 are leaves.  Diameter 2."""

    def __init__(self, n: int):
        if n < 2:
            raise ValueError(f"star needs n >= 2, got {n}")
        self._n = n

    @property
    def n(self) -> int:
        return self._n

    @property
    def center(self) -> int:
        return 0

    def degree(self, v: int) -> int:
        self.validate_node(v)
        return self._n - 1 if v == 0 else 1

    def neighbor_at_port(self, v: int, port: int) -> int:
        self.validate_node(v)
        if v == 0:
            if not 0 <= port < self._n - 1:
                raise ValueError(f"port {port} outside centre's range")
            return port + 1
        if port != 0:
            raise ValueError(f"leaf {v} has a single port, got {port}")
        return 0

    def port_to(self, v: int, u: int) -> int:
        self.validate_node(v)
        self.validate_node(u)
        if v == 0 and u != 0:
            return u - 1
        if v != 0 and u == 0:
            return 0
        raise ValueError(f"{u} is not a neighbour of {v}")

    def has_edge(self, u: int, v: int) -> bool:
        self.validate_node(u)
        self.validate_node(v)
        return (u == 0) != (v == 0)

    def edge_count(self) -> int:
        return self._n - 1

    def _build_port_table(self):
        from repro.network.porttable import StarPortTable

        return StarPortTable(self._n)


class CompleteBipartiteTopology(Topology):
    """K_{a,b}: left part 0..a-1, right part a..a+b-1.  Diameter 2."""

    def __init__(self, a: int, b: int):
        if a < 1 or b < 1:
            raise ValueError(f"both parts need >= 1 node, got a={a}, b={b}")
        if a == 1 and b == 1:
            raise ValueError("K_{1,1} is a single edge; use a larger part")
        self._a = a
        self._b = b

    @property
    def n(self) -> int:
        return self._a + self._b

    @property
    def left_size(self) -> int:
        return self._a

    @property
    def right_size(self) -> int:
        return self._b

    def is_left(self, v: int) -> bool:
        self.validate_node(v)
        return v < self._a

    def degree(self, v: int) -> int:
        self.validate_node(v)
        return self._b if v < self._a else self._a

    def neighbor_at_port(self, v: int, port: int) -> int:
        self.validate_node(v)
        if v < self._a:
            if not 0 <= port < self._b:
                raise ValueError(f"port {port} outside left node's range")
            return self._a + port
        if not 0 <= port < self._a:
            raise ValueError(f"port {port} outside right node's range")
        return port

    def port_to(self, v: int, u: int) -> int:
        self.validate_node(v)
        self.validate_node(u)
        if (v < self._a) == (u < self._a):
            raise ValueError(f"{u} is not a neighbour of {v}")
        return u - self._a if v < self._a else u

    def has_edge(self, u: int, v: int) -> bool:
        self.validate_node(u)
        self.validate_node(v)
        return (u < self._a) != (v < self._a)

    def edge_count(self) -> int:
        return self._a * self._b

    def _build_port_table(self):
        from repro.network.porttable import BipartitePortTable

        return BipartitePortTable(self._a, self._b)


class HypercubeTopology(Topology):
    """d-dimensional hypercube Q_d on n = 2^d nodes; port i flips bit i."""

    def __init__(self, dimension: int):
        if dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {dimension}")
        self._d = dimension
        self._n = 1 << dimension

    @property
    def n(self) -> int:
        return self._n

    @property
    def dimension(self) -> int:
        return self._d

    @classmethod
    def of_size(cls, n: int) -> "HypercubeTopology":
        """Hypercube with exactly n = 2^d nodes."""
        if not is_power_of_two(n):
            raise ValueError(f"hypercube size must be a power of two, got {n}")
        return cls(n.bit_length() - 1)

    def degree(self, v: int) -> int:
        self.validate_node(v)
        return self._d

    def neighbor_at_port(self, v: int, port: int) -> int:
        self.validate_node(v)
        if not 0 <= port < self._d:
            raise ValueError(f"port {port} outside [0, {self._d})")
        return v ^ (1 << port)

    def port_to(self, v: int, u: int) -> int:
        self.validate_node(v)
        self.validate_node(u)
        diff = u ^ v
        if diff == 0 or diff & (diff - 1):
            raise ValueError(f"{u} is not a neighbour of {v}")
        return diff.bit_length() - 1

    def has_edge(self, u: int, v: int) -> bool:
        self.validate_node(u)
        self.validate_node(v)
        diff = u ^ v
        return diff != 0 and (diff & (diff - 1)) == 0

    def edge_count(self) -> int:
        return self._n * self._d // 2

    def _build_port_table(self):
        from repro.network.porttable import HypercubePortTable

        return HypercubePortTable(self._d)


# -- graph measurements --------------------------------------------------------


def bfs_distances(topology: Topology, source: int) -> list[int]:
    """Hop distances from ``source``; -1 marks unreachable nodes."""
    topology.validate_node(source)
    distances = [-1] * topology.n
    distances[source] = 0
    frontier = deque([source])
    while frontier:
        v = frontier.popleft()
        for u in topology.neighbors(v):
            if distances[u] < 0:
                distances[u] = distances[v] + 1
                frontier.append(u)
    return distances


def is_connected(topology: Topology) -> bool:
    """True when every node is reachable from node 0."""
    return all(d >= 0 for d in bfs_distances(topology, 0))


def eccentricity(topology: Topology, v: int) -> int:
    """Largest hop distance from v (graph must be connected)."""
    distances = bfs_distances(topology, v)
    worst = max(distances)
    if min(distances) < 0:
        raise ValueError("graph is disconnected")
    return worst


def diameter(topology: Topology) -> int:
    """Exact diameter by all-sources BFS — O(n·m); intended for tests."""
    return max(eccentricity(topology, v) for v in topology.nodes())
