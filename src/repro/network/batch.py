"""Array-native protocol contract: struct-of-arrays node state, one call per round.

The scalar :class:`~repro.network.node.Node` API crosses the numpy/Python
boundary once per node per round — ``step`` takes and returns ``(port,
Message)`` tuple lists, so on the fast backend every round still
materializes Θ(messages) Python objects even though *routing* is fully
vectorized.  This module is the opt-in alternative: a
:class:`BatchProtocol` owns its whole network's state as numpy arrays
(struct-of-arrays) and advances one synchronous round with a single call

    ``step_batch(round_index, inbox) -> outbox``

over *all alive nodes at once*, where inbox and outbox use the engine's
batched :class:`MessageBatch` representation — parallel ``(senders, ports,
kinds, values)`` int64 columns, the same arrays the fast backend's routing
gathers already operate on.  No per-node dispatch, no tuple
materialization, no ``Message`` objects on the wire.

Contracts a ``step_batch`` implementation must honour (the engine checks
the cheap ones):

* **canonical send order** — outbox rows sorted by sender ascending, and
  within one sender in the node's emission order.  This is the exact
  order both scalar backends flatten each round's sends into, so fault
  masks drawn by an :class:`~repro.adversary.armed.ArmedAdversary`
  consume identical random streams and batch trials stay bit-identical
  to scalar ones;
* **halted nodes are silent** — a row may be emitted in the same round a
  node halts (matching a scalar ``step`` that sends and then calls
  ``halt()``), but a node halted *before* the round must not appear as a
  sender;
* **one message per port per round** — the CONGEST constraint, validated
  by the engine exactly as on the scalar paths.

Inbox batches arrive sorted by ``receivers`` ascending with the canonical
order preserved inside each receiver's group — identical to the per-inbox
append order of the scalar backends — and never contain rows addressed to
halted nodes (the engine drops those first, with the same accounting as
the scalar paths; see :meth:`~repro.network.node.Node.halt`).

:class:`ScalarAdapter` closes the loop in the other direction: it wraps
any legacy list of :class:`~repro.network.node.Node` instances behind the
``step_batch`` contract (arrays → tuples → ``step`` → tuples → arrays), so
the engine needs only the one uniform program interface.  It is a
*library-level* escape hatch — construct it directly to drive an
unported protocol through the batch dispatch path; the registry's
``--node-api batch`` remains an explicit capability request and is
rejected for protocols without an array-native port (``auto``/``scalar``
pick the scalar path there).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.network.node import Status

__all__ = [
    "BatchProtocol",
    "MessageBatch",
    "ScalarAdapter",
    "STATUS_CODES",
    "STATUS_ELECTED",
    "STATUS_NON_ELECTED",
    "STATUS_UNDECIDED",
    "wants_batch_dispatch",
]

#: Integer codes for the leader-election ``status`` variable in SoA state.
STATUS_UNDECIDED, STATUS_ELECTED, STATUS_NON_ELECTED = 0, 1, 2

#: Code → :class:`~repro.network.node.Status` (the scalar enum).
STATUS_CODES: dict[int, Status] = {
    STATUS_UNDECIDED: Status.UNDECIDED,
    STATUS_ELECTED: Status.ELECTED,
    STATUS_NON_ELECTED: Status.NON_ELECTED,
}


#: Status enum → integer code (inverse of :data:`STATUS_CODES`).
_STATUS_TO_CODE = {status: code for code, status in STATUS_CODES.items()}


def wants_batch_dispatch(node_api: str) -> bool:
    """True when a ``node_api`` request selects the array-native path.

    The shared triage every dual-implementation protocol driver uses:
    ``"batch"``/``"auto"`` pick the :class:`BatchProtocol` program,
    ``"scalar"`` the legacy node list, anything else is an error.
    (Registry consumers resolve ``"auto"`` against capability tags first
    — :meth:`repro.runtime.registry.ProtocolSpec.resolve_node_api` — so
    here ``"auto"`` only ever reaches a protocol that has a port.)
    """
    if node_api in ("batch", "auto"):
        return True
    if node_api == "scalar":
        return False
    raise ValueError(
        f"node_api must be 'auto', 'batch', or 'scalar', got {node_api!r}"
    )


def _as_i64(values) -> np.ndarray:
    return np.ascontiguousarray(values, dtype=np.int64)


@dataclass
class MessageBatch:
    """One round's messages as parallel columns (struct-of-arrays).

    Outbox flavour (returned by ``step_batch``): ``senders`` are the
    emitting nodes (ascending), ``ports`` the sender-side ports.  Inbox
    flavour (handed to ``step_batch``): ``receivers`` is set (ascending),
    ``ports`` holds the *arrival* ports, and ``senders`` the original
    origins — the array analogue of ``Message.sender``.

    Payload channels come in two flavours:

    * array-native: ``kinds`` (protocol-defined small-int message tags)
      and ``values`` (one int64 payload column), with optional ``bits``
      wire sizes for CONGEST accounting (None ⇒ every row is one unit)
      and optional typed ``extras`` columns — a dict of extra payload
      arrays (any numeric dtype) for protocols whose messages carry more
      than one field (HS hop counters, Borůvka edge triples).  A protocol
      that uses extras must put the *same* column names, zero-filled
      where unused, on every outbox so the engine's delay queue keeps a
      consistent schema;
    * object mode (:class:`ScalarAdapter` only): ``payloads`` is a list of
      :class:`~repro.network.message.Message` aligned with the columns.
    """

    senders: np.ndarray
    ports: np.ndarray
    kinds: np.ndarray | None = None
    values: np.ndarray | None = None
    bits: np.ndarray | None = None
    payloads: list | None = None
    extras: dict[str, np.ndarray] | None = None
    receivers: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.senders = _as_i64(self.senders)
        self.ports = _as_i64(self.ports)
        if self.kinds is not None:
            self.kinds = _as_i64(self.kinds)
        if self.values is not None:
            self.values = _as_i64(self.values)
        if self.bits is not None:
            self.bits = _as_i64(self.bits)
        if self.extras is not None:
            self.extras = {
                name: np.ascontiguousarray(column)
                for name, column in self.extras.items()
            }
        if self.receivers is not None:
            self.receivers = _as_i64(self.receivers)

    def __len__(self) -> int:
        return len(self.senders)

    #: Cached zero-row batches keyed by mode; empty batches are immutable
    #: by convention (every consumer only reads), so the per-quiet-round
    #: column allocations collapse into two shared instances.
    _EMPTY_CACHE: ClassVar[dict[bool, "MessageBatch"]] = {}

    @classmethod
    def empty(cls, object_mode: bool = False) -> "MessageBatch":
        """A zero-row batch (the inbox of a silent round); shared, read-only."""
        cached = cls._EMPTY_CACHE.get(object_mode)
        if cached is None:
            zero = np.empty(0, dtype=np.int64)
            if object_mode:
                cached = cls(senders=zero, ports=zero, payloads=[], receivers=zero)
            else:
                cached = cls(
                    senders=zero, ports=zero, kinds=zero, values=zero,
                    receivers=zero,
                )
            cls._EMPTY_CACHE[object_mode] = cached
        return cached

    def take(self, indices: np.ndarray) -> "MessageBatch":
        """A new batch with every present column gathered at ``indices``.

        Absent optional columns (``bits``, ``payloads``, ``extras``) are
        never touched, and gathering nothing returns the shared empty
        batch instead of allocating fresh zero-length columns.
        """
        idx = np.asarray(indices, dtype=np.int64)
        if len(idx) == 0:
            return MessageBatch.empty(self.payloads is not None)
        return MessageBatch(
            senders=self.senders[idx],
            ports=self.ports[idx],
            kinds=None if self.kinds is None else self.kinds[idx],
            values=None if self.values is None else self.values[idx],
            bits=None if self.bits is None else self.bits[idx],
            payloads=(
                None
                if self.payloads is None
                else [self.payloads[i] for i in idx.tolist()]
            ),
            extras=(
                None
                if self.extras is None
                else {
                    name: column[idx] for name, column in self.extras.items()
                }
            ),
            receivers=None if self.receivers is None else self.receivers[idx],
        )


class BatchProtocol(ABC):
    """Base class for array-native protocols: SoA state, one step per round.

    Subclasses keep all node state in numpy arrays indexed by node id and
    implement :meth:`step_batch`.  The base class owns the three pieces of
    state every engine dispatch path shares: the ``halted`` mask (the SoA
    counterpart of ``Node.halted``; the engine reads it after every step
    and crash-stops nodes through :meth:`force_halt`), the
    ``status_codes`` array mirroring the leader-election ``status``
    variable, and ``decisions`` mirroring the agreement ``decision`` field
    (−1 encodes ⊥).
    """

    #: True when outboxes carry ``Message`` payloads instead of columns.
    uses_messages = False

    def __init__(self, n: int):
        if n < 1:
            raise ValueError(f"need n >= 1 nodes, got {n}")
        self.n = n
        self.halted = np.zeros(n, dtype=bool)
        self.status_codes = np.full(n, STATUS_UNDECIDED, dtype=np.int8)
        self.decisions = np.full(n, -1, dtype=np.int64)

    @abstractmethod
    def step_batch(
        self, round_index: int, inbox: MessageBatch
    ) -> MessageBatch | None:
        """Advance every alive node one round; return the round's sends.

        ``inbox`` is sorted by ``receivers`` ascending (canonical order
        within each group) and contains no rows for halted nodes.  Return
        None (or an empty batch) for a silent round.
        """

    # -- engine-facing state ---------------------------------------------------

    def halted_mask(self) -> np.ndarray:
        """The boolean halted-per-node view the engine filters inboxes by."""
        return self.halted

    def force_halt(self, v: int) -> None:
        """Crash-stop node ``v`` (the engine's adversary hook)."""
        self.halted[v] = True

    def alive_count(self) -> int:
        return int(self.n - np.count_nonzero(self.halted))

    # -- result helpers --------------------------------------------------------

    def statuses(self) -> dict[int, Status]:
        """``status_codes`` as the scalar result convention's enum dict."""
        return {
            v: STATUS_CODES[int(code)]
            for v, code in enumerate(self.status_codes)
        }

    def decisions_dict(self) -> dict[int, int | None]:
        """``decisions`` as the agreement result convention (None for ⊥)."""
        return {
            v: (None if value < 0 else int(value))
            for v, value in enumerate(self.decisions.tolist())
        }


class ScalarAdapter(BatchProtocol):
    """Drive legacy :class:`~repro.network.node.Node` lists through
    :meth:`~BatchProtocol.step_batch`.

    The adapter converts each inbox batch into per-node ``(port, Message)``
    lists, calls every alive node's ``step`` in ascending node order
    (exactly the scalar backends' schedule, so RNG consumption and send
    order are preserved), and flattens the outboxes back into one batch in
    canonical order.  It buys *uniformity*, not speed: per-node Python
    dispatch still happens inside ``step_batch``.  Array-native protocols
    subclass :class:`BatchProtocol` directly to skip it.
    """

    uses_messages = True

    def __init__(self, nodes: list):
        super().__init__(len(nodes))
        self.nodes = nodes
        for v, node in enumerate(nodes):
            if node.halted:
                self.halted[v] = True

    def force_halt(self, v: int) -> None:
        self.nodes[v].halted = True
        self.halted[v] = True

    def step_batch(
        self, round_index: int, inbox: MessageBatch
    ) -> MessageBatch | None:
        n = self.n
        boxes: list[list] = [[] for _ in range(n)]
        if len(inbox):
            for receiver, port, message in zip(
                inbox.receivers.tolist(), inbox.ports.tolist(), inbox.payloads
            ):
                boxes[receiver].append((port, message))
        out_senders: list[int] = []
        out_ports: list[int] = []
        out_payloads: list = []
        for v, node in enumerate(self.nodes):
            if self.halted[v]:
                continue
            outbox = node.step(round_index, boxes[v])
            if node.halted:
                self.halted[v] = True
            for port, message in outbox:
                out_senders.append(v)
                out_ports.append(port)
                out_payloads.append(message)
        if not out_senders:
            return None
        return MessageBatch(
            senders=np.asarray(out_senders, dtype=np.int64),
            ports=np.asarray(out_ports, dtype=np.int64),
            payloads=out_payloads,
        )

    # The SoA result views are mirrored lazily from the wrapped nodes —
    # they are only read after the run, so the engine hot loop never pays
    # for the per-node sync.

    def statuses(self) -> dict[int, Status]:
        return {v: node.status for v, node in enumerate(self.nodes)}

    def decisions_dict(self) -> dict[int, int | None]:
        for v, node in enumerate(self.nodes):
            self.status_codes[v] = _STATUS_TO_CODE[node.status]
            decision = getattr(node, "decision", None)
            self.decisions[v] = -1 if decision is None else int(decision)
        return super().decisions_dict()
