"""Graph generators for every topology family the experiments need.

All generators return :class:`~repro.network.topology.Topology` objects.
Random families take an explicit :class:`~repro.util.rng.RandomSource` so
experiments are reproducible.
"""

from __future__ import annotations

import math

import networkx as nx

from repro.network.topology import (
    CompleteBipartiteTopology,
    CompleteTopology,
    CycleTopology,
    ExplicitTopology,
    HypercubeTopology,
    StarTopology,
    Topology,
    diameter,
    is_connected,
)
from repro.util.rng import RandomSource

__all__ = [
    "as_explicit",
    "barbell",
    "complete",
    "complete_bipartite",
    "cycle",
    "diameter_two_gnp",
    "erdos_renyi",
    "hypercube",
    "lollipop",
    "path",
    "random_regular",
    "star",
    "torus",
    "wheel",
]


def complete(n: int) -> CompleteTopology:
    """Complete graph K_n (diameter 1)."""
    return CompleteTopology(n)


def star(n: int) -> StarTopology:
    """Star on n nodes, centre 0 (diameter 2)."""
    return StarTopology(n)


def complete_bipartite(a: int, b: int) -> CompleteBipartiteTopology:
    """Complete bipartite K_{a,b} (diameter 2 when both parts >= 2)."""
    return CompleteBipartiteTopology(a, b)


def hypercube(dimension: int) -> HypercubeTopology:
    """d-dimensional hypercube on 2^d nodes."""
    return HypercubeTopology(dimension)


def cycle(n: int) -> CycleTopology:
    """Cycle C_n (used by the ring leader-election baselines).

    Arithmetic ports (no stored adjacency), so C_n scales to millions of
    nodes; the port layout matches the old explicit construction exactly.
    """
    if n < 3:
        raise ValueError(f"cycle needs n >= 3, got {n}")
    return CycleTopology(n)


def path(n: int) -> ExplicitTopology:
    """Path P_n."""
    if n < 2:
        raise ValueError(f"path needs n >= 2, got {n}")
    return ExplicitTopology(n, [(i, i + 1) for i in range(n - 1)])


def wheel(n: int) -> ExplicitTopology:
    """Wheel: cycle on 1..n-1 plus hub 0 (diameter 2 for n >= 5)."""
    if n < 4:
        raise ValueError(f"wheel needs n >= 4, got {n}")
    edges = [(0, i) for i in range(1, n)]
    rim = list(range(1, n))
    edges += [(rim[i], rim[(i + 1) % len(rim)]) for i in range(len(rim))]
    return ExplicitTopology(n, edges)


def torus(rows: int, cols: int) -> ExplicitTopology:
    """2-D torus grid (4-regular); diameter ~ (rows + cols)/2."""
    if rows < 3 or cols < 3:
        raise ValueError(f"torus needs rows, cols >= 3, got {rows}x{cols}")
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            edges.append((v, r * cols + (c + 1) % cols))
            edges.append((v, ((r + 1) % rows) * cols + c))
    return ExplicitTopology(rows * cols, edges)


def random_regular(n: int, degree: int, rng: RandomSource) -> ExplicitTopology:
    """Random d-regular graph — an expander with high probability.

    Retries the configuration-model draw until the result is connected.
    """
    if degree < 3:
        raise ValueError(f"degree must be >= 3 for an expander, got {degree}")
    if n <= degree:
        raise ValueError(f"need n > degree, got n={n}, degree={degree}")
    if n * degree % 2 != 0:
        raise ValueError(f"n * degree must be even, got n={n}, degree={degree}")
    for _ in range(100):
        seed = rng.uniform_int(0, 2**31 - 1)
        graph = nx.random_regular_graph(degree, n, seed=seed)
        topology = ExplicitTopology.from_networkx(graph)
        if is_connected(topology):
            return topology
    raise RuntimeError(
        f"failed to draw a connected {degree}-regular graph on {n} nodes"
    )


def erdos_renyi(
    n: int,
    p: float,
    rng: RandomSource,
    ensure_connected: bool = True,
) -> ExplicitTopology:
    """G(n, p), optionally retried until connected."""
    if not 0.0 < p <= 1.0:
        raise ValueError(f"p must be in (0, 1], got {p}")
    attempts = 100 if ensure_connected else 1
    for _ in range(attempts):
        seed = rng.uniform_int(0, 2**31 - 1)
        graph = nx.fast_gnp_random_graph(n, p, seed=seed)
        topology = ExplicitTopology.from_networkx(graph)
        if not ensure_connected or is_connected(topology):
            return topology
    raise RuntimeError(f"failed to draw a connected G({n}, {p}) graph")


def diameter_two_gnp(n: int, rng: RandomSource, p: float | None = None) -> ExplicitTopology:
    """A random graph of diameter exactly 2, via G(n, p) above the threshold.

    G(n, p) has diameter 2 w.h.p. once p >= sqrt(2 ln n / n); we draw at a
    comfortable margin and retry on the rare failure.  This is the dense
    regime in which the Θ(n) classical lower bound of [CPR20] lives.
    """
    if n < 5:
        raise ValueError(f"need n >= 5 for a non-trivial diameter-2 graph, got {n}")
    if p is None:
        p = min(0.9, 2.0 * math.sqrt(math.log(n) / n))
    for _ in range(100):
        topology = erdos_renyi(n, p, rng, ensure_connected=True)
        if diameter(topology) == 2:
            return topology
    raise RuntimeError(f"failed to draw a diameter-2 G({n}, {p}) graph")


def barbell(clique_size: int) -> ExplicitTopology:
    """Two k-cliques joined by one edge — the classic bad-mixing graph."""
    if clique_size < 3:
        raise ValueError(f"cliques need >= 3 nodes, got {clique_size}")
    k = clique_size
    edges = []
    for i in range(k):
        for j in range(i + 1, k):
            edges.append((i, j))
            edges.append((k + i, k + j))
    edges.append((k - 1, k))
    return ExplicitTopology(2 * k, edges)


def lollipop(clique_size: int, tail_length: int) -> ExplicitTopology:
    """A k-clique with a path of ``tail_length`` nodes attached."""
    if clique_size < 3 or tail_length < 1:
        raise ValueError(
            f"need clique >= 3 and tail >= 1, got {clique_size}, {tail_length}"
        )
    k = clique_size
    edges = [(i, j) for i in range(k) for j in range(i + 1, k)]
    previous = k - 1
    for t in range(tail_length):
        edges.append((previous, k + t))
        previous = k + t
    return ExplicitTopology(k + tail_length, edges)


def as_explicit(topology: Topology) -> ExplicitTopology:
    """Materialize any topology into adjacency lists (for walk machinery)."""
    if isinstance(topology, ExplicitTopology):
        return topology
    return ExplicitTopology(topology.n, topology.edges())
