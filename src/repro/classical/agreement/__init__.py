"""Classical agreement baselines ([AMP18]) — analytical and engine-driven."""

from repro.classical.agreement.amp18 import (
    classical_agreement_private,
    classical_agreement_shared,
    default_epsilon_classical,
    default_inform_width_classical,
)
from repro.classical.agreement.amp18_engine import (
    classical_agreement_engine,
    default_epsilon_engine,
    default_inform_width_engine,
)

__all__ = [
    "classical_agreement_engine",
    "classical_agreement_private",
    "classical_agreement_shared",
    "default_epsilon_classical",
    "default_epsilon_engine",
    "default_inform_width_classical",
    "default_inform_width_engine",
]
