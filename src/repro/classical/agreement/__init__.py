"""Classical agreement baselines ([AMP18])."""

from repro.classical.agreement.amp18 import (
    classical_agreement_private,
    classical_agreement_shared,
    default_epsilon_classical,
    default_inform_width_classical,
)

__all__ = [
    "classical_agreement_private",
    "classical_agreement_shared",
    "default_epsilon_classical",
    "default_inform_width_classical",
]
