"""Classical implicit agreement — [AMP18] baselines.

Two protocols, matching the two rows of the paper's comparison:

* **private coins** — Õ(√n) (tight): agreement by leader election; the
  elected node alone decides its own input (implicit agreement allows a
  single decided node).
* **shared coin** — Õ(n^{2/5}): the sampling-based protocol QuantumAgreement
  quadratically improves.  Identical loop structure, with the two quantum
  subroutines replaced by their classical counterparts:

  - estimation by sampling Θ(log n / ε²) nodes (instead of ApproxCount's
    Θ(log n / ε)),
  - detection by probing Θ((n/s)·log n) random nodes (instead of Grover's
    Θ(√(n/s)·log n)).

  With ε = n^{−1/5} and s = n^{2/5} all three cost terms balance at Õ(n^{2/5})
  in expectation.
"""

from __future__ import annotations

import math

from repro.classical.leader_election.complete_kpp import classical_le_complete
from repro.core.candidates import draw_candidates
from repro.core.results import AgreementResult
from repro.network.metrics import MetricsRecorder
from repro.util.fault import FaultInjector
from repro.util.rng import RandomSource, SharedCoin

__all__ = [
    "classical_agreement_private",
    "classical_agreement_shared",
    "default_epsilon_classical",
    "default_inform_width_classical",
]


def default_epsilon_classical(n: int) -> float:
    """ε = n^{−1/5}, clamped to (Θ(1/n), 1/20] as in the quantum protocol."""
    return float(min(1.0 / 20.0, max(1.0 / n, n ** (-1.0 / 5.0))))


def default_inform_width_classical(n: int) -> int:
    """s = n^{2/5}: the classical informing width balancing detection cost."""
    return max(1, round(n ** (2.0 / 5.0)))


def classical_agreement_private(
    inputs: list[int],
    rng: RandomSource,
) -> AgreementResult:
    """Õ(√n) agreement from leader election (private randomness only).

    [AMP18] shows Θ̃(√n) is tight for private-coin agreement; electing a
    leader who decides its own input realizes the upper bound.
    """
    n = len(inputs)
    if n < 2:
        raise ValueError(f"need n >= 2 nodes, got {n}")
    if any(b not in (0, 1) for b in inputs):
        raise ValueError("inputs must be 0/1")

    election = classical_le_complete(n, rng)
    decisions: dict[int, int | None] = {v: None for v in range(n)}
    if election.leader is not None:
        decisions[election.leader] = inputs[election.leader]
    return AgreementResult(
        n=n,
        inputs={v: inputs[v] for v in range(n)},
        decisions=decisions,
        metrics=election.metrics,
        meta={"protocol": "le-based", "leader": election.leader},
    )


def classical_agreement_shared(
    inputs: list[int],
    rng: RandomSource,
    shared_coin: SharedCoin | None = None,
    epsilon: float | None = None,
    inform_width: int | None = None,
    estimation_alpha: float | None = None,
    detection_alpha: float | None = None,
    faults: FaultInjector | None = None,
) -> AgreementResult:
    """Run the Õ(n^{2/5}) shared-coin agreement protocol of [AMP18]."""
    n = len(inputs)
    if n < 2:
        raise ValueError(f"need n >= 2 nodes, got {n}")
    if any(b not in (0, 1) for b in inputs):
        raise ValueError("inputs must be 0/1")
    if epsilon is None:
        epsilon = default_epsilon_classical(n)
    if inform_width is None:
        inform_width = default_inform_width_classical(n)
    if estimation_alpha is None:
        estimation_alpha = 1.0 / (2.0 * n**2)
    if detection_alpha is None:
        detection_alpha = 1.0 / (4.0 * n**3)
    if shared_coin is None:
        shared_coin = SharedCoin(rng.spawn())

    metrics = MetricsRecorder()
    ones = sum(inputs)
    q = ones / n
    input_map = {v: inputs[v] for v in range(n)}
    decisions: dict[int, int | None] = {v: None for v in range(n)}

    draw = draw_candidates(n, rng, faults=faults)
    metrics.advance_rounds("amp18.candidate-selection", 1)
    if not draw.candidates:
        return AgreementResult(
            n=n, inputs=input_map, decisions=decisions, metrics=metrics,
            meta={"candidates": 0},
        )

    # -- estimation by sampling (Hoeffding: k = ln(2/α)/(2ε²) samples) ---------
    samples = max(1, math.ceil(math.log(2.0 / estimation_alpha) / (2.0 * epsilon**2)))
    q_estimate: dict[int, float] = {}
    for v in draw.candidates:
        hits = int(rng.generator.binomial(samples, q))
        q_estimate[v] = hits / samples
    metrics.charge(
        "amp18.estimation",
        messages=len(draw.candidates) * samples * 2,
        rounds=2,
    )

    # -- agreement loop ------------------------------------------------------------
    iterations = max(1, math.ceil(math.log(4.0 * n) / math.log(5.0)))
    probes = max(
        1, math.ceil((n / inform_width) * math.log(1.0 / detection_alpha))
    )

    remaining = list(draw.candidates)
    iterations_used = 0
    for _ in range(iterations):
        if not remaining:
            break
        iterations_used += 1
        r = shared_coin.next_uniform()

        decided_now: dict[int, int] = {}
        undecided_now: list[int] = []
        for v in remaining:
            estimate = q_estimate[v]
            if estimate < r - epsilon:
                decided_now[v] = 0
            elif estimate > r + epsilon:
                decided_now[v] = 1
            else:
                undecided_now.append(v)

        informed: dict[int, int] = {}
        for v, value in decided_now.items():
            for offset in range(1, inform_width + 1):
                informed[(v + offset) % n] = value
        metrics.charge(
            "amp18.inform",
            messages=len(decided_now) * inform_width,
            rounds=1,
        )

        metrics.charge(
            "amp18.detection",
            messages=len(undecided_now) * probes * 2,
            rounds=2,
        )
        informed_list = sorted(informed)
        hit_fraction = len(informed) / n

        next_remaining: list[int] = []
        for v, value in decided_now.items():
            decisions[v] = value
        for v in undecided_now:
            found = (
                bool(informed_list)
                and rng.uniform() < 1.0 - (1.0 - hit_fraction) ** probes
            )
            if found:
                witness = informed_list[rng.uniform_int(0, len(informed_list) - 1)]
                decisions[v] = informed[witness]
            else:
                next_remaining.append(v)
        remaining = next_remaining

    return AgreementResult(
        n=n,
        inputs=input_map,
        decisions=decisions,
        metrics=metrics,
        meta={
            "candidates": draw.count,
            "epsilon": epsilon,
            "inform_width": inform_width,
            "samples": samples,
            "probes": probes,
            "iterations": iterations_used,
            "undecided_at_end": len(remaining),
        },
    )
