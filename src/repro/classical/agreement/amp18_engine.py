"""Engine-driven [AMP18] shared-coin agreement on K_n — scalar and array-native.

:mod:`repro.classical.agreement.amp18` charges the [AMP18] protocol's cost
analytically (sampling estimates drawn from a binomial, detection modelled
as a hit probability).  This module *runs* it: every sample request,
informing message, and detection probe is a real CONGEST message routed by
the :class:`~repro.network.engine.SynchronousEngine`, which makes the
protocol engine-fault-injectable (drop/delay/duplicate/crash) — the first
agreement protocol in the library that is — and gives the batch dispatch
path a second problem family beyond leader election.

The round schedule is fixed (every node can compute it locally), with
T = ⌈log₅(4n)⌉ iterations of the [AMP18] loop:

* round 0 — candidates send ``sample`` requests to k random nodes;
* round 1 — sampled nodes reply with their input bit; candidates fold the
  replies into an estimate q̂ of the ones-fraction;
* round 2+2j (decide) — undecided candidates first consume any detection
  replies (adopting the first informed value heard), then compare q̂
  against the shared coin rⱼ: decide 0 if q̂ < rⱼ−ε, 1 if q̂ > rⱼ+ε.
  Deciders inform their s ring-successors; still-undecided candidates
  probe ``probes`` random nodes;
* round 3+2j (serve) — nodes record informing values, then answer each
  probe with their currently-held informed value (⊥ if none);
* round 2T+2 — last detection replies are consumed; everyone halts.

The parameter schedule is the "lean" counterpart of the analytical
module's (the convention :func:`repro.runtime.registry.lean_qwle_params`
set): ε is clamped to [0.1, 0.45] so sample counts k = O(log n / ε²) fit
the CONGEST degree bound k ≤ n−1, and all fan-outs are capped at n−1.
Cost shape is preserved — estimation Θ(k) per candidate, informing Θ(s),
detection Θ((n/s)·log n) per undecided candidate per iteration.

Two trace-identical implementations share the schedule: scalar
:class:`_AMP18Node` (per-node ``step``) and array-native
:class:`_AMP18Batch` (one ``step_batch`` over SoA columns), selected by
``node_api`` — the parity property tests assert bit-for-bit equality
across both and across both scalar backends.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.candidates import candidate_probability
from repro.core.results import AgreementResult
from repro.network.batch import BatchProtocol, MessageBatch, wants_batch_dispatch
from repro.network.engine import SynchronousEngine
from repro.network.message import Message
from repro.network.metrics import MetricsRecorder
from repro.network.node import Node
from repro.network.topology import CompleteTopology
from repro.util.rng import RandomSource, SharedCoin

__all__ = [
    "classical_agreement_engine",
    "default_epsilon_engine",
    "default_inform_width_engine",
    "default_probes_engine",
    "default_samples_engine",
]

#: Wire vocabulary shared by the scalar and array-native implementations.
_SAMPLE, _REPLY, _INFORM, _PROBE, _PREPLY = 0, 1, 2, 3, 4
_KINDS = {
    _SAMPLE: "sample",
    _REPLY: "reply",
    _INFORM: "inform",
    _PROBE: "probe",
    _PREPLY: "preply",
}
_CODES = {name: code for code, name in _KINDS.items()}


def default_epsilon_engine(n: int) -> float:
    """ε = n^{−1/5} clamped to [0.1, 0.45] (keeps k = O(log n/ε²) ≤ n−1)."""
    return float(min(0.45, max(0.1, n ** (-1.0 / 5.0))))


def default_inform_width_engine(n: int) -> int:
    """s = n^{2/5} capped at the degree bound n−1."""
    return max(1, min(n - 1, round(n ** (2.0 / 5.0))))


def default_samples_engine(n: int, epsilon: float) -> int:
    """Hoeffding sample count for ±ε estimates at failure rate 1/(4n²)."""
    return max(1, min(n - 1, math.ceil(math.log(8.0 * n * n) / (2.0 * epsilon**2))))


def default_probes_engine(n: int, inform_width: int) -> int:
    """Detection probes Θ((n/s)·log n) at failure rate 1/(4n), capped at n−1."""
    return max(
        1, min(n - 1, math.ceil((n / inform_width) * math.log(4.0 * n)))
    )


@dataclass(frozen=True)
class _Schedule:
    """The run's shared constants — every node computes these locally."""

    n: int
    epsilon: float
    inform_width: int
    samples: int
    probes: int
    iterations: int
    coins: tuple[float, ...]

    @property
    def final_round(self) -> int:
        return 2 * self.iterations + 2

    @classmethod
    def build(
        cls,
        n: int,
        shared_coin: SharedCoin,
        epsilon: float | None,
        inform_width: int | None,
    ) -> "_Schedule":
        if epsilon is None:
            epsilon = default_epsilon_engine(n)
        if inform_width is None:
            inform_width = default_inform_width_engine(n)
        if not 1 <= inform_width <= n - 1:
            raise ValueError(
                f"inform_width must be in [1, {n - 1}], got {inform_width}"
            )
        iterations = max(1, math.ceil(math.log(4.0 * n) / math.log(5.0)))
        return cls(
            n=n,
            epsilon=epsilon,
            inform_width=inform_width,
            samples=default_samples_engine(n, epsilon),
            probes=default_probes_engine(n, inform_width),
            iterations=iterations,
            coins=tuple(shared_coin.next_uniform() for _ in range(iterations)),
        )


class _AMP18Node(Node):
    """Scalar per-node implementation of the engine-driven [AMP18] loop."""

    def __init__(self, uid, degree, rng, schedule: _Schedule, input_bit: int,
                 is_candidate: bool):
        super().__init__(uid, degree, rng)
        self.schedule = schedule
        self.input_bit = input_bit
        self.is_candidate = is_candidate
        self.estimate = 0.0
        self.informed = -1

    def _serve(self, inbox) -> list[tuple[int, Message]]:
        # Informs first (this round's informers count for this round's
        # probes), then one reply per distinct probing port.
        for _, message in inbox:
            if message.kind == "inform":
                self.informed = message.payload
        out: list[tuple[int, Message]] = []
        seen: set[int] = set()
        for port, message in inbox:
            if message.kind == "probe" and port not in seen:
                seen.add(port)
                out.append(
                    (port, Message("preply", payload=self.informed + 1))
                )
        return out

    def _consume_replies(self, inbox) -> None:
        """Adopt the first informed value a detection probe brought back."""
        if self.decision is not None:
            return
        for _, message in inbox:
            if message.kind == "preply" and message.payload > 0:
                self.decision = message.payload - 1
                return

    def step(self, round_index: int, inbox):
        cfg = self.schedule
        if round_index == 0:
            if not self.is_candidate:
                return []
            ports = self.rng.sample_without_replacement(self.degree, cfg.samples)
            return [(int(p), Message("sample")) for p in ports]
        if round_index == 1:
            out = []
            seen: set[int] = set()
            for port, message in inbox:
                if message.kind == "sample" and port not in seen:
                    seen.add(port)
                    out.append((port, Message("reply", payload=self.input_bit)))
            return out
        if round_index == cfg.final_round:
            self._consume_replies(inbox)
            self.halt()
            return []
        if round_index % 2 == 1:
            return self._serve(inbox)
        # Decide round 2+2j.
        j = (round_index - 2) // 2
        if j >= cfg.iterations:
            return []
        if not self.is_candidate:
            return []
        if j == 0:
            hits = count = 0
            for _, message in inbox:
                if message.kind == "reply":
                    hits += message.payload
                    count += 1
            self.estimate = hits / count if count else 0.0
        else:
            self._consume_replies(inbox)
        if self.decision is not None:
            return []
        r = cfg.coins[j]
        if self.estimate < r - cfg.epsilon:
            self.decision = 0
        elif self.estimate > r + cfg.epsilon:
            self.decision = 1
        if self.decision is not None:
            return [
                (p, Message("inform", payload=self.decision))
                for p in range(cfg.inform_width)
            ]
        ports = self.rng.sample_without_replacement(self.degree, cfg.probes)
        return [(int(p), Message("probe")) for p in ports]


class _AMP18Batch(BatchProtocol):
    """Array-native implementation: SoA columns, one numpy pass per round.

    Column state: ``inputs``, ``is_candidate``, ``estimate``, ``informed``
    plus the inherited ``decisions``/``halted``.  Per-node RNG draws
    (referee samples, detection probes) loop only over the Θ(log n)
    candidates; everything message-shaped is grouped reductions on the
    inbox batch.
    """

    def __init__(self, schedule: _Schedule, rngs, inputs, is_candidate):
        n = schedule.n
        super().__init__(n)
        self.schedule = schedule
        self.rngs = rngs
        self.inputs = np.asarray(inputs, dtype=np.int64)
        self.is_candidate = np.asarray(is_candidate, dtype=bool)
        self.estimate = np.zeros(n, dtype=np.float64)
        self.informed = np.full(n, -1, dtype=np.int64)

    @staticmethod
    def _dedup_first_port(rows: np.ndarray, inbox, n: int) -> np.ndarray:
        """First row per (receiver, port) among ``rows`` in inbox order."""
        key = inbox.receivers[rows] * np.int64(n) + inbox.ports[rows]
        _, first = np.unique(key, return_index=True)
        first.sort()
        return rows[first]

    def _serve(self, inbox) -> MessageBatch | None:
        informs = np.nonzero(inbox.kinds == _INFORM)[0]
        if len(informs):
            # Last inform in inbox order wins, as in the scalar loop.
            last = np.full(self.n, -1, dtype=np.int64)
            np.maximum.at(last, inbox.receivers[informs], informs)
            touched = np.nonzero(last >= 0)[0]
            self.informed[touched] = inbox.values[last[touched]]
        probes = np.nonzero(inbox.kinds == _PROBE)[0]
        if not len(probes):
            return None
        probes = self._dedup_first_port(probes, inbox, self.n)
        rec = inbox.receivers[probes]
        return MessageBatch(
            senders=rec,
            ports=inbox.ports[probes],
            kinds=np.full(len(probes), _PREPLY, dtype=np.int64),
            values=self.informed[rec] + 1,
        )

    def _consume_replies(self, inbox) -> None:
        replies = np.nonzero(
            (inbox.kinds == _PREPLY) & (inbox.values > 0)
        )[0]
        if not len(replies):
            return
        first = np.full(self.n, np.iinfo(np.int64).max, dtype=np.int64)
        np.minimum.at(first, inbox.receivers[replies], replies)
        undecided = self.decisions < 0
        hit = np.nonzero((first < np.iinfo(np.int64).max) & undecided)[0]
        self.decisions[hit] = inbox.values[first[hit]] - 1

    def step_batch(self, round_index, inbox):
        cfg = self.schedule
        n = self.n
        alive = ~self.halted
        if round_index == 0:
            cands = np.nonzero(self.is_candidate & alive)[0]
            if not len(cands):
                return None
            chunks = [
                self.rngs[v].sample_without_replacement(n - 1, cfg.samples)
                for v in cands.tolist()
            ]
            senders = np.repeat(cands, cfg.samples)
            return MessageBatch(
                senders=senders,
                ports=np.concatenate(chunks),
                kinds=np.full(len(senders), _SAMPLE, dtype=np.int64),
                values=np.zeros(len(senders), dtype=np.int64),
            )
        if round_index == 1:
            samples = np.nonzero(inbox.kinds == _SAMPLE)[0]
            if not len(samples):
                return None
            samples = self._dedup_first_port(samples, inbox, n)
            rec = inbox.receivers[samples]
            return MessageBatch(
                senders=rec,
                ports=inbox.ports[samples],
                kinds=np.full(len(samples), _REPLY, dtype=np.int64),
                values=self.inputs[rec],
            )
        if round_index == cfg.final_round:
            self._consume_replies(inbox)
            self.halted |= alive
            return None
        if round_index % 2 == 1:
            return self._serve(inbox)
        j = (round_index - 2) // 2
        if j >= cfg.iterations:
            return None
        if j == 0:
            replies = np.nonzero(inbox.kinds == _REPLY)[0]
            hits = np.zeros(n, dtype=np.int64)
            count = np.zeros(n, dtype=np.int64)
            if len(replies):
                np.add.at(hits, inbox.receivers[replies], inbox.values[replies])
                np.add.at(count, inbox.receivers[replies], 1)
            self.estimate = hits / np.maximum(count, 1)
        else:
            self._consume_replies(inbox)
        undecided = self.is_candidate & alive & (self.decisions < 0)
        r = cfg.coins[j]
        decide0 = undecided & (self.estimate < r - cfg.epsilon)
        decide1 = undecided & (self.estimate > r + cfg.epsilon)
        self.decisions[decide0] = 0
        self.decisions[decide1] = 1
        informers = decide0 | decide1
        probers = undecided & ~informers
        active = np.nonzero(informers | probers)[0]
        if not len(active):
            return None
        sender_chunks: list[np.ndarray] = []
        port_chunks: list[np.ndarray] = []
        kind_chunks: list[np.ndarray] = []
        value_chunks: list[np.ndarray] = []
        inform_ports = np.arange(cfg.inform_width, dtype=np.int64)
        for v in active.tolist():
            if informers[v]:
                sender_chunks.append(
                    np.full(cfg.inform_width, v, dtype=np.int64)
                )
                port_chunks.append(inform_ports)
                kind_chunks.append(
                    np.full(cfg.inform_width, _INFORM, dtype=np.int64)
                )
                value_chunks.append(
                    np.full(cfg.inform_width, self.decisions[v], dtype=np.int64)
                )
            else:
                ports = self.rngs[v].sample_without_replacement(
                    n - 1, cfg.probes
                )
                sender_chunks.append(np.full(cfg.probes, v, dtype=np.int64))
                port_chunks.append(ports)
                kind_chunks.append(np.full(cfg.probes, _PROBE, dtype=np.int64))
                value_chunks.append(np.zeros(cfg.probes, dtype=np.int64))
        return MessageBatch(
            senders=np.concatenate(sender_chunks),
            ports=np.concatenate(port_chunks),
            kinds=np.concatenate(kind_chunks),
            values=np.concatenate(value_chunks),
        )


def classical_agreement_engine(
    inputs: list[int],
    rng: RandomSource,
    shared_coin: SharedCoin | None = None,
    epsilon: float | None = None,
    inform_width: int | None = None,
    adversary=None,
    node_api: str = "scalar",
) -> AgreementResult:
    """Run the engine-driven [AMP18] shared-coin agreement on K_n.

    ``adversary`` (an optional :class:`~repro.adversary.AdversarySpec`)
    injects engine-level message/crash faults — input schedules are
    applied by the caller when building ``inputs``.  ``node_api`` selects
    the dispatch: ``"scalar"`` steps :class:`_AMP18Node` instances,
    ``"batch"`` (or ``"auto"``) runs the array-native
    :class:`_AMP18Batch` program; both are bit-identical under the same
    seeds and adversary specs.
    """
    n = len(inputs)
    if n < 3:
        raise ValueError(f"need n >= 3 nodes, got {n}")
    if any(b not in (0, 1) for b in inputs):
        raise ValueError("inputs must be 0/1")
    metrics = MetricsRecorder()
    topology = CompleteTopology(n)
    armed = (
        adversary.arm(adversary.derive_rng(rng), n)
        if adversary is not None and adversary.required_capabilities() & {"faults"}
        else None
    )
    if shared_coin is None:
        shared_coin = SharedCoin(rng.spawn())
    schedule = _Schedule.build(n, shared_coin, epsilon, inform_width)
    node_rngs = rng.spawn_many(n)
    probability = candidate_probability(n)
    is_candidate = [node_rngs[v].bernoulli(probability) for v in range(n)]
    if wants_batch_dispatch(node_api):
        program = _AMP18Batch(schedule, node_rngs, inputs, is_candidate)
    else:
        program = [
            _AMP18Node(
                v, n - 1, node_rngs[v], schedule, inputs[v], is_candidate[v]
            )
            for v in range(n)
        ]
    engine = SynchronousEngine(
        topology, program, metrics, label="amp18-engine", adversary=armed
    )
    engine.run(max_rounds=schedule.final_round + 2)
    decisions = (
        program.decisions_dict()
        if isinstance(program, BatchProtocol)
        else {v: program[v].decision for v in range(n)}
    )
    meta = {
        "candidates": sum(is_candidate),
        "epsilon": schedule.epsilon,
        "inform_width": schedule.inform_width,
        "samples": schedule.samples,
        "probes": schedule.probes,
        "iterations": schedule.iterations,
        "undecided_at_end": sum(
            1
            for v in range(n)
            if is_candidate[v] and decisions[v] is None
        ),
    }
    meta.update(engine.accounting_meta())
    return AgreementResult(
        n=n,
        inputs={v: inputs[v] for v in range(n)},
        decisions=decisions,
        metrics=metrics,
        meta=meta,
    )
