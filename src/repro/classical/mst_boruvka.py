"""Classical distributed MST — Borůvka/GHS style, Θ(m·log n) messages.

Two comparators for QuantumMST live here:

* :func:`classical_mst` — the original *cost-model* analysis: identical
  Borůvka merging with centrally-computed cluster minima, message/round
  charges applied per phase.  Its per-phase best-edge scan is vectorized
  through the cached port table (one CSR-style flat edge list built once,
  per-cluster lexicographic argmin per phase) instead of a Python loop
  over every (node, port) pair.
* :func:`boruvka_mst_engine` — the same algorithm actually *executed* on
  the synchronous engine, message by message, with scalar and
  array-native (``node_api="batch"``) implementations that are
  bit-identical under the same seeds and adversary specs.

Each node finds its minimum-weight outgoing edge by probing *every* port
(weight and cluster-id exchange over each edge, both directions) — Θ(m)
per phase, the cost [KPP+15a]'s Ω(m) bound says is unavoidable
classically.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.leader_election.clusters import ClusterState
from repro.core.leader_election.mst import MSTResult, edge_key
from repro.network.batch import (
    BatchProtocol,
    MessageBatch,
    wants_batch_dispatch,
)
from repro.network.engine import SynchronousEngine
from repro.network.kernels import get_kernels
from repro.network.message import Message
from repro.network.metrics import MetricsRecorder
from repro.network.node import Node
from repro.network.topology import Topology
from repro.util.rng import RandomSource

__all__ = ["boruvka_mst_engine", "classical_mst"]


def _flat_edge_arrays(topology: Topology):
    """(degrees, offsets, sender, port, neighbour) flat port-major arrays.

    One vectorized pass through the cached port table — no per-node
    topology queries, no edge materialization beyond the O(m) rows the
    protocol itself needs.
    """
    n = topology.n
    table = topology.port_table()
    degrees = table.degrees_of(np.arange(n))
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])
    total = int(offsets[-1])
    flat_sender = np.repeat(np.arange(n), degrees)
    flat_port = np.arange(total, dtype=np.int64) - np.repeat(
        offsets[:-1], degrees
    )
    flat_nbr = table.receivers(flat_sender, flat_port)
    return degrees, offsets, flat_sender, flat_port, flat_nbr


def _flat_weights(
    weights: dict[tuple[int, int], float], flat_a, flat_b
) -> np.ndarray:
    flat_w = np.empty(len(flat_a), dtype=np.float64)
    for i, (a, b) in enumerate(zip(flat_a.tolist(), flat_b.tolist())):
        flat_w[i] = weights[(a, b)]
    return flat_w


def classical_mst(
    topology: Topology,
    weights: dict[tuple[int, int], float],
    rng: RandomSource,
) -> MSTResult:
    """Compute the MST classically by probe-all-ports Borůvka merging."""
    n = topology.n
    if n < 2:
        raise ValueError(f"need n >= 2 nodes, got {n}")
    for u, v in topology.edges():
        if (u, v) not in weights:
            raise ValueError(f"missing weight for edge ({u}, {v})")
    m = topology.edge_count()

    metrics = MetricsRecorder()
    state = ClusterState(n)
    mst_edges: list[tuple[int, int]] = []
    phase_limit = 4 * max(1, math.ceil(math.log2(n))) + 8
    phases = 0

    # Flat (node, port) rows once, reused every phase.  Row order is node
    # ascending then port ascending — the same iteration order the old
    # nested Python loop used, so first-wins argmin ties are preserved.
    _, _, flat_sender, _, flat_nbr = _flat_edge_arrays(topology)
    flat_a = np.minimum(flat_sender, flat_nbr)
    flat_b = np.maximum(flat_sender, flat_nbr)
    flat_w = _flat_weights(weights, flat_a, flat_b)
    kernels = get_kernels()

    while state.count > 1 and phases < phase_limit:
        phases += 1

        # Every node probes every port: weight + cluster id out, echo back.
        metrics.charge("classical-mst.probe-all-ports", messages=4 * m, rounds=2)

        cids = np.fromiter(
            (state.cluster_id(v) for v in range(n)), dtype=np.int64, count=n
        )
        valid = np.nonzero(cids[flat_sender] != cids[flat_nbr])[0]
        pos = kernels.group_argmin_lex3(
            cids[flat_sender[valid]],
            flat_w[valid],
            flat_a[valid],
            flat_b[valid],
            n,
        )
        best_clusters = np.nonzero(pos >= 0)[0]

        metrics.charge(
            "classical-mst.convergecast",
            messages=state.total_tree_edges(),
            rounds=max(1, state.max_height()),
        )

        if not len(best_clusters):
            break

        merged_any = False
        for cid in best_clusters.tolist():
            row = int(valid[pos[cid]])
            v, w = int(flat_sender[row]), int(flat_nbr[row])
            ca, cb = state.cluster_id(v), state.cluster_id(w)
            if ca == cb:
                continue
            state.merge(ca, cb, (v, w))
            a, b = (v, w) if v < w else (w, v)
            mst_edges.append((a, b))
            merged_any = True
        metrics.charge(
            "classical-mst.merge-broadcast",
            messages=n,
            rounds=max(1, state.max_height()),
        )
        if not merged_any:
            break

    total = sum(weights[e] for e in mst_edges)
    return MSTResult(
        n=n,
        edges=mst_edges,
        total_weight=total,
        metrics=metrics,
        meta={"phases": phases, "m": m, "clusters_remaining": state.count},
    )


# ---------------------------------------------------------------------------
# Engine-executed Borůvka
# ---------------------------------------------------------------------------

#: Borůvka wire vocabulary shared by the scalar and batch implementations.
#: ANNOUNCE carries the sender's cluster label; GATHER carries a candidate
#: minimum outgoing edge (w, a, b) — a in ``values``, w/b in the typed
#: extras columns; MERGEREQ is a bare token; MERGE carries a cluster label.
_BV_ANNOUNCE, _BV_GATHER, _BV_MERGEREQ, _BV_MERGE = 0, 1, 2, 3


def _window_length(n: int) -> int:
    """Rounds per Borůvka phase: announce (1) + gather flood (n + 1) +
    merge requests (1) + label flood (n)."""
    return 2 * n + 3


def _phase_budget(n: int) -> int:
    return max(1, math.ceil(math.log2(n))) + 2


class _BoruvkaNode(Node):
    """Engine node: one Borůvka phase per fixed window of 2n + 3 rounds.

    Window schedule (t = round mod window):
      t = 0        reset; ANNOUNCE(cluster) on every port
      t = 1        record announces; local min outgoing edge; start the
                   gather flood over the current tree edges
      t = 2 … n+1  fold GATHER minima, re-flood on improvement
      t = n+1      (after the final fold) the node owning the cluster
                   minimum sends MERGEREQ on it and adopts it as a tree edge
      t = n+2      MERGEREQ arrivals become tree edges; flood MERGE(cluster)
      t = n+3 … 2n+2  fold MERGE label minima, re-flood on improvement;
                   at t = 2n+2 adopt the label (and halt if the cluster saw
                   no outgoing edge — it already spans its component)
    """

    def __init__(
        self,
        uid: int,
        degree: int,
        rng: RandomSource,
        n_total: int,
        neighbor_ids: list[int],
        port_weights: list[float],
    ):
        super().__init__(uid, degree, rng)
        self.n_total = n_total
        self.neighbor_ids = neighbor_ids
        self.port_weights = port_weights
        self.cluster = uid
        self.tree_ports: set[int] = set()
        self.chosen: list[tuple[int, int]] = []
        self.neighbor_cluster: list[int | None] = [None] * degree
        self.best: tuple[float, int, int] | None = None
        self.sent_best: tuple[float, int, int] | None = None
        self.local_best: tuple[float, int, int] | None = None
        self.local_port: int | None = None
        self.no_outgoing = False
        self.merge_value = uid
        self.sent_merge = uid

    def _edge_triple(self, port: int) -> tuple[float, int, int]:
        u = self.neighbor_ids[port]
        a, b = (self.uid, u) if self.uid < u else (u, self.uid)
        return (self.port_weights[port], a, b)

    def _gather_if_changed(self) -> list[tuple[int, Message]]:
        if self.best is None or self.best == self.sent_best:
            return []
        out = [
            (port, Message("gather", payload=self.best))
            for port in sorted(self.tree_ports)
        ]
        self.sent_best = self.best
        return out

    def _merge_if_changed(self) -> list[tuple[int, Message]]:
        if self.merge_value == self.sent_merge:
            return []
        out = [
            (port, Message("merge", payload=self.merge_value))
            for port in sorted(self.tree_ports)
        ]
        self.sent_merge = self.merge_value
        return out

    def step(self, round_index: int, inbox):
        n = self.n_total
        t = round_index % _window_length(n)
        if t == 0:
            self.neighbor_cluster = [None] * self.degree
            self.best = None
            self.sent_best = None
            self.local_best = None
            self.local_port = None
            self.no_outgoing = False
            return [
                (port, Message("announce", payload=self.cluster))
                for port in range(self.degree)
            ]
        if t == 1:
            for port, message in inbox:
                if message.kind == "announce":
                    self.neighbor_cluster[port] = message.payload
            for port in range(self.degree):
                nc = self.neighbor_cluster[port]
                if nc is None or nc == self.cluster:
                    continue
                triple = self._edge_triple(port)
                if self.local_best is None or triple < self.local_best:
                    self.local_best = triple
                    self.local_port = port
            self.best = self.local_best
            return self._gather_if_changed()
        if 2 <= t <= n + 1:
            for _, message in inbox:
                if message.kind == "gather" and (
                    self.best is None or message.payload < self.best
                ):
                    self.best = message.payload
            if t < n + 1:
                return self._gather_if_changed()
            # t == n + 1: the gather flood has converged cluster-wide.
            if self.best is None:
                self.no_outgoing = True
                return []
            if self.local_best == self.best:
                self.tree_ports.add(self.local_port)
                self.chosen.append((self.best[1], self.best[2]))
                return [(self.local_port, Message("merge-req"))]
            return []
        if t == n + 2:
            for port, message in inbox:
                if message.kind == "merge-req":
                    self.tree_ports.add(port)
            self.merge_value = self.cluster
            self.sent_merge = self.cluster
            return [
                (port, Message("merge", payload=self.merge_value))
                for port in sorted(self.tree_ports)
            ]
        # n + 3 <= t <= 2n + 2: minimum-label flood over the merged tree.
        for _, message in inbox:
            if message.kind == "merge" and message.payload < self.merge_value:
                self.merge_value = message.payload
        if t < 2 * n + 2:
            return self._merge_if_changed()
        self.cluster = self.merge_value
        if self.no_outgoing:
            self.halt()
        return []


class _BoruvkaBatch(BatchProtocol):
    """Array-native Borůvka: the same window schedule, whole graph per call.

    All adjacency lives in flat port-major rows (sender, port, neighbour,
    normalized endpoints, weight) built once from the cached port table;
    tree membership is a boolean over those rows.  Gather folds use the
    kernel tier's lexicographic scatter-min, announce recording and
    merge-label folds its plain scatters — every fold commutative, so
    vector order matches the scalar node's sequential inbox loop exactly.
    """

    def __init__(self, topology, flat, flat_a, flat_b, flat_w):
        n = topology.n
        super().__init__(n)
        self.kernels = get_kernels()
        degrees, offsets, flat_sender, flat_port, _ = flat
        self.offsets = offsets
        self.flat_sender = flat_sender
        self.flat_port = flat_port
        self.flat_a = flat_a
        self.flat_b = flat_b
        self.flat_w = flat_w
        total = len(flat_sender)
        self.tree_flat = np.zeros(total, dtype=bool)
        self.cluster = np.arange(n, dtype=np.int64)
        self._ncl = np.full(total, -1, dtype=np.int64)
        inf = np.inf
        self.best_w = np.full(n, inf)
        self.best_a = np.full(n, -1, dtype=np.int64)
        self.best_b = np.full(n, -1, dtype=np.int64)
        self.sent_w = np.full(n, inf)
        self.sent_a = np.full(n, -1, dtype=np.int64)
        self.sent_b = np.full(n, -1, dtype=np.int64)
        self.lc_w = np.full(n, inf)
        self.lc_a = np.full(n, -1, dtype=np.int64)
        self.lc_b = np.full(n, -1, dtype=np.int64)
        self.lc_port = np.full(n, -1, dtype=np.int64)
        self.no_outgoing = np.zeros(n, dtype=bool)
        self.merge_value = np.arange(n, dtype=np.int64)
        self.sent_merge = np.arange(n, dtype=np.int64)
        self.chosen: list[tuple[int, int]] = []

    def _rows_batch(self, rows, kind, values, w, e2):
        senders = self.flat_sender[rows]
        return MessageBatch(
            senders=senders,
            ports=self.flat_port[rows],
            kinds=np.full(len(rows), kind, dtype=np.int64),
            values=values,
            extras={"w": w, "e2": e2},
        )

    def _tree_rows(self, mask):
        """Flat row indices of tree edges whose owner is in ``mask``.

        Row-major flat order is sender ascending then port ascending —
        the scalar node's ``sorted(tree_ports)`` emission order.
        """
        return np.nonzero(self.tree_flat & mask[self.flat_sender])[0]

    def _gather_batch(self, upd):
        rows = self._tree_rows(upd)
        if not len(rows):
            return None
        s = self.flat_sender[rows]
        return self._rows_batch(
            rows, _BV_GATHER, self.best_a[s], self.best_w[s], self.best_b[s]
        )

    def _gather_if_changed(self):
        changed = (
            (self.best_w != self.sent_w)
            | (self.best_a != self.sent_a)
            | (self.best_b != self.sent_b)
        )
        upd = (self.best_w < np.inf) & changed & ~self.halted
        batch = self._gather_batch(upd)
        self.sent_w[upd] = self.best_w[upd]
        self.sent_a[upd] = self.best_a[upd]
        self.sent_b[upd] = self.best_b[upd]
        return batch

    def _merge_if_changed(self):
        changed = (self.merge_value != self.sent_merge) & ~self.halted
        rows = self._tree_rows(changed)
        self.sent_merge[changed] = self.merge_value[changed]
        if not len(rows):
            return None
        s = self.flat_sender[rows]
        zeros = np.zeros(len(rows))
        return self._rows_batch(
            rows,
            _BV_MERGE,
            self.merge_value[s],
            zeros,
            np.zeros(len(rows), dtype=np.int64),
        )

    def _fold_gather(self, inbox) -> None:
        if not len(inbox):
            return
        mask = inbox.kinds == _BV_GATHER
        if not mask.any():
            return
        self.kernels.scatter_min_lex3(
            self.best_w,
            self.best_a,
            self.best_b,
            inbox.receivers[mask],
            inbox.extras["w"][mask],
            inbox.values[mask],
            inbox.extras["e2"][mask],
        )

    def _fold_merge(self, inbox) -> None:
        if not len(inbox):
            return
        mask = inbox.kinds == _BV_MERGE
        if not mask.any():
            return
        self.kernels.scatter_min(
            self.merge_value, inbox.receivers[mask], inbox.values[mask]
        )

    def step_batch(self, round_index, inbox):
        n = self.n
        t = round_index % _window_length(n)
        alive = ~self.halted
        if t == 0:
            self._ncl[:] = -1
            self.best_w[:] = np.inf
            self.best_a[:] = -1
            self.best_b[:] = -1
            self.sent_w[:] = np.inf
            self.sent_a[:] = -1
            self.sent_b[:] = -1
            self.lc_w[:] = np.inf
            self.lc_a[:] = -1
            self.lc_b[:] = -1
            self.lc_port[:] = -1
            self.no_outgoing[:] = False
            rows = np.nonzero(alive[self.flat_sender])[0]
            if not len(rows):
                return None
            return self._rows_batch(
                rows,
                _BV_ANNOUNCE,
                self.cluster[self.flat_sender[rows]],
                np.zeros(len(rows)),
                np.zeros(len(rows), dtype=np.int64),
            )
        if t == 1:
            if len(inbox):
                mask = inbox.kinds == _BV_ANNOUNCE
                slots = self.offsets[inbox.receivers[mask]] + inbox.ports[mask]
                self._ncl[slots] = inbox.values[mask]
            valid = np.nonzero(
                (self._ncl >= 0) & (self._ncl != self.cluster[self.flat_sender])
            )[0]
            pos = self.kernels.group_argmin_lex3(
                self.flat_sender[valid],
                self.flat_w[valid],
                self.flat_a[valid],
                self.flat_b[valid],
                n,
            )
            has = np.nonzero(pos >= 0)[0]
            rows = valid[pos[has]]
            self.lc_w[has] = self.flat_w[rows]
            self.lc_a[has] = self.flat_a[rows]
            self.lc_b[has] = self.flat_b[rows]
            self.lc_port[has] = self.flat_port[rows]
            self.best_w[:] = self.lc_w
            self.best_a[:] = self.lc_a
            self.best_b[:] = self.lc_b
            return self._gather_if_changed()
        if 2 <= t <= n + 1:
            self._fold_gather(inbox)
            if t < n + 1:
                return self._gather_if_changed()
            # t == n + 1: flood converged; choose the cluster minima.
            self.no_outgoing = alive & (self.best_w == np.inf)
            chooser = (
                alive
                & (self.best_w < np.inf)
                & (self.lc_w == self.best_w)
                & (self.lc_a == self.best_a)
                & (self.lc_b == self.best_b)
            )
            ch = np.nonzero(chooser)[0]
            if not len(ch):
                return None
            self.tree_flat[self.offsets[ch] + self.lc_port[ch]] = True
            self.chosen.extend(
                zip(self.best_a[ch].tolist(), self.best_b[ch].tolist())
            )
            return MessageBatch(
                senders=ch,
                ports=self.lc_port[ch],
                kinds=np.full(len(ch), _BV_MERGEREQ, dtype=np.int64),
                values=np.zeros(len(ch), dtype=np.int64),
                extras={
                    "w": np.zeros(len(ch)),
                    "e2": np.zeros(len(ch), dtype=np.int64),
                },
            )
        if t == n + 2:
            if len(inbox):
                mask = inbox.kinds == _BV_MERGEREQ
                self.tree_flat[
                    self.offsets[inbox.receivers[mask]] + inbox.ports[mask]
                ] = True
            self.merge_value = self.cluster.copy()
            self.sent_merge = self.cluster.copy()
            rows = self._tree_rows(alive)
            if not len(rows):
                return None
            s = self.flat_sender[rows]
            return self._rows_batch(
                rows,
                _BV_MERGE,
                self.merge_value[s],
                np.zeros(len(rows)),
                np.zeros(len(rows), dtype=np.int64),
            )
        # n + 3 <= t <= 2n + 2
        self._fold_merge(inbox)
        if t < 2 * n + 2:
            return self._merge_if_changed()
        self.cluster[alive] = self.merge_value[alive]
        self.halted |= self.no_outgoing & alive
        return None


def boruvka_mst_engine(
    topology: Topology,
    weights: dict[tuple[int, int], float],
    rng: RandomSource,
    adversary=None,
    node_api: str = "scalar",
) -> MSTResult:
    """Run Borůvka/GHS on the synchronous engine, message by message.

    ``adversary`` is an optional
    :class:`~repro.adversary.AdversarySpec` applied at the engine level;
    under faults the run stays deterministic (and scalar/batch
    bit-identical) but may leave the forest unfinished — exactly the
    degradation fault sweeps measure.  ``node_api`` selects the engine
    dispatch: ``"scalar"`` steps :class:`_BoruvkaNode` instances,
    ``"batch"`` (or ``"auto"``) runs the array-native
    :class:`_BoruvkaBatch` program.
    """
    n = topology.n
    if n < 2:
        raise ValueError(f"need n >= 2 nodes, got {n}")
    for u, v in topology.edges():
        if (u, v) not in weights:
            raise ValueError(f"missing weight for edge ({u}, {v})")
    m = topology.edge_count()

    metrics = MetricsRecorder()
    armed = (
        adversary.arm(adversary.derive_rng(rng), n)
        if adversary is not None and not adversary.is_null
        else None
    )
    flat = _flat_edge_arrays(topology)
    _, offsets, flat_sender, _, flat_nbr = flat
    flat_a = np.minimum(flat_sender, flat_nbr)
    flat_b = np.maximum(flat_sender, flat_nbr)
    flat_w = _flat_weights(weights, flat_a, flat_b)

    window = _window_length(n)
    max_rounds = _phase_budget(n) * window
    if wants_batch_dispatch(node_api):
        program = _BoruvkaBatch(topology, flat, flat_a, flat_b, flat_w)
    else:
        # The protocol itself draws no randomness: nodes share the driver
        # rng handle (never consumed), keeping scalar/batch streams equal.
        program = [
            _BoruvkaNode(
                v,
                int(flat[0][v]),
                rng,
                n,
                flat_nbr[offsets[v] : offsets[v + 1]].tolist(),
                flat_w[offsets[v] : offsets[v + 1]].tolist(),
            )
            for v in range(n)
        ]
    engine = SynchronousEngine(
        topology, program, metrics, label="boruvka", adversary=armed
    )
    engine.run(max_rounds=max_rounds)

    if isinstance(program, BatchProtocol):
        chosen = program.chosen
        clusters = len(set(program.cluster.tolist()))
    else:
        chosen = [edge for node in program for edge in node.chosen]
        clusters = len({node.cluster for node in program})
    edges = sorted(set(chosen))
    total = sum(weights[e] for e in edges)
    meta = {
        "phases": math.ceil(metrics.rounds / window),
        "m": m,
        "clusters_remaining": clusters,
        "crashed": sorted(engine.crashed_nodes),
    }
    meta.update(engine.accounting_meta())
    return MSTResult(
        n=n,
        edges=edges,
        total_weight=total,
        metrics=metrics,
        meta=meta,
    )
