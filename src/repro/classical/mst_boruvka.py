"""Classical distributed MST — Borůvka/GHS style, Θ(m·log n) messages.

The classical comparator for QuantumMST: identical Borůvka merging, but each
node finds its minimum-weight outgoing edge by probing *every* port (weight
and cluster-id exchange over each edge, both directions) — Θ(m) per phase,
the cost [KPP+15a]'s Ω(m) bound says is unavoidable classically.
"""

from __future__ import annotations

import math

from repro.core.leader_election.clusters import ClusterState
from repro.core.leader_election.mst import MSTResult, edge_key
from repro.network.metrics import MetricsRecorder
from repro.network.topology import Topology
from repro.util.rng import RandomSource

__all__ = ["classical_mst"]


def classical_mst(
    topology: Topology,
    weights: dict[tuple[int, int], float],
    rng: RandomSource,
) -> MSTResult:
    """Compute the MST classically by probe-all-ports Borůvka merging."""
    n = topology.n
    if n < 2:
        raise ValueError(f"need n >= 2 nodes, got {n}")
    for u, v in topology.edges():
        if (u, v) not in weights:
            raise ValueError(f"missing weight for edge ({u}, {v})")
    m = topology.edge_count()

    metrics = MetricsRecorder()
    state = ClusterState(n)
    mst_edges: list[tuple[int, int]] = []
    phase_limit = 4 * max(1, math.ceil(math.log2(n))) + 8
    phases = 0

    while state.count > 1 and phases < phase_limit:
        phases += 1

        # Every node probes every port: weight + cluster id out, echo back.
        metrics.charge("classical-mst.probe-all-ports", messages=4 * m, rounds=2)

        best_edge: dict[int, tuple[int, int]] = {}
        for v in range(n):
            for w in topology.neighbors(v):
                if state.same_cluster(v, w):
                    continue
                cid = state.cluster_id(v)
                current = best_edge.get(cid)
                if current is None or edge_key(weights, v, w) < edge_key(
                    weights, *current
                ):
                    best_edge[cid] = (v, w)

        metrics.charge(
            "classical-mst.convergecast",
            messages=state.total_tree_edges(),
            rounds=max(1, state.max_height()),
        )

        if not best_edge:
            break

        merged_any = False
        for cid in sorted(best_edge):
            v, w = best_edge[cid]
            ca, cb = state.cluster_id(v), state.cluster_id(w)
            if ca == cb:
                continue
            state.merge(ca, cb, (v, w))
            a, b = (v, w) if v < w else (w, v)
            mst_edges.append((a, b))
            merged_any = True
        metrics.charge(
            "classical-mst.merge-broadcast",
            messages=n,
            rounds=max(1, state.max_height()),
        )
        if not merged_any:
            break

    total = sum(weights[e] for e in mst_edges)
    return MSTResult(
        n=n,
        edges=mst_edges,
        total_weight=total,
        metrics=metrics,
        meta={"phases": phases, "m": m, "clusters_remaining": state.count},
    )
