"""Classical leader-election baselines."""

from repro.classical.leader_election.complete_kpp import (
    classical_le_complete,
    default_referees_complete,
)
from repro.classical.leader_election.diameter2_cpr import classical_le_diameter2
from repro.classical.leader_election.general_ghs import classical_le_general
from repro.classical.leader_election.mixing_rw import (
    classical_le_mixing,
    default_walks_mixing,
)
from repro.classical.leader_election.ring import hirschberg_sinclair_ring, lcr_ring

__all__ = [
    "classical_le_complete",
    "classical_le_diameter2",
    "classical_le_general",
    "classical_le_mixing",
    "default_referees_complete",
    "default_walks_mixing",
    "hirschberg_sinclair_ring",
    "lcr_ring",
]
