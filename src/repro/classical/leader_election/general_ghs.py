"""Classical leader election in general graphs — GHS-style, Θ(m·log n).

The classical comparator for QuantumGeneralLE: identical cluster-merging
structure (find outgoing edges → maximal matching → merge), but the outgoing-
edge search probes *every* port classically — 2 messages per incident edge
per phase, i.e. Θ(m) per phase and Θ(m·log n) total.  [KPP+15a] proves Ω(m)
is unavoidable classically (for graphs of diameter ≥ 3), which is the bound
the quantum protocol's Õ(√(mn)) breaches.
"""

from __future__ import annotations

import math

from repro.core.leader_election.clusters import ClusterState, log_star, maximal_matching
from repro.core.results import LeaderElectionResult
from repro.network.metrics import MetricsRecorder
from repro.network.node import Status
from repro.network.topology import Topology
from repro.util.rng import RandomSource

__all__ = ["classical_le_general"]


def classical_le_general(
    topology: Topology,
    rng: RandomSource,
) -> LeaderElectionResult:
    """Run the classical Θ(m·log n) tree-merging LE (explicit variant)."""
    n = topology.n
    if n < 2:
        raise ValueError(f"need n >= 2 nodes, got {n}")
    m = topology.edge_count()

    metrics = MetricsRecorder()
    state = ClusterState(n)
    phase_limit = 4 * max(1, math.ceil(math.log2(n))) + 8
    phases = 0

    while state.count > 1 and phases < phase_limit:
        phases += 1

        # Classical outgoing-edge search: every node probes all its ports
        # (cluster-id exchange: probe + reply over every edge, both ways).
        metrics.charge(
            "ghs-le.probe-all-ports",
            messages=4 * m,
            rounds=2,
        )
        proposals: dict[int, tuple[int, tuple[int, int]]] = {}
        for v in range(n):
            for w in topology.neighbors(v):
                if not state.same_cluster(v, w):
                    cid = state.cluster_id(v)
                    if cid not in proposals:
                        proposals[cid] = (state.cluster_id(w), (v, w))
                    break

        metrics.charge(
            "ghs-le.convergecast",
            messages=state.total_tree_edges(),
            rounds=max(1, state.max_height()),
        )

        if not proposals:
            break

        cv = log_star(n)
        metrics.charge("ghs-le.matching", messages=n * cv, rounds=n * cv)
        pairs, attachments = maximal_matching(proposals)

        id_map = {cid: cid for cid in state.clusters}
        for cid_a, cid_b, edge in pairs:
            survivor = state.merge(id_map[cid_a], id_map[cid_b], edge)
            id_map[cid_a] = id_map[cid_b] = survivor
        for cid, target in attachments.items():
            source, destination = id_map[cid], id_map[target]
            if source == destination:
                continue
            _, edge = proposals[cid]
            survivor = state.merge(source, destination, edge)
            for key, value in list(id_map.items()):
                if value in (source, destination):
                    id_map[key] = survivor
        metrics.charge(
            "ghs-le.merge-broadcast",
            messages=n,
            rounds=max(1, state.max_height()),
        )

    statuses = {v: Status.NON_ELECTED for v in range(n)}
    known_leader = None
    if state.count == 1:
        final = next(iter(state.clusters.values()))
        statuses[final.center] = Status.ELECTED
        metrics.charge(
            "ghs-le.leader-broadcast",
            messages=n - 1,
            rounds=max(1, final.height()),
        )
        known_leader = {v: final.center for v in range(n)}

    return LeaderElectionResult(
        n=n,
        statuses=statuses,
        metrics=metrics,
        known_leader=known_leader,
        meta={"phases": phases, "m": m, "clusters_remaining": state.count},
    )
