"""Classical leader election in complete networks — [KPP+15b], Θ̃(√n) messages.

The birthday-paradox protocol the paper's QuantumLE is measured against
(Section 1.2, "Leader election and handshake"): every candidate sends its
rank to Θ(√(n·log n)) uniformly random *referees*; any two candidates' referee
sets collide with high probability, so every referee that heard from several
candidates can tell the losers apart.  A candidate that hears of no higher
rank becomes the leader.

Θ̃(√n) is *tight* classically (even for Monte Carlo algorithms with constant
success probability), which is precisely the bound QuantumLE's Õ(n^{1/3})
breaches.

Runs on the real synchronous engine: three rounds, messages counted
port-to-port.
"""

from __future__ import annotations

import math

from repro.core.candidates import candidate_probability, rank_space
from repro.core.results import LeaderElectionResult
from repro.network.engine import SynchronousEngine
from repro.network.message import Message
from repro.network.metrics import MetricsRecorder
from repro.network.node import Node, Status
from repro.network.topology import CompleteTopology
from repro.util.rng import RandomSource

__all__ = ["classical_le_complete", "default_referees_complete"]


def default_referees_complete(n: int) -> int:
    """Referee-set size Θ(√(n·ln n)) giving w.h.p. pairwise collisions."""
    return max(1, min(n - 1, math.ceil(2.0 * math.sqrt(n * math.log(max(n, 2))))))


class _KPPNode(Node):
    """Engine node for the three-round birthday protocol."""

    def __init__(self, uid: int, degree: int, rng: RandomSource, referees: int):
        super().__init__(uid, degree, rng)
        self.referees = referees
        self.is_candidate = False
        self.rank = 0
        self.best_seen = 0  # highest rank this node heard of as a referee
        self.senders: list[int] = []  # ports that sent us a rank

    def start(self, probability: float, space: int) -> None:
        self.is_candidate = self.rng.bernoulli(probability)
        if self.is_candidate:
            self.rank = self.rng.uniform_int(1, space)
        else:
            self.status = Status.NON_ELECTED

    def step(self, round_index: int, inbox):
        if round_index == 0:
            if not self.is_candidate:
                return []
            ports = self.rng.sample_without_replacement(self.degree, self.referees)
            return [
                (int(port), Message("rank", payload=self.rank)) for port in ports
            ]
        if round_index == 1:
            for port, message in inbox:
                self.best_seen = max(self.best_seen, message.payload)
                self.senders.append(port)
            return [
                (port, Message("best", payload=self.best_seen))
                for port in self.senders
            ]
        if round_index == 2:
            if self.is_candidate:
                # A candidate may itself have served as a referee; its own
                # best_seen knowledge counts toward the decision.
                highest_reply = max(
                    (message.payload for _, message in inbox),
                    default=0,
                )
                highest_reply = max(highest_reply, self.best_seen)
                if highest_reply > self.rank:
                    self.status = Status.NON_ELECTED
                else:
                    self.status = Status.ELECTED
            self.halt()
            return []
        return []


def classical_le_complete(
    n: int,
    rng: RandomSource,
    referees: int | None = None,
    adversary=None,
) -> LeaderElectionResult:
    """Run the [KPP+15b]-style classical LE protocol on K_n.

    ``adversary`` is an optional
    :class:`~repro.adversary.AdversarySpec` applied at the engine level
    (message drop/delay/duplicate, crash-stop schedules).  Its random
    stream derives from ``rng`` before the per-node streams, so a null
    (or absent) spec leaves the run bit-identical to the fault-free path.
    """
    if n < 2:
        raise ValueError(f"need n >= 2 nodes, got {n}")
    if referees is None:
        referees = default_referees_complete(n)
    if not 1 <= referees <= n - 1:
        raise ValueError(f"referees must be in [1, {n - 1}], got {referees}")

    topology = CompleteTopology(n)
    metrics = MetricsRecorder()
    armed = (
        adversary.arm(adversary.derive_rng(rng), n)
        if adversary is not None and not adversary.is_null
        else None
    )
    node_rngs = rng.spawn_many(n)
    nodes = [_KPPNode(v, n - 1, node_rngs[v], referees) for v in range(n)]
    probability = candidate_probability(n)
    space = rank_space(n)
    candidates = 0
    for node in nodes:
        node.start(probability, space)
        candidates += node.is_candidate

    engine = SynchronousEngine(
        topology, nodes, metrics, label="kpp-le", adversary=armed
    )
    engine.run(max_rounds=4)

    statuses = {v: nodes[v].status for v in range(n)}
    # Candidates that never heard anything higher may tie only on rank
    # collisions (probability ≤ 1/n² — Fact C.2).
    meta = {"candidates": candidates, "referees": referees}
    meta.update(engine.accounting_meta())
    return LeaderElectionResult(
        n=n,
        statuses=statuses,
        metrics=metrics,
        meta=meta,
        crashed=engine.crashed_nodes,
    )
