"""Classical leader election in complete networks — [KPP+15b], Θ̃(√n) messages.

The birthday-paradox protocol the paper's QuantumLE is measured against
(Section 1.2, "Leader election and handshake"): every candidate sends its
rank to Θ(√(n·log n)) uniformly random *referees*; any two candidates' referee
sets collide with high probability, so every referee that heard from several
candidates can tell the losers apart.  A candidate that hears of no higher
rank becomes the leader.

Θ̃(√n) is *tight* classically (even for Monte Carlo algorithms with constant
success probability), which is precisely the bound QuantumLE's Õ(n^{1/3})
breaches.

Runs on the real synchronous engine: three rounds, messages counted
port-to-port.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.candidates import candidate_probability, rank_space
from repro.core.results import LeaderElectionResult
from repro.network.batch import (
    STATUS_ELECTED,
    STATUS_NON_ELECTED,
    BatchProtocol,
    MessageBatch,
    wants_batch_dispatch,
)
from repro.network.engine import SynchronousEngine
from repro.network.kernels import get_kernels
from repro.network.message import Message
from repro.network.metrics import MetricsRecorder
from repro.network.node import Node, Status
from repro.network.topology import CompleteTopology
from repro.util.rng import RandomSource

__all__ = ["classical_le_complete", "default_referees_complete"]


def default_referees_complete(n: int) -> int:
    """Referee-set size Θ(√(n·ln n)) giving w.h.p. pairwise collisions."""
    return max(1, min(n - 1, math.ceil(2.0 * math.sqrt(n * math.log(max(n, 2))))))


class _KPPNode(Node):
    """Engine node for the three-round birthday protocol."""

    def __init__(self, uid: int, degree: int, rng: RandomSource, referees: int):
        super().__init__(uid, degree, rng)
        self.referees = referees
        self.is_candidate = False
        self.rank = 0
        self.best_seen = 0  # highest rank this node heard of as a referee
        self.senders: list[int] = []  # ports that sent us a rank

    def start(self, probability: float, space: int) -> None:
        self.is_candidate = self.rng.bernoulli(probability)
        if self.is_candidate:
            self.rank = self.rng.uniform_int(1, space)
        else:
            self.status = Status.NON_ELECTED

    def step(self, round_index: int, inbox):
        if round_index == 0:
            if not self.is_candidate:
                return []
            ports = self.rng.sample_without_replacement(self.degree, self.referees)
            return [
                (int(port), Message("rank", payload=self.rank)) for port in ports
            ]
        if round_index == 1:
            for port, message in inbox:
                self.best_seen = max(self.best_seen, message.payload)
                self.senders.append(port)
            return [
                (port, Message("best", payload=self.best_seen))
                for port in self.senders
            ]
        if round_index == 2:
            if self.is_candidate:
                # A candidate may itself have served as a referee; its own
                # best_seen knowledge counts toward the decision.
                highest_reply = max(
                    (message.payload for _, message in inbox),
                    default=0,
                )
                highest_reply = max(highest_reply, self.best_seen)
                if highest_reply > self.rank:
                    self.status = Status.NON_ELECTED
                else:
                    self.status = Status.ELECTED
            self.halt()
            return []
        return []


#: KPP wire vocabulary shared by the scalar and array-native implementations.
_KPP_RANK, _KPP_BEST = 0, 1


class _KPPBatch(BatchProtocol):
    """Array-native three-round birthday protocol.

    Column state: ``is_candidate``, ``rank``, ``best_seen``.  Round 0
    draws each candidate's referee ports from the *same* per-node RNG
    streams as the scalar :class:`_KPPNode` (a short Python loop over the
    few Θ(log n · n / n) candidates); rounds 1 and 2 are pure numpy — the
    referee replies of round 1 are literally the inbox batch turned
    around (``senders = receivers``) with the group-maximum rank gathered
    in.
    """

    def __init__(self, n: int, rngs, referees: int):
        super().__init__(n)
        self.rngs = rngs
        self.referees = referees
        self.kernels = get_kernels()
        self.is_candidate = np.zeros(n, dtype=bool)
        self.rank = np.zeros(n, dtype=np.int64)
        self.best_seen = np.zeros(n, dtype=np.int64)

    def start(self, probability: float, space: int) -> int:
        """Candidate/rank draws, mirroring ``_KPPNode.start`` per stream."""
        for v in range(self.n):
            if self.rngs[v].bernoulli(probability):
                self.is_candidate[v] = True
                self.rank[v] = self.rngs[v].uniform_int(1, space)
            else:
                self.status_codes[v] = STATUS_NON_ELECTED
        return int(np.count_nonzero(self.is_candidate))

    def step_batch(self, round_index, inbox):
        n = self.n
        if round_index == 0:
            candidates = np.nonzero(self.is_candidate & ~self.halted)[0]
            port_chunks = [
                self.rngs[v].sample_without_replacement(n - 1, self.referees)
                for v in candidates.tolist()
            ]
            if not port_chunks:
                return None
            senders = np.repeat(candidates, self.referees)
            return MessageBatch(
                senders=senders,
                ports=np.concatenate(port_chunks),
                kinds=np.full(len(senders), _KPP_RANK, dtype=np.int64),
                values=self.rank[senders],
            )
        if round_index == 1:
            if not len(inbox):
                return None
            rec = inbox.receivers
            self.kernels.scatter_max(self.best_seen, rec, inbox.values)
            return MessageBatch(
                senders=rec,
                ports=inbox.ports,
                kinds=np.full(len(inbox), _KPP_BEST, dtype=np.int64),
                values=self.best_seen[rec],
            )
        if round_index == 2:
            highest = self.best_seen.copy()
            if len(inbox):
                self.kernels.scatter_max(highest, inbox.receivers, inbox.values)
            alive = ~self.halted
            candidate = self.is_candidate & alive
            self.status_codes[candidate & (highest > self.rank)] = (
                STATUS_NON_ELECTED
            )
            self.status_codes[candidate & (highest <= self.rank)] = STATUS_ELECTED
            self.halted |= alive
        return None


def classical_le_complete(
    n: int,
    rng: RandomSource,
    referees: int | None = None,
    adversary=None,
    node_api: str = "scalar",
) -> LeaderElectionResult:
    """Run the [KPP+15b]-style classical LE protocol on K_n.

    ``adversary`` is an optional
    :class:`~repro.adversary.AdversarySpec` applied at the engine level
    (message drop/delay/duplicate, crash-stop schedules).  Its random
    stream derives from ``rng`` before the per-node streams, so a null
    (or absent) spec leaves the run bit-identical to the fault-free path.

    ``node_api`` selects the engine dispatch: ``"scalar"`` steps
    :class:`_KPPNode` instances, ``"batch"`` (or ``"auto"``) runs the
    array-native :class:`_KPPBatch` program — bit-identical by
    construction under the same seeds and adversary specs.
    """
    if n < 2:
        raise ValueError(f"need n >= 2 nodes, got {n}")
    if referees is None:
        referees = default_referees_complete(n)
    if not 1 <= referees <= n - 1:
        raise ValueError(f"referees must be in [1, {n - 1}], got {referees}")

    topology = CompleteTopology(n)
    metrics = MetricsRecorder()
    armed = (
        adversary.arm(adversary.derive_rng(rng), n)
        if adversary is not None and not adversary.is_null
        else None
    )
    node_rngs = rng.spawn_many(n)
    probability = candidate_probability(n)
    space = rank_space(n)
    if wants_batch_dispatch(node_api):
        program = _KPPBatch(n, node_rngs, referees)
        candidates = program.start(probability, space)
    else:
        program = [_KPPNode(v, n - 1, node_rngs[v], referees) for v in range(n)]
        candidates = 0
        for node in program:
            node.start(probability, space)
            candidates += node.is_candidate
    engine = SynchronousEngine(
        topology, program, metrics, label="kpp-le", adversary=armed
    )
    engine.run(max_rounds=4)
    statuses = (
        program.statuses()
        if isinstance(program, BatchProtocol)
        else {v: program[v].status for v in range(n)}
    )
    # Candidates that never heard anything higher may tie only on rank
    # collisions (probability ≤ 1/n² — Fact C.2).
    meta = {"candidates": candidates, "referees": referees}
    meta.update(engine.accounting_meta())
    return LeaderElectionResult(
        n=n,
        statuses=statuses,
        metrics=metrics,
        meta=meta,
        crashed=engine.crashed_nodes,
    )
