"""Classic ring leader election — Chang–Roberts (LCR) and Hirschberg–Sinclair.

Not part of the paper's headline results, but the canonical substrate
protocols for oriented rings, used to exercise (and regression-test) the
synchronous engine with genuinely multi-round message-passing behaviour:

* **LCR** — unidirectional, O(n²) worst-case / O(n·log n) expected messages;
* **Hirschberg–Sinclair** — bidirectional doubling probes, O(n·log n)
  worst-case messages.

Identifiers come from private randomness (ranks in {1, …, n⁴}), matching the
library-wide anonymous-network convention.
"""

from __future__ import annotations

import numpy as np

from repro.core.candidates import rank_space
from repro.core.results import LeaderElectionResult
from repro.network.batch import (
    STATUS_ELECTED,
    STATUS_NON_ELECTED,
    BatchProtocol,
    MessageBatch,
    wants_batch_dispatch,
)
from repro.network.engine import SynchronousEngine
from repro.network.graphs import cycle
from repro.network.kernels import get_kernels
from repro.network.message import Message
from repro.network.metrics import MetricsRecorder
from repro.network.node import Node, Status
from repro.util.rng import RandomSource

__all__ = ["lcr_ring", "hirschberg_sinclair_ring"]


def _ring_ports(topology, v: int) -> tuple[int, int]:
    """(clockwise_port, counterclockwise_port) of node v on cycle(n).

    The oriented-ring assumption: every node knows which port is clockwise.
    """
    n = topology.n
    cw = topology.port_to(v, (v + 1) % n)
    ccw = topology.port_to(v, (v - 1) % n)
    return cw, ccw


class _LCRNode(Node):
    """Chang–Roberts: forward larger ids clockwise; own id returning wins."""

    def __init__(self, uid, degree, rng, ring_id: int, cw_port: int):
        super().__init__(uid, degree, rng)
        self.ring_id = ring_id
        self.cw_port = cw_port
        self.outbox: list[tuple[int, Message]] = []
        self.started = False

    def step(self, round_index: int, inbox):
        out: list[tuple[int, Message]] = []
        if not self.started:
            self.started = True
            out.append((self.cw_port, Message("probe", payload=self.ring_id)))
        halting = False
        best_probe = None
        for _, message in inbox:
            if message.kind == "probe":
                if message.payload == self.ring_id:
                    self.status = Status.ELECTED
                    out.append((self.cw_port, Message("halt", payload=self.ring_id)))
                elif message.payload > self.ring_id:
                    if best_probe is None or message.payload > best_probe:
                        best_probe = message.payload
                # smaller ids are swallowed
            elif message.kind == "halt":
                if self.status is Status.ELECTED:
                    halting = True  # own halt token came full circle
                else:
                    self.status = Status.NON_ELECTED
                    out.append((self.cw_port, message))
                    halting = True
        if best_probe is not None and self.status is not Status.ELECTED:
            out.append((self.cw_port, Message("probe", payload=best_probe)))
        # CONGEST: collapse to one message per port per round (keep the most
        # important: halt > probe with the largest id).
        per_port: dict[int, Message] = {}
        for port, message in out:
            current = per_port.get(port)
            if current is None:
                per_port[port] = message
            elif message.kind == "halt" or (
                current.kind == "probe"
                and message.kind == "probe"
                and message.payload > current.payload
            ):
                per_port[port] = message
        if halting:
            self.halt()
        return list(per_port.items())


#: LCR wire vocabulary shared by the scalar and array-native implementations.
_LCR_PROBE, _LCR_HALT = 0, 1


class _LCRBatch(BatchProtocol):
    """Array-native Chang–Roberts: the whole ring advances per numpy call.

    State is three columns (``ring_id``, ``cw_port``, inherited
    ``status_codes``/``halted``); each round reduces the inbox groups with
    ``np.maximum.at`` and emits at most one message per node — the same
    per-port collapse the scalar :class:`_LCRNode` performs, expressed
    once over all nodes.  Trace-identical to the scalar implementation
    (same RNG draws, same canonical send order, same CONGEST collapse
    priorities), which the parity property tests assert bit-for-bit.
    """

    def __init__(self, topology, ring_ids: list[int]):
        n = topology.n
        super().__init__(n)
        self.kernels = get_kernels()
        self.ring_id = np.asarray(ring_ids, dtype=np.int64)
        self.cw_port = np.asarray(
            [topology.port_to(v, (v + 1) % n) for v in range(n)], dtype=np.int64
        )

    def step_batch(self, round_index, inbox):
        n = self.n
        if round_index == 0:
            # Every alive node opens with its own id clockwise ("started").
            senders = np.nonzero(~self.halted)[0]
            return MessageBatch(
                senders=senders,
                ports=self.cw_port[senders],
                kinds=np.full(len(senders), _LCR_PROBE, dtype=np.int64),
                values=self.ring_id[senders],
            )
        if not len(inbox):
            return None
        rec = inbox.receivers
        probe = inbox.kinds == _LCR_PROBE
        halt = inbox.kinds == _LCR_HALT
        own = probe & (inbox.values == self.ring_id[rec])
        any_own = np.zeros(n, dtype=bool)
        any_own[rec[own]] = True
        any_halt = np.zeros(n, dtype=bool)
        any_halt[rec[halt]] = True
        greater = probe & (inbox.values > self.ring_id[rec])
        best = np.full(n, -1, dtype=np.int64)
        self.kernels.scatter_max(best, rec[greater], inbox.values[greater])
        # The scalar per-port collapse keeps the *last* halt a node
        # appended; track each receiver's last inbound halt position.
        last_halt = np.full(n, -1, dtype=np.int64)
        self.kernels.scatter_max(
            last_halt, rec[halt], np.arange(len(inbox))[halt]
        )
        entering_elected = self.status_codes == STATUS_ELECTED
        # Status transitions (ELECTED absorbs within a round, exactly as
        # the scalar message loop behaves for any inbox interleaving).
        self.status_codes[any_own] = STATUS_ELECTED
        self.status_codes[any_halt & ~entering_elected & ~any_own] = (
            STATUS_NON_ELECTED
        )
        # Outgoing message per node after the CONGEST collapse: a halt
        # with the node's own id when its probe returned, else the last
        # forwarded halt, else the strongest bigger probe — and an
        # already-elected node only ever re-announces its own halt.
        halt_own = any_own
        halt_fwd = ~any_own & ~entering_elected & any_halt
        probe_out = (
            ~any_own & ~entering_elected & ~any_halt & (best >= 0)
        )
        senders = np.nonzero(halt_own | halt_fwd | probe_out)[0]
        self.halted |= any_halt
        if not len(senders):
            return None
        kinds = np.where(probe_out[senders], _LCR_PROBE, _LCR_HALT)
        values = np.where(
            halt_own[senders],
            self.ring_id[senders],
            np.where(
                halt_fwd[senders],
                inbox.values[last_halt[senders]],
                best[senders],
            ),
        )
        return MessageBatch(
            senders=senders,
            ports=self.cw_port[senders],
            kinds=kinds,
            values=values,
        )


def lcr_ring(
    n: int, rng: RandomSource, adversary=None, node_api: str = "scalar"
) -> LeaderElectionResult:
    """Run Chang–Roberts on an oriented ring of n nodes.

    ``adversary`` (an optional :class:`~repro.adversary.AdversarySpec`)
    injects engine-level faults; a dropped winning probe or halt token
    makes the ring run out its round budget undecided — exactly the
    resilience behaviour fault sweeps measure.

    ``node_api`` selects the engine dispatch: ``"scalar"`` steps the
    legacy :class:`_LCRNode` instances one by one, ``"batch"`` (or
    ``"auto"``) runs the array-native :class:`_LCRBatch` program — both
    are bit-identical under the same seeds and adversary specs.
    """
    if n < 3:
        raise ValueError(f"ring needs n >= 3 nodes, got {n}")
    topology = cycle(n)
    metrics = MetricsRecorder()
    armed = (
        adversary.arm(adversary.derive_rng(rng), n)
        if adversary is not None and not adversary.is_null
        else None
    )
    node_rngs = rng.spawn_many(n)
    space = rank_space(n)
    ids = [node_rngs[v].uniform_int(1, space) for v in range(n)]
    if wants_batch_dispatch(node_api):
        program = _LCRBatch(topology, ids)
    else:
        program = [
            _LCRNode(v, 2, node_rngs[v], ids[v], _ring_ports(topology, v)[0])
            for v in range(n)
        ]
    engine = SynchronousEngine(
        topology, program, metrics, label="lcr", adversary=armed
    )
    engine.run(max_rounds=3 * n + 4)
    statuses = (
        program.statuses()
        if isinstance(program, BatchProtocol)
        else {v: program[v].status for v in range(n)}
    )
    for v in range(n):  # anyone still undecided (duplicate-id pathology)
        if statuses[v] is Status.UNDECIDED:
            statuses[v] = Status.NON_ELECTED
    meta = {"unique_ids": len(set(ids)) == n}
    meta.update(engine.accounting_meta())
    return LeaderElectionResult(
        n=n, statuses=statuses, metrics=metrics, meta=meta,
        crashed=engine.crashed_nodes,
    )


class _HSNode(Node):
    """Hirschberg–Sinclair: doubling bidirectional probes."""

    def __init__(self, uid, degree, rng, ring_id: int, cw_port: int, ccw_port: int):
        super().__init__(uid, degree, rng)
        self.ring_id = ring_id
        self.ports = {"cw": cw_port, "ccw": ccw_port}
        self.opposite = {cw_port: ccw_port, ccw_port: cw_port}
        self.phase = 0
        self.replies = 0
        self.competing = True
        self.started = False

    def _probes(self) -> list[tuple[int, Message]]:
        hops = 1 << self.phase
        return [
            (
                self.ports[direction],
                Message("probe", payload=(self.ring_id, hops)),
            )
            for direction in ("cw", "ccw")
        ]

    def step(self, round_index: int, inbox):
        out: list[tuple[int, Message]] = []
        if not self.started:
            self.started = True
            out.extend(self._probes())
        halting = False
        for port, message in inbox:
            if message.kind == "probe":
                probe_id, hops = message.payload
                if probe_id == self.ring_id:
                    if self.started and self.status is not Status.ELECTED:
                        # Our own probe circled the whole ring: we win.
                        self.status = Status.ELECTED
                        out.append(
                            (self.ports["cw"], Message("halt", payload=self.ring_id))
                        )
                elif probe_id > self.ring_id:
                    self.competing = False
                    if hops > 1:
                        out.append(
                            (
                                self.opposite[port],
                                Message("probe", payload=(probe_id, hops - 1)),
                            )
                        )
                    else:
                        out.append((port, Message("reply", payload=probe_id)))
                # probes with smaller ids are swallowed
            elif message.kind == "reply":
                if message.payload == self.ring_id:
                    self.replies += 1
                    if self.replies == 2:
                        self.replies = 0
                        self.phase += 1
                        out.extend(self._probes())
                else:
                    out.append((self.opposite[port], message))
            elif message.kind == "halt":
                if self.status is Status.ELECTED:
                    halting = True
                else:
                    self.status = Status.NON_ELECTED
                    out.append((self.ports["cw"], message))
                    halting = True
        # CONGEST: at most one message per port per round; prioritize halt,
        # then replies, then the strongest probe.
        rank = {"halt": 3, "reply": 2, "probe": 1}
        per_port: dict[int, Message] = {}
        for port, message in out:
            current = per_port.get(port)
            if current is None or rank[message.kind] > rank[current.kind] or (
                message.kind == "probe"
                and current.kind == "probe"
                and message.payload[0] > current.payload[0]
            ):
                per_port[port] = message
        if halting:
            self.halt()
        return list(per_port.items())


#: HS wire vocabulary shared by the scalar and array-native implementations.
#: Probes carry (id, hops-remaining) — id in ``values``, hops in the typed
#: ``extras["hops"]`` column; replies/halts carry an id and hops = 0.
_HS_PROBE, _HS_REPLY, _HS_HALT = 0, 1, 2


class _HSBatch(BatchProtocol):
    """Array-native Hirschberg–Sinclair: doubling probes, whole ring per call.

    The scalar :class:`_HSNode` processes its inbox *sequentially* — a
    reply may bump the phase whose new probes then outrank earlier
    emissions in the per-port CONGEST collapse.  The batch form replays
    that exactly: inbox rows are processed in per-receiver passes (pass k
    handles every node's k-th message, so state updates from pass k are
    visible in pass k+1), and emissions land in per-(node, direction)
    outbox *slots* carrying the scalar collapse priorities (halt 3 >
    reply 2 > probe 1, probes tie-break on larger id, first write wins
    otherwise).  Slot fill sequence numbers reproduce the scalar dict's
    insertion order, giving the identical canonical send order.
    """

    def __init__(self, topology, ring_ids: list[int]):
        n = topology.n
        super().__init__(n)
        self.ring_id = np.asarray(ring_ids, dtype=np.int64)
        self.cw_port = np.asarray(
            [topology.port_to(v, (v + 1) % n) for v in range(n)], dtype=np.int64
        )
        self.ccw_port = np.asarray(
            [topology.port_to(v, (v - 1) % n) for v in range(n)], dtype=np.int64
        )
        self.phase = np.zeros(n, dtype=np.int64)
        self.replies = np.zeros(n, dtype=np.int64)
        # Per-(node, direction) outbox slots: slot 2v is v's clockwise
        # message this round, slot 2v+1 its counterclockwise one.
        self.slot_rank = np.zeros(2 * n, dtype=np.int64)
        self.slot_kind = np.zeros(2 * n, dtype=np.int64)
        self.slot_value = np.zeros(2 * n, dtype=np.int64)
        self.slot_hops = np.zeros(2 * n, dtype=np.int64)
        self.slot_seq = np.zeros(2 * n, dtype=np.int64)
        self._touched: list[np.ndarray] = []
        self._seq = 0

    # -- outbox slot machinery ---------------------------------------------

    def _emit(self, nodes, dirs, kind, values, hops, rank) -> None:
        """Offer one message per node to its (node, dir) slot.

        Mirrors the scalar per-port collapse: higher rank replaces, equal
        probe ranks tie-break on larger id, everything else keeps the
        incumbent.  ``dirs``/``hops`` may be scalars or arrays.
        """
        seq = self._seq
        self._seq += 1
        if not len(nodes):
            return
        slots = 2 * nodes + dirs
        cur = self.slot_rank[slots]
        if rank == 1:
            replace = (cur == 0) | (
                (cur == 1) & (values > self.slot_value[slots])
            )
        else:
            replace = cur < rank
        if not replace.any():
            return
        s = slots[replace]
        self.slot_kind[s] = kind
        self.slot_value[s] = values[replace]
        self.slot_hops[s] = hops[replace] if isinstance(hops, np.ndarray) else hops
        # First fill records the insertion position (scalar dict order);
        # replacements keep it, exactly like overwriting a dict key.
        self.slot_seq[s[cur[replace] == 0]] = seq
        self.slot_rank[s] = rank
        self._touched.append(s)

    def _flush(self):
        if not self._touched:
            return None
        slots = np.unique(np.concatenate(self._touched))
        senders = slots >> 1
        dirs = slots & 1
        order = np.lexsort((dirs, self.slot_seq[slots], senders))
        slots = slots[order]
        senders = senders[order]
        dirs = dirs[order]
        batch = MessageBatch(
            senders=senders,
            ports=np.where(
                dirs == 0, self.cw_port[senders], self.ccw_port[senders]
            ),
            kinds=self.slot_kind[slots].copy(),
            values=self.slot_value[slots].copy(),
            extras={"hops": self.slot_hops[slots].copy()},
        )
        self.slot_rank[slots] = 0
        self._touched = []
        return batch

    # -- per-pass protocol logic -------------------------------------------

    def _pass(self, v, port, kind, val, hop) -> None:
        """Process each selected node's next inbox message (≤ 1 per node)."""
        arrive_dir = np.where(port == self.cw_port[v], 0, 1)
        probe = kind == _HS_PROBE
        reply = kind == _HS_REPLY
        halt = kind == _HS_HALT
        my_id = self.ring_id[v]

        # Own probe circled the whole ring: we win (idempotent per round).
        own = probe & (val == my_id) & (self.status_codes[v] != STATUS_ELECTED)
        if own.any():
            w = v[own]
            self.status_codes[w] = STATUS_ELECTED
            self._emit(w, 0, _HS_HALT, self.ring_id[w], 0, 3)

        bigger = probe & (val > my_id)
        fwd = bigger & (hop > 1)
        if fwd.any():
            self._emit(
                v[fwd], 1 - arrive_dir[fwd], _HS_PROBE, val[fwd], hop[fwd] - 1, 1
            )
        turn = bigger & (hop == 1)
        if turn.any():
            self._emit(v[turn], arrive_dir[turn], _HS_REPLY, val[turn], 0, 2)

        mine = reply & (val == my_id)
        if mine.any():
            w = v[mine]
            self.replies[w] += 1
            up = w[self.replies[w] == 2]
            if len(up):
                self.replies[up] = 0
                self.phase[up] += 1
                new_hops = np.int64(1) << self.phase[up]
                self._emit(up, 0, _HS_PROBE, self.ring_id[up], new_hops, 1)
                self._emit(up, 1, _HS_PROBE, self.ring_id[up], new_hops, 1)
        fwd_reply = reply & (val != my_id)
        if fwd_reply.any():
            self._emit(
                v[fwd_reply],
                1 - arrive_dir[fwd_reply],
                _HS_REPLY,
                val[fwd_reply],
                0,
                2,
            )

        if halt.any():
            elected = self.status_codes[v] == STATUS_ELECTED
            # A halting node still processes its remaining inbox (and its
            # same-round sends go out), matching scalar halt semantics.
            self.halted[v[halt & elected]] = True
            lose = halt & ~elected
            if lose.any():
                w = v[lose]
                self.status_codes[w] = STATUS_NON_ELECTED
                self._emit(w, 0, _HS_HALT, val[lose], 0, 3)
                self.halted[w] = True

    def step_batch(self, round_index, inbox):
        self._seq = 0
        if round_index == 0:
            alive = np.nonzero(~self.halted)[0]
            ones = np.ones(len(alive), dtype=np.int64)  # hops = 1 << phase 0
            self._emit(alive, 0, _HS_PROBE, self.ring_id[alive], ones, 1)
            self._emit(alive, 1, _HS_PROBE, self.ring_id[alive], ones, 1)
            return self._flush()
        if not len(inbox):
            return None
        rec = inbox.receivers
        hops = inbox.extras["hops"]
        # Pass k processes every node's k-th inbox row, so sequential
        # per-node state updates land before the node's next message.
        first = np.ones(len(rec), dtype=bool)
        first[1:] = rec[1:] != rec[:-1]
        starts = np.nonzero(first)[0]
        sizes = np.diff(np.append(starts, len(rec)))
        k_rank = np.arange(len(rec)) - np.repeat(starts, sizes)
        for k in range(int(sizes.max())):
            sel = np.nonzero(k_rank == k)[0]
            self._pass(
                rec[sel],
                inbox.ports[sel],
                inbox.kinds[sel],
                inbox.values[sel],
                hops[sel],
            )
        return self._flush()


def hirschberg_sinclair_ring(
    n: int, rng: RandomSource, adversary=None, node_api: str = "scalar"
) -> LeaderElectionResult:
    """Run Hirschberg–Sinclair on an oriented ring of n nodes.

    ``adversary`` injects engine-level faults, as in :func:`lcr_ring`.

    ``node_api`` selects the engine dispatch: ``"scalar"`` steps
    :class:`_HSNode` instances one by one, ``"batch"`` (or ``"auto"``)
    runs the array-native :class:`_HSBatch` program — bit-identical
    under the same seeds and adversary specs.
    """
    if n < 3:
        raise ValueError(f"ring needs n >= 3 nodes, got {n}")
    topology = cycle(n)
    metrics = MetricsRecorder()
    armed = (
        adversary.arm(adversary.derive_rng(rng), n)
        if adversary is not None and not adversary.is_null
        else None
    )
    node_rngs = rng.spawn_many(n)
    space = rank_space(n)
    ids = [node_rngs[v].uniform_int(1, space) for v in range(n)]
    if wants_batch_dispatch(node_api):
        program = _HSBatch(topology, ids)
    else:
        program = []
        for v in range(n):
            cw, ccw = _ring_ports(topology, v)
            program.append(_HSNode(v, 2, node_rngs[v], ids[v], cw, ccw))
    engine = SynchronousEngine(
        topology, program, metrics, label="hs", adversary=armed
    )
    engine.run(max_rounds=12 * n + 16)
    statuses = (
        program.statuses()
        if isinstance(program, BatchProtocol)
        else {v: program[v].status for v in range(n)}
    )
    for v in range(n):
        if statuses[v] is Status.UNDECIDED:
            statuses[v] = Status.NON_ELECTED
    meta = {"unique_ids": len(set(ids)) == n}
    meta.update(engine.accounting_meta())
    return LeaderElectionResult(
        n=n, statuses=statuses, metrics=metrics, meta=meta,
        crashed=engine.crashed_nodes,
    )
