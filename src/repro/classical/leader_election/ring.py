"""Classic ring leader election — Chang–Roberts (LCR) and Hirschberg–Sinclair.

Not part of the paper's headline results, but the canonical substrate
protocols for oriented rings, used to exercise (and regression-test) the
synchronous engine with genuinely multi-round message-passing behaviour:

* **LCR** — unidirectional, O(n²) worst-case / O(n·log n) expected messages;
* **Hirschberg–Sinclair** — bidirectional doubling probes, O(n·log n)
  worst-case messages.

Identifiers come from private randomness (ranks in {1, …, n⁴}), matching the
library-wide anonymous-network convention.
"""

from __future__ import annotations

from repro.core.candidates import rank_space
from repro.core.results import LeaderElectionResult
from repro.network.engine import SynchronousEngine
from repro.network.graphs import cycle
from repro.network.message import Message
from repro.network.metrics import MetricsRecorder
from repro.network.node import Node, Status
from repro.util.rng import RandomSource

__all__ = ["lcr_ring", "hirschberg_sinclair_ring"]


def _ring_ports(n: int, v: int) -> tuple[int, int]:
    """(clockwise_port, counterclockwise_port) of node v on cycle(n).

    The oriented-ring assumption: every node knows which port is clockwise.
    """
    topology = cycle(n)
    cw = topology.port_to(v, (v + 1) % n)
    ccw = topology.port_to(v, (v - 1) % n)
    return cw, ccw


class _LCRNode(Node):
    """Chang–Roberts: forward larger ids clockwise; own id returning wins."""

    def __init__(self, uid, degree, rng, ring_id: int, cw_port: int):
        super().__init__(uid, degree, rng)
        self.ring_id = ring_id
        self.cw_port = cw_port
        self.outbox: list[tuple[int, Message]] = []
        self.started = False

    def step(self, round_index: int, inbox):
        out: list[tuple[int, Message]] = []
        if not self.started:
            self.started = True
            out.append((self.cw_port, Message("probe", payload=self.ring_id)))
        halting = False
        best_probe = None
        for _, message in inbox:
            if message.kind == "probe":
                if message.payload == self.ring_id:
                    self.status = Status.ELECTED
                    out.append((self.cw_port, Message("halt", payload=self.ring_id)))
                elif message.payload > self.ring_id:
                    if best_probe is None or message.payload > best_probe:
                        best_probe = message.payload
                # smaller ids are swallowed
            elif message.kind == "halt":
                if self.status is Status.ELECTED:
                    halting = True  # own halt token came full circle
                else:
                    self.status = Status.NON_ELECTED
                    out.append((self.cw_port, message))
                    halting = True
        if best_probe is not None and self.status is not Status.ELECTED:
            out.append((self.cw_port, Message("probe", payload=best_probe)))
        # CONGEST: collapse to one message per port per round (keep the most
        # important: halt > probe with the largest id).
        per_port: dict[int, Message] = {}
        for port, message in out:
            current = per_port.get(port)
            if current is None:
                per_port[port] = message
            elif message.kind == "halt" or (
                current.kind == "probe"
                and message.kind == "probe"
                and message.payload > current.payload
            ):
                per_port[port] = message
        if halting:
            self.halt()
        return list(per_port.items())


def lcr_ring(n: int, rng: RandomSource, adversary=None) -> LeaderElectionResult:
    """Run Chang–Roberts on an oriented ring of n nodes.

    ``adversary`` (an optional :class:`~repro.adversary.AdversarySpec`)
    injects engine-level faults; a dropped winning probe or halt token
    makes the ring run out its round budget undecided — exactly the
    resilience behaviour fault sweeps measure.
    """
    if n < 3:
        raise ValueError(f"ring needs n >= 3 nodes, got {n}")
    topology = cycle(n)
    metrics = MetricsRecorder()
    armed = (
        adversary.arm(adversary.derive_rng(rng), n)
        if adversary is not None and not adversary.is_null
        else None
    )
    node_rngs = rng.spawn_many(n)
    space = rank_space(n)
    ids = [node_rngs[v].uniform_int(1, space) for v in range(n)]
    nodes = []
    for v in range(n):
        cw, _ = _ring_ports(n, v)
        nodes.append(_LCRNode(v, 2, node_rngs[v], ids[v], cw))
    engine = SynchronousEngine(
        topology, nodes, metrics, label="lcr", adversary=armed
    )
    engine.run(max_rounds=3 * n + 4)
    statuses = {v: nodes[v].status for v in range(n)}
    for v in range(n):  # anyone still undecided (duplicate-id pathology)
        if statuses[v] is Status.UNDECIDED:
            statuses[v] = Status.NON_ELECTED
    meta = {"unique_ids": len(set(ids)) == n}
    meta.update(engine.accounting_meta())
    return LeaderElectionResult(
        n=n, statuses=statuses, metrics=metrics, meta=meta,
        crashed=engine.crashed_nodes,
    )


class _HSNode(Node):
    """Hirschberg–Sinclair: doubling bidirectional probes."""

    def __init__(self, uid, degree, rng, ring_id: int, cw_port: int, ccw_port: int):
        super().__init__(uid, degree, rng)
        self.ring_id = ring_id
        self.ports = {"cw": cw_port, "ccw": ccw_port}
        self.opposite = {cw_port: ccw_port, ccw_port: cw_port}
        self.phase = 0
        self.replies = 0
        self.competing = True
        self.started = False

    def _probes(self) -> list[tuple[int, Message]]:
        hops = 1 << self.phase
        return [
            (
                self.ports[direction],
                Message("probe", payload=(self.ring_id, hops)),
            )
            for direction in ("cw", "ccw")
        ]

    def step(self, round_index: int, inbox):
        out: list[tuple[int, Message]] = []
        if not self.started:
            self.started = True
            out.extend(self._probes())
        halting = False
        for port, message in inbox:
            if message.kind == "probe":
                probe_id, hops = message.payload
                if probe_id == self.ring_id:
                    if self.started and self.status is not Status.ELECTED:
                        # Our own probe circled the whole ring: we win.
                        self.status = Status.ELECTED
                        out.append(
                            (self.ports["cw"], Message("halt", payload=self.ring_id))
                        )
                elif probe_id > self.ring_id:
                    self.competing = False
                    if hops > 1:
                        out.append(
                            (
                                self.opposite[port],
                                Message("probe", payload=(probe_id, hops - 1)),
                            )
                        )
                    else:
                        out.append((port, Message("reply", payload=probe_id)))
                # probes with smaller ids are swallowed
            elif message.kind == "reply":
                if message.payload == self.ring_id:
                    self.replies += 1
                    if self.replies == 2:
                        self.replies = 0
                        self.phase += 1
                        out.extend(self._probes())
                else:
                    out.append((self.opposite[port], message))
            elif message.kind == "halt":
                if self.status is Status.ELECTED:
                    halting = True
                else:
                    self.status = Status.NON_ELECTED
                    out.append((self.ports["cw"], message))
                    halting = True
        # CONGEST: at most one message per port per round; prioritize halt,
        # then replies, then the strongest probe.
        rank = {"halt": 3, "reply": 2, "probe": 1}
        per_port: dict[int, Message] = {}
        for port, message in out:
            current = per_port.get(port)
            if current is None or rank[message.kind] > rank[current.kind] or (
                message.kind == "probe"
                and current.kind == "probe"
                and message.payload[0] > current.payload[0]
            ):
                per_port[port] = message
        if halting:
            self.halt()
        return list(per_port.items())


def hirschberg_sinclair_ring(
    n: int, rng: RandomSource, adversary=None
) -> LeaderElectionResult:
    """Run Hirschberg–Sinclair on an oriented ring of n nodes.

    ``adversary`` injects engine-level faults, as in :func:`lcr_ring`.
    """
    if n < 3:
        raise ValueError(f"ring needs n >= 3 nodes, got {n}")
    topology = cycle(n)
    metrics = MetricsRecorder()
    armed = (
        adversary.arm(adversary.derive_rng(rng), n)
        if adversary is not None and not adversary.is_null
        else None
    )
    node_rngs = rng.spawn_many(n)
    space = rank_space(n)
    ids = [node_rngs[v].uniform_int(1, space) for v in range(n)]
    nodes = []
    for v in range(n):
        cw, ccw = _ring_ports(n, v)
        nodes.append(_HSNode(v, 2, node_rngs[v], ids[v], cw, ccw))
    engine = SynchronousEngine(
        topology, nodes, metrics, label="hs", adversary=armed
    )
    engine.run(max_rounds=12 * n + 16)
    statuses = {v: nodes[v].status for v in range(n)}
    for v in range(n):
        if statuses[v] is Status.UNDECIDED:
            statuses[v] = Status.NON_ELECTED
    meta = {"unique_ids": len(set(ids)) == n}
    meta.update(engine.accounting_meta())
    return LeaderElectionResult(
        n=n, statuses=statuses, metrics=metrics, meta=meta,
        crashed=engine.crashed_nodes,
    )
