"""Classical leader election via random walks — [KPP+15b] style, Õ(τ·√n).

The classical comparator for QuantumRWLE: each candidate releases
Θ(√(n·log n)) *referee* walks carrying its rank, then Θ(√(n·log n)) *query*
walks that ask their endpoints for the highest rank they are holding.  Both
endpoint families are near-stationary samples, so a lower-ranked candidate's
query walks collide with a higher-ranked candidate's referee endpoints with
high probability (the birthday paradox again).  Every walk costs Θ(τ)
messages, giving Õ(τ·√n) total — the envelope QuantumRWLE's
Õ(τ^{5/3}·n^{1/3}) beats for small τ.
"""

from __future__ import annotations

import math

from repro.core.candidates import draw_candidates
from repro.core.results import LeaderElectionResult
from repro.network.metrics import MetricsRecorder
from repro.network.node import Status
from repro.network.random_walk import RandomWalk, estimate_mixing_time
from repro.network.topology import Topology
from repro.util.fault import FaultInjector
from repro.util.rng import RandomSource

__all__ = ["classical_le_mixing", "default_walks_mixing"]


def default_walks_mixing(n: int) -> int:
    """Walk-count Θ(√(n·ln n)) for w.h.p. birthday collisions."""
    return max(1, math.ceil(2.0 * math.sqrt(n * math.log(max(n, 2)))))


def classical_le_mixing(
    topology: Topology,
    rng: RandomSource,
    tau: int | None = None,
    walks: int | None = None,
    faults: FaultInjector | None = None,
) -> LeaderElectionResult:
    """Run the classical Õ(τ√n) random-walk LE baseline."""
    n = topology.n
    if tau is None:
        tau = estimate_mixing_time(topology)
    if walks is None:
        walks = default_walks_mixing(n)

    metrics = MetricsRecorder()
    statuses = {v: Status.NON_ELECTED for v in range(n)}
    walk = RandomWalk(topology)

    draw = draw_candidates(n, rng, faults=faults)
    metrics.advance_rounds("rw-le.candidate-selection", 1)
    if not draw.candidates:
        return LeaderElectionResult(
            n=n, statuses=statuses, metrics=metrics,
            meta={"candidates": 0, "tau": tau, "walks": walks},
        )

    # Referee walks: deposit ranks at near-stationary endpoints.
    received: dict[int, int] = {}
    for v in draw.candidates:
        rank = draw.ranks[v]
        for _ in range(walks):
            endpoint = walk.endpoint(v, tau, rng)
            if received.get(endpoint, 0) < rank:
                received[endpoint] = rank
    metrics.charge(
        "rw-le.referee-walks",
        messages=len(draw.candidates) * walks * tau,
        rounds=tau,
    )

    # Query walks: each endpoint reports the highest rank it holds; the
    # answer travels back along the walk (another τ messages).
    for v in draw.candidates:
        rank = draw.ranks[v]
        saw_higher = False
        for _ in range(walks):
            endpoint = walk.endpoint(v, tau, rng)
            if received.get(endpoint, 0) > rank:
                saw_higher = True
        statuses[v] = Status.NON_ELECTED if saw_higher else Status.ELECTED
    metrics.charge(
        "rw-le.query-walks",
        messages=len(draw.candidates) * walks * 2 * tau,
        rounds=2 * tau,
    )

    return LeaderElectionResult(
        n=n,
        statuses=statuses,
        metrics=metrics,
        meta={
            "candidates": draw.count,
            "tau": tau,
            "walks": walks,
            "highest_ranked": draw.highest_ranked(),
        },
    )
