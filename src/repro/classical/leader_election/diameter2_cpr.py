"""Classical leader election in diameter-2 networks — [CPR20] style, Õ(n).

The tight classical bound for diameter-2 networks is Θ(n) messages [CPR20].
This baseline realizes the standard upper-bound structure: candidates
broadcast their rank to *all* neighbours; because the diameter is 2, any two
candidates are adjacent or share a common neighbour, so every referee can
arbitrate.  With Θ(log n) candidates the cost is Θ(n·log n) = Õ(n) messages —
the envelope QuantumQWLE's Õ(n^{2/3}) breaches.

Runs on the real synchronous engine (three rounds).
"""

from __future__ import annotations

import numpy as np

from repro.core.candidates import candidate_probability, rank_space
from repro.core.results import LeaderElectionResult
from repro.network.batch import (
    STATUS_ELECTED,
    STATUS_NON_ELECTED,
    BatchProtocol,
    MessageBatch,
    wants_batch_dispatch,
)
from repro.network.engine import SynchronousEngine
from repro.network.kernels import get_kernels
from repro.network.message import Message
from repro.network.metrics import MetricsRecorder
from repro.network.node import Node, Status
from repro.network.topology import Topology
from repro.util.rng import RandomSource

__all__ = ["classical_le_diameter2"]


class _CPRNode(Node):
    """Engine node: candidates flood neighbours, referees arbitrate."""

    def __init__(self, uid: int, degree: int, rng: RandomSource):
        super().__init__(uid, degree, rng)
        self.is_candidate = False
        self.rank = 0
        self.best_seen = 0
        self.senders: list[int] = []

    def start(self, probability: float, space: int) -> None:
        self.is_candidate = self.rng.bernoulli(probability)
        if self.is_candidate:
            self.rank = self.rng.uniform_int(1, space)
        else:
            self.status = Status.NON_ELECTED

    def step(self, round_index: int, inbox):
        if round_index == 0:
            if not self.is_candidate:
                return []
            return [
                (port, Message("rank", payload=self.rank))
                for port in range(self.degree)
            ]
        if round_index == 1:
            for port, message in inbox:
                self.best_seen = max(self.best_seen, message.payload)
                self.senders.append(port)
            return [
                (port, Message("best", payload=self.best_seen))
                for port in self.senders
            ]
        if round_index == 2:
            if self.is_candidate:
                # A candidate may itself be a referee (e.g. adjacent to a
                # rival with no common neighbour): its own best_seen counts.
                highest_reply = max(
                    (message.payload for _, message in inbox),
                    default=0,
                )
                highest_reply = max(highest_reply, self.best_seen)
                if highest_reply > self.rank:
                    self.status = Status.NON_ELECTED
                else:
                    self.status = Status.ELECTED
            self.halt()
            return []
        return []


#: CPR wire vocabulary shared by the scalar and array-native implementations.
_CPR_RANK, _CPR_BEST = 0, 1


class _CPRBatch(BatchProtocol):
    """Array-native three-round CPR protocol.

    Column state: ``is_candidate``, ``rank``, ``best_seen``, plus the
    per-node degree vector (one :meth:`PortTable.degrees_of` gather, no
    per-node topology queries).  Round 0 broadcasts candidate ranks on
    every port; round 1 turns the inbox around (``senders = receivers``)
    with the group maximum gathered in; round 2 decides and halts.
    """

    def __init__(self, n: int, rngs, degrees: np.ndarray):
        super().__init__(n)
        self.rngs = rngs
        self.degrees = degrees
        self.kernels = get_kernels()
        self.is_candidate = np.zeros(n, dtype=bool)
        self.rank = np.zeros(n, dtype=np.int64)
        self.best_seen = np.zeros(n, dtype=np.int64)

    def start(self, probability: float, space: int) -> int:
        """Candidate/rank draws, mirroring ``_CPRNode.start`` per stream."""
        for v in range(self.n):
            if self.rngs[v].bernoulli(probability):
                self.is_candidate[v] = True
                self.rank[v] = self.rngs[v].uniform_int(1, space)
            else:
                self.status_codes[v] = STATUS_NON_ELECTED
        return int(np.count_nonzero(self.is_candidate))

    def step_batch(self, round_index, inbox):
        if round_index == 0:
            candidates = np.nonzero(self.is_candidate & ~self.halted)[0]
            if not len(candidates):
                return None
            counts = self.degrees[candidates]
            total = int(counts.sum())
            if total == 0:
                return None
            senders = np.repeat(candidates, counts)
            starts = np.cumsum(counts) - counts
            ports = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
            return MessageBatch(
                senders=senders,
                ports=ports,
                kinds=np.full(total, _CPR_RANK, dtype=np.int64),
                values=self.rank[senders],
            )
        if round_index == 1:
            if not len(inbox):
                return None
            rec = inbox.receivers
            self.kernels.scatter_max(self.best_seen, rec, inbox.values)
            return MessageBatch(
                senders=rec,
                ports=inbox.ports,
                kinds=np.full(len(inbox), _CPR_BEST, dtype=np.int64),
                values=self.best_seen[rec],
            )
        if round_index == 2:
            highest = self.best_seen.copy()
            if len(inbox):
                self.kernels.scatter_max(highest, inbox.receivers, inbox.values)
            alive = ~self.halted
            candidate = self.is_candidate & alive
            self.status_codes[candidate & (highest > self.rank)] = (
                STATUS_NON_ELECTED
            )
            self.status_codes[candidate & (highest <= self.rank)] = STATUS_ELECTED
            self.halted |= alive
        return None


def classical_le_diameter2(
    topology: Topology,
    rng: RandomSource,
    adversary=None,
    node_api: str = "scalar",
) -> LeaderElectionResult:
    """Run the classical Õ(n) LE baseline on a diameter-≤2 network.

    ``adversary`` is an optional
    :class:`~repro.adversary.AdversarySpec` applied at the engine level.
    ``node_api`` selects the engine dispatch: ``"scalar"`` steps
    :class:`_CPRNode` instances, ``"batch"`` (or ``"auto"``) runs the
    array-native :class:`_CPRBatch` program — bit-identical by
    construction under the same seeds and adversary specs.
    """
    n = topology.n
    if n < 2:
        raise ValueError(f"need n >= 2 nodes, got {n}")

    metrics = MetricsRecorder()
    armed = (
        adversary.arm(adversary.derive_rng(rng), n)
        if adversary is not None and not adversary.is_null
        else None
    )
    node_rngs = rng.spawn_many(n)
    # One vectorized degree gather through the cached port table instead of
    # n per-node topology queries (the table is reused by the engine).
    degrees = topology.port_table().degrees_of(np.arange(n))
    probability = candidate_probability(n)
    space = rank_space(n)
    if wants_batch_dispatch(node_api):
        program = _CPRBatch(n, node_rngs, degrees)
        candidates = program.start(probability, space)
    else:
        program = [
            _CPRNode(v, int(degrees[v]), node_rngs[v]) for v in range(n)
        ]
        candidates = 0
        for node in program:
            node.start(probability, space)
            candidates += node.is_candidate

    engine = SynchronousEngine(
        topology, program, metrics, label="cpr-le", adversary=armed
    )
    engine.run(max_rounds=4)

    statuses = (
        program.statuses()
        if isinstance(program, BatchProtocol)
        else {v: program[v].status for v in range(n)}
    )
    meta = {"candidates": candidates}
    meta.update(engine.accounting_meta())
    return LeaderElectionResult(
        n=n,
        statuses=statuses,
        metrics=metrics,
        meta=meta,
        crashed=engine.crashed_nodes,
    )
