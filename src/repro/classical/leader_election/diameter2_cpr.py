"""Classical leader election in diameter-2 networks — [CPR20] style, Õ(n).

The tight classical bound for diameter-2 networks is Θ(n) messages [CPR20].
This baseline realizes the standard upper-bound structure: candidates
broadcast their rank to *all* neighbours; because the diameter is 2, any two
candidates are adjacent or share a common neighbour, so every referee can
arbitrate.  With Θ(log n) candidates the cost is Θ(n·log n) = Õ(n) messages —
the envelope QuantumQWLE's Õ(n^{2/3}) breaches.

Runs on the real synchronous engine (three rounds).
"""

from __future__ import annotations

from repro.core.candidates import candidate_probability, rank_space
from repro.core.results import LeaderElectionResult
from repro.network.engine import SynchronousEngine
from repro.network.message import Message
from repro.network.metrics import MetricsRecorder
from repro.network.node import Node, Status
from repro.network.topology import Topology
from repro.util.rng import RandomSource

__all__ = ["classical_le_diameter2"]


class _CPRNode(Node):
    """Engine node: candidates flood neighbours, referees arbitrate."""

    def __init__(self, uid: int, degree: int, rng: RandomSource):
        super().__init__(uid, degree, rng)
        self.is_candidate = False
        self.rank = 0
        self.best_seen = 0
        self.senders: list[int] = []

    def start(self, probability: float, space: int) -> None:
        self.is_candidate = self.rng.bernoulli(probability)
        if self.is_candidate:
            self.rank = self.rng.uniform_int(1, space)
        else:
            self.status = Status.NON_ELECTED

    def step(self, round_index: int, inbox):
        if round_index == 0:
            if not self.is_candidate:
                return []
            return [
                (port, Message("rank", payload=self.rank))
                for port in range(self.degree)
            ]
        if round_index == 1:
            for port, message in inbox:
                self.best_seen = max(self.best_seen, message.payload)
                self.senders.append(port)
            return [
                (port, Message("best", payload=self.best_seen))
                for port in self.senders
            ]
        if round_index == 2:
            if self.is_candidate:
                # A candidate may itself be a referee (e.g. adjacent to a
                # rival with no common neighbour): its own best_seen counts.
                highest_reply = max(
                    (message.payload for _, message in inbox),
                    default=0,
                )
                highest_reply = max(highest_reply, self.best_seen)
                if highest_reply > self.rank:
                    self.status = Status.NON_ELECTED
                else:
                    self.status = Status.ELECTED
            self.halt()
            return []
        return []


def classical_le_diameter2(
    topology: Topology,
    rng: RandomSource,
    adversary=None,
) -> LeaderElectionResult:
    """Run the classical Õ(n) LE baseline on a diameter-≤2 network.

    ``adversary`` is an optional
    :class:`~repro.adversary.AdversarySpec` applied at the engine level.
    """
    n = topology.n
    if n < 2:
        raise ValueError(f"need n >= 2 nodes, got {n}")

    metrics = MetricsRecorder()
    armed = (
        adversary.arm(adversary.derive_rng(rng), n)
        if adversary is not None and not adversary.is_null
        else None
    )
    node_rngs = rng.spawn_many(n)
    nodes = [
        _CPRNode(v, topology.degree(v), node_rngs[v]) for v in range(n)
    ]
    probability = candidate_probability(n)
    space = rank_space(n)
    candidates = 0
    for node in nodes:
        node.start(probability, space)
        candidates += node.is_candidate

    engine = SynchronousEngine(
        topology, nodes, metrics, label="cpr-le", adversary=armed
    )
    engine.run(max_rounds=4)

    statuses = {v: nodes[v].status for v in range(n)}
    meta = {"candidates": candidates}
    meta.update(engine.accounting_meta())
    return LeaderElectionResult(
        n=n,
        statuses=statuses,
        metrics=metrics,
        meta=meta,
        crashed=engine.crashed_nodes,
    )
