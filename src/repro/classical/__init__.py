"""Classical baselines: every comparator the paper's results are measured against."""

from repro.classical.agreement.amp18 import (
    classical_agreement_private,
    classical_agreement_shared,
)
from repro.classical.leader_election.complete_kpp import classical_le_complete
from repro.classical.leader_election.diameter2_cpr import classical_le_diameter2
from repro.classical.leader_election.general_ghs import classical_le_general
from repro.classical.leader_election.mixing_rw import classical_le_mixing
from repro.classical.leader_election.ring import hirschberg_sinclair_ring, lcr_ring
from repro.classical.mst_boruvka import classical_mst

__all__ = [
    "classical_mst",
    "classical_agreement_private",
    "classical_agreement_shared",
    "classical_le_complete",
    "classical_le_diameter2",
    "classical_le_general",
    "classical_le_mixing",
    "hirschberg_sinclair_ring",
    "lcr_ring",
]
