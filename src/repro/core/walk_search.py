"""Distributed search via quantum walk — Theorem 4.4 (MNRS framework).

``WalkSearch(P, δ, ε, α)`` searches for a marked state of a reversible Markov
chain P with spectral gap δ, maintaining a *distributed database* through
three procedures:

* ``Setup``    — cost (T_S, M_S): build the database for the initial state;
* ``Update``   — cost (T_U, M_U): move the database one chain step;
* ``Checking`` — cost (T_C, M_C): decide whether the current state is marked.

Cost contract (Theorem 4.4):

    O(log(1/α) · (M_S + (1/√ε)·(M_U/√δ + M_C)))   messages,

and the analogous round bound.  Outcome contract: returns a marked state with
probability ≥ 1 − α when the stationary marked measure ε_f is ≥ ε.

The schedule below mirrors the proof: per attempt, one Setup, then
t₁ = ⌈1/√ε⌉ amplification iterations, each consisting of a reflection built
from t₂ = ⌈1/√δ⌉ walk steps (one Update each, inside the phase-estimation of
W(P)) plus one S_f (two coherent Checking calls).  Outcomes are sampled from
the amplitude model in :mod:`repro.quantum.walk_model`.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.network.metrics import MetricsRecorder
from repro.quantum.amplitude import attempts_for_confidence, worst_case_iterations
from repro.quantum.walk_model import sample_walk_attempt
from repro.util.fault import FaultInjector
from repro.util.rng import RandomSource

__all__ = ["WalkSearchResult", "WalkSearchSpec", "walk_search"]

#: Coherent Checking invocations per amplification iteration.
CHECKS_PER_ITERATION = 2


@dataclass
class WalkSearchSpec:
    """Chain parameters and the three distributed procedures' cost hooks.

    The hooks receive (metrics, calls); `run_checking` may orchestrate nested
    procedures (QuantumQWLE's decentralized + centralized Grover searches) —
    whatever they charge is the Checking cost M_C of this WalkSearch.
    """

    marked_fraction: float  # ε_f: stationary measure of the marked states
    epsilon: float  # ε: promise threshold
    delta: float  # δ: spectral gap of the chain
    charge_setup: Callable[[MetricsRecorder, int], None]
    charge_update: Callable[[MetricsRecorder, int], None]
    charge_checking: Callable[[MetricsRecorder, int], None]
    sample_marked_state: Callable[[RandomSource], object]


@dataclass
class WalkSearchResult:
    """Outcome of one WalkSearch invocation."""

    found: object | None
    attempts: int
    amplification_iterations: int
    walk_steps_per_iteration: int

    @property
    def succeeded(self) -> bool:
        return self.found is not None


def walk_search(
    spec: WalkSearchSpec,
    alpha: float,
    metrics: MetricsRecorder,
    rng: RandomSource,
    faults: FaultInjector | None = None,
    fault_site: str = "walk.false_negative",
) -> WalkSearchResult:
    """Run WalkSearch(P, δ, ε, α) and return the found marked state (if any)."""
    if not 0.0 < spec.epsilon <= 1.0:
        raise ValueError(f"epsilon must be in (0, 1], got {spec.epsilon}")
    if not 0.0 < spec.delta <= 1.0:
        raise ValueError(f"delta must be in (0, 1], got {spec.delta}")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if not 0.0 <= spec.marked_fraction <= 1.0:
        raise ValueError(
            f"marked fraction must be in [0, 1], got {spec.marked_fraction}"
        )

    amplification = worst_case_iterations(spec.epsilon)  # t₁ = ⌈1/√ε⌉
    walk_steps = worst_case_iterations(spec.delta)  # t₂ = ⌈1/√δ⌉
    attempts = attempts_for_confidence(alpha)

    # Probe per-call round costs so the post-success identity part of the
    # schedule still advances rounds (Definition 4.1).
    probe = MetricsRecorder()
    spec.charge_setup(probe, 1)
    setup_rounds = probe.rounds
    probe = MetricsRecorder()
    spec.charge_update(probe, 1)
    update_rounds = probe.rounds
    probe = MetricsRecorder()
    spec.charge_checking(probe, 1)
    checking_rounds = probe.rounds
    rounds_per_attempt = setup_rounds + amplification * (
        walk_steps * update_rounds + CHECKS_PER_ITERATION * checking_rounds
    )

    found = None
    attempts_initiated = 0
    for _ in range(attempts):
        if found is None:
            # u initiates the attempt: one Setup, then t₁ reflections of
            # t₂ walk steps (Updates) and one S_f (two Checking calls) each.
            spec.charge_setup(metrics, 1)
            spec.charge_update(metrics, amplification * walk_steps)
            spec.charge_checking(metrics, amplification * CHECKS_PER_ITERATION)
            attempts_initiated += 1
            success = sample_walk_attempt(
                spec.marked_fraction,
                spec.epsilon,
                rng,
                faults=faults,
                fault_site=fault_site,
            )
            if success:
                found = spec.sample_marked_state(rng)
        # After success u goes silent; the synchronized rounds still elapse
        # while the network transformation is the identity (no messages).

    idle_attempts = attempts - attempts_initiated
    if idle_attempts > 0 and rounds_per_attempt > 0:
        metrics.advance_rounds(
            "walk-search.synchronized-idle", idle_attempts * rounds_per_attempt
        )

    return WalkSearchResult(
        found=found,
        attempts=attempts,
        amplification_iterations=amplification,
        walk_steps_per_iteration=walk_steps,
    )
