"""Cluster (fragment) machinery shared by QuantumGeneralLE and QuantumMST.

A cluster is a set of nodes spanned by a tree (grown by merging, GHS-style).
The helpers here maintain cluster trees under merges, compute heights for
round accounting, and provide the fragment-graph maximal matching used by
step (2) of Section 5.4 — a deterministic stand-in for Cole–Vishkin with the
same guarantees (maximal matching on the proposal graph; every unmatched
cluster's proposal target is matched, so merging at least halves the cluster
count — Lemma 5.9).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "Cluster",
    "ClusterState",
    "log_star",
    "maximal_matching",
]


def log_star(n: int) -> int:
    """Iterated logarithm (base 2), ≥ 1 — the Cole–Vishkin round count."""
    count = 0
    value = float(max(n, 2))
    while value >= 2.0:
        value = math.log2(value)
        count += 1
    return max(count, 1)


@dataclass
class Cluster:
    """A tree-spanned fragment; ``tree`` maps node -> tree-neighbour list."""

    center: int
    members: set[int]
    tree: dict[int, list[int]] = field(repr=False)

    @property
    def size(self) -> int:
        return len(self.members)

    def height(self) -> int:
        """Tree height from the center (BFS)."""
        if self.size <= 1:
            return 0
        depth = {self.center: 0}
        frontier = deque([self.center])
        worst = 0
        while frontier:
            v = frontier.popleft()
            for u in self.tree.get(v, ()):
                if u not in depth:
                    depth[u] = depth[v] + 1
                    worst = max(worst, depth[u])
                    frontier.append(u)
        if len(depth) != self.size:
            raise RuntimeError(
                f"cluster tree of {self.center} is disconnected "
                f"({len(depth)}/{self.size} reachable)"
            )
        return worst

    def tree_edge_count(self) -> int:
        return self.size - 1


class ClusterState:
    """All clusters of the network plus the node → cluster map."""

    def __init__(self, n: int):
        self.n = n
        self.clusters: dict[int, Cluster] = {
            v: Cluster(center=v, members={v}, tree={v: []}) for v in range(n)
        }
        self.cluster_of: list[int] = list(range(n))

    @property
    def count(self) -> int:
        return len(self.clusters)

    def cluster_id(self, node: int) -> int:
        return self.cluster_of[node]

    def same_cluster(self, u: int, v: int) -> bool:
        return self.cluster_of[u] == self.cluster_of[v]

    def merge(self, cid_a: int, cid_b: int, edge: tuple[int, int]) -> int:
        """Merge cluster b into a (larger absorbs smaller) via tree ``edge``.

        ``edge = (u, v)`` must connect the two clusters; it becomes a tree
        edge of the merged cluster.  Returns the surviving cluster id.
        """
        if cid_a == cid_b:
            raise ValueError(f"cannot merge cluster {cid_a} with itself")
        a, b = self.clusters[cid_a], self.clusters[cid_b]
        u, v = edge
        if self.cluster_of[u] == cid_b:  # normalize: u in a, v in b
            u, v = v, u
        if self.cluster_of[u] != cid_a or self.cluster_of[v] != cid_b:
            raise ValueError(f"edge {edge} does not connect clusters {cid_a}, {cid_b}")
        if a.size < b.size:
            a, b = b, a
            cid_a, cid_b = cid_b, cid_a
        # Absorb b into a.
        for node in b.members:
            self.cluster_of[node] = cid_a
        a.members |= b.members
        for node, neighbours in b.tree.items():
            a.tree.setdefault(node, []).extend(neighbours)
        a.tree.setdefault(u, []).append(v)
        a.tree.setdefault(v, []).append(u)
        del self.clusters[cid_b]
        return cid_a

    def max_height(self) -> int:
        return max((c.height() for c in self.clusters.values()), default=0)

    def total_tree_edges(self) -> int:
        return sum(c.tree_edge_count() for c in self.clusters.values())


def maximal_matching(
    proposals: dict[int, tuple[int, tuple[int, int]]],
) -> tuple[list[tuple[int, int, tuple[int, int]]], dict[int, int]]:
    """Maximal matching on the (undirected) cluster proposal graph.

    ``proposals`` maps cluster id -> (target cluster id, connecting edge).
    Returns (matched pairs with their edges, attachment map for unmatched
    clusters).  Deterministic greedy order stands in for Cole–Vishkin; by
    maximality every unmatched cluster's proposal target is matched, which
    is what the attachment map records.
    """
    matched: dict[int, int] = {}
    pairs: list[tuple[int, int, tuple[int, int]]] = []
    for cid in sorted(proposals):
        target, edge = proposals[cid]
        if cid in matched or target in matched or cid == target:
            continue
        matched[cid] = target
        matched[target] = cid
        pairs.append((cid, target, edge))
    attachments: dict[int, int] = {}
    for cid in sorted(proposals):
        if cid in matched:
            continue
        target, _ = proposals[cid]
        if target not in matched:
            raise RuntimeError(
                "maximal matching violated: unmatched cluster proposes to an "
                "unmatched target"
            )
        attachments[cid] = target
    return pairs, attachments
