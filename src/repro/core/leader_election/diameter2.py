"""QuantumQWLE — Algorithm 3: leader election in diameter-2 networks.

The paper's most intricate protocol.  Candidates repeatedly and randomly
split into *active* and *passive* roles; every active candidate v tests its
leadership with a **search via quantum walk** (Theorem 4.4) on the Johnson
graph J(deg(v), k) whose vertices are k-subsets W of v's neighbours
("referees"):

* ``Setup(W)``   — send rank r_v to all w ∈ W                (M_S = k, T_S = 1);
* ``Update``     — swap one referee                          (M_U = 2, T_U = 2);
* ``Checking(W)``— two nested Grover searches:
    - *decentralized*: every **passive** candidate v′ runs
      GroverSearch(1/deg(v′), α_inner) over its own neighbourhood for a
      referee holding a smaller rank, and forwards its rank there.  Passive
      candidates run this at the *prescribed synchronized slots without being
      notified* — one decentralized execution serves every simultaneously
      active candidate, and it runs (and costs messages) whether or not any
      candidate is active.  This sharing is exactly why the inner search is
      decentralized (Section 1.2).
    - *centralized*: the active candidate runs GroverSearch(1/k, α_inner)
      over W for a referee that received a higher rank.

A walk vertex W is *marked* when some w ∈ W is a good referee — adjacent to
(or equal to) a passive candidate with a higher rank; diameter ≤ 2 guarantees
at least one good referee exists whenever such a candidate exists, so the
marked measure is ≥ k/deg(v) = ε (Johnson hitting fraction with g = 1).  The
simulation uses that guaranteed floor — a documented conservative choice;
message costs are schedule-determined and unaffected.

Theorem 5.6: Õ(k + n/√k) messages; k = Θ(n^{2/3}) gives Corollary 5.7's
Õ(n^{2/3}), beating the classical Θ(n) bound of [CPR20].
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.candidates import draw_candidates
from repro.core.results import LeaderElectionResult
from repro.core.walk_search import WalkSearchResult, WalkSearchSpec, walk_search
from repro.network.metrics import MetricsRecorder
from repro.network.node import Status
from repro.network.topology import Topology
from repro.quantum.amplitude import attempts_for_confidence, worst_case_iterations
from repro.quantum.johnson import JohnsonGraph
from repro.util.fault import FaultInjector
from repro.util.rng import RandomSource

__all__ = ["QWLEParameters", "default_k_diameter2", "quantum_qwle"]


def default_k_diameter2(n: int) -> int:
    """Message-optimal k = Θ(n^{2/3}) from Corollary 5.7."""
    return max(1, round(n ** (2.0 / 3.0)))


@dataclass
class QWLEParameters:
    """Schedule knobs with the paper's defaults.

    ``outer_iterations`` defaults to Θ(log³ n) and ``activation`` to
    Θ(1/log² n) (Algorithm 3, lines 1–2); benchmarks may pass lighter values
    — the asymptotic message shape is unchanged, only polylog factors.
    """

    k: int | None = None
    alpha: float | None = None  # WalkSearch failure budget (paper: 1/n²)
    inner_alpha: float | None = None  # nested Grover budget (paper: 1/n³)
    outer_iterations: int | None = None
    activation: float | None = None
    #: Section 1.2's intermediate design point: drop the quantum-walk layer
    #: and pay a fresh referee Setup on every amplification iteration (two
    #: nested Grover searches only).  Optimal k becomes √n and the message
    #: envelope degrades from Õ(n^{2/3}) to Õ(n^{3/4}) — the E12 ablation.
    ablate_walk: bool = False

    def resolve(self, n: int) -> "QWLEParameters":
        log_n = math.log(max(n, 3))
        default_k = (
            max(1, round(math.sqrt(n))) if self.ablate_walk else default_k_diameter2(n)
        )
        return QWLEParameters(
            k=self.k if self.k is not None else default_k,
            ablate_walk=self.ablate_walk,
            alpha=self.alpha if self.alpha is not None else 1.0 / n**2,
            inner_alpha=(
                self.inner_alpha if self.inner_alpha is not None else 1.0 / n**3
            ),
            outer_iterations=(
                self.outer_iterations
                if self.outer_iterations is not None
                # Θ(log³ n) with the constant sized so that a non-top candidate
                # survives all iterations w.p. ≤ 1/n²: per iteration it is
                # eliminated w.p. ≈ activation, so 3·log²n·ln n iterations give
                # (1 − 1/log²n)^{3 log²n ln n} ≤ n^{-3}.
                else max(8, math.ceil(3.0 * log_n**3))
            ),
            activation=(
                self.activation
                if self.activation is not None
                else min(0.5, 1.0 / log_n**2)
            ),
        )


def _grover_schedule(
    epsilon: float, alpha: float, checking_messages: int = 2, checking_rounds: int = 2
) -> tuple[int, int]:
    """(messages, rounds) of one synchronized GroverSearch schedule.

    Mirrors :func:`repro.core.grover.distributed_grover_search`'s charging:
    attempts × (2·⌈1/√ε⌉ + 1) Checking calls.
    """
    cap = worst_case_iterations(epsilon)
    attempts = attempts_for_confidence(alpha)
    calls = attempts * (2 * cap + 1)
    return calls * checking_messages, calls * checking_rounds


def quantum_qwle(
    topology: Topology,
    rng: RandomSource,
    params: QWLEParameters | None = None,
    faults: FaultInjector | None = None,
) -> LeaderElectionResult:
    """Run QuantumQWLE on a network of diameter ≤ 2."""
    n = topology.n
    if n < 3:
        raise ValueError(f"need n >= 3 nodes, got {n}")
    p = (params or QWLEParameters()).resolve(n)

    metrics = MetricsRecorder()
    statuses = {v: Status.NON_ELECTED for v in range(n)}

    draw = draw_candidates(n, rng, faults=faults)
    metrics.advance_rounds("qwle.candidate-selection", 1)
    if not draw.candidates:
        return LeaderElectionResult(
            n=n, statuses=statuses, metrics=metrics, meta={"candidates": 0}
        )

    ranks = draw.ranks
    alive = set(draw.candidates)  # candidates not yet NON_ELECTED
    walk_searches = 0

    # -- synchronized per-iteration schedule (Definition 4.1) -------------------
    # Every iteration reserves the worst-case WalkSearch duration over the
    # candidate set, and the decentralized Checking slots fire on schedule
    # whether or not any candidate is active.
    attempts = attempts_for_confidence(p.alpha)
    degrees = {v: topology.degree(v) for v in draw.candidates}
    schedule_specs = {}
    worst_iteration_rounds = 1
    worst_slots = 1
    for v, degree in degrees.items():
        k_v = min(p.k, degree - 1) if degree >= 2 else 0
        if k_v < 1:
            schedule_specs[v] = None
            continue
        johnson = JohnsonGraph(degree, k_v)
        epsilon = k_v / degree
        # J(n, k) with k close to n has gap n/(k(n−k)) > 1 (a negative second
        # eigenvalue); as a WalkSearch parameter the gap saturates at 1.
        delta = min(1.0, johnson.spectral_gap())
        t1 = worst_case_iterations(epsilon)
        t2 = worst_case_iterations(delta)
        central_messages, central_rounds = _grover_schedule(1.0 / k_v, p.inner_alpha)
        slots = attempts * t1 * 2 + 1  # S_f compute+uncompute per iteration + final test
        rounds = attempts * (1 + t1 * (2 * t2 + 2 * central_rounds)) + central_rounds
        schedule_specs[v] = {
            "k": k_v,
            "johnson": johnson,
            "epsilon": epsilon,
            "delta": delta,
            "central_messages": central_messages,
            "central_rounds": central_rounds,
            "slots": slots,
        }
        worst_iteration_rounds = max(worst_iteration_rounds, rounds)
        worst_slots = max(worst_slots, slots)

    def decentralized_cost_per_slot(passive: set[int]) -> int:
        total = 0
        for v2 in passive:
            degree = degrees[v2]
            if degree >= 1:
                messages, _ = _grover_schedule(1.0 / degree, p.inner_alpha)
                total += messages
        return total

    for _ in range(p.outer_iterations):
        # The synchronized schedule always elapses (idle or not).
        metrics.advance_rounds("qwle.iteration", worst_iteration_rounds)

        active = {v for v in alive if rng.bernoulli(p.activation)}
        passive = alive - active

        # Decentralized Checking fires at every prescribed slot, notified or
        # not — its cost accrues every iteration.
        metrics.charge_messages(
            "qwle.walk.checking.decentralized",
            decentralized_cost_per_slot(passive) * worst_slots,
        )

        for v in sorted(active):
            spec_data = schedule_specs[v]
            if spec_data is None:
                continue  # too few neighbours to referee; stays a candidate
            johnson: JohnsonGraph = spec_data["johnson"]
            k_v = spec_data["k"]

            higher_passive = any(ranks[v2] > ranks[v] for v2 in passive)
            # Conservative marked measure: the guaranteed single good referee
            # (diameter ≤ 2) when a higher passive candidate exists.
            marked_fraction = johnson.hitting_fraction(1) if higher_passive else 0.0

            def charge_setup(m: MetricsRecorder, calls: int, *, _k=k_v) -> None:
                m.charge("qwle.walk.setup", messages=_k * calls)

            if p.ablate_walk:
                # No walk memory: each of the t1·t2 update slots amortizes a
                # full fresh Setup across its t2 steps, i.e. k messages per
                # amplification iteration instead of 2/step.
                t2_steps = worst_case_iterations(spec_data["delta"])

                def charge_update(
                    m: MetricsRecorder, calls: int, *, _k=k_v, _t2=t2_steps
                ) -> None:
                    m.charge(
                        "qwle.walk.setup-ablated",
                        messages=math.ceil(calls * _k / _t2),
                    )

            else:

                def charge_update(m: MetricsRecorder, calls: int) -> None:
                    m.charge("qwle.walk.update", messages=2 * calls)

            def charge_checking(
                m: MetricsRecorder, calls: int, *, _cm=spec_data["central_messages"]
            ) -> None:
                m.charge("qwle.walk.checking.centralized", messages=_cm * calls)

            def sample_marked(r: RandomSource, *, _j=johnson):
                return _j.sample_hitting_subset({0}, r)

            spec = WalkSearchSpec(
                marked_fraction=marked_fraction,
                epsilon=spec_data["epsilon"],
                delta=spec_data["delta"],
                charge_setup=charge_setup,
                charge_update=charge_update,
                charge_checking=charge_checking,
                sample_marked_state=sample_marked,
            )
            # Rounds were charged once for the whole iteration above, so the
            # per-candidate searches charge messages only (parallel actives).
            result = walk_search(spec, p.alpha, metrics, rng, faults=faults)
            charge_checking(metrics, 1)  # Algorithm 3 line 11: final test of W
            walk_searches += 1
            if result.succeeded:
                alive.discard(v)

    # Ending: every remaining candidate enters ELECTED.
    for v in alive:
        statuses[v] = Status.ELECTED

    return LeaderElectionResult(
        n=n,
        statuses=statuses,
        metrics=metrics,
        meta={
            "candidates": draw.count,
            "k": p.k,
            "outer_iterations": p.outer_iterations,
            "activation": p.activation,
            "alpha": p.alpha,
            "remaining": len(alive),
            "highest_ranked": draw.highest_ranked(),
            "walk_searches": walk_searches,
        },
    )
