"""Quantum leader-election protocols (Sections 5.1–5.4)."""

from repro.core.leader_election.complete import (
    default_k_complete,
    quantum_le_complete,
)
from repro.core.leader_election.diameter2 import (
    QWLEParameters,
    default_k_diameter2,
    quantum_qwle,
)
from repro.core.leader_election.explicit import make_explicit
from repro.core.leader_election.general import quantum_general_le
from repro.core.leader_election.mixing import (
    CHECKING_MODES,
    default_k_mixing,
    quantum_rwle,
)
from repro.core.leader_election.mst import MSTResult, quantum_mst

__all__ = [
    "CHECKING_MODES",
    "MSTResult",
    "QWLEParameters",
    "default_k_complete",
    "default_k_diameter2",
    "default_k_mixing",
    "make_explicit",
    "quantum_general_le",
    "quantum_le_complete",
    "quantum_mst",
    "quantum_qwle",
    "quantum_rwle",
]
