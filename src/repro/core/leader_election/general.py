"""QuantumGeneralLE — Section 5.4: explicit leader election in general graphs.

GHS-style cluster merging where the per-phase search for *outgoing* edges —
the Ω(m)-message bottleneck of every classical algorithm [KPP+15a] — is
replaced by per-node Grover searches:

1. every node v runs GroverSearch(1/deg(v), α_inner) over its ports for a
   neighbour outside v's cluster (Checking: send the cluster id, get a
   comparison bit back — 2 messages, 2 rounds); found edges convergecast up
   the cluster tree (Lemma 5.8: O(√(mn)·log n) messages per phase by
   Cauchy–Schwarz);
2. clusters compute a maximal matching of the fragment graph (Cole–Vishkin
   style; O(n·log* n) messages/rounds — Lemma 5.9);
3. matched clusters merge; unmatched clusters attach to their (necessarily
   matched) proposal target — at most half the clusters survive a phase.

After O(log n) phases one cluster remains; its center becomes the leader and
broadcasts its id (explicit leader election).  Theorem 5.10: Õ(√(mn))
messages, Õ(n) rounds — beating the classical Θ(m) bound.
"""

from __future__ import annotations

import math

from repro.core.grover import distributed_grover_search
from repro.core.leader_election.clusters import ClusterState, log_star, maximal_matching
from repro.core.parallel import run_in_parallel
from repro.core.procedures import CountOracle, uniform_charge
from repro.core.results import LeaderElectionResult
from repro.network.metrics import MetricsRecorder
from repro.network.node import Status
from repro.network.topology import Topology
from repro.util.fault import FaultInjector
from repro.util.rng import RandomSource

__all__ = ["quantum_general_le"]

#: Checking for the outgoing-edge search: cluster id out, comparison bit back.
CHECKING_MESSAGES = 2
CHECKING_ROUNDS = 2


def _find_outgoing_edges(
    topology: Topology,
    state: ClusterState,
    alpha: float,
    metrics: MetricsRecorder,
    rng: RandomSource,
    faults: FaultInjector | None,
) -> dict[int, tuple[int, tuple[int, int]]]:
    """Step (1): per-node Grover searches + per-cluster convergecast.

    Returns cluster id -> (target cluster id, connecting edge).
    """
    found_per_cluster: dict[int, tuple[int, int]] = {}

    def make_task(v: int):
        neighbours = list(topology.neighbors(v))
        outgoing = [w for w in neighbours if not state.same_cluster(v, w)]
        degree = len(neighbours)

        oracle = CountOracle(
            domain_size=degree,
            marked=len(outgoing),
            charge_checking=uniform_charge(
                CHECKING_MESSAGES, CHECKING_ROUNDS, "general-le.grover.checking"
            ),
            sample_marked_fn=lambda r: outgoing[r.uniform_int(0, len(outgoing) - 1)],
            evaluate_fn=lambda w: not state.same_cluster(v, w),
        )

        def task(scratch: MetricsRecorder):
            return distributed_grover_search(
                oracle, 1.0 / degree, alpha, scratch, rng, faults=faults
            )

        return task

    nodes = [v for v in range(topology.n) if topology.degree(v) > 0]
    results = run_in_parallel(
        metrics, "general-le.outgoing-search", [make_task(v) for v in nodes]
    )
    for v, result in zip(nodes, results):
        if result.found is None:
            continue
        cid = state.cluster_id(v)
        if cid not in found_per_cluster:
            found_per_cluster[cid] = (v, result.found)

    # Convergecast any found edge to the cluster center (arbitrary pick).
    convergecast_messages = state.total_tree_edges()
    convergecast_rounds = max(1, state.max_height())
    metrics.charge(
        "general-le.convergecast",
        messages=convergecast_messages,
        rounds=convergecast_rounds,
    )

    proposals: dict[int, tuple[int, tuple[int, int]]] = {}
    for cid, (v, w) in found_per_cluster.items():
        proposals[cid] = (state.cluster_id(w), (v, w))
    return proposals


def quantum_general_le(
    topology: Topology,
    rng: RandomSource,
    alpha: float | None = None,
    faults: FaultInjector | None = None,
) -> LeaderElectionResult:
    """Run QuantumGeneralLE; returns an *explicit* leader-election result."""
    n = topology.n
    if n < 2:
        raise ValueError(f"need n >= 2 nodes, got {n}")
    if alpha is None:
        alpha = 1.0 / n**3  # Lemma 5.8's per-search budget

    metrics = MetricsRecorder()
    state = ClusterState(n)
    phase_limit = 4 * max(1, math.ceil(math.log2(n))) + 8
    phases = 0

    while state.count > 1 and phases < phase_limit:
        phases += 1
        proposals = _find_outgoing_edges(topology, state, alpha, metrics, rng, faults)

        if not proposals:
            # Every cluster's search failed (probability ≤ n·α per phase);
            # the phase is lost but the schedule continues.
            continue

        # Step (2): maximal matching on the fragment graph, Cole–Vishkin cost.
        cv = log_star(n)
        metrics.charge(
            "general-le.matching",
            messages=n * cv,
            rounds=n * cv,
        )
        pairs, attachments = maximal_matching(proposals)

        # Step (3): merge matched pairs, then attach unmatched clusters.
        id_map = {cid: cid for cid in state.clusters}
        for cid_a, cid_b, edge in pairs:
            survivor = state.merge(id_map[cid_a], id_map[cid_b], edge)
            id_map[cid_a] = id_map[cid_b] = survivor
        for cid, target in attachments.items():
            source = id_map[cid]
            destination = id_map[target]
            if source == destination:
                continue
            _, edge = proposals[cid]
            survivor = state.merge(source, destination, edge)
            for key, value in list(id_map.items()):
                if value in (source, destination):
                    id_map[key] = survivor
        metrics.charge(
            "general-le.merge-broadcast",
            messages=n,
            rounds=max(1, state.max_height()),
        )

    statuses = {v: Status.NON_ELECTED for v in range(n)}
    known_leader: dict[int, int] | None = None
    if state.count == 1:
        final = next(iter(state.clusters.values()))
        leader = final.center
        statuses[leader] = Status.ELECTED
        # Explicit variant: the leader broadcasts its id over the tree.
        metrics.charge(
            "general-le.leader-broadcast",
            messages=n - 1,
            rounds=max(1, final.height()),
        )
        known_leader = {v: leader for v in range(n)}

    return LeaderElectionResult(
        n=n,
        statuses=statuses,
        metrics=metrics,
        known_leader=known_leader,
        meta={
            "phases": phases,
            "alpha": alpha,
            "clusters_remaining": state.count,
            "m": topology.edge_count(),
        },
    )
