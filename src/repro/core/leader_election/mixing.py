"""QuantumRWLE — Algorithm 2: leader election in graphs with mixing time τ.

The complete-graph protocol's neighbourhood exploration is replaced by lazy
random walks (Section 5.2):

* **referee phase** — each candidate releases k walk tokens carrying its
  rank, each walking Θ(τ) steps (cost Õ(τk) messages: a token's rank fits in
  one CONGEST message per hop);
* **quantum phase** — each candidate Grover-searches the space X of Θ(τ)-step
  walks from itself for one that *ends at* a node holding a higher received
  rank.  Because one side of Grover search is centralized, the candidate must
  pre-draw the walk's random choices and ship them along the walk: Θ(τ·log n)
  bits forwarded over Θ(τ) hops — the τ → τ² Checking blow-up the paper
  describes — so M_C = Θ(τ²/ log n · …) messages per coherent call, counted
  through the CONGEST payload-splitting rule.

Theorem 5.4: Õ(τk + τ²√(n/k)) messages; k = Θ(τ^{2/3}·n^{1/3}) gives
Corollary 5.5's Õ(τ^{5/3}·n^{1/3}), beating the classical Õ(τ√n).
"""

from __future__ import annotations

import math

from repro.core.candidates import draw_candidates
from repro.core.grover import distributed_grover_search
from repro.core.parallel import run_in_parallel
from repro.core.procedures import CountOracle, uniform_charge
from repro.core.results import LeaderElectionResult
from repro.network.message import messages_for_bits
from repro.network.metrics import MetricsRecorder
from repro.network.node import Status
from repro.network.random_walk import RandomWalk, estimate_mixing_time
from repro.network.topology import Topology
from repro.util.fault import FaultInjector
from repro.util.rng import RandomSource

__all__ = ["default_k_mixing", "quantum_rwle"]

#: Safety factor on the promise ε = k/n: referee-walk endpoints may collide,
#: so the true stationary mass of higher-rank holders can fall slightly below
#: k/n.  A constant slack (absorbed by Õ) keeps the BBHT guarantee intact.
EPSILON_SLACK = 4.0


def default_k_mixing(n: int, tau: int) -> int:
    """Message-optimal k = Θ(τ^{2/3}·n^{1/3}) from Corollary 5.5."""
    return max(1, min(n - 1, round(tau ** (2.0 / 3.0) * n ** (1.0 / 3.0))))


#: Checking modes for the quantum phase.  ``centralized`` is the paper's
#: proven protocol: the initiator pre-draws the walk's choices and ships
#: Θ(τ·log n) bits along τ hops (M_C = Θ(τ²/log n) CONGEST messages).
#: ``conjectured-decentralized`` realizes the cost structure of the paper's
#: closing conjecture ("achieving a message complexity linear in τ may be
#: possible"): intermediate nodes supply the walk's randomness, so a coherent
#: Checking call forwards only the O(log n)-bit query — M_C = 2τ messages.
#: The conjecture's open part is *proving* that such decentralized coherent
#: walks can be synchronized; the simulation assumes it, and is therefore an
#: EXPERIMENTAL what-if, clearly out of the paper's proven envelope.
CHECKING_MODES = ("centralized", "conjectured-decentralized")


def quantum_rwle(
    topology: Topology,
    rng: RandomSource,
    tau: int | None = None,
    k: int | None = None,
    alpha: float | None = None,
    checking_mode: str = "centralized",
    faults: FaultInjector | None = None,
) -> LeaderElectionResult:
    """Run QuantumRWLE on an arbitrary connected network.

    ``tau`` is the mixing-time bound nodes are assumed to know (estimated
    from the spectral gap when omitted, matching the paper's knowledge
    assumption).  ``checking_mode`` selects the proven centralized Checking
    or the conjectured τ-linear decentralized variant (see
    :data:`CHECKING_MODES`).
    """
    if checking_mode not in CHECKING_MODES:
        raise ValueError(
            f"checking_mode must be one of {CHECKING_MODES}, got {checking_mode!r}"
        )
    n = topology.n
    if tau is None:
        tau = estimate_mixing_time(topology)
    if tau < 1:
        raise ValueError(f"mixing time must be >= 1, got {tau}")
    if k is None:
        k = default_k_mixing(n, tau)
    if not 1 <= k <= n - 1:
        raise ValueError(f"k must be in [1, {n - 1}], got {k}")
    if alpha is None:
        alpha = 1.0 / n**2

    metrics = MetricsRecorder()
    statuses = {v: Status.NON_ELECTED for v in range(n)}
    walk = RandomWalk(topology)
    walk_length = tau  # Θ(τ); the lazy walk needs no parity padding

    # -- classical phase: candidates ------------------------------------------------
    draw = draw_candidates(n, rng, faults=faults)
    metrics.advance_rounds("quantum-rwle.candidate-selection", 1)
    if not draw.candidates:
        return LeaderElectionResult(
            n=n, statuses=statuses, metrics=metrics,
            meta={"candidates": 0, "k": k, "tau": tau},
        )

    # -- classical phase: referee walks ----------------------------------------------
    # k tokens per candidate, each carrying the rank (one message per hop).
    received: dict[int, int] = {}
    for v in draw.candidates:
        rank = draw.ranks[v]
        for _ in range(k):
            endpoint = walk.endpoint(v, walk_length, rng)
            if received.get(endpoint, 0) < rank:
                received[endpoint] = rank
    metrics.charge(
        "quantum-rwle.referee-walks",
        messages=len(draw.candidates) * k * walk_length,
        rounds=walk_length,
    )

    # -- quantum phase ------------------------------------------------------------------
    # Checking a walk x: v ships the pre-drawn choices (τ·O(log n) bits)
    # along the walk, and the endpoint's answer bit travels back: the paper's
    # τ → τ² message blow-up, realized through CONGEST payload splitting.
    if checking_mode == "centralized":
        bits_per_step = 1 + max(1, math.ceil(math.log2(max(2, n))))
        payload_messages_per_hop = messages_for_bits(walk_length * bits_per_step, n)
        checking_messages = walk_length * payload_messages_per_hop + walk_length
    else:
        # Conjectured decentralized Checking: the query travels out and the
        # answer travels back, one CONGEST message per hop each way.
        checking_messages = 2 * walk_length
    checking_rounds = 2 * walk_length
    epsilon = k / (EPSILON_SLACK * n)

    def make_task(v: int):
        rank_v = draw.ranks[v]
        higher_holders = {w for w, r in received.items() if r > rank_v}
        marked_fraction = walk.hit_probability(v, walk_length, higher_holders)
        # The Grover domain is the (huge) space of random-choice strings; the
        # dynamics only need the marked fraction, which we realize exactly on
        # an integer domain of matching resolution.
        resolution = max(n * k, 1024)
        if marked_fraction > 0.0:
            marked_count = max(1, round(marked_fraction * resolution))
        else:
            marked_count = 0
        holders = sorted(higher_holders)

        oracle = CountOracle(
            domain_size=resolution,
            marked=marked_count,
            charge_checking=uniform_charge(
                checking_messages, checking_rounds, "quantum-rwle.grover.checking"
            ),
            sample_marked_fn=lambda r: holders[r.uniform_int(0, len(holders) - 1)]
            if holders
            else None,
        )

        def task(scratch: MetricsRecorder):
            return distributed_grover_search(
                oracle, epsilon, alpha, scratch, rng, faults=faults
            )

        return task

    searches = run_in_parallel(
        metrics,
        "quantum-rwle.grover",
        [make_task(v) for v in draw.candidates],
    )

    for v, search in zip(draw.candidates, searches):
        statuses[v] = Status.NON_ELECTED if search.succeeded else Status.ELECTED

    return LeaderElectionResult(
        n=n,
        statuses=statuses,
        metrics=metrics,
        meta={
            "candidates": draw.count,
            "k": k,
            "tau": tau,
            "walk_length": walk_length,
            "alpha": alpha,
            "checking_mode": checking_mode,
            "highest_ranked": draw.highest_ranked(),
        },
    )
