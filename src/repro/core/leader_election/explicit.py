"""Explicit leader election from implicit (footnote 1 of the paper).

In the *explicit* variant every non-leader must also learn the leader's
identity, which costs Ω(n) messages even quantumly — so the paper's implicit
protocols stay sublinear and explicitness is bolted on when needed.  This
module does the bolting: the elected node announces itself,

* over a complete graph: directly to all n−1 others (one round), or
* over an arbitrary connected topology: along a BFS spanning tree rooted at
  the leader (n−1 messages, eccentricity rounds).

QuantumGeneralLE is already explicit (its final cluster tree doubles as the
announcement tree); everything else can be upgraded with
:func:`make_explicit`.
"""

from __future__ import annotations

from repro.core.results import LeaderElectionResult
from repro.network.spanning import bfs_tree
from repro.network.topology import CompleteTopology, Topology

__all__ = ["make_explicit"]


def make_explicit(
    result: LeaderElectionResult,
    topology: Topology | None = None,
) -> LeaderElectionResult:
    """Upgrade an implicit election to an explicit one, in place.

    Charges the Ω(n) announcement (unavoidable — footnote 1) to the result's
    own metrics and fills ``known_leader``.  A result without a unique leader
    is returned unchanged: there is nothing coherent to announce.

    ``topology`` defaults to the complete graph on result.n nodes.
    """
    leader = result.leader
    if leader is None:
        return result
    if topology is None:
        topology = CompleteTopology(result.n)
    if topology.n != result.n:
        raise ValueError(
            f"topology has {topology.n} nodes but the election ran on {result.n}"
        )

    if isinstance(topology, CompleteTopology):
        result.metrics.charge(
            "explicit.announce", messages=result.n - 1, rounds=1
        )
    else:
        tree = bfs_tree(topology, leader)
        result.metrics.charge(
            "explicit.announce",
            messages=tree.edge_total,
            rounds=max(1, tree.height),
        )
    result.known_leader = {v: leader for v in range(result.n)}
    return result
