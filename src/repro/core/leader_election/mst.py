"""QuantumMST — Section 5.4's stated extension to minimum spanning trees.

"Our presented algorithm generalizes straightforwardly to the minimum
spanning tree (MST) problem with the same complexities."  The generalization
swaps step (1)'s *arbitrary* outgoing-edge search for **minimum** outgoing-
edge search — distributed Dürr–Høyer minimum finding over each node's ports
(:mod:`repro.core.minimum`) — and merges Borůvka-style along the chosen
minimum edges.  With distinct edge weights (ties broken lexicographically,
the classic trick) the merged edge set is exactly the MST.

Message complexity is the same Õ(√(mn)) envelope as QuantumGeneralLE:
Dürr–Høyer costs O(√deg·log) per node per phase, as Grover search did.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.leader_election.clusters import ClusterState
from repro.core.minimum import MinimumOracle, quantum_minimum
from repro.core.parallel import run_in_parallel
from repro.network.metrics import MetricsRecorder
from repro.network.topology import Topology
from repro.util.fault import FaultInjector
from repro.util.rng import RandomSource

__all__ = ["MSTResult", "quantum_mst"]

#: Checking for the weight-threshold oracle: id+threshold out, bit back.
CHECKING_MESSAGES = 2
CHECKING_ROUNDS = 2


@dataclass
class MSTResult:
    """Outcome of one QuantumMST run."""

    n: int
    edges: list[tuple[int, int]]
    total_weight: float
    metrics: MetricsRecorder
    meta: dict = field(default_factory=dict)

    @property
    def is_spanning(self) -> bool:
        return len(self.edges) == self.n - 1

    @property
    def messages(self) -> int:
        return self.metrics.messages

    @property
    def rounds(self) -> int:
        return self.metrics.rounds


def edge_key(weights: dict, u: int, v: int) -> tuple[float, int, int]:
    """Total order on edges: weight with lexicographic tie-breaking."""
    a, b = (u, v) if u < v else (v, u)
    return (weights[(a, b)], a, b)


def quantum_mst(
    topology: Topology,
    weights: dict[tuple[int, int], float],
    rng: RandomSource,
    alpha: float | None = None,
    faults: FaultInjector | None = None,
) -> MSTResult:
    """Compute the MST via quantum-assisted Borůvka merging.

    ``weights`` maps each edge (u, v) with u < v to its weight; all edges of
    the topology must be present.
    """
    n = topology.n
    if n < 2:
        raise ValueError(f"need n >= 2 nodes, got {n}")
    for u, v in topology.edges():
        if (u, v) not in weights:
            raise ValueError(f"missing weight for edge ({u}, {v})")
    if alpha is None:
        alpha = 1.0 / n**3

    metrics = MetricsRecorder()
    state = ClusterState(n)
    mst_edges: list[tuple[int, int]] = []
    phase_limit = 4 * max(1, math.ceil(math.log2(n))) + 8
    phases = 0

    while state.count > 1 and phases < phase_limit:
        phases += 1

        def make_task(v: int):
            outgoing = [
                w for w in topology.neighbors(v) if not state.same_cluster(v, w)
            ]
            if not outgoing:
                return lambda scratch: None
            keyed = sorted(outgoing, key=lambda w: edge_key(weights, v, w))

            def count_below(threshold):
                if threshold is None:
                    return len(keyed)
                return sum(
                    1 for w in keyed if edge_key(weights, v, w) < threshold
                )

            def sample_below(threshold, r: RandomSource):
                pool = (
                    keyed
                    if threshold is None
                    else [w for w in keyed if edge_key(weights, v, w) < threshold]
                )
                return pool[r.uniform_int(0, len(pool) - 1)]

            oracle = MinimumOracle(
                domain_size=topology.degree(v),
                count_below=count_below,
                sample_below=sample_below,
                value_of=lambda w: edge_key(weights, v, w),
                charge_checking=lambda m, calls: m.charge(
                    "mst.durr-hoyer.checking",
                    messages=CHECKING_MESSAGES * calls,
                    rounds=CHECKING_ROUNDS * calls,
                ),
            )

            def task(scratch: MetricsRecorder):
                result = quantum_minimum(oracle, alpha, scratch, rng, faults=faults)
                return result.minimizer

            return task

        nodes = [v for v in range(n) if topology.degree(v) > 0]
        found = run_in_parallel(
            metrics, "mst.minimum-search", [make_task(v) for v in nodes]
        )

        # Convergecast the per-cluster minimum outgoing edge to each center.
        metrics.charge(
            "mst.convergecast",
            messages=state.total_tree_edges(),
            rounds=max(1, state.max_height()),
        )
        best_edge: dict[int, tuple[int, int]] = {}
        for v, w in zip(nodes, found):
            if w is None:
                continue
            cid = state.cluster_id(v)
            current = best_edge.get(cid)
            if current is None or edge_key(weights, v, w) < edge_key(
                weights, *current
            ):
                best_edge[cid] = (v, w)

        if not best_edge:
            continue  # all searches failed this phase (probability ≤ n·α)

        # Borůvka merge along the chosen minimum edges.
        merged_any = False
        for cid in sorted(best_edge):
            v, w = best_edge[cid]
            ca, cb = state.cluster_id(v), state.cluster_id(w)
            if ca == cb:
                continue  # already merged through another cluster's edge
            state.merge(ca, cb, (v, w))
            a, b = (v, w) if v < w else (w, v)
            mst_edges.append((a, b))
            merged_any = True
        metrics.charge(
            "mst.merge-broadcast",
            messages=n,
            rounds=max(1, state.max_height()),
        )
        if not merged_any:
            break

    total = sum(weights[e] for e in mst_edges)
    return MSTResult(
        n=n,
        edges=mst_edges,
        total_weight=total,
        metrics=metrics,
        meta={
            "phases": phases,
            "alpha": alpha,
            "clusters_remaining": state.count,
            "m": topology.edge_count(),
        },
    )
