"""QuantumLE — Algorithm 1: quantum leader election in complete networks.

Two phases (Section 5.1):

* **classical** — every node volunteers with probability 12·ln(n)/n, draws a
  rank from {1, …, n⁴}, and sends it to k arbitrary neighbours (its first k
  ports — the paper allows any deterministic choice);
* **quantum** — every candidate v runs GroverSearch(k/n, α) over X = V for a
  node that *received* a strictly higher rank (the Checking of Algorithm 1:
  two rounds, two messages).  A candidate that finds none becomes the leader.

Theorem 5.2: with probability ≥ 1 − 1/n the highest-ranked candidate is the
unique leader, in Õ(√(n/k)) rounds with Õ(k + √(n/k)) messages; k = Θ(n^{1/3})
optimizes messages to Õ(n^{1/3}) (Corollary 5.3), beating the classical
Θ̃(√n) bound.
"""

from __future__ import annotations

import math

from repro.core.candidates import draw_candidates
from repro.core.grover import distributed_grover_search
from repro.core.parallel import run_in_parallel
from repro.core.procedures import CountOracle, uniform_charge
from repro.core.results import LeaderElectionResult
from repro.network.metrics import MetricsRecorder
from repro.network.node import Status
from repro.util.fault import FaultInjector
from repro.util.rng import RandomSource

__all__ = ["default_k_complete", "quantum_le_complete"]

#: Checking_v (Algorithm 1): rank out, reply back — 2 messages, 2 rounds.
CHECKING_MESSAGES = 2
CHECKING_ROUNDS = 2


def default_k_complete(n: int) -> int:
    """The message-optimal trade-off point k = Θ(n^{1/3}) of Corollary 5.3."""
    return max(1, min(n - 1, round(n ** (1.0 / 3.0))))


def quantum_le_complete(
    n: int,
    rng: RandomSource,
    k: int | None = None,
    alpha: float | None = None,
    faults: FaultInjector | None = None,
) -> LeaderElectionResult:
    """Run QuantumLE on the complete network K_n.

    ``k`` is the round/message trade-off knob (defaults to the optimal
    n^{1/3}); ``alpha`` the per-search failure budget (defaults to the
    paper's 1/n²; benchmarks may relax it — the asymptotic shape is
    unchanged, only the log(1/α) boosting factor).
    """
    if n < 2:
        raise ValueError(f"need n >= 2 nodes, got {n}")
    if k is None:
        k = default_k_complete(n)
    if not 1 <= k <= n - 1:
        raise ValueError(f"k must be in [1, {n - 1}], got {k}")
    if alpha is None:
        alpha = 1.0 / n**2

    metrics = MetricsRecorder()
    statuses = {v: Status.NON_ELECTED for v in range(n)}

    # -- classical phase: candidates and ranks (one local round) ---------------
    draw = draw_candidates(n, rng, faults=faults)
    metrics.advance_rounds("quantum-le.candidate-selection", 1)

    if not draw.candidates:
        # The 1/n²-probability sampling failure: nobody volunteers, nobody is
        # elected.  The paper accepts this within its error budget.
        return LeaderElectionResult(
            n=n, statuses=statuses, metrics=metrics, meta={"candidates": 0, "k": k}
        )

    # -- classical phase: referees ----------------------------------------------
    # Candidate v sends its rank through its first k ports, i.e. to nodes
    # v+1, …, v+k (mod n).  ``received`` maps node -> highest rank received.
    received: dict[int, int] = {}
    for v in draw.candidates:
        rank = draw.ranks[v]
        for offset in range(1, k + 1):
            w = (v + offset) % n
            if received.get(w, 0) < rank:
                received[w] = rank
    metrics.charge(
        "quantum-le.referees", messages=len(draw.candidates) * k, rounds=1
    )

    # -- quantum phase: per-candidate Grover searches (parallel, disjoint edges)
    epsilon = k / n

    def make_task(v: int):
        rank_v = draw.ranks[v]
        marked_nodes = [w for w, r in received.items() if r > rank_v]

        oracle = CountOracle(
            domain_size=n,
            marked=len(marked_nodes),
            charge_checking=uniform_charge(
                CHECKING_MESSAGES, CHECKING_ROUNDS, "quantum-le.grover.checking"
            ),
            sample_marked_fn=lambda r: marked_nodes[
                r.uniform_int(0, len(marked_nodes) - 1)
            ],
            evaluate_fn=lambda w: received.get(w, 0) > rank_v,
        )

        def task(scratch: MetricsRecorder):
            return distributed_grover_search(
                oracle, epsilon, alpha, scratch, rng, faults=faults
            )

        return task

    searches = run_in_parallel(
        metrics,
        "quantum-le.grover",
        [make_task(v) for v in draw.candidates],
    )

    # -- decision -----------------------------------------------------------------
    for v, search in zip(draw.candidates, searches):
        statuses[v] = Status.NON_ELECTED if search.succeeded else Status.ELECTED

    return LeaderElectionResult(
        n=n,
        statuses=statuses,
        metrics=metrics,
        meta={
            "candidates": draw.count,
            "k": k,
            "epsilon": epsilon,
            "alpha": alpha,
            "highest_ranked": draw.highest_ranked(),
            "unique_ranks": draw.has_unique_ranks,
        },
    )


def theoretical_message_bound(n: int, k: int | None = None) -> float:
    """The Õ(k + √(n/k)) envelope (without log factors), for harness tables."""
    if k is None:
        k = default_k_complete(n)
    return k + math.sqrt(n / k)
