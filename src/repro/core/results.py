"""Result dataclasses returned by every protocol in the library."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.metrics import MetricsRecorder
from repro.network.node import Status

__all__ = ["AgreementResult", "LeaderElectionResult"]


@dataclass
class LeaderElectionResult:
    """Outcome of one leader-election run.

    ``success`` is the Section 2.2 condition: exactly one node ELECTED, all
    others NON_ELECTED (implicit variant: non-leaders need not know the
    leader's identity; ``explicit`` runs additionally populate
    ``known_leader``).

    Under an adversary, ``crashed`` lists the crash-stopped nodes; as is
    standard for crash-stop faults, the correctness condition then applies
    to the *surviving* nodes only (a crashed candidate frozen at ⊥ does
    not invalidate the survivors' election).
    """

    n: int
    statuses: dict[int, Status]
    metrics: MetricsRecorder
    meta: dict = field(default_factory=dict)
    known_leader: dict[int, int] | None = None
    crashed: frozenset[int] = frozenset()

    @property
    def elected(self) -> list[int]:
        return [
            v
            for v, s in self.statuses.items()
            if s is Status.ELECTED and v not in self.crashed
        ]

    @property
    def leader(self) -> int | None:
        winners = self.elected
        return winners[0] if len(winners) == 1 else None

    @property
    def success(self) -> bool:
        if len(self.elected) != 1:
            return False
        return all(
            s in (Status.ELECTED, Status.NON_ELECTED)
            for v, s in self.statuses.items()
            if v not in self.crashed
        )

    @property
    def explicit_success(self) -> bool:
        """Explicit LE: everyone additionally knows the unique leader."""
        if not self.success or self.known_leader is None:
            return False
        leader = self.leader
        return all(self.known_leader.get(v) == leader for v in self.statuses)

    @property
    def messages(self) -> int:
        return self.metrics.messages

    @property
    def rounds(self) -> int:
        return self.metrics.rounds


@dataclass
class AgreementResult:
    """Outcome of one implicit-agreement run (Section 2.2).

    ``decisions`` maps node → decided value, with None for ⊥ (undecided).
    Validity requires every decided node to agree on a value that is some
    node's input, and at least one node to be decided.
    """

    n: int
    inputs: dict[int, int]
    decisions: dict[int, int | None]
    metrics: MetricsRecorder
    meta: dict = field(default_factory=dict)

    @property
    def decided_nodes(self) -> list[int]:
        return [v for v, d in self.decisions.items() if d is not None]

    @property
    def agreed_value(self) -> int | None:
        values = {self.decisions[v] for v in self.decided_nodes}
        return values.pop() if len(values) == 1 else None

    @property
    def success(self) -> bool:
        decided = self.decided_nodes
        if not decided:
            return False
        values = {self.decisions[v] for v in decided}
        if len(values) != 1:
            return False
        value = values.pop()
        return value in set(self.inputs.values())

    @property
    def messages(self) -> int:
        return self.metrics.messages

    @property
    def rounds(self) -> int:
        return self.metrics.rounds
