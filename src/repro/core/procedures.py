"""Distributed procedure abstractions (Section 4.2's Checking / Setup / Update).

A *search oracle* bundles the classical description of a function
f : X → {0, 1} with the CONGEST cost of its distributed ``Checking``
procedure.  The quantum subroutines consume oracles in two independent ways:

* **outcome**: ``marked_count`` / ``sample_marked`` drive the exact
  measurement dynamics (the simulator is omniscient about f, exactly like a
  proof is);
* **cost**: ``charge_checking`` bills the CONGEST messages and rounds of each
  *coherent* invocation of Checking to the metrics recorder.  A coherent
  invocation is charged once regardless of the superposition's width
  (Section 3.1's max-over-branches rule).

``charge_checking`` may be a plain (messages, rounds) pair or an arbitrary
hook — QuantumQWLE's Checking, for instance, internally runs nested Grover
searches whose costs depend on the current candidate population.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.network.metrics import MetricsRecorder
from repro.util.rng import RandomSource

__all__ = [
    "ChargeHook",
    "SearchOracle",
    "SetOracle",
    "uniform_charge",
]

#: A hook charging the cost of ``calls`` coherent invocations of a procedure.
ChargeHook = Callable[[MetricsRecorder, int], None]


def uniform_charge(messages: int, rounds: int, label: str) -> ChargeHook:
    """A :data:`ChargeHook` with fixed per-call cost (the common case).

    The two-round, two-message Checking of Algorithm 1 is
    ``uniform_charge(2, 2, "quantum-le.checking")``.
    """
    if messages < 0 or rounds < 0:
        raise ValueError(
            f"per-call costs must be non-negative, got messages={messages}, "
            f"rounds={rounds}"
        )

    def charge(metrics: MetricsRecorder, calls: int) -> None:
        metrics.charge(label, messages=messages * calls, rounds=rounds * calls)

    return charge


class SearchOracle:
    """Classical view of f : X → {0, 1} plus its distributed Checking cost.

    Subclasses (or direct instances via :class:`SetOracle`) must keep
    ``marked_count`` consistent with ``evaluate``; tests verify this for the
    library's own oracles.
    """

    def __init__(self, domain_size: int, charge_checking: ChargeHook):
        if domain_size < 1:
            raise ValueError(f"domain must be non-empty, got {domain_size}")
        self.domain_size = domain_size
        self.charge_checking = charge_checking

    # -- classical description (override) --------------------------------------

    def marked_count(self) -> int:
        raise NotImplementedError

    def sample_marked(self, rng: RandomSource):
        raise NotImplementedError

    def sample_unmarked(self, rng: RandomSource):
        raise NotImplementedError

    def evaluate(self, x) -> bool:
        raise NotImplementedError

    # -- derived ----------------------------------------------------------------

    def marked_fraction(self) -> float:
        return self.marked_count() / self.domain_size


class SetOracle(SearchOracle):
    """Oracle over an explicit domain sequence with an explicit marked set."""

    def __init__(
        self,
        domain: Sequence,
        marked: set,
        charge_checking: ChargeHook,
    ):
        super().__init__(len(domain), charge_checking)
        self._domain = domain
        self._marked = set(marked)
        self._marked_list = sorted(self._marked, key=repr)
        self._unmarked_list: list | None = None
        domain_set = set(domain)
        stray = self._marked - domain_set
        if stray:
            raise ValueError(f"marked elements outside the domain: {sorted(map(repr, stray))[:3]}")

    def marked_count(self) -> int:
        return len(self._marked)

    def sample_marked(self, rng: RandomSource):
        if not self._marked_list:
            raise ValueError("no marked elements to sample")
        return self._marked_list[rng.uniform_int(0, len(self._marked_list) - 1)]

    def sample_unmarked(self, rng: RandomSource):
        if self._unmarked_list is None:
            self._unmarked_list = [x for x in self._domain if x not in self._marked]
        if not self._unmarked_list:
            raise ValueError("every element is marked")
        return self._unmarked_list[rng.uniform_int(0, len(self._unmarked_list) - 1)]

    def evaluate(self, x) -> bool:
        return x in self._marked


@dataclass
class CountOracle(SearchOracle):
    """Oracle defined by counts and samplers — for domains too large to list.

    QuantumLE's domain is all n nodes; materializing it per candidate would
    cost Θ(n) per run, defeating the point of a sublinear-message protocol's
    *simulation* being fast.  This oracle keeps everything implicit.
    """

    def __init__(
        self,
        domain_size: int,
        marked: int,
        charge_checking: ChargeHook,
        sample_marked_fn: Callable[[RandomSource], object],
        sample_unmarked_fn: Callable[[RandomSource], object] | None = None,
        evaluate_fn: Callable[[object], bool] | None = None,
    ):
        super().__init__(domain_size, charge_checking)
        if not 0 <= marked <= domain_size:
            raise ValueError(
                f"marked count must be in [0, {domain_size}], got {marked}"
            )
        self._marked_count = marked
        self._sample_marked = sample_marked_fn
        self._sample_unmarked = sample_unmarked_fn
        self._evaluate = evaluate_fn

    def marked_count(self) -> int:
        return self._marked_count

    def sample_marked(self, rng: RandomSource):
        if self._marked_count == 0:
            raise ValueError("no marked elements to sample")
        return self._sample_marked(rng)

    def sample_unmarked(self, rng: RandomSource):
        if self._sample_unmarked is None:
            return None
        return self._sample_unmarked(rng)

    def evaluate(self, x) -> bool:
        if self._evaluate is None:
            raise NotImplementedError("this oracle has no explicit evaluate()")
        return self._evaluate(x)
