"""Distributed Dürr–Høyer quantum minimum finding.

Section 5.4 notes that QuantumGeneralLE "generalizes straightforwardly to the
minimum spanning tree (MST) problem with the same complexities".  The missing
ingredient is finding the *minimum-weight* outgoing edge instead of an
arbitrary one, which is the classic Dürr–Høyer minimum-finding algorithm: a
sequence of Grover searches for "an element below the current threshold",
with expected total cost O(√N) oracle queries.

Distributed here exactly like Theorem 4.1: every coherent threshold-oracle
call is a Checking invocation of cost (T_C, M_C).
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass

from repro.network.metrics import MetricsRecorder
from repro.quantum.amplitude import attempts_for_confidence, worst_case_iterations
from repro.quantum.grover_dynamics import sample_attempt
from repro.util.fault import FaultInjector
from repro.util.rng import RandomSource

__all__ = ["MinimumOracle", "MinimumResult", "quantum_minimum"]

#: Coherent Checking invocations per Grover iteration (compute + uncompute).
CHECKS_PER_ITERATION = 2

#: Budget multiplier from [DH96]: expected iterations ≤ 22.5·√N.
DURR_HOYER_BUDGET = 22.5


@dataclass
class MinimumOracle:
    """Value structure over a domain of size ``domain_size``.

    ``count_below(v)``: number of domain elements with value strictly below v
    (None means "no threshold yet": the whole domain counts).
    ``sample_below(v, rng)``: a uniform element with value strictly below v.
    ``value_of(x)``: the comparable value of element x.
    ``charge_checking(metrics, calls)``: CONGEST cost of coherent calls.
    """

    domain_size: int
    count_below: Callable[[object], int]
    sample_below: Callable[[object, RandomSource], object]
    value_of: Callable[[object], object]
    charge_checking: Callable[[MetricsRecorder, int], None]


@dataclass
class MinimumResult:
    """Outcome of distributed minimum finding."""

    minimizer: object | None
    value: object | None
    grover_iterations: int
    checking_calls: int

    @property
    def succeeded(self) -> bool:
        return self.minimizer is not None


def quantum_minimum(
    oracle: MinimumOracle,
    alpha: float,
    metrics: MetricsRecorder,
    rng: RandomSource,
    faults: FaultInjector | None = None,
    fault_site: str = "minimum.false_negative",
) -> MinimumResult:
    """Find a minimizer of ``value_of`` over the domain, w.p. ≥ 1 − α.

    Runs the Dürr–Høyer threshold loop with a total Grover-iteration budget
    of ⌈22.5·√N·log(1/α)⌉; the whole budget is charged up front (the network
    assists for the synchronized worst case, as in Theorem 4.1).
    """
    if oracle.domain_size < 1:
        raise ValueError(f"domain must be non-empty, got {oracle.domain_size}")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")

    n = oracle.domain_size
    boost = attempts_for_confidence(alpha)
    budget = math.ceil(DURR_HOYER_BUDGET * math.sqrt(n)) * boost

    # Start from a uniformly random element (threshold = its value).
    current = oracle.sample_below(None, rng)
    current_value = oracle.value_of(current)

    spent = 0
    iteration_cap_base = 1
    while spent < budget:
        below = oracle.count_below(current_value)
        if below == 0:
            break  # current is a true minimizer
        fraction = below / n
        cap = min(
            worst_case_iterations(max(fraction, 1.0 / n)),
            max(1, budget - spent),
        )
        cap = max(cap, iteration_cap_base)
        iterations = rng.uniform_int(0, cap - 1)
        spent += max(iterations, 1)
        outcome = sample_attempt(
            fraction, iterations, rng, faults=faults, fault_site=fault_site
        )
        if outcome.measured_marked:
            current = oracle.sample_below(current_value, rng)
            current_value = oracle.value_of(current)
            iteration_cap_base = 1
        else:
            # BBHT-style cap growth after a miss.
            iteration_cap_base = min(2 * iteration_cap_base, cap + 1)

    # Messages accrue only for iterations the node actually initiated (the
    # Dürr–Høyer loop is adaptive); the synchronized round schedule runs to
    # the full budget regardless.
    checking_calls = max(1, spent) * CHECKS_PER_ITERATION
    oracle.charge_checking(metrics, checking_calls)
    idle = (budget - spent) * CHECKS_PER_ITERATION
    if idle > 0:
        probe = MetricsRecorder()
        oracle.charge_checking(probe, 1)
        if probe.rounds > 0:
            metrics.advance_rounds("minimum.synchronized-idle", idle * probe.rounds)

    return MinimumResult(
        minimizer=current,
        value=current_value,
        grover_iterations=spent,
        checking_calls=checking_calls,
    )
