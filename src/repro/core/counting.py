"""Distributed quantum counting — Theorem 4.2 and Corollary 4.3.

``Count(P)`` runs P-point phase estimation on the Grover iterate of f, with
every controlled iterate implemented through the network's Checking
procedure; the outcome law is sampled exactly (see
:mod:`repro.quantum.phase_estimation`), so Theorem 4.2's guarantee

    |t_f − t̃_f| < (2π/P)·√(t_f·|X|) + (π²/P²)·|X|  w.p. ≥ 8/π²  (P ≥ 4, t ≤ |X|/2)

holds by construction.  ``ApproxCount(c, α)`` instantiates P = ⌈8π/c⌉ on the
*doubled* domain (the proof's trick to lift the t ≤ |X|/2 hypothesis) and
boosts to confidence 1 − α by taking the median of O(log 1/α) runs.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass

from repro.core.procedures import SearchOracle
from repro.network.metrics import MetricsRecorder
from repro.quantum.phase_estimation import sample_counting_estimate
from repro.util.rng import RandomSource

__all__ = ["ApproxCountResult", "CountResult", "approx_count", "quantum_count"]

#: Coherent Checking invocations per controlled-Grover step (compute+uncompute).
CHECKS_PER_STEP = 2

#: Per-run success probability of Count(P) — Theorem 4.2.
COUNT_SUCCESS_FLOOR = 8.0 / math.pi**2


@dataclass
class CountResult:
    """Outcome of one Count(P) invocation."""

    estimate: float
    steps: int
    checking_calls: int


@dataclass
class ApproxCountResult:
    """Outcome of ApproxCount(c, α): median-boosted counting."""

    estimate: float
    runs: int
    steps_per_run: int
    checking_calls: int


def quantum_count(
    oracle: SearchOracle,
    steps: int,
    metrics: MetricsRecorder,
    rng: RandomSource,
    domain_size: int | None = None,
    true_count: int | None = None,
) -> CountResult:
    """Count(P): one phase-estimation run with P = ``steps`` Grover iterates.

    ``domain_size``/``true_count`` override the oracle's values — used by
    :func:`approx_count` for the doubled-domain construction.
    """
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    N = oracle.domain_size if domain_size is None else domain_size
    t = oracle.marked_count() if true_count is None else true_count

    checking_calls = steps * CHECKS_PER_STEP
    oracle.charge_checking(metrics, checking_calls)

    estimate = sample_counting_estimate(t, N, steps, rng)
    return CountResult(estimate=estimate, steps=steps, checking_calls=checking_calls)


def runs_for_confidence(alpha: float) -> int:
    """Median-boosting run count, via the exact binomial tail.

    The median of r runs is bad only if ≥ ⌈r/2⌉ runs individually miss,
    each with probability q = 1 − 8/π² ≈ 0.189; the smallest odd r with
    P[Bin(r, q) ≥ ⌈r/2⌉] ≤ α is returned (Hoeffding would overshoot by ~3×).
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    miss = 1.0 - COUNT_SUCCESS_FLOOR
    r = 1
    while r < 10_000:
        threshold = (r + 1) // 2
        tail = sum(
            math.comb(r, j) * miss**j * (1.0 - miss) ** (r - j)
            for j in range(threshold, r + 1)
        )
        if tail <= alpha:
            return r
        r += 2  # keep r odd so the median is a single run
    return r


def approx_count(
    oracle: SearchOracle,
    accuracy: float,
    alpha: float,
    metrics: MetricsRecorder,
    rng: RandomSource,
) -> ApproxCountResult:
    """ApproxCount(c, α): estimate t_f within c·|X| with probability ≥ 1 − α.

    Corollary 4.3: O(log(1/α)·M_C/c) messages and O(log(1/α)·T_C/c) rounds.
    The doubled-domain function g on [2N] (g ≡ f on [N], 0 elsewhere) has
    t_g = t_f ≤ N = |[2N]|/2, so Theorem 4.2 applies.  The proof's P = 8π/c
    is loose: with P = ⌈4π/c⌉ the Theorem 4.2 radius is
    (c/2)·√(2·t·N) + (c²/8)·2N ≤ (√2/2 + c/4)·c·N < c·|X| for c ≤ 1,
    so the corollary's guarantee survives with half the messages.
    """
    if not 0.0 < accuracy <= 1.0:
        raise ValueError(f"accuracy must be in (0, 1], got {accuracy}")
    steps = max(4, math.ceil(4.0 * math.pi / accuracy))
    runs = runs_for_confidence(alpha)

    doubled_domain = 2 * oracle.domain_size
    estimates = []
    total_checking = 0
    for _ in range(runs):
        result = quantum_count(
            oracle,
            steps,
            metrics,
            rng,
            domain_size=doubled_domain,
            true_count=oracle.marked_count(),
        )
        estimates.append(result.estimate)
        total_checking += result.checking_calls

    return ApproxCountResult(
        estimate=float(statistics.median(estimates)),
        runs=runs,
        steps_per_run=steps,
        checking_calls=total_checking,
    )
