"""QuantumAgreement — Algorithm 4: implicit agreement in complete networks.

Assumes a *global shared coin* (oblivious to the input adversary), as in
[AMP18].  Two phases:

* **estimation** — each candidate runs ApproxCount(ε, 1/(2n²)) to estimate
  the fraction q of 1-inputs within ±ε (quantum counting: Õ(1/ε) messages,
  quadratically better than the classical Θ(1/ε²) sampling bound);
* **agreement loop** — per iteration, candidates draw a shared r ∈ [0, 1];
  a candidate is *undecided* when |q(v) − r| ≤ ε and otherwise decides
  0 (q(v) < r − ε) or 1 (q(v) > r + ε).  Decided candidates inform
  Θ(n^{1/3−γ}) nodes classically; undecided candidates detect the existence
  of an informed node via GroverSearch(n^{−2/3−γ}, 1/(4n³)) — quadratically
  better than classical sampling detection.

All candidate estimates agree within 2ε, so with probability ≥ 1 − 4ε per
iteration the shared r misses the strip and *every* candidate decides the
same value (Lemmas 6.2, 6.5).  Theorem 6.7: Õ(1/ε + n^{1/3−γ} + ε·n^{1/3+γ/2})
expected messages; ε = n^{−1/5}, γ = 2/15 gives Corollary 6.8's Õ(n^{1/5}),
beating the classical Õ(n^{2/5}).
"""

from __future__ import annotations

import math

from repro.core.candidates import draw_candidates
from repro.core.counting import approx_count
from repro.core.grover import distributed_grover_search
from repro.core.parallel import run_in_parallel
from repro.core.procedures import CountOracle, uniform_charge
from repro.core.results import AgreementResult
from repro.network.metrics import MetricsRecorder
from repro.util.fault import FaultInjector
from repro.util.rng import RandomSource, SharedCoin

__all__ = ["default_epsilon", "default_gamma", "quantum_agreement"]

#: Corollary 6.8's optimizing exponents.
EPSILON_EXPONENT = 1.0 / 5.0
DEFAULT_GAMMA = 2.0 / 15.0

#: Checking cost for both oracles (g and h): probe + reply.
CHECKING_MESSAGES = 2
CHECKING_ROUNDS = 2


def default_epsilon(n: int) -> float:
    """ε = n^{−1/5}, clamped to the paper's admissible range [Θ(1/n), 1/20]."""
    return float(min(1.0 / 20.0, max(1.0 / n, n**-EPSILON_EXPONENT)))


def default_gamma() -> float:
    return DEFAULT_GAMMA


def quantum_agreement(
    inputs: list[int],
    rng: RandomSource,
    shared_coin: SharedCoin | None = None,
    epsilon: float | None = None,
    gamma: float | None = None,
    estimation_alpha: float | None = None,
    detection_alpha: float | None = None,
    faults: FaultInjector | None = None,
) -> AgreementResult:
    """Run QuantumAgreement on K_n with the given 0/1 ``inputs``.

    ``shared_coin`` defaults to a fresh coin spawned from ``rng`` — in the
    model it is a resource all nodes share and the adversary cannot see.
    """
    n = len(inputs)
    if n < 2:
        raise ValueError(f"need n >= 2 nodes, got {n}")
    if any(b not in (0, 1) for b in inputs):
        raise ValueError("inputs must be 0/1")
    if epsilon is None:
        epsilon = default_epsilon(n)
    if not 0.0 < epsilon <= 0.05 + 1e-12:
        raise ValueError(f"epsilon must be in (0, 1/20], got {epsilon}")
    if gamma is None:
        gamma = default_gamma()
    if not 0.0 <= gamma <= 1.0 / 3.0:
        raise ValueError(f"gamma must be in [0, 1/3], got {gamma}")
    if estimation_alpha is None:
        estimation_alpha = 1.0 / (2.0 * n**2)
    if detection_alpha is None:
        detection_alpha = 1.0 / (4.0 * n**3)
    if shared_coin is None:
        shared_coin = SharedCoin(rng.spawn())

    metrics = MetricsRecorder()
    ones = sum(inputs)
    input_map = {v: inputs[v] for v in range(n)}
    decisions: dict[int, int | None] = {v: None for v in range(n)}

    # -- candidates ---------------------------------------------------------------
    draw = draw_candidates(n, rng, faults=faults)
    metrics.advance_rounds("agreement.candidate-selection", 1)
    if not draw.candidates:
        return AgreementResult(
            n=n, inputs=input_map, decisions=decisions, metrics=metrics,
            meta={"candidates": 0, "epsilon": epsilon, "gamma": gamma},
        )

    # -- estimation phase ------------------------------------------------------------
    ones_oracle = CountOracle(
        domain_size=n,
        marked=ones,
        charge_checking=uniform_charge(
            CHECKING_MESSAGES, CHECKING_ROUNDS, "agreement.counting.checking"
        ),
        sample_marked_fn=lambda r: None,
    )

    def estimation_task(scratch: MetricsRecorder) -> float:
        result = approx_count(ones_oracle, epsilon, estimation_alpha, scratch, rng)
        return min(1.0, max(0.0, result.estimate / n))

    estimates = run_in_parallel(
        metrics,
        "agreement.estimation",
        [estimation_task for _ in draw.candidates],
    )
    q_estimate = dict(zip(draw.candidates, estimates))

    # -- agreement loop ----------------------------------------------------------------
    # ℓ = O(log n): (4ε)^ℓ ≤ 1/(4n) with ε ≤ 1/20 (Lemma 6.6).
    iterations = max(1, math.ceil(math.log(4.0 * n) / math.log(5.0)))
    inform_width = max(1, round(n ** (1.0 / 3.0 - gamma)))
    # ε₂ = n^{−2/3−γ}; the guarantee is ε_f ≥ inform_width/n, so cap at that
    # in case integer rounding pulled inform_width slightly below n^{1/3−γ}.
    detection_epsilon = min(n ** (-2.0 / 3.0 - gamma), inform_width / n)

    remaining = list(draw.candidates)
    iterations_used = 0
    for _ in range(iterations):
        if not remaining:
            break
        iterations_used += 1
        r = shared_coin.next_uniform()

        decided_now: dict[int, int] = {}
        undecided_now: list[int] = []
        for v in remaining:
            estimate = q_estimate[v]
            if estimate < r - epsilon:
                decided_now[v] = 0
            elif estimate > r + epsilon:
                decided_now[v] = 1
            else:
                undecided_now.append(v)

        # Classical part: decided candidates inform Θ(n^{1/3−γ}) neighbours.
        # ``informed`` maps each informed node to the value it received (the
        # last writer wins; under Est all writers agree — Lemma 6.5).
        informed: dict[int, int] = {}
        for v, value in decided_now.items():
            for offset in range(1, inform_width + 1):
                informed[(v + offset) % n] = value
        metrics.charge(
            "agreement.inform",
            messages=len(decided_now) * inform_width,
            rounds=1,
        )

        # Quantum part: undecided candidates Grover-search for an informed node.
        informed_list = sorted(informed)

        def detection_task(scratch: MetricsRecorder):
            oracle = CountOracle(
                domain_size=n,
                marked=len(informed_list),
                charge_checking=uniform_charge(
                    CHECKING_MESSAGES, CHECKING_ROUNDS, "agreement.detect.checking"
                ),
                sample_marked_fn=lambda rr: informed_list[
                    rr.uniform_int(0, len(informed_list) - 1)
                ],
            )
            return distributed_grover_search(
                oracle, detection_epsilon, detection_alpha, scratch, rng,
                faults=faults, fault_site="agreement.detect.false_negative",
            )

        detections = run_in_parallel(
            metrics,
            "agreement.detection",
            [detection_task for _ in undecided_now],
        )

        # Terminations.
        next_remaining: list[int] = []
        for v, value in decided_now.items():
            decisions[v] = value  # decided candidates terminate with their value
        for v, detection in zip(undecided_now, detections):
            if detection.succeeded:
                # v learns the value held by the informed node it found.
                decisions[v] = informed[detection.found]
            else:
                next_remaining.append(v)
        remaining = next_remaining

    return AgreementResult(
        n=n,
        inputs=input_map,
        decisions=decisions,
        metrics=metrics,
        meta={
            "candidates": draw.count,
            "epsilon": epsilon,
            "gamma": gamma,
            "iterations": iterations_used,
            "iteration_budget": iterations,
            "undecided_at_end": len(remaining),
            "true_fraction": ones / n,
        },
    )
