"""Quantum implicit agreement (Section 6)."""

from repro.core.agreement.quantum_agreement import (
    default_epsilon,
    default_gamma,
    quantum_agreement,
)

__all__ = ["default_epsilon", "default_gamma", "quantum_agreement"]
