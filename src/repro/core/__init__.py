"""The paper's contribution: distributed quantum subroutines and protocols."""

from repro.core.candidates import (
    CandidateDraw,
    candidate_probability,
    draw_candidates,
    rank_space,
)
from repro.core.counting import (
    ApproxCountResult,
    CountResult,
    approx_count,
    quantum_count,
)
from repro.core.grover import GroverSearchResult, distributed_grover_search
from repro.core.minimum import MinimumOracle, MinimumResult, quantum_minimum
from repro.core.parallel import run_in_parallel
from repro.core.procedures import CountOracle, SearchOracle, SetOracle, uniform_charge
from repro.core.results import AgreementResult, LeaderElectionResult
from repro.core.walk_search import WalkSearchResult, WalkSearchSpec, walk_search

__all__ = [
    "AgreementResult",
    "ApproxCountResult",
    "CandidateDraw",
    "CountOracle",
    "CountResult",
    "GroverSearchResult",
    "LeaderElectionResult",
    "MinimumOracle",
    "MinimumResult",
    "SearchOracle",
    "SetOracle",
    "WalkSearchResult",
    "WalkSearchSpec",
    "approx_count",
    "candidate_probability",
    "distributed_grover_search",
    "draw_candidates",
    "quantum_count",
    "quantum_minimum",
    "rank_space",
    "run_in_parallel",
    "uniform_charge",
    "walk_search",
]
