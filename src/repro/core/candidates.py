"""Candidate sampling and rank generation — the paper's Fact C.2 machinery.

Every protocol starts the same way: each node independently becomes a
*candidate* with probability p = 12·ln(n)/n and draws a uniform *rank* from
{1, …, n⁴}.  Fact C.2: with probability ≥ 1 − 1/n², (i) the number of
candidates is in [1, 24·ln n] and (ii) all ranks are distinct.

The fault injector can force the rare failure modes (zero candidates, rank
ties) so tests can exercise protocols beyond the w.h.p. happy path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.util.fault import FaultInjector
from repro.util.rng import RandomSource

__all__ = ["CandidateDraw", "candidate_probability", "draw_candidates", "rank_space"]


def candidate_probability(n: int) -> float:
    """p = min(1, 12·ln(n)/n)."""
    if n < 2:
        raise ValueError(f"need n >= 2 nodes, got {n}")
    return min(1.0, 12.0 * math.log(n) / n)


def rank_space(n: int) -> int:
    """Size of the rank universe {1, …, n⁴}."""
    return n**4


@dataclass
class CandidateDraw:
    """The result of the classical candidate-selection phase."""

    n: int
    candidates: list[int]
    ranks: dict[int, int] = field(repr=False)

    @property
    def count(self) -> int:
        return len(self.candidates)

    @property
    def has_unique_ranks(self) -> bool:
        return len(set(self.ranks.values())) == len(self.ranks)

    def highest_ranked(self) -> int:
        """Candidate with the highest rank (ties broken by node id — the
        simulator's bookkeeping only; protocols never rely on it)."""
        if not self.candidates:
            raise ValueError("no candidates were drawn")
        return max(self.candidates, key=lambda v: (self.ranks[v], -v))

    def within_fact_c2(self) -> bool:
        """Whether this draw satisfies both clauses of Fact C.2."""
        return (
            1 <= self.count <= max(1, math.ceil(24 * math.log(self.n)))
            and self.has_unique_ranks
        )


def draw_candidates(
    n: int,
    rng: RandomSource,
    probability: float | None = None,
    faults: FaultInjector | None = None,
) -> CandidateDraw:
    """Sample the candidate set and ranks for an n-node network.

    Fault sites:

    * ``candidates.force_empty`` — no node volunteers (protocols must not
      elect anyone; the paper accepts this 1/n²-probability failure);
    * ``candidates.force_tie`` — the two top candidates share a rank.
    """
    if probability is None:
        probability = candidate_probability(n)
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {probability}")

    draws = rng.generator.random(n) < probability
    candidates = [int(v) for v in np.nonzero(draws)[0]]

    if faults is not None and faults.should_fail("candidates.force_empty"):
        candidates = []

    space = rank_space(n)
    ranks = {v: rng.uniform_int(1, space) for v in candidates}

    if (
        faults is not None
        and len(candidates) >= 2
        and faults.should_fail("candidates.force_tie")
    ):
        ordered = sorted(candidates, key=lambda v: ranks[v])
        ranks[ordered[-2]] = ranks[ordered[-1]]

    return CandidateDraw(n=n, candidates=candidates, ranks=ranks)
