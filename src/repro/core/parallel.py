"""Round accounting for node-parallel stages.

Several protocols run the same quantum subroutine at many nodes
simultaneously — e.g. every candidate of QuantumLE runs its own Grover search
over edges disjoint from every other candidate's (proof of Theorem 5.2).
Such a stage costs the *sum* of the participants' messages but only the
*maximum* of their round counts.  ``run_in_parallel`` executes each
participant against a scratch recorder and folds the costs accordingly.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TypeVar

from repro.network.metrics import MetricsRecorder

__all__ = ["run_in_parallel"]

T = TypeVar("T")


def run_in_parallel(
    metrics: MetricsRecorder,
    label: str,
    tasks: list[Callable[[MetricsRecorder], T]],
) -> list[T]:
    """Run per-node tasks that are simultaneous in the synchronized schedule.

    Messages from every task are charged (summed, keeping the tasks' own
    ledger labels); rounds advance once, by the worst-case task duration.
    """
    results: list[T] = []
    longest = 0
    for task in tasks:
        scratch = MetricsRecorder()
        results.append(task(scratch))
        for entry in scratch.ledger.entries:
            metrics.charge_messages(entry.label, entry.messages)
        longest = max(longest, scratch.rounds)
    if longest:
        metrics.advance_rounds(label, longest)
    return results
