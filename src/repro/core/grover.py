"""Distributed Grover search — Theorem 4.1.

``GroverSearch(ε, α)``: a node u searches X for some x with f(x) = 1,
delegating each coherent evaluation of f to the network via a Checking
procedure of cost (T_C, M_C).  The theorem's contract:

1. runs in O(log(1/α) · T_C/√ε) rounds with O(log(1/α) · M_C/√ε) messages;
2. returns a marked element with probability ≥ 1 − α whenever ε_f ≥ ε, and
   never returns a false positive (the measured element is verified with one
   classical Checking call).

The implementation follows the proof's structure faithfully:

* ⌈log_{4/3}(1/α)⌉ *attempts*, each a BBHT run with a uniformly random
  iteration count j ∈ [0, m), m = ⌈1/√ε⌉ — per-attempt success ≥ 1/4 when
  ε_f ≥ ε ([BBHT98, Lemma 2]);
* each Grover iteration applies S_f = Checking⁻¹ · PF · Checking — two
  coherent Checking invocations;
* **rounds** are charged for the full worst-case schedule: the network
  stays synchronized to the most pessimistic iteration count ("the network
  will also assume the worst possible value" — Definition 4.1), so the
  round count is deterministic given the parameters;
* **messages** are charged only while u actually initiates Checking: once u
  has a verified marked element it stops querying, and "the network
  transformation is the identity" (proof of Theorem 4.1) — an identity
  round carries no messages.  The paper's O(log(1/α)·M_C/√ε) is the
  worst-case envelope, attained exactly when no marked element exists.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.procedures import SearchOracle
from repro.network.metrics import MetricsRecorder
from repro.quantum.amplitude import attempts_for_confidence, worst_case_iterations
from repro.quantum.grover_dynamics import sample_attempt
from repro.util.fault import FaultInjector
from repro.util.rng import RandomSource

__all__ = ["GroverSearchResult", "distributed_grover_search"]

#: Coherent Checking invocations per Grover iteration (compute + uncompute).
CHECKS_PER_ITERATION = 2


@dataclass
class GroverSearchResult:
    """Outcome of one distributed Grover search."""

    found: object | None  # a verified marked element, or None
    attempts: int
    iterations_charged: int
    checking_calls: int

    @property
    def succeeded(self) -> bool:
        return self.found is not None


def distributed_grover_search(
    oracle: SearchOracle,
    epsilon: float,
    alpha: float,
    metrics: MetricsRecorder,
    rng: RandomSource,
    faults: FaultInjector | None = None,
    fault_site: str = "grover.false_negative",
) -> GroverSearchResult:
    """Run GroverSearch(ε, α) for the node owning ``oracle``.

    ``epsilon`` is the promise parameter: correctness (probability ≥ 1 − α of
    finding a marked element) is guaranteed only when the true marked
    fraction ε_f is ≥ ε; when ε_f = 0 the result is always "none found".
    """
    if not 0.0 < epsilon <= 1.0:
        raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")

    iteration_cap = worst_case_iterations(epsilon)
    attempts = attempts_for_confidence(alpha)
    marked_fraction = oracle.marked_fraction()

    # Probe the per-call round cost so the skipped (identity) part of the
    # schedule can still advance rounds deterministically.
    probe = MetricsRecorder()
    oracle.charge_checking(probe, 1)
    rounds_per_call = probe.rounds

    schedule_calls = attempts * (iteration_cap * CHECKS_PER_ITERATION + 1)
    charged_calls = 0
    iterations_run = 0

    found = None
    for _ in range(attempts):
        iterations = rng.uniform_int(0, iteration_cap - 1)
        if found is None:
            # u initiates this attempt: j iterations of S_f (two coherent
            # Checking calls each) plus one classical verification.
            calls = iterations * CHECKS_PER_ITERATION + 1
            oracle.charge_checking(metrics, calls)
            charged_calls += calls
            iterations_run += iterations
            outcome = sample_attempt(
                marked_fraction, iterations, rng, faults=faults, fault_site=fault_site
            )
            if outcome.measured_marked and oracle.marked_count() > 0:
                found = oracle.sample_marked(rng)
        # After a verified success u goes silent; the network's remaining
        # schedule is the identity transformation (no messages), but the
        # synchronized rounds still elapse.

    skipped_calls = schedule_calls - charged_calls
    if skipped_calls > 0 and rounds_per_call > 0:
        metrics.advance_rounds("grover.synchronized-idle", skipped_calls * rounds_per_call)

    return GroverSearchResult(
        found=found,
        attempts=attempts,
        iterations_charged=iterations_run,
        checking_calls=charged_calls,
    )
