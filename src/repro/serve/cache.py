"""Tiered answer cache for ``repro serve``.

Tier 1 is an in-process LRU of fully assembled
:class:`~repro.runtime.runner.ScenarioRun` objects keyed on the exact
serialized scenario (``scenario_json`` — the same canonical text fabric
manifests compare).  Tier 2 is the content-addressed on-disk
:class:`~repro.runtime.store.ResultStore`: a scenario whose every grid
position has a stored trial set is assembled without running anything.
Misses in both tiers are *cold* — the caller queues a fabric job.

Tier naming is load-bearing for clients: a ``POST /v1/runs`` answer
carries ``"tier": "memory"`` or ``"tier": "store"`` so the CI smoke leg
(and any operator) can tell "served from RAM" from "assembled from
disk" from "computed fresh".  A completed job deliberately does **not**
pre-warm tier 1 — the first re-request after a cold computation
exercises the store-assembly path end to end, and only then does the
run earn its memory slot.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

from repro.fabric.serialize import scenario_json
from repro.runtime.runner import ScenarioRun
from repro.runtime.scenario import Scenario
from repro.runtime.store import ResultStore
from repro.telemetry import metrics_registry

__all__ = ["RunCache", "scenario_key"]


def scenario_key(scenario: Scenario) -> str:
    """Digest of the canonical serialized scenario — cache and job id."""
    return hashlib.sha256(scenario_json(scenario).encode()).hexdigest()[:16]


class RunCache:
    """Thread-safe two-tier lookup of assembled scenario runs."""

    def __init__(self, store: ResultStore, memory_entries: int = 128):
        if memory_entries < 1:
            raise ValueError(
                f"memory_entries must be >= 1, got {memory_entries}"
            )
        self.store = store
        self.memory_entries = memory_entries
        self._runs: OrderedDict[str, ScenarioRun] = OrderedDict()
        self._lock = threading.Lock()

    def lookup(self, scenario: Scenario) -> tuple[str, ScenarioRun] | None:
        """``(tier, run)`` when the scenario is hot, None when cold.

        ``tier`` is ``"memory"`` (tier-1 LRU hit) or ``"store"`` (every
        grid position was in the result store; the assembled run is
        promoted into tier 1 for next time).
        """
        key = scenario_key(scenario)
        registry = metrics_registry()
        with self._lock:
            run = self._runs.get(key)
            if run is not None:
                self._runs.move_to_end(key)
                registry.counter("repro_serve_hits_memory_total").inc()
                return "memory", run
        trial_sets = []
        for position, n in enumerate(scenario.sizes):
            trial_set = self.store.load(scenario, n, position)
            if trial_set is None:
                registry.counter("repro_serve_misses_total").inc()
                return None
            trial_sets.append(trial_set)
        run = ScenarioRun(
            scenario=scenario,
            trial_sets=tuple(trial_sets),
            meta={"executor": "serve-cache", "tier": "store"},
        )
        self.insert(scenario, run)
        registry.counter("repro_serve_hits_store_total").inc()
        return "store", run

    def insert(self, scenario: Scenario, run: ScenarioRun) -> None:
        key = scenario_key(scenario)
        with self._lock:
            self._runs[key] = run
            self._runs.move_to_end(key)
            while len(self._runs) > self.memory_entries:
                self._runs.popitem(last=False)

    def stats(self) -> dict:
        with self._lock:
            memory_runs = len(self._runs)
        return {
            "memory_runs": memory_runs,
            "memory_runs_cap": self.memory_entries,
            "store": self.store.stats(),
        }
