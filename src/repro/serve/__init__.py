"""``repro serve``: a long-running scenario service with tiered caching.

The serving layer turns the reproduction into an always-on query
engine: hot scenario requests are answered synchronously from a
two-tier cache (in-process LRU of assembled runs over the
content-addressed on-disk :class:`~repro.runtime.store.ResultStore`),
cold ones become single-flighted fabric jobs whose worker fleets the
server owns and supervises.  Everything is stdlib —
``http.server.ThreadingHTTPServer`` threads over the existing runtime,
fabric, and telemetry layers.

Split by concern:

* :mod:`repro.serve.api` — request validation and JSON payload shapes
  (HTTP-free; shared with the CLI ``--json`` dumps);
* :mod:`repro.serve.cache` — the tiered :class:`RunCache` and the
  canonical scenario digest that doubles as the job id;
* :mod:`repro.serve.jobs` — the single-flight :class:`JobTable` driving
  :func:`~repro.fabric.run_fabric_sweep` per cold scenario;
* :mod:`repro.serve.app` — routes, the threaded server, and the
  SIGTERM drain.
"""

from repro.serve.api import (
    ApiError,
    job_payload,
    parse_run_request,
    protocols_payload,
    run_payload,
    scenario_entry,
    scenarios_payload,
)
from repro.serve.app import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    ReproServer,
    ServeApp,
    build_server,
    serve_forever,
)
from repro.serve.cache import RunCache, scenario_key
from repro.serve.jobs import JobTable, ServeJob

__all__ = [
    "ApiError",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "JobTable",
    "ReproServer",
    "RunCache",
    "ServeApp",
    "ServeJob",
    "build_server",
    "job_payload",
    "parse_run_request",
    "protocols_payload",
    "run_payload",
    "scenario_entry",
    "scenario_key",
    "scenarios_payload",
    "serve_forever",
]
