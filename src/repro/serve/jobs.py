"""Single-flight job table: cold requests become fabric jobs, exactly once.

A job's identity **is** its scenario: the id is the digest of the
canonical serialized scenario (:func:`repro.serve.cache.scenario_key`),
so N concurrent identical ``POST /v1/runs`` requests collapse onto one
:class:`ServeJob` structurally — the first submit creates and starts the
job, every other request *attaches* to it (counted in
``repro_serve_singleflight_attached_total``) and polls the same id.  The
dedup needs no request-level bookkeeping because identical scenarios
cannot have distinct ids.

Each job is driven by :func:`repro.fabric.run_fabric_sweep`, which owns
the worker fleet for that job: it spawns ``workers`` fork-context
processes, respawns the fleet when every worker has died (within its
crash budget), and collects the result bit-identical to ``jobs=1``.
The table bounds concurrency with a thread pool of ``max_jobs``
supervisor threads — at most ``max_jobs * workers`` worker processes
exist at once, and further cold requests queue.

Draining is cooperative: :meth:`JobTable.drain` stops accepting work
and blocks until in-flight sweeps finish; their workers exit through
the normal ``all_done`` path, releasing leases on the way out.
"""

from __future__ import annotations

import logging
import pathlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.fabric import DEFAULT_LEASE_TTL, FabricQueue, run_fabric_sweep
from repro.runtime.runner import ScenarioRun
from repro.runtime.scenario import Scenario
from repro.runtime.store import ResultStore
from repro.serve.cache import scenario_key
from repro.telemetry import metrics_registry

logger = logging.getLogger(__name__)

__all__ = ["JobTable", "ServeJob"]

#: Terminal job states.
_FINISHED = ("done", "failed")


class ServeJob:
    """One cold computation: a scenario bound to a fabric job directory."""

    def __init__(self, job_id: str, scenario: Scenario, fabric_dir: pathlib.Path):
        self.id = job_id
        self.scenario = scenario
        self.fabric_dir = fabric_dir
        self.state = "queued"
        self.created_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.error: str | None = None
        self.run: ScenarioRun | None = None
        #: Requests that deduped onto this job after it was created.
        self.attached = 0
        self.cond = threading.Condition()

    @property
    def finished(self) -> bool:
        return self.state in _FINISHED


class JobTable:
    """Owns cold jobs: single-flight dedup, bounded execution, progress."""

    def __init__(
        self,
        store: ResultStore,
        fabric_root,
        workers: int = 1,
        max_jobs: int = 2,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        poll: float = 0.05,
        job_timeout: float | None = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_jobs < 1:
            raise ValueError(f"max_jobs must be >= 1, got {max_jobs}")
        self.store = store
        self.fabric_root = pathlib.Path(fabric_root)
        self.workers = workers
        self.lease_ttl = lease_ttl
        self.poll = poll
        self.job_timeout = job_timeout
        self._jobs: dict[str, ServeJob] = {}
        self._lock = threading.Lock()
        self._draining = False
        self._pool = ThreadPoolExecutor(
            max_workers=max_jobs, thread_name_prefix="serve-job"
        )

    # -- submission ------------------------------------------------------------

    def submit(self, scenario: Scenario) -> tuple[ServeJob, bool]:
        """``(job, created)`` — created is False when the request attached
        to an identical job already queued or running (single-flight)."""
        key = scenario_key(scenario)
        registry = metrics_registry()
        with self._lock:
            if self._draining:
                raise RuntimeError("job table is draining")
            job = self._jobs.get(key)
            if job is not None and not job.finished:
                job.attached += 1
                registry.counter(
                    "repro_serve_singleflight_attached_total"
                ).inc()
                return job, False
            # A finished (done or failed) job is replaced: "done" should
            # normally be answered by the cache tiers before reaching
            # here, so a re-submit means the store entries were evicted
            # or the last attempt failed — either way, recompute.
            job = ServeJob(key, scenario, self.fabric_root / key)
            self._jobs[key] = job
        registry.counter("repro_serve_jobs_total").inc()
        self._pool.submit(self._execute, job)
        return job, True

    def get(self, job_id: str) -> ServeJob | None:
        with self._lock:
            return self._jobs.get(job_id)

    def list(self) -> list[ServeJob]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.created_at)

    # -- execution -------------------------------------------------------------

    def _execute(self, job: ServeJob) -> None:
        with job.cond:
            job.state = "running"
            job.started_at = time.time()
            job.cond.notify_all()
        try:
            queue = FabricQueue(job.fabric_dir)
            if queue.manifest_path.exists():
                # Resuming an old job directory: done markers may point
                # at store entries the LRW cap has since evicted.
                dropped = queue.revalidate_done()
                if dropped:
                    logger.info(
                        "job %s: %d stale done markers dropped", job.id, dropped
                    )
            run = run_fabric_sweep(
                job.scenario,
                job.fabric_dir,
                workers=self.workers,
                store=self.store,
                lease_ttl=self.lease_ttl,
                poll=self.poll,
                timeout=self.job_timeout,
                meta={"serve_job": job.id},
            )
            with job.cond:
                job.run = run
                job.state = "done"
                job.finished_at = time.time()
                job.cond.notify_all()
            logger.info("job %s done (%s)", job.id, job.scenario.name)
        except Exception as exc:  # noqa: BLE001 — becomes an API payload
            logger.exception("job %s failed", job.id)
            metrics_registry().counter("repro_serve_jobs_failed_total").inc()
            with job.cond:
                job.error = f"{type(exc).__name__}: {exc}"
                job.state = "failed"
                job.finished_at = time.time()
                job.cond.notify_all()

    # -- observation -----------------------------------------------------------

    def progress(self, job: ServeJob) -> dict:
        """The job's fabric progress snapshot plus its table state."""
        snapshot = FabricQueue(job.fabric_dir).progress()
        snapshot["state"] = job.state
        return snapshot

    def wait(self, job: ServeJob, timeout: float | None = None) -> bool:
        """Block until the job finishes; True iff it finished in time."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with job.cond:
            while not job.finished:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                job.cond.wait(remaining if remaining is not None else 1.0)
        return True

    def stream(self, job: ServeJob, interval: float = 0.5):
        """Yield progress snapshots until the job reaches a terminal state.

        Always yields at least one snapshot (the current state), and
        always ends with a terminal one — a subscriber that connects
        after completion still sees the final state.
        """
        while True:
            snapshot = self.progress(job)
            yield snapshot
            if snapshot["state"] in _FINISHED:
                return
            with job.cond:
                if not job.finished:
                    job.cond.wait(interval)

    # -- lifecycle -------------------------------------------------------------

    def drain(self) -> None:
        """Refuse new jobs, finish queued + running ones, stop the pool."""
        with self._lock:
            self._draining = True
        self._pool.shutdown(wait=True)
