"""The ``repro serve`` HTTP front end: stdlib-threaded, JSON in/out.

One :class:`ServeApp` owns the tiered :class:`~repro.serve.cache.RunCache`
and the single-flight :class:`~repro.serve.jobs.JobTable`; a
:class:`ThreadingHTTPServer` dispatches each request on its own thread
into the app.  Routes:

* ``GET  /healthz`` — liveness (reports draining)
* ``GET  /metrics`` — Prometheus text from the process registry
* ``GET  /v1/protocols`` — the ``repro protocols --json`` dump
* ``GET  /v1/scenarios`` — the ``repro scenarios --json`` dump
* ``POST /v1/runs`` — hot answers synchronously (``tier`` is
  ``memory``/``store``), cold enqueues a fabric job → 202 + job id
* ``GET  /v1/runs`` — job listing (table + on-disk fabric jobs)
* ``GET  /v1/runs/<id>`` — poll one job (fabric-derived progress)
* ``GET  /v1/runs/<id>/events`` — SSE-shaped progress stream

Graceful drain: SIGTERM/SIGINT flips ``draining`` (new cold requests
get 503, hot answers keep flowing), stops the accept loop, then blocks
until in-flight fabric jobs finish — their workers exit through the
normal path and release leases on the way out.
"""

from __future__ import annotations

import json
import logging
import re
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter
from urllib.parse import urlsplit

from repro.fabric import DEFAULT_LEASE_TTL, list_jobs
from repro.runtime.store import ResultStore
from repro.serve.api import (
    ApiError,
    job_payload,
    parse_run_request,
    protocols_payload,
    run_payload,
    scenarios_payload,
)
from repro.serve.cache import RunCache
from repro.serve.jobs import JobTable
from repro.telemetry import current_tracer, metrics_registry

logger = logging.getLogger(__name__)

__all__ = ["DEFAULT_HOST", "DEFAULT_PORT", "ServeApp", "build_server", "serve_forever"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8765

_RUN_ROUTE = re.compile(r"/v1/runs/([0-9a-f]{8,64})")
_EVENTS_ROUTE = re.compile(r"/v1/runs/([0-9a-f]{8,64})/events")


class ServeApp:
    """Route handlers + shared state, HTTP-free (tests drive it directly)."""

    def __init__(
        self,
        fabric_root,
        store: ResultStore | None = None,
        workers: int = 1,
        max_jobs: int = 2,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        poll: float = 0.05,
        run_memory: int = 128,
        stream_interval: float = 0.5,
    ):
        # A serving store defaults the memory tier ON — that is the
        # whole point of a long-lived process in front of the disk.
        self.store = (
            store if store is not None else ResultStore(memory_entries=256)
        )
        self.cache = RunCache(self.store, memory_entries=run_memory)
        self.jobs = JobTable(
            store=self.store,
            fabric_root=fabric_root,
            workers=workers,
            max_jobs=max_jobs,
            lease_ttl=lease_ttl,
            poll=poll,
        )
        self.stream_interval = stream_interval
        self.started_at = time.time()
        self.draining = False
        self._requests = 0
        self._requests_lock = threading.Lock()

    # -- request accounting ----------------------------------------------------

    def count_request(self) -> int:
        with self._requests_lock:
            self._requests += 1
            return self._requests

    @property
    def requests(self) -> int:
        with self._requests_lock:
            return self._requests

    # -- GET endpoints ---------------------------------------------------------

    def health(self) -> tuple[int, dict]:
        jobs = self.jobs.list()
        return 200, {
            "status": "draining" if self.draining else "ok",
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "requests": self.requests,
            "jobs": {
                "total": len(jobs),
                "running": sum(1 for j in jobs if j.state == "running"),
            },
            "cache": self.cache.stats(),
        }

    def metrics_text(self) -> str:
        return metrics_registry().to_prometheus()

    def protocols(self) -> tuple[int, dict]:
        return 200, {"protocols": protocols_payload()}

    def scenarios(self) -> tuple[int, dict]:
        return 200, {"scenarios": scenarios_payload()}

    def jobs_index(self) -> tuple[int, dict]:
        return 200, {
            "jobs": [
                job_payload(job, self.jobs.progress(job))
                for job in self.jobs.list()
            ],
            "fabric_jobs": list_jobs(self.jobs.fabric_root),
        }

    def run_status(self, job_id: str) -> tuple[int, dict]:
        job = self.jobs.get(job_id)
        if job is None:
            raise ApiError(
                "unknown_job", f"no job {job_id!r} in this server", status=404
            )
        payload = job_payload(job, self.jobs.progress(job))
        if job.state == "done" and job.run is not None:
            payload["tier"] = "computed"
            payload["run"] = run_payload(job.run)
        return 200, payload

    # -- POST /v1/runs ---------------------------------------------------------

    def submit_run(self, body: bytes) -> tuple[int, dict]:
        scenario = parse_run_request(body)
        hit = self.cache.lookup(scenario)
        if hit is not None:
            tier, run = hit
            return 200, {
                "status": "done",
                "tier": tier,
                "job": None,
                "run": run_payload(run),
            }
        if self.draining:
            raise ApiError(
                "draining",
                "server is draining: hot answers only, no new computations",
                status=503,
            )
        job, created = self.jobs.submit(scenario)
        metrics_registry().counter("repro_serve_cold_total").inc()
        return 202, {
            "status": job.state,
            "tier": "cold",
            "job": job.id,
            "created": created,
            "location": f"/v1/runs/{job.id}",
        }


class _ServeHandler(BaseHTTPRequestHandler):
    """Thin HTTP shim over :class:`ServeApp` routes."""

    server_version = "repro-serve/1"
    # HTTP/1.0: every response closes its connection, which is also what
    # ends the SSE stream — no chunked-encoding bookkeeping needed.
    protocol_version = "HTTP/1.0"

    @property
    def app(self) -> ServeApp:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.debug("%s %s", self.address_string(), format % args)

    # -- plumbing --------------------------------------------------------------

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True, default=str).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        started = perf_counter()
        path = urlsplit(self.path).path.rstrip("/") or "/"
        status = 500
        registry = metrics_registry()
        try:
            if method == "GET" and path == "/metrics":
                text = self.app.metrics_text().encode()
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4"
                )
                self.send_header("Content-Length", str(len(text)))
                self.end_headers()
                self.wfile.write(text)
                status = 200
            elif method == "GET" and _EVENTS_ROUTE.fullmatch(path):
                status = self._stream_events(
                    _EVENTS_ROUTE.fullmatch(path).group(1)
                )
            else:
                status, payload = self._route(method, path)
                self._send_json(status, payload)
        except ApiError as error:
            status = error.status
            registry.counter("repro_serve_errors_total").inc()
            self._send_json(status, error.payload())
        except (BrokenPipeError, ConnectionResetError):
            status = 499  # client went away mid-write; nothing to send
        except Exception as exc:  # noqa: BLE001 — must answer, not die
            logger.exception("unhandled error on %s %s", method, path)
            status = 500
            registry.counter("repro_serve_errors_total").inc()
            try:
                self._send_json(
                    500,
                    {
                        "error": {
                            "code": "internal",
                            "message": f"{type(exc).__name__}: {exc}",
                        }
                    },
                )
            except OSError:
                pass
        finally:
            self.app.count_request()
            registry.counter("repro_serve_requests_total").inc()
            registry.histogram("repro_serve_request_seconds").observe(
                perf_counter() - started
            )
            tracer = current_tracer()
            if tracer.enabled:
                tracer.emit(
                    "serve_request", method=method, path=path, status=status
                )

    def _route(self, method: str, path: str) -> tuple[int, dict]:
        app = self.app
        if method == "GET":
            if path == "/healthz":
                return app.health()
            if path == "/v1/protocols":
                return app.protocols()
            if path == "/v1/scenarios":
                return app.scenarios()
            if path == "/v1/runs":
                return app.jobs_index()
            match = _RUN_ROUTE.fullmatch(path)
            if match:
                return app.run_status(match.group(1))
            raise ApiError("not_found", f"no route for GET {path}", status=404)
        if method == "POST":
            if path == "/v1/runs":
                length = int(self.headers.get("Content-Length") or 0)
                body = self.rfile.read(length) if length > 0 else b""
                return app.submit_run(body)
            raise ApiError("not_found", f"no route for POST {path}", status=404)
        raise ApiError(
            "method_not_allowed", f"{method} not supported", status=405
        )

    def _stream_events(self, job_id: str) -> int:
        job = self.app.jobs.get(job_id)
        if job is None:
            raise ApiError(
                "unknown_job", f"no job {job_id!r} in this server", status=404
            )
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        for snapshot in self.app.jobs.stream(job, self.app.stream_interval):
            line = json.dumps(snapshot, sort_keys=True, default=str)
            self.wfile.write(f"data: {line}\n\n".encode())
            self.wfile.flush()
        return 200


class ReproServer(ThreadingHTTPServer):
    """One HTTP thread per request; requests share the app's locks."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], app: ServeApp):
        super().__init__(address, _ServeHandler)
        self.app = app


def build_server(
    app: ServeApp, host: str = DEFAULT_HOST, port: int = DEFAULT_PORT
) -> ReproServer:
    """Bind (port 0 picks a free one — ``server_address`` has the real)."""
    return ReproServer((host, port), app)


def serve_forever(
    app: ServeApp,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    install_signals: bool = True,
    ready_callback=None,
) -> None:
    """Run until SIGTERM/SIGINT, then drain: finish in-flight jobs, exit.

    ``ready_callback(server)`` fires after the bind, before the accept
    loop — the CLI prints the listening line there and tests grab the
    bound port.
    """
    server = build_server(app, host, port)
    tracer = current_tracer()
    if tracer.enabled:
        tracer.emit(
            "serve_start",
            host=str(server.server_address[0]),
            port=int(server.server_address[1]),
        )

    def _begin_drain(signum, frame) -> None:
        app.draining = True
        # shutdown() blocks until the accept loop exits, so it must run
        # off the signal-handling (main) thread.
        threading.Thread(
            target=server.shutdown, name="serve-drain", daemon=True
        ).start()

    previous: dict = {}
    if install_signals:
        for signo in (signal.SIGTERM, signal.SIGINT):
            previous[signo] = signal.signal(signo, _begin_drain)
    try:
        if ready_callback is not None:
            ready_callback(server)
        server.serve_forever(poll_interval=0.2)
    finally:
        app.draining = True
        app.jobs.drain()
        server.server_close()
        if tracer.enabled:
            tracer.emit("serve_exit", requests=int(app.requests))
        for signo, handler in previous.items():
            signal.signal(
                signo, signal.SIG_DFL if handler is None else handler
            )
