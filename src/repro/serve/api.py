"""Request/response shapes for the ``repro serve`` JSON API.

This module is deliberately HTTP-free: it turns request bodies into
validated :class:`~repro.runtime.scenario.Scenario` objects and runtime
objects into JSON-ready payloads, so both the server handler and the
tests drive exactly the same logic without a socket.

Validation is structural *and* semantic.  A request can name a
catalogue scenario or carry a full serialized scenario (the
:mod:`repro.fabric.serialize` shape that fabric manifests use), plus a
small override block; either way the resolved scenario must pass the
same checks a worker would apply — known protocol, an adversary the
protocol's capability tags support, a resolvable node API, and
fabric-serializable params — before it is allowed anywhere near the
cache or the job table.  Failures raise :class:`ApiError`, which maps
to a structured ``{"error": {"code", "message"}}`` body, never a bare
500.
"""

from __future__ import annotations

import dataclasses
import json

from repro.adversary import AdversarySpec
from repro.fabric.serialize import scenario_from_dict, scenario_to_dict
from repro.runtime import SCENARIOS, default_registry, get_scenario
from repro.runtime.runner import ScenarioRun
from repro.runtime.scenario import Scenario

__all__ = [
    "ApiError",
    "parse_run_request",
    "protocols_payload",
    "run_payload",
    "scenario_entry",
    "scenarios_payload",
]


class ApiError(Exception):
    """A structured request rejection: machine code + message + status."""

    def __init__(self, code: str, message: str, status: int = 400):
        super().__init__(message)
        self.code = code
        self.message = message
        self.status = status

    def payload(self) -> dict:
        return {"error": {"code": self.code, "message": self.message}}


# -- catalogue payloads (shared with the CLI --json dumps) ---------------------


def scenario_entry(scenario: Scenario) -> dict:
    """JSON-ready catalogue entry (``repro scenarios --json`` shape)."""
    from repro.network.kernels import resolve_kernel

    return {
        "name": scenario.name,
        "protocol": scenario.protocol,
        "topology": {
            "family": scenario.topology.family,
            "params": dict(scenario.topology.params),
            "fixed_seed": scenario.topology.fixed_seed,
        },
        "sizes": list(scenario.sizes),
        "params": dict(scenario.params),
        "trials": scenario.trials,
        "seed": scenario.seed,
        "normalize_by": scenario.normalize_by,
        "adversary": (
            scenario.adversary.key_dict() if scenario.adversary else None
        ),
        "node_api": scenario.node_api,
        "resolved_node_api": scenario.resolved_node_api,
        "kernel": resolve_kernel(),
        "description": scenario.description,
    }


def scenarios_payload() -> list[dict]:
    """Every catalogue scenario (``repro scenarios --json`` shape)."""
    return [
        scenario_entry(scenario) for _, scenario in sorted(SCENARIOS.items())
    ]


def protocols_payload() -> list[dict]:
    """Every registered protocol (``repro protocols --json`` shape)."""
    from repro.network.kernels import resolve_kernel

    kernel = resolve_kernel()
    return [
        dict(spec.describe_dict(), kernel=kernel)
        for spec in default_registry()
    ]


# -- run requests --------------------------------------------------------------

_OVERRIDE_KEYS = frozenset(
    {"sizes", "trials", "seed", "node_api", "adversary", "name"}
)


def _parse_overrides(raw: object) -> dict:
    if raw is None:
        return {}
    if not isinstance(raw, dict):
        raise ApiError("bad_overrides", "'overrides' must be a JSON object")
    unknown = set(raw) - _OVERRIDE_KEYS
    if unknown:
        raise ApiError(
            "bad_overrides",
            f"unknown override keys {sorted(unknown)}; "
            f"allowed: {sorted(_OVERRIDE_KEYS)}",
        )
    kwargs: dict = {}
    if "sizes" in raw:
        sizes = raw["sizes"]
        if (
            not isinstance(sizes, list)
            or not sizes
            or not all(isinstance(n, int) and n > 0 for n in sizes)
        ):
            raise ApiError(
                "bad_overrides", "'sizes' must be a non-empty list of ints > 0"
            )
        kwargs["sizes"] = tuple(sizes)
    for key in ("trials", "seed"):
        if key in raw:
            value = raw[key]
            if not isinstance(value, int) or isinstance(value, bool):
                raise ApiError("bad_overrides", f"{key!r} must be an int")
            kwargs[key] = value
    if "node_api" in raw:
        kwargs["node_api"] = str(raw["node_api"])
    if "name" in raw:
        kwargs["name"] = str(raw["name"])
    if "adversary" in raw:
        spec_text = raw["adversary"]
        if spec_text is None:
            kwargs["adversary"] = None
        else:
            try:
                kwargs["adversary"] = AdversarySpec.parse(str(spec_text))
            except ValueError as exc:
                raise ApiError("bad_adversary", str(exc)) from exc
    return kwargs


def validate_scenario(scenario: Scenario) -> Scenario:
    """Semantic checks a request must pass before compute is committed."""
    registry = default_registry()
    try:
        spec = registry.get(scenario.protocol)
    except KeyError as exc:
        raise ApiError("unknown_protocol", str(exc)) from exc
    if scenario.adversary is not None:
        missing = scenario.adversary.required_capabilities() - set(spec.supports)
        if missing:
            raise ApiError(
                "unsupported_adversary",
                f"protocol {scenario.protocol!r} does not support "
                f"{sorted(missing)} (supports: {sorted(spec.supports) or '-'})",
            )
    try:
        spec.resolve_node_api(scenario.node_api)
    except ValueError as exc:
        raise ApiError("unsupported_node_api", str(exc)) from exc
    try:
        # Fabric manifests must round-trip the scenario exactly; refuse
        # up front rather than failing inside a worker process.
        scenario_to_dict(scenario)
    except (TypeError, ValueError) as exc:
        raise ApiError("unserializable_scenario", str(exc)) from exc
    return scenario


def parse_run_request(body: bytes | str) -> Scenario:
    """Turn a ``POST /v1/runs`` body into a validated scenario.

    The body is ``{"scenario": <catalogue name | serialized scenario>,
    "overrides": {...}}``; overrides accept ``sizes``, ``trials``,
    ``seed``, ``node_api``, ``adversary`` (a spec string such as
    ``"drop=0.05,crash=2"``, or null to strip one), and ``name``.
    """
    try:
        payload = json.loads(body or b"")
    except json.JSONDecodeError as exc:
        raise ApiError("bad_json", f"request body is not JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ApiError("bad_request", "request body must be a JSON object")
    described = payload.get("scenario")
    if described is None:
        raise ApiError(
            "missing_scenario",
            "request needs 'scenario': a catalogue name or a serialized "
            "scenario object",
        )
    if isinstance(described, str):
        try:
            scenario = get_scenario(described)
        except KeyError as exc:
            raise ApiError(
                "unknown_scenario",
                f"no catalogue scenario named {described!r} "
                f"(see GET /v1/scenarios)",
            ) from exc
    elif isinstance(described, dict):
        try:
            scenario = scenario_from_dict(described)
        except (KeyError, TypeError, ValueError) as exc:
            raise ApiError(
                "bad_scenario", f"invalid serialized scenario: {exc}"
            ) from exc
    else:
        raise ApiError(
            "bad_request", "'scenario' must be a name string or an object"
        )
    kwargs = _parse_overrides(payload.get("overrides"))
    if kwargs:
        try:
            scenario = scenario.with_overrides(**kwargs)
        except (TypeError, ValueError) as exc:
            raise ApiError("bad_overrides", str(exc)) from exc
    return validate_scenario(scenario)


# -- run/job payloads ----------------------------------------------------------


def run_payload(run: ScenarioRun) -> dict:
    """JSON-ready body of a completed scenario run."""
    return {
        "scenario": scenario_to_dict(run.scenario),
        "sizes": list(run.sizes),
        "overall_success_rate": run.overall_success_rate(),
        "trial_sets": [dataclasses.asdict(ts) for ts in run.trial_sets],
        "meta": run.meta,
    }


def job_payload(job, progress: dict | None = None) -> dict:
    """JSON-ready status of a serve job (sans the run body)."""
    out = {
        "job": job.id,
        "state": job.state,
        "scenario": job.scenario.name,
        "attached": job.attached,
        "created_at": job.created_at,
        "started_at": job.started_at,
        "finished_at": job.finished_at,
        "error": job.error,
        "location": f"/v1/runs/{job.id}",
    }
    if progress is not None:
        out["progress"] = progress
    return out
