"""Experiment registry: every reproduced result, its claim, and its bench.

The paper has no numbered tables or figures — its evaluation *is* its
theorems and corollaries.  Each entry here binds one of those results to the
benchmark module that regenerates its scaling row, plus the exponents the
fitted curves should exhibit.  EXPERIMENTS.md is organized by these ids.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EXPERIMENTS", "Experiment", "get_experiment"]


@dataclass(frozen=True)
class Experiment:
    """Metadata for one reproduced paper result."""

    id: str
    paper_result: str
    claim: str
    quantum_exponent: float | None
    classical_exponent: float | None
    modules: tuple[str, ...]
    bench: str


EXPERIMENTS: dict[str, Experiment] = {
    e.id: e
    for e in [
        Experiment(
            id="E1",
            paper_result="Theorem 5.2 / Corollary 5.3",
            claim=(
                "Leader election on complete graphs: quantum Õ(n^(1/3)) messages "
                "vs the tight classical Θ̃(√n); unique leader w.h.p."
            ),
            quantum_exponent=1.0 / 3.0,
            classical_exponent=0.5,
            modules=(
                "repro.core.leader_election.complete",
                "repro.classical.leader_election.complete_kpp",
            ),
            bench="benchmarks/bench_e01_complete_le.py",
        ),
        Experiment(
            id="E2",
            paper_result="Section 5.1 closing remark",
            claim=(
                "Round/message trade-off of QuantumLE: k sweep gives "
                "(rounds, messages) = (Õ(√(n/k)), Õ(k + √(n/k))); k = n^(5/12) "
                "gives o(n^(1/3)) rounds with o(√n) messages."
            ),
            quantum_exponent=None,
            classical_exponent=None,
            modules=("repro.core.leader_election.complete",),
            bench="benchmarks/bench_e02_tradeoff.py",
        ),
        Experiment(
            id="E3",
            paper_result="Theorem 5.4 / Corollary 5.5",
            claim=(
                "Leader election with mixing time τ: quantum Õ(τk + τ²√(n/k)), "
                "optimized Õ(τ^(5/3)·n^(1/3)), vs classical Õ(τ√n)."
            ),
            quantum_exponent=1.0 / 3.0,
            classical_exponent=0.5,
            modules=(
                "repro.core.leader_election.mixing",
                "repro.classical.leader_election.mixing_rw",
            ),
            bench="benchmarks/bench_e03_mixing_le.py",
        ),
        Experiment(
            id="E4",
            paper_result="Theorem 5.6 / Corollary 5.7",
            claim=(
                "Leader election on diameter-2 graphs: quantum Õ(k + n/√k), "
                "optimized Õ(n^(2/3)), vs the tight classical Θ(n)."
            ),
            quantum_exponent=2.0 / 3.0,
            classical_exponent=1.0,
            modules=(
                "repro.core.leader_election.diameter2",
                "repro.classical.leader_election.diameter2_cpr",
            ),
            bench="benchmarks/bench_e04_diameter2_le.py",
        ),
        Experiment(
            id="E5",
            paper_result="Theorem 5.10",
            claim=(
                "Explicit leader election on general graphs: quantum Õ(√(mn)) "
                "vs the tight classical Θ(m)."
            ),
            quantum_exponent=None,  # depends on (n, m) jointly; bench fits both
            classical_exponent=None,
            modules=(
                "repro.core.leader_election.general",
                "repro.classical.leader_election.general_ghs",
            ),
            bench="benchmarks/bench_e05_general_le.py",
        ),
        Experiment(
            id="E6",
            paper_result="Theorem 6.7 / Corollary 6.8",
            claim=(
                "Implicit agreement on complete graphs with a shared coin: "
                "quantum expected Õ(n^(1/5)) vs classical Õ(n^(2/5))."
            ),
            quantum_exponent=1.0 / 5.0,
            classical_exponent=2.0 / 5.0,
            modules=(
                "repro.core.agreement.quantum_agreement",
                "repro.classical.agreement.amp18",
            ),
            bench="benchmarks/bench_e06_agreement.py",
        ),
        Experiment(
            id="E7",
            paper_result="Appendix B.2 (Searching)",
            claim=(
                "Star-graph search: quantum O(√n) messages vs classical Θ(n); "
                "bucketed variant O(√(nk)) messages in O(√(n/k)) rounds."
            ),
            quantum_exponent=0.5,
            classical_exponent=1.0,
            modules=("repro.core.grover",),
            bench="benchmarks/bench_e07_star_search.py",
        ),
        Experiment(
            id="E8",
            paper_result="Appendix B.2 (Counting) / Corollary 4.3",
            claim=(
                "Star-graph counting to ±εn: quantum O(1/ε) messages vs "
                "classical Θ(1/ε²); estimates within the Theorem 4.2 bound."
            ),
            quantum_exponent=None,  # measured against 1/ε, not n
            classical_exponent=None,
            modules=("repro.core.counting",),
            bench="benchmarks/bench_e08_star_counting.py",
        ),
        Experiment(
            id="E9",
            paper_result="Fact C.2",
            claim=(
                "Candidate sampling: 1 ≤ #candidates ≤ 24·ln n and all ranks "
                "distinct, with probability ≥ 1 − 1/n²."
            ),
            quantum_exponent=None,
            classical_exponent=None,
            modules=("repro.core.candidates",),
            bench="benchmarks/bench_e09_sampling.py",
        ),
        Experiment(
            id="E10",
            paper_result="Section 5.4 (MST remark)",
            claim=(
                "Minimum spanning tree via quantum tree merging: same Õ(√(mn)) "
                "message envelope; produced tree is exactly the MST."
            ),
            quantum_exponent=None,
            classical_exponent=None,
            modules=("repro.core.leader_election.mst",),
            bench="benchmarks/bench_e10_mst.py",
        ),
        Experiment(
            id="E11",
            paper_result="Theorem 4.1 vs classical sampling",
            claim=(
                "Subroutine message laws: Grover search costs ∝ 1/√ε vs the "
                "classical 1/ε; quantum counting ∝ 1/c vs classical 1/c²."
            ),
            quantum_exponent=None,
            classical_exponent=None,
            modules=("repro.core.grover", "repro.core.counting"),
            bench="benchmarks/bench_e11_subroutines.py",
        ),
        Experiment(
            id="E12",
            paper_result="Section 1.2 (diameter-2 design ablation)",
            claim=(
                "QWLE ablation: the quantum-walk layer improves the nested-"
                "Grover-only design point Õ(n^(3/4)) to Õ(n^(2/3))."
            ),
            quantum_exponent=2.0 / 3.0,
            classical_exponent=3.0 / 4.0,
            modules=("repro.core.leader_election.diameter2",),
            bench="benchmarks/bench_e12_qwle_ablation.py",
        ),
    ]
}


def get_experiment(experiment_id: str) -> Experiment:
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
