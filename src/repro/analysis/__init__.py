"""Measurement harness: scaling runs, power-law fits, tables, experiment registry."""

from repro.analysis.experiments import EXPERIMENTS, Experiment, get_experiment
from repro.analysis.fitting import PowerLawFit, crossover_estimate, fit_power_law
from repro.analysis.scaling import ScalingPoint, ScalingSeries, measure_scaling
from repro.analysis.tables import comparison_table, render_table

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "PowerLawFit",
    "ScalingPoint",
    "ScalingSeries",
    "comparison_table",
    "crossover_estimate",
    "fit_power_law",
    "get_experiment",
    "measure_scaling",
    "render_table",
]
