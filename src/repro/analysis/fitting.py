"""Power-law fitting for message-complexity scaling curves.

The paper's claims are asymptotic exponents hidden under Õ(·): the benchmark
harness measures message counts over a grid of network sizes and fits

    messages ≈ C · n^a · (ln n)^b      (b fixed from the protocol's schedule)

by least squares on log(messages) − b·log(ln n) against log n.  The fitted
``a`` is what EXPERIMENTS.md compares with the paper's exponent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["PowerLawFit", "crossover_estimate", "fit_power_law"]


@dataclass(frozen=True)
class PowerLawFit:
    """messages ≈ exp(intercept) · n^exponent · (ln n)^polylog_power."""

    exponent: float
    intercept: float
    r_squared: float
    polylog_power: float

    def predict(self, n: float) -> float:
        return math.exp(self.intercept) * n**self.exponent * (
            math.log(max(n, 2.0)) ** self.polylog_power
        )

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        poly = (
            f"·(ln n)^{self.polylog_power:g}" if self.polylog_power else ""
        )
        return f"n^{self.exponent:.3f}{poly} (R²={self.r_squared:.4f})"


def fit_power_law(
    sizes: list[int] | np.ndarray,
    values: list[float] | np.ndarray,
    polylog_power: float = 0.0,
) -> PowerLawFit:
    """Least-squares power-law fit with an optional fixed polylog divisor.

    ``polylog_power`` is *given*, not fitted: the caller knows the schedule's
    polylog structure (e.g. QuantumLE's log(1/α) boosting contributes one
    ln n factor with α = 1/n²) and divides it out so the polynomial exponent
    is identifiable on laptop-scale grids.
    """
    sizes = np.asarray(sizes, dtype=float)
    values = np.asarray(values, dtype=float)
    if sizes.shape != values.shape or sizes.size < 2:
        raise ValueError(
            f"need >= 2 aligned samples, got {sizes.size} sizes, {values.size} values"
        )
    if np.any(sizes < 2) or np.any(values <= 0):
        raise ValueError("sizes must be >= 2 and values positive for log fitting")

    x = np.log(sizes)
    y = np.log(values) - polylog_power * np.log(np.log(sizes))
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    residual = float(np.sum((y - predicted) ** 2))
    total = float(np.sum((y - y.mean()) ** 2))
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return PowerLawFit(
        exponent=float(slope),
        intercept=float(intercept),
        r_squared=r_squared,
        polylog_power=polylog_power,
    )


def crossover_estimate(
    cheaper_asymptotically: PowerLawFit,
    cheaper_now: PowerLawFit,
    max_log10: float = 18.0,
) -> float | None:
    """Predicted n where the asymptotically cheaper curve overtakes.

    Solves ``cheaper_asymptotically.predict(n) = cheaper_now.predict(n)`` by
    bisection on log n (the polylog terms make a closed form awkward).
    Returns None when the curves do not cross below 10^max_log10, or when the
    exponent ordering contradicts the premise.
    """
    if cheaper_asymptotically.exponent >= cheaper_now.exponent:
        return None

    def gap(log_n: float) -> float:
        n = math.exp(log_n)
        return cheaper_asymptotically.predict(n) - cheaper_now.predict(n)

    low, high = math.log(2.0), max_log10 * math.log(10.0)
    if gap(low) <= 0:
        return math.exp(low)  # already cheaper everywhere measured
    if gap(high) > 0:
        return None  # crossover beyond the horizon
    for _ in range(200):
        mid = (low + high) / 2.0
        if gap(mid) > 0:
            low = mid
        else:
            high = mid
    return math.exp((low + high) / 2.0)
