"""Plain-text table rendering for the benchmark harness and examples."""

from __future__ import annotations

from repro.analysis.scaling import ScalingSeries

__all__ = ["comparison_table", "render_table"]


def render_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Render an aligned plain-text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def comparison_table(
    quantum: ScalingSeries,
    classical: ScalingSeries,
    title: str = "",
) -> str:
    """Paper-style side-by-side message comparison over a shared size grid."""
    if quantum.sizes != classical.sizes:
        raise ValueError("series were measured on different size grids")
    headers = [
        "n",
        f"{quantum.label} msgs",
        f"{classical.label} msgs",
        "ratio (c/q)",
        "q success",
        "c success",
    ]
    rows = []
    for qp, cp in zip(quantum.points, classical.points):
        ratio = cp.messages_mean / qp.messages_mean if qp.messages_mean else float("inf")
        rows.append(
            [
                str(qp.n),
                f"{qp.messages_mean:,.0f}",
                f"{cp.messages_mean:,.0f}",
                f"{ratio:.3f}",
                f"{qp.success_rate:.2f}",
                f"{cp.success_rate:.2f}",
            ]
        )
    return render_table(headers, rows, title=title)
