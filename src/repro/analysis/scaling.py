"""Scaling measurements: run a protocol across a size grid with trials.

``measure_scaling`` is the legacy callable-based entry point; it now rides
on the :mod:`repro.runtime.runner` fan-out machinery, which means it gained
a ``jobs`` parameter (process-parallel trials) while producing bit-identical
aggregates — per-trial seeds are derived up front in grid order, and
:func:`~repro.runtime.runner.aggregate_trials` reproduces the original
statistics.  New code should prefer declaring a
:class:`~repro.runtime.scenario.Scenario` and calling
:func:`~repro.runtime.runner.run_scenario`.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.analysis.fitting import PowerLawFit, fit_power_law
from repro.runtime.registry import TrialOutcome
from repro.runtime.runner import aggregate_trials, fan_out
from repro.util.rng import RandomSource

__all__ = ["ScalingPoint", "ScalingSeries", "measure_scaling"]


@dataclass
class ScalingPoint:
    """Aggregated measurements at one network size."""

    n: int
    messages_mean: float
    messages_std: float
    rounds_mean: float
    success_rate: float
    trials: int
    extra: dict = field(default_factory=dict)


@dataclass
class ScalingSeries:
    """One protocol's measurements over the whole grid."""

    label: str
    points: list[ScalingPoint]

    @property
    def sizes(self) -> list[int]:
        return [p.n for p in self.points]

    @property
    def messages(self) -> list[float]:
        return [p.messages_mean for p in self.points]

    def fit(self, polylog_power: float = 0.0) -> PowerLawFit:
        return fit_power_law(self.sizes, self.messages, polylog_power)

    def overall_success_rate(self) -> float:
        total = sum(p.trials for p in self.points)
        good = sum(p.success_rate * p.trials for p in self.points)
        return good / total if total else 0.0


#: A trial runner: (n, rng) -> (messages, rounds, success, extra-dict).
TrialRunner = Callable[[int, RandomSource], tuple[int, int, bool, dict]]


def _runner_trial(task) -> TrialOutcome:
    """One (runner, n, rng) task — module-level so process pools can run it."""
    runner, n, rng = task
    messages, rounds, success, extra = runner(n, rng)
    return TrialOutcome(
        messages=float(messages),
        rounds=float(rounds),
        success=bool(success),
        extra=extra,
    )


def measure_scaling(
    label: str,
    runner: TrialRunner,
    sizes: list[int],
    trials: int,
    seed: int = 0,
    jobs: int | None = 1,
) -> ScalingSeries:
    """Run ``runner`` ``trials`` times at every size; aggregate statistics.

    Every (size, trial) pair gets an independent child RNG derived from
    ``seed``, so quantum and classical series measured with the same seed
    share nothing but are individually reproducible.  ``jobs`` fans trials
    out over a process pool (``None`` = all cores); seeds are pre-derived in
    grid order, so aggregates do not depend on ``jobs`` — but the runner
    must then be a picklable (module-level) callable.
    """
    if trials < 1:
        raise ValueError(f"need >= 1 trial, got {trials}")
    root = RandomSource(seed)
    tasks = [(runner, n, root.spawn()) for n in sizes for _ in range(trials)]
    outcomes = fan_out(_runner_trial, tasks, jobs)
    points = []
    for index, n in enumerate(sizes):
        chunk = outcomes[index * trials : (index + 1) * trials]
        points.append(aggregate_trials(n, chunk).as_scaling_point())
    return ScalingSeries(label=label, points=points)
