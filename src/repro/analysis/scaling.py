"""Scaling measurements: run a protocol across a size grid with trials."""

from __future__ import annotations

import statistics
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.analysis.fitting import PowerLawFit, fit_power_law
from repro.util.rng import RandomSource

__all__ = ["ScalingPoint", "ScalingSeries", "measure_scaling"]


@dataclass
class ScalingPoint:
    """Aggregated measurements at one network size."""

    n: int
    messages_mean: float
    messages_std: float
    rounds_mean: float
    success_rate: float
    trials: int
    extra: dict = field(default_factory=dict)


@dataclass
class ScalingSeries:
    """One protocol's measurements over the whole grid."""

    label: str
    points: list[ScalingPoint]

    @property
    def sizes(self) -> list[int]:
        return [p.n for p in self.points]

    @property
    def messages(self) -> list[float]:
        return [p.messages_mean for p in self.points]

    def fit(self, polylog_power: float = 0.0) -> PowerLawFit:
        return fit_power_law(self.sizes, self.messages, polylog_power)

    def overall_success_rate(self) -> float:
        total = sum(p.trials for p in self.points)
        good = sum(p.success_rate * p.trials for p in self.points)
        return good / total if total else 0.0


#: A trial runner: (n, rng) -> (messages, rounds, success, extra-dict).
TrialRunner = Callable[[int, RandomSource], tuple[int, int, bool, dict]]


def measure_scaling(
    label: str,
    runner: TrialRunner,
    sizes: list[int],
    trials: int,
    seed: int = 0,
) -> ScalingSeries:
    """Run ``runner`` ``trials`` times at every size; aggregate statistics.

    Every (size, trial) pair gets an independent child RNG derived from
    ``seed``, so quantum and classical series measured with the same seed
    share nothing but are individually reproducible.
    """
    if trials < 1:
        raise ValueError(f"need >= 1 trial, got {trials}")
    root = RandomSource(seed)
    points = []
    for n in sizes:
        messages: list[float] = []
        rounds: list[float] = []
        successes = 0
        extras: list[dict] = []
        for _ in range(trials):
            msg, rnd, ok, extra = runner(n, root.spawn())
            messages.append(float(msg))
            rounds.append(float(rnd))
            successes += bool(ok)
            extras.append(extra)
        merged_extra: dict = {}
        for key in extras[0] if extras else ():
            numeric = [e[key] for e in extras if isinstance(e.get(key), (int, float))]
            if len(numeric) == len(extras):
                merged_extra[key] = statistics.fmean(numeric)
        points.append(
            ScalingPoint(
                n=n,
                messages_mean=statistics.fmean(messages),
                messages_std=statistics.pstdev(messages) if len(messages) > 1 else 0.0,
                rounds_mean=statistics.fmean(rounds),
                success_rate=successes / trials,
                trials=trials,
                extra=merged_extra,
            )
        )
    return ScalingSeries(label=label, points=points)
