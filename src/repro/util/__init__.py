"""Shared utilities: seeded randomness, math helpers, cost ledger, fault injection."""

from repro.util.fault import FaultInjector
from repro.util.ledger import CostLedger, LedgerEntry
from repro.util.mathx import (
    binomial,
    ceil_div,
    ceil_log2,
    ceil_sqrt,
    is_power_of_two,
    log_ceil,
    polylog,
)
from repro.util.rng import RandomSource, SharedCoin

__all__ = [
    "CostLedger",
    "FaultInjector",
    "LedgerEntry",
    "RandomSource",
    "SharedCoin",
    "binomial",
    "ceil_div",
    "ceil_log2",
    "ceil_sqrt",
    "is_power_of_two",
    "log_ceil",
    "polylog",
]
