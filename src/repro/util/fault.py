"""Deterministic fault injection for exercising low-probability code paths.

The protocols in this library fail only with probability O(1/n); tests would
need astronomically many trials to hit those branches naturally.  A
``FaultInjector`` lets a test force specific subroutine failures (for example
"the next Grover search returns a false negative") so the surrounding
protocol's error handling is exercised deterministically.
"""

from __future__ import annotations

from collections import defaultdict

__all__ = ["FaultInjector"]


class FaultInjector:
    """Registry of forced failures keyed by site label.

    Usage::

        faults = FaultInjector()
        faults.force("grover.false_negative", times=1)
        ...
        if faults.should_fail("grover.false_negative"):
            # pretend the measurement missed the marked element
    """

    def __init__(self) -> None:
        self._pending: dict[str, int] = defaultdict(int)
        self._always: set[str] = set()
        self.triggered: dict[str, int] = defaultdict(int)

    def force(self, site: str, times: int = 1) -> None:
        """Arm ``times`` failures at ``site`` (use ``always`` for unbounded)."""
        if times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        self._pending[site] += times

    def force_always(self, site: str) -> None:
        """Arm unbounded failures at ``site``."""
        self._always.add(site)

    def clear(self, site: str | None = None) -> None:
        """Disarm one site, or everything when site is None."""
        if site is None:
            self._pending.clear()
            self._always.clear()
        else:
            self._pending.pop(site, None)
            self._always.discard(site)

    def should_fail(self, site: str) -> bool:
        """Consume one armed failure at ``site`` if present."""
        if site in self._always:
            self.triggered[site] += 1
            return True
        if self._pending.get(site, 0) > 0:
            self._pending[site] -= 1
            self.triggered[site] += 1
            return True
        return False

    @property
    def armed_sites(self) -> set[str]:
        """Sites that still have at least one armed failure."""
        armed = {site for site, count in self._pending.items() if count > 0}
        return armed | set(self._always)


#: A module-level injector that never fails, used as the default everywhere.
NULL_INJECTOR = FaultInjector()
