"""Small integer and logarithm helpers used throughout the library."""

from __future__ import annotations

import math

__all__ = [
    "binomial",
    "ceil_div",
    "ceil_log2",
    "ceil_sqrt",
    "is_power_of_two",
    "log_ceil",
    "polylog",
]


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return -(-numerator // denominator)


def ceil_sqrt(value: float) -> int:
    """Smallest integer at least sqrt(value); at least 1 for positive input."""
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    if value == 0:
        return 0
    root = math.isqrt(int(value))
    if root * root < value:
        root += 1
    return max(root, 1)


def ceil_log2(value: int) -> int:
    """Smallest integer k with 2**k >= value (value >= 1)."""
    if value < 1:
        raise ValueError(f"value must be >= 1, got {value}")
    return (value - 1).bit_length()


def log_ceil(value: float, minimum: int = 1) -> int:
    """``max(minimum, ceil(ln(value)))`` — the paper's ubiquitous Θ(log) knob."""
    if value <= 0:
        raise ValueError(f"value must be positive, got {value}")
    return max(minimum, math.ceil(math.log(max(value, 1.0 + 1e-12))))


def polylog(n: int, power: float = 1.0) -> float:
    """``(ln n)**power`` with n clamped at 2 so the result is never zero."""
    return math.log(max(n, 2)) ** power


def is_power_of_two(value: int) -> bool:
    """True when value is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def binomial(n: int, k: int) -> int:
    """Binomial coefficient C(n, k); zero outside the valid range."""
    if k < 0 or k > n or n < 0:
        return 0
    return math.comb(n, k)
