"""Seeded randomness for reproducible distributed simulations.

The paper's model gives every node access to *private* unbiased random bits,
and (for the agreement protocol of Section 6 only) a *global shared coin*.
``RandomSource`` materializes that split: a root source spawns independent
child generators — one per node — while ``SharedCoin`` wraps one generator
that all nodes may read but none may bias.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RandomSource", "SharedCoin"]


class RandomSource:
    """A tree of independent, reproducible random generators.

    Children are derived with :class:`numpy.random.SeedSequence` spawning, so
    two children never share a stream and re-running with the same root seed
    reproduces every coin flip in the simulation.
    """

    def __init__(self, seed: int | np.random.SeedSequence | None = None):
        if isinstance(seed, np.random.SeedSequence):
            self._sequence = seed
        else:
            self._sequence = np.random.SeedSequence(seed)
        self.generator = np.random.default_rng(self._sequence)

    @property
    def seed_entropy(self) -> int | None:
        """Root entropy, for logging/reproduction."""
        entropy = self._sequence.entropy
        if isinstance(entropy, (list, tuple)):
            return int(entropy[0])
        return None if entropy is None else int(entropy)

    def spawn(self) -> "RandomSource":
        """Derive one independent child source."""
        return RandomSource(self._sequence.spawn(1)[0])

    def spawn_many(self, count: int) -> list["RandomSource"]:
        """Derive ``count`` independent child sources."""
        return [RandomSource(seq) for seq in self._sequence.spawn(count)]

    # -- convenience wrappers -------------------------------------------------

    def bernoulli(self, probability: float) -> bool:
        """One private coin flip with success probability ``probability``."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        return bool(self.generator.random() < probability)

    def uniform_int(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high].

        Handles ranges beyond int64 (the rank space {1, …, n⁴} overflows
        64 bits already at n = 2^16) by rejection-sampling 32-bit chunks.
        """
        if low > high:
            raise ValueError(f"empty range [{low}, {high}]")
        span = high - low + 1
        if span <= 1 << 62:
            return low + int(self.generator.integers(0, span))
        bits = span.bit_length()
        while True:
            value = 0
            remaining = bits
            while remaining > 0:
                chunk = min(remaining, 32)
                value = (value << chunk) | int(
                    self.generator.integers(0, 1 << chunk)
                )
                remaining -= chunk
            if value < span:
                return low + value

    def uniform(self) -> float:
        """Uniform float in [0, 1)."""
        return float(self.generator.random())

    def choice(self, items, size=None, replace=True):
        """Uniform choice from a sequence (delegates to numpy)."""
        return self.generator.choice(items, size=size, replace=replace)

    def sample_without_replacement(self, population: int, count: int) -> np.ndarray:
        """``count`` distinct integers drawn uniformly from range(population)."""
        if count > population:
            raise ValueError(
                f"cannot sample {count} distinct items from a population of {population}"
            )
        return self.generator.choice(population, size=count, replace=False)

    def shuffled(self, items: list) -> list:
        """A new list with the items in uniformly random order."""
        order = self.generator.permutation(len(items))
        return [items[i] for i in order]


class SharedCoin:
    """The global shared coin of Section 6 (oblivious to the input adversary).

    All nodes observe the *same* sequence of values; the simulation enforces
    this by routing every read through one generator owned by the coin.
    """

    def __init__(self, source: RandomSource):
        self._source = source
        self._flips = 0

    @property
    def flips(self) -> int:
        """Number of shared values drawn so far."""
        return self._flips

    def next_uniform(self) -> float:
        """Next shared uniform value in [0, 1) (Algorithm 4, line 5)."""
        self._flips += 1
        return self._source.uniform()

    def next_bits(self, count: int) -> list[int]:
        """Next ``count`` shared unbiased bits."""
        self._flips += count
        return [self._source.uniform_int(0, 1) for _ in range(count)]
