"""Labelled cost ledger backing the message/round accounting.

Every charge made by a protocol carries a human-readable label (for example
``"grover.checking"`` or ``"classical-phase.referees"``).  Tests and the
benchmark harness use the ledger to audit *where* the messages of a run went,
mirroring the per-phase accounting in the paper's proofs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["CostLedger", "LedgerEntry"]


@dataclass(frozen=True)
class LedgerEntry:
    """One labelled charge: ``messages`` messages over ``rounds`` rounds."""

    label: str
    messages: int
    rounds: int


@dataclass
class CostLedger:
    """Accumulates labelled message/round charges.

    Message totals simply add.  Round totals also add because every charge in
    this library represents a *sequential* stage of the synchronized schedule
    (Definition 4.1); stages that run in parallel across nodes are charged
    once with their common worst-case duration by the caller.
    """

    entries: list[LedgerEntry] = field(default_factory=list)

    def charge(self, label: str, messages: int = 0, rounds: int = 0) -> None:
        """Record a charge; negative costs are programming errors."""
        if messages < 0 or rounds < 0:
            raise ValueError(
                f"negative charge not allowed: label={label!r}, "
                f"messages={messages}, rounds={rounds}"
            )
        self.entries.append(LedgerEntry(label=label, messages=messages, rounds=rounds))

    @property
    def total_messages(self) -> int:
        return sum(entry.messages for entry in self.entries)

    @property
    def total_rounds(self) -> int:
        return sum(entry.rounds for entry in self.entries)

    def messages_by_label(self) -> dict[str, int]:
        """Message totals grouped by exact label."""
        totals: dict[str, int] = defaultdict(int)
        for entry in self.entries:
            totals[entry.label] += entry.messages
        return dict(totals)

    def messages_by_prefix(self, separator: str = ".") -> dict[str, int]:
        """Message totals grouped by the first label component."""
        totals: dict[str, int] = defaultdict(int)
        for entry in self.entries:
            prefix = entry.label.split(separator, 1)[0]
            totals[prefix] += entry.messages
        return dict(totals)

    def merge(self, other: "CostLedger") -> None:
        """Append all entries of another ledger."""
        self.entries.extend(other.entries)

    def summary(self) -> str:
        """Multi-line human-readable summary, sorted by descending messages."""
        lines = [f"total: {self.total_messages} messages, {self.total_rounds} rounds"]
        for label, messages in sorted(
            self.messages_by_label().items(), key=lambda item: -item[1]
        ):
            lines.append(f"  {label}: {messages}")
        return "\n".join(lines)
