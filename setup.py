"""Packaging for the PODC 2025 quantum leader-election reproduction."""

import pathlib

from setuptools import find_packages, setup

README = pathlib.Path(__file__).parent / "README.md"

setup(
    name="repro-quantum-le",
    version="1.1.0",
    description=(
        "Reproduction of 'Quantum Communication Advantage for Leader "
        "Election and Agreement' (Dufoulon, Magniez, Pandurangan; PODC 2025)"
    ),
    long_description=README.read_text() if README.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    url="https://arxiv.org/abs/2502.07416",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.24",
        "scipy>=1.10",
        "networkx>=3.0",
    ],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Intended Audience :: Science/Research",
        "Topic :: Scientific/Engineering",
    ],
)
