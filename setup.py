"""Legacy shim so `pip install -e .` works on environments without `wheel`."""

from setuptools import setup

setup()
