"""Kernel-tier benchmark: million-node rounds through the batch engine.

Three stages, each gated on bit-identity before any number is reported:

* **parity** — the newly ported protocols (Hirschberg–Sinclair, the CPR
  diameter-2 baseline, engine-driven Borůvka) plus LCR/KPP run the same
  seeded trial under scalar-fast, scalar-reference, and the batch path on
  every installed kernel tier; all fingerprints must match exactly;
* **speedup** — batch vs scalar-fast rounds/sec at moderate n for the
  three new ports, plus numba-vs-numpy rows when numba is importable
  (marked unavailable with a reason otherwise);
* **million** — n = 10⁶ throughput on the arithmetic-port families
  (C_n ring: LCR and HS with a capped round budget; K_n: a full KPP
  trial with directly seeded candidates).  Edges are never materialized
  — C_n and K_n route through pure port arithmetic.

Results land in ``BENCH_kernels.json`` at the repo root.  CI runs
``--smoke`` (parity + speedup floor, small sizes, no file write).

Usage::

    PYTHONPATH=src python benchmarks/bench_kernels.py          # full grid
    PYTHONPATH=src python benchmarks/bench_kernels.py --smoke  # CI-sized
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

import numpy as np

from repro.adversary import AdversarySpec  # noqa: F401  (spec grammar in docs)
from repro.classical.leader_election.complete_kpp import (
    _KPPBatch,
    classical_le_complete,
    default_referees_complete,
)
from repro.classical.leader_election.diameter2_cpr import classical_le_diameter2
from repro.classical.leader_election.ring import (
    _HSBatch,
    _LCRBatch,
    hirschberg_sinclair_ring,
    lcr_ring,
)
from repro.classical.mst_boruvka import boruvka_mst_engine
from repro.network import graphs
from repro.network.engine import SynchronousEngine
from repro.network.kernels import numba_available, resolve_kernel
from repro.network.metrics import MetricsRecorder
from repro.network.topology import CompleteTopology
from repro.util.rng import RandomSource

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_kernels.json"

#: Smoke-mode floor: batch ≥ this × scalar-fast rounds/sec on at least one
#: of the newly ported protocols (HS / CPR / Borůvka).
TARGET_SPEEDUP = 2.0

MILLION = 1_000_000


def _kernel_tiers() -> list[str]:
    return ["numpy", "numba"] if numba_available() else ["numpy"]


def _with_env(key: str, value: str, fn):
    previous = os.environ.get(key)
    os.environ[key] = value
    try:
        return fn()
    finally:
        if previous is None:
            del os.environ[key]
        else:
            os.environ[key] = previous


def _run_mode(trial, mode: str, kernel: str = "numpy"):
    """One seeded trial under a dispatch mode; returns its fingerprint."""
    node_api = "batch" if mode == "batch" else "scalar"
    backend = "reference" if mode == "scalar-reference" else "fast"

    def go():
        return _with_env("REPRO_KERNEL", kernel, lambda: trial(node_api))

    return _with_env("REPRO_ENGINE", backend, go)


# -- seeded trials (fingerprint = everything observable) ----------------------


def _le_fingerprint(result):
    return (
        result.messages,
        result.rounds,
        result.leader,
        tuple(sorted((v, s.name) for v, s in result.statuses.items())),
    )


def _trial_lcr(n):
    def trial(node_api):
        return _le_fingerprint(
            lcr_ring(n, RandomSource(7), node_api=node_api)
        )

    return trial


def _trial_hs(n):
    def trial(node_api):
        return _le_fingerprint(
            hirschberg_sinclair_ring(n, RandomSource(7), node_api=node_api)
        )

    return trial


def _trial_kpp(n):
    def trial(node_api):
        return _le_fingerprint(
            classical_le_complete(n, RandomSource(7), node_api=node_api)
        )

    return trial


def _trial_cpr(n):
    topology = graphs.complete(n)

    def trial(node_api):
        return _le_fingerprint(
            classical_le_diameter2(topology, RandomSource(7), node_api=node_api)
        )

    return trial


def _trial_boruvka(n):
    topology = graphs.cycle(n)
    weight_rng = RandomSource(99)
    weights = {}
    for u, v in topology.edges():
        a, b = (u, v) if u < v else (v, u)
        weights[(a, b)] = weight_rng.uniform()

    def trial(node_api):
        result = boruvka_mst_engine(
            topology, weights, RandomSource(7), node_api=node_api
        )
        return (
            result.messages,
            result.rounds,
            tuple(result.edges),
            round(result.total_weight, 12),
        )

    return trial


# -- stage 1: parity ----------------------------------------------------------

PARITY_GRID = [
    ("le-ring/lcr", _trial_lcr, 512, 96),
    ("le-ring/hs", _trial_hs, 256, 64),
    ("le-complete/classical", _trial_kpp, 256, 64),
    ("le-diameter2/classical", _trial_cpr, 256, 64),
    ("mst/boruvka-engine", _trial_boruvka, 48, 16),
]


def run_parity(smoke: bool) -> list[dict]:
    rows = []
    for name, make_trial, n_full, n_smoke in PARITY_GRID:
        n = n_smoke if smoke else n_full
        trial = make_trial(n)
        fingerprints = {
            "scalar-fast": _run_mode(trial, "scalar-fast"),
            "scalar-reference": _run_mode(trial, "scalar-reference"),
        }
        for tier in _kernel_tiers():
            fingerprints[f"batch-{tier}"] = _run_mode(trial, "batch", tier)
        if len(set(fingerprints.values())) != 1:
            raise AssertionError(
                f"{name} (n={n}) diverged across dispatch paths/tiers: "
                f"{fingerprints}"
            )
        rows.append({"protocol": name, "n": n, "paths": sorted(fingerprints)})
        print(f"parity  {name:<24} n={n:<5} {len(fingerprints)} paths identical")
    return rows


# -- stage 2: batch-vs-scalar and numba-vs-numpy speedups ---------------------

SPEEDUP_GRID = [
    ("le-ring/hs", "cycle", _trial_hs, 1024, 128),
    ("le-diameter2/classical", "complete", _trial_cpr, 1024, 128),
    ("mst/boruvka-engine", "cycle", _trial_boruvka, 48, 16),
]


def _time_call(fn, repeats: int):
    best, value = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def run_speedups(smoke: bool) -> list[dict]:
    repeats = 1 if smoke else 3
    rows = []
    for name, family, make_trial, n_full, n_smoke in SPEEDUP_GRID:
        n = n_smoke if smoke else n_full
        trial = make_trial(n)
        secs_scalar, fp_scalar = _time_call(
            lambda: _run_mode(trial, "scalar-fast"), repeats
        )
        secs_batch, fp_batch = _time_call(
            lambda: _run_mode(trial, "batch", "numpy"), repeats
        )
        if fp_scalar != fp_batch:
            raise AssertionError(f"{name} batch/scalar fingerprints diverged")
        rounds = fp_scalar[1]
        row = {
            "protocol": name,
            "topology": family,
            "n": n,
            "rounds": rounds,
            "scalar_fast_rounds_per_sec": round(rounds / secs_scalar, 2),
            "batch_numpy_rounds_per_sec": round(rounds / secs_batch, 2),
            "speedup_batch_vs_scalar_fast": round(secs_scalar / secs_batch, 2),
        }
        if numba_available():
            secs_numba, fp_numba = _time_call(
                lambda: _run_mode(trial, "batch", "numba"), repeats
            )
            if fp_numba != fp_batch:
                raise AssertionError(
                    f"{name} numba/numpy fingerprints diverged"
                )
            row["batch_numba_rounds_per_sec"] = round(rounds / secs_numba, 2)
            row["speedup_numba_vs_numpy"] = round(secs_batch / secs_numba, 2)
        else:
            row["numba"] = {
                "available": False,
                "reason": "numba not installed in this environment",
            }
        rows.append(row)
        print(
            f"speedup {name:<24} n={n:<5} "
            f"batch {row['batch_numpy_rounds_per_sec']:>10,.0f} r/s | "
            f"scalar-fast {row['scalar_fast_rounds_per_sec']:>10,.0f} r/s | "
            f"batch/fast {row['speedup_batch_vs_scalar_fast']:.2f}x"
        )
    return rows


# -- stage 3: million-node rounds ---------------------------------------------


def _million_lcr(kernel: str, max_rounds: int = 64):
    """C_1e6 Chang–Roberts, round budget capped (full election is Θ(n))."""
    topology = graphs.cycle(MILLION)
    ids = (np.random.default_rng(5).permutation(MILLION) + 1).astype(np.int64)
    program = _LCRBatch(topology, ids)
    metrics = MetricsRecorder()
    engine = SynchronousEngine(
        topology, program, metrics, label="bench-lcr", kernel=kernel
    )
    start = time.perf_counter()
    engine.run(max_rounds=max_rounds)
    seconds = time.perf_counter() - start
    fingerprint = (metrics.messages, metrics.rounds)
    return seconds, metrics, fingerprint


def _million_hs(kernel: str, max_rounds: int = 48):
    """C_1e6 Hirschberg–Sinclair, capped mid-election."""
    topology = graphs.cycle(MILLION)
    ids = (np.random.default_rng(6).permutation(MILLION) + 1).astype(np.int64)
    program = _HSBatch(topology, ids)
    metrics = MetricsRecorder()
    engine = SynchronousEngine(
        topology, program, metrics, label="bench-hs", kernel=kernel
    )
    start = time.perf_counter()
    engine.run(max_rounds=max_rounds)
    seconds = time.perf_counter() - start
    fingerprint = (
        metrics.messages,
        metrics.rounds,
        int(program.phase.sum()),
        int(program.replies.sum()),
    )
    return seconds, metrics, fingerprint


def _million_kpp(kernel: str, candidates: int = 16):
    """K_1e6 KPP, full four-round trial with directly seeded candidates.

    The driver's per-node candidate lottery is Θ(n) Python-loop setup, so
    the bench seeds exactly ``candidates`` candidate nodes (with real RNG
    streams for their referee draws) and runs the engine end to end.
    """
    n = MILLION
    topology = CompleteTopology(n)
    referees = default_referees_complete(n)
    picker = np.random.default_rng(8)
    chosen = np.sort(picker.choice(n, size=candidates, replace=False))
    rngs: list = [None] * n
    seed_rng = RandomSource(31)
    for v in chosen.tolist():
        rngs[v] = seed_rng.spawn()
    program = _KPPBatch(n, rngs, referees)
    program.is_candidate[chosen] = True
    program.rank[chosen] = picker.integers(1, 2**40, size=candidates)
    program.status_codes[~program.is_candidate] = 2  # STATUS_NON_ELECTED
    metrics = MetricsRecorder()
    engine = SynchronousEngine(
        topology, program, metrics, label="bench-kpp", kernel=kernel
    )
    start = time.perf_counter()
    engine.run(max_rounds=4)
    seconds = time.perf_counter() - start
    elected = int(np.count_nonzero(program.status_codes == 1))
    fingerprint = (metrics.messages, metrics.rounds, elected)
    return seconds, metrics, fingerprint


MILLION_GRID = [
    ("le-ring/lcr", "cycle", _million_lcr, "64-round cap (full run is Θ(n) rounds)"),
    ("le-ring/hs", "cycle", _million_hs, "48-round cap (full run is Θ(n) rounds)"),
    ("le-complete/classical", "complete", _million_kpp, "full 4-round trial"),
]


def run_million() -> list[dict]:
    rows = []
    for name, family, runner, note in MILLION_GRID:
        tiers = _kernel_tiers()
        timings = {}
        fingerprints = {}
        for tier in tiers:
            seconds, metrics, fingerprints[tier] = runner(tier)
            timings[tier] = {
                "rounds": metrics.rounds,
                "messages": metrics.messages,
                "seconds": round(seconds, 3),
                "rounds_per_sec": round(metrics.rounds / seconds, 3),
                "messages_per_sec": round(metrics.messages / seconds, 1),
            }
        if len(set(fingerprints.values())) != 1:
            raise AssertionError(
                f"{name} (n=1e6) diverged across kernel tiers: {fingerprints}"
            )
        row = {
            "protocol": name,
            "topology": family,
            "n": MILLION,
            "note": note,
            "edges_materialized": False,
            "tiers": timings,
        }
        if not numba_available():
            row["numba"] = {
                "available": False,
                "reason": "numba not installed in this environment",
            }
        rows.append(row)
        base = timings["numpy"]
        print(
            f"million {name:<24} {family:<9} "
            f"{base['rounds']} rounds, {base['messages']:,} msgs in "
            f"{base['seconds']}s  ({base['messages_per_sec']:,.0f} msg/s)"
        )
    return rows


def run_bench(smoke: bool) -> dict:
    payload = {
        "benchmark": "kernel-tier",
        "smoke": smoke,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "kernel_resolved": resolve_kernel(),
        "numba_available": numba_available(),
        "target": {
            "claim": (
                "batch >= 2x scalar-fast rounds/sec on a newly ported "
                "protocol, fingerprints identical across all paths/tiers"
            ),
            "speedup": TARGET_SPEEDUP,
        },
        "parity": run_parity(smoke),
        "speedups": run_speedups(smoke),
    }
    if not smoke:
        payload["million_node"] = run_million()
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--output", action="store_true",
        help="write BENCH_kernels.json even in smoke mode",
    )
    args = parser.parse_args(argv)
    payload = run_bench(args.smoke)
    best = max(
        row["speedup_batch_vs_scalar_fast"] for row in payload["speedups"]
    )
    print(
        f"best batch/scalar-fast speedup: {best:.2f}x "
        f"(target >= {TARGET_SPEEDUP}x)"
    )
    if not args.smoke or args.output:
        OUTPUT.write_text(json.dumps(payload, indent=1) + "\n")
        print(f"wrote {OUTPUT}")
    if best < TARGET_SPEEDUP:
        print("SPEEDUP TARGET MISSED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
