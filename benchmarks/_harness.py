"""Shared benchmark harness.

Every bench module in this directory regenerates one experiment from the
per-experiment index in DESIGN.md (the paper has no numbered tables/figures;
its evaluation is its theorems).  A bench:

1. sweeps the relevant parameter grid with repeated trials,
2. prints a paper-style comparison table plus fitted exponents,
3. writes the table to ``benchmarks/results/EXX.txt`` (EXPERIMENTS.md quotes
   these files),
4. asserts the reproduced *shape* (who wins, fitted exponents within
   tolerance) so ``pytest benchmarks/ --benchmark-only`` doubles as a
   verification harness,
5. registers a representative single run with pytest-benchmark for wall time.

Schedules use constant failure budgets (α = 1/8-ish) rather than the paper's
1/poly(n): this drops only log(n) boosting factors — identical asymptotic
shape, measurable at laptop scale — and is applied to both the quantum and
the classical side of each comparison.
"""

from __future__ import annotations

import os
import pathlib

from repro.analysis.fitting import PowerLawFit
from repro.analysis.scaling import ScalingSeries
from repro.analysis.tables import comparison_table, render_table
from repro.runtime import get_scenario, run_scenario

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Constant failure budget used across benches (quantum and classical alike).
LEAN_ALPHA = 1.0 / 8.0

#: Worker processes for scenario sweeps: all cores by default, serial with
#: ``REPRO_BENCH_JOBS=1``.  Aggregates are identical either way — per-trial
#: seeds are derived up front by the runtime.
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "0")) or None


def scenario_sweep(
    name: str,
    label: str,
    sizes: list[int] | None = None,
    trials: int | None = None,
    seed: int | None = None,
    params: dict | None = None,
    jobs: int | None = BENCH_JOBS,
) -> ScalingSeries:
    """Run a catalogue scenario (with bench overrides) and return its series."""
    scenario = get_scenario(name).with_overrides(
        sizes=sizes, trials=trials, seed=seed, params=params
    )
    return run_scenario(scenario, jobs=jobs).to_series(label)


def emit(experiment_id: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"=== {experiment_id} ==="
    print(f"\n{banner}\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n")


def fit_line(label: str, fit: PowerLawFit, paper_exponent: float | None) -> str:
    paper = f" (paper: {paper_exponent:.3f})" if paper_exponent is not None else ""
    return f"{label}: measured {fit}{paper}"


def series_block(
    experiment_id: str,
    title: str,
    quantum: ScalingSeries,
    classical: ScalingSeries,
    quantum_fit: PowerLawFit,
    classical_fit: PowerLawFit,
    quantum_paper: float | None,
    classical_paper: float | None,
    notes: str = "",
) -> str:
    """The standard two-series result block."""
    parts = [
        comparison_table(quantum, classical, title=title),
        fit_line("quantum  ", quantum_fit, quantum_paper),
        fit_line("classical", classical_fit, classical_paper),
    ]
    if notes:
        parts.append(notes)
    return "\n".join(parts)


def single_table(title: str, headers: list[str], rows: list[list[str]]) -> str:
    return render_table(headers, rows, title=title)
