"""E4 — Theorem 5.6 / Corollary 5.7: leader election on diameter-2 graphs.

Claim reproduced: QuantumQWLE costs Õ(k + n/√k) messages — Õ(n^{2/3}) at
k = n^{2/3} — versus the tight classical Θ(n) bound [CPR20].

Both sides are normalized per candidate (the shared Θ(log n) candidate
multiplier).  Eliminated candidates leave the loop (Algorithm 3 line 13), so
the alive set decays geometrically and each surviving candidate's total cost
is Θ(1) effective iterations of (slots × Σ√deg) ≈ n^{2/3} — versus the
classical per-candidate flood of deg ≈ n/2 on G(n, 1/2).
"""

from __future__ import annotations

import pytest

from _harness import emit, scenario_sweep, series_block
from repro.analysis.experiments import get_experiment
from repro.core.leader_election.diameter2 import quantum_qwle
from repro.network import graphs
from repro.runtime.registry import lean_qwle_params
from repro.util.rng import RandomSource

SIZES = [256, 512, 1024, 2048]
TRIALS = 3
EXPERIMENT = get_experiment("E4")

_TOPOLOGIES = {}


def _dense_diameter2(n: int):
    """G(n, 1/2): diameter 2 w.h.p. — the dense regime of the Θ(n) bound.

    The catalogue scenario draws the same graph (``fixed_seed=1000`` →
    ``RandomSource(1000 + n)``); this cached copy only feeds the wall-time
    benchmark below.
    """
    if n not in _TOPOLOGIES:
        rng = RandomSource(1000 + n)
        _TOPOLOGIES[n] = graphs.erdos_renyi(n, 0.5, rng, ensure_connected=True)
    return _TOPOLOGIES[n]


@pytest.fixture(scope="module")
def sweep():
    # Catalogue scenarios: QWLE with the lean schedule (α = 1/8, outer =
    # 8·ln n, activation 1/4) vs the CPR baseline on one shared G(n, 1/2)
    # per size, both normalized per candidate.
    quantum = scenario_sweep(
        "diameter2-le/quantum", "quantum", sizes=SIZES, trials=TRIALS, seed=40
    )
    classical = scenario_sweep(
        "diameter2-le/classical", "classical", sizes=SIZES, trials=TRIALS, seed=41
    )
    return quantum, classical


def test_e04_diameter2_le(benchmark, sweep):
    from repro.analysis.fitting import crossover_estimate

    quantum, classical = sweep
    q_fit = quantum.fit()
    c_fit = classical.fit()
    crossover = crossover_estimate(q_fit, c_fit)
    crossover_note = (
        f"predicted crossover n ≈ {crossover:.2e}"
        if crossover is not None
        else "crossover beyond 10^18"
    )
    emit(
        "E4",
        series_block(
            "E4",
            "E4 — LE on dense diameter-2 graphs G(n, 1/2) "
            "(messages per candidate)",
            quantum,
            classical,
            q_fit,
            c_fit,
            EXPERIMENT.quantum_exponent,
            EXPERIMENT.classical_exponent,
            notes=(
                "per-candidate normalization shares out the Θ(log n) "
                "candidate multiplier; the exponent gap 2/3 vs 1 is the "
                "reproduced claim (absolute constants favour classical at "
                f"laptop n — {crossover_note})"
            ),
        ),
    )
    assert quantum.overall_success_rate() > 0.85
    assert classical.overall_success_rate() > 0.85
    assert q_fit.exponent == pytest.approx(2 / 3, abs=0.12)
    assert c_fit.exponent == pytest.approx(1.0, abs=0.12)
    # The headline separation: quantum normalized growth is sublinear.
    q_growth = quantum.messages[-1] / quantum.messages[0]
    c_growth = classical.messages[-1] / classical.messages[0]
    assert q_growth < c_growth

    benchmark.extra_info["quantum_exponent"] = q_fit.exponent
    benchmark.extra_info["classical_exponent"] = c_fit.exponent
    benchmark.pedantic(
        lambda: quantum_qwle(
            _dense_diameter2(256), RandomSource(0), lean_qwle_params(256, 1 / 8)
        ),
        rounds=3,
        iterations=1,
    )
