"""E4 — Theorem 5.6 / Corollary 5.7: leader election on diameter-2 graphs.

Claim reproduced: QuantumQWLE costs Õ(k + n/√k) messages — Õ(n^{2/3}) at
k = n^{2/3} — versus the tight classical Θ(n) bound [CPR20].

Both sides are normalized per candidate (the shared Θ(log n) candidate
multiplier).  Eliminated candidates leave the loop (Algorithm 3 line 13), so
the alive set decays geometrically and each surviving candidate's total cost
is Θ(1) effective iterations of (slots × Σ√deg) ≈ n^{2/3} — versus the
classical per-candidate flood of deg ≈ n/2 on G(n, 1/2).
"""

from __future__ import annotations

import math

import pytest

from _harness import LEAN_ALPHA, emit, series_block
from repro.analysis.experiments import get_experiment
from repro.analysis.scaling import measure_scaling
from repro.classical.leader_election.diameter2_cpr import classical_le_diameter2
from repro.core.leader_election.diameter2 import QWLEParameters, quantum_qwle
from repro.network import graphs
from repro.util.rng import RandomSource

SIZES = [256, 512, 1024, 2048]
TRIALS = 3
EXPERIMENT = get_experiment("E4")

_TOPOLOGIES = {}


def _dense_diameter2(n: int):
    """G(n, 1/2): diameter 2 w.h.p. — the dense regime of the Θ(n) bound."""
    if n not in _TOPOLOGIES:
        rng = RandomSource(1000 + n)
        _TOPOLOGIES[n] = graphs.erdos_renyi(n, 0.5, rng, ensure_connected=True)
    return _TOPOLOGIES[n]


def _lean_params(n: int) -> QWLEParameters:
    # outer = 8·ln n keeps per-candidate survival ≈ n^{-1.66} with
    # activation 1/4 (elimination ≈ 0.25·0.75 per iteration).
    return QWLEParameters(
        alpha=LEAN_ALPHA,
        inner_alpha=LEAN_ALPHA,
        outer_iterations=max(8, math.ceil(8.0 * math.log(n))),
        activation=0.25,
    )


def _quantum_runner(n, rng):
    params = _lean_params(n)
    result = quantum_qwle(_dense_diameter2(n), rng, params)
    candidates = max(1, result.meta["candidates"])
    return round(result.messages / candidates), result.rounds, result.success, {}


def _classical_runner(n, rng):
    result = classical_le_diameter2(_dense_diameter2(n), rng)
    candidates = max(1, result.meta["candidates"])
    return round(result.messages / candidates), result.rounds, result.success, {}


@pytest.fixture(scope="module")
def sweep():
    quantum = measure_scaling("quantum", _quantum_runner, SIZES, TRIALS, seed=40)
    classical = measure_scaling("classical", _classical_runner, SIZES, TRIALS, seed=41)
    return quantum, classical


def test_e04_diameter2_le(benchmark, sweep):
    from repro.analysis.fitting import crossover_estimate

    quantum, classical = sweep
    q_fit = quantum.fit()
    c_fit = classical.fit()
    crossover = crossover_estimate(q_fit, c_fit)
    crossover_note = (
        f"predicted crossover n ≈ {crossover:.2e}"
        if crossover is not None
        else "crossover beyond 10^18"
    )
    emit(
        "E4",
        series_block(
            "E4",
            "E4 — LE on dense diameter-2 graphs G(n, 1/2) "
            "(messages per candidate)",
            quantum,
            classical,
            q_fit,
            c_fit,
            EXPERIMENT.quantum_exponent,
            EXPERIMENT.classical_exponent,
            notes=(
                "per-candidate normalization shares out the Θ(log n) "
                "candidate multiplier; the exponent gap 2/3 vs 1 is the "
                "reproduced claim (absolute constants favour classical at "
                f"laptop n — {crossover_note})"
            ),
        ),
    )
    assert quantum.overall_success_rate() > 0.85
    assert classical.overall_success_rate() > 0.85
    assert q_fit.exponent == pytest.approx(2 / 3, abs=0.12)
    assert c_fit.exponent == pytest.approx(1.0, abs=0.12)
    # The headline separation: quantum normalized growth is sublinear.
    q_growth = quantum.messages[-1] / quantum.messages[0]
    c_growth = classical.messages[-1] / classical.messages[0]
    assert q_growth < c_growth

    benchmark.extra_info["quantum_exponent"] = q_fit.exponent
    benchmark.extra_info["classical_exponent"] = c_fit.exponent
    benchmark.pedantic(
        lambda: quantum_qwle(
            _dense_diameter2(256), RandomSource(0), _lean_params(256)
        ),
        rounds=3,
        iterations=1,
    )
