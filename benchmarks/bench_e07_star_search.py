"""E7 — Appendix B.2 (Searching): distributed search on a star graph.

Claim reproduced: the centre of a star can find a leaf holding a 1-bit with
O(√n) quantum messages (distributed Grover, Theorem 4.1) versus the classical
Θ(n) flood — and the bucketed variant trades rounds for messages:
O(√(n/k)) rounds at O(√(nk)) messages.
"""

from __future__ import annotations

import math

import pytest

from _harness import LEAN_ALPHA, emit, single_table
from repro.analysis.fitting import fit_power_law
from repro.core.grover import distributed_grover_search
from repro.core.procedures import SetOracle, uniform_charge
from repro.network.metrics import MetricsRecorder
from repro.util.rng import RandomSource

SIZES = [256, 1024, 4096, 16384, 65536]
TRIALS = 40
MARKED_LEAVES = 1  # worst case: a single marked leaf

#: 25 searches run across the sweep; α = 0.01 keeps P[any miss] ≈ 10⁻³ while
#: only multiplying messages by a constant (attempts 8 → 16).
SEARCH_ALPHA = 0.01


def _quantum_search_cost(n: int, seed: int) -> tuple[float, bool]:
    """Average messages of the star-graph Grover search (single marked leaf,
    worst case: ε = 1/n so the schedule cannot stop early on a miss)."""
    total = 0
    found = True
    for t in range(TRIALS):
        oracle = SetOracle(
            domain=range(n),
            marked={0},
            charge_checking=uniform_charge(2, 2, "star.checking"),
        )
        metrics = MetricsRecorder()
        result = distributed_grover_search(
            oracle, 1.0 / n, SEARCH_ALPHA, metrics, RandomSource(seed + t)
        )
        total += metrics.messages
        found = found and result.succeeded
    return total / TRIALS, found


def _classical_cost(n: int) -> int:
    """Classical lower bound on the star: ask every leaf (n−1 probes)."""
    return 2 * (n - 1)


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for n in SIZES:
        quantum, found = _quantum_search_cost(n, seed=n)
        rows.append((n, quantum, _classical_cost(n), found))
    return rows


def test_e07_star_search(benchmark, sweep):
    table = [
        [str(n), f"{q:,.0f}", f"{c:,}", f"{c / q:.2f}"]
        for n, q, c, _ in sweep
    ]
    sizes = [row[0] for row in sweep]
    quantum_fit = fit_power_law(sizes, [row[1] for row in sweep])
    emit(
        "E7",
        single_table(
            "E7 — star-graph search: centre finds the marked leaf",
            ["n", "quantum msgs", "classical msgs", "ratio"],
            table,
        )
        + f"\nquantum: measured {quantum_fit} (paper: 0.500); classical: n^1 exactly",
    )
    assert all(found for *_, found in sweep)
    assert quantum_fit.exponent == pytest.approx(0.5, abs=0.1)
    assert sweep[-1][1] < sweep[-1][2]  # quantum wins at the top

    # Bucketed variant: k buckets of size n/k — O(√(n/k)) rounds, O(√(nk)) msgs.
    n = 16384
    bucket_rows = []
    for k in (1, 16, 256):
        buckets = n // k
        oracle = SetOracle(
            domain=range(buckets),
            marked={0},
            charge_checking=uniform_charge(2 * k, 2, "star.bucket-checking"),
        )
        metrics = MetricsRecorder()
        distributed_grover_search(
            oracle, 1.0 / buckets, SEARCH_ALPHA, metrics, RandomSource(k)
        )
        bucket_rows.append(
            [str(k), f"{metrics.messages:,}", f"{metrics.rounds:,}"]
        )
    emit(
        "E7-buckets",
        single_table(
            f"E7 — bucketed star search at n={n} (rounds vs messages)",
            ["bucket size k", "messages", "rounds"],
            bucket_rows,
        ),
    )
    # Larger buckets: more messages, fewer rounds.
    messages = [int(r[1].replace(",", "")) for r in bucket_rows]
    rounds = [int(r[2].replace(",", "")) for r in bucket_rows]
    assert messages[0] < messages[-1]
    assert rounds[0] > rounds[-1]

    benchmark.extra_info["quantum_exponent"] = quantum_fit.exponent
    benchmark.pedantic(
        lambda: _quantum_search_cost(16384, seed=0), rounds=3, iterations=1
    )
