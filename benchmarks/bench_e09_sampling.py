"""E9 — Fact C.2: candidate sampling and rank uniqueness.

Claim reproduced: when every node volunteers with probability 12·ln(n)/n and
draws a rank from {1, …, n⁴}, then with probability ≥ 1 − 1/n² there is at
least one and at most 24·ln n candidates, and all ranks are distinct.  This
is the randomized foundation every protocol in the paper stands on.
"""

from __future__ import annotations

import math

import pytest

from _harness import emit, single_table
from repro.core.candidates import draw_candidates
from repro.util.rng import RandomSource

SIZES = [128, 512, 2048, 8192]
DRAWS = 400


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for n in SIZES:
        root = RandomSource(90 + n)
        holds = 0
        counts = []
        tie_free = 0
        for _ in range(DRAWS):
            draw = draw_candidates(n, root.spawn())
            holds += draw.within_fact_c2()
            counts.append(draw.count)
            tie_free += draw.has_unique_ranks
        rows.append(
            (
                n,
                holds / DRAWS,
                tie_free / DRAWS,
                sum(counts) / DRAWS,
                12 * math.log(n),
                max(counts),
                24 * math.log(n),
            )
        )
    return rows


def test_e09_sampling(benchmark, sweep):
    table = [
        [
            str(n),
            f"{rate:.4f}",
            f"{ties:.4f}",
            f"{mean:.1f}",
            f"{expectation:.1f}",
            str(worst),
            f"{cap:.1f}",
        ]
        for n, rate, ties, mean, expectation, worst, cap in sweep
    ]
    emit(
        "E9",
        single_table(
            f"E9 — Fact C.2 over {DRAWS} draws per size",
            [
                "n",
                "Fact C.2 rate",
                "unique-rank rate",
                "mean #cand",
                "12·ln n",
                "max #cand",
                "24·ln n",
            ],
            table,
        )
        + "\npaper: both clauses hold w.p. >= 1 - 1/n^2",
    )
    for n, rate, ties, mean, expectation, worst, cap in sweep:
        # 1 − 1/n² is indistinguishable from 1 at 400 draws; demand ≥ 399/400.
        assert rate >= 1.0 - 2.0 / DRAWS
        assert ties == 1.0
        assert mean == pytest.approx(expectation, rel=0.15)
        assert worst <= cap

    benchmark.pedantic(
        lambda: [draw_candidates(2048, RandomSource(s)) for s in range(50)],
        rounds=3,
        iterations=1,
    )
