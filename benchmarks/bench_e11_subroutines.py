"""E11 — Theorem 4.1 / Corollary 4.3 vs classical sampling: subroutine laws.

Claim reproduced: the two quantum primitives underlying every protocol obey
their promised message laws as functions of the promise parameter —

* distributed Grover search: messages ∝ 1/√ε   (classical sampling: 1/ε);
* ApproxCount:              messages ∝ 1/c    (classical sampling: 1/c²).

Measured directly against the never-success worst case (search) and the
standard star-graph oracle (counting), with the classical curves computed
from the matching Chernoff/coupon bounds.
"""

from __future__ import annotations

import math

import pytest

from _harness import LEAN_ALPHA, emit, single_table
from repro.analysis.fitting import fit_power_law
from repro.core.counting import approx_count
from repro.core.grover import distributed_grover_search
from repro.core.procedures import SetOracle, uniform_charge
from repro.network.metrics import MetricsRecorder
from repro.util.rng import RandomSource

EPSILONS = [2**-4, 2**-6, 2**-8, 2**-10, 2**-12]
TRIALS = 10


def _grover_cost(epsilon: float) -> float:
    """Worst-case (no marked element): the full Theorem 4.1 schedule runs."""
    total = 0
    for t in range(TRIALS):
        oracle = SetOracle(
            domain=range(64),
            marked=set(),
            charge_checking=uniform_charge(2, 2, "e11.checking"),
        )
        metrics = MetricsRecorder()
        distributed_grover_search(
            oracle, epsilon, LEAN_ALPHA, metrics, RandomSource(t)
        )
        total += metrics.messages
    return total / TRIALS


def _count_cost(accuracy: float) -> float:
    oracle = SetOracle(
        domain=range(256),
        marked=set(range(100)),
        charge_checking=uniform_charge(2, 2, "e11.count"),
    )
    metrics = MetricsRecorder()
    approx_count(oracle, accuracy, LEAN_ALPHA, metrics, RandomSource(0))
    return metrics.messages


@pytest.fixture(scope="module")
def laws():
    grover_rows = [
        (eps, _grover_cost(eps), 2 * math.ceil(math.log(1 / LEAN_ALPHA) / eps))
        for eps in EPSILONS
    ]
    count_rows = [
        (c, _count_cost(c), 2 * math.ceil(math.log(2 / LEAN_ALPHA) / (2 * c**2)))
        for c in (0.1, 0.05, 0.025, 0.0125)
    ]
    return grover_rows, count_rows


def test_e11_subroutine_laws(benchmark, laws):
    grover_rows, count_rows = laws
    grover_table = [
        [f"{eps:g}", f"{q:,.0f}", f"{c:,}"] for eps, q, c in grover_rows
    ]
    count_table = [
        [f"{c:g}", f"{q:,.0f}", f"{cl:,}"] for c, q, cl in count_rows
    ]
    inv_eps = [1 / eps for eps, *_ in grover_rows]
    grover_fit = fit_power_law(inv_eps, [q for _, q, _ in grover_rows])
    inv_c = [1 / c for c, *_ in count_rows]
    count_fit = fit_power_law(inv_c, [q for _, q, _ in count_rows])
    emit(
        "E11",
        single_table(
            "E11 — Grover search message law (worst case, per search)",
            ["ε", "quantum msgs", "classical (Chernoff) msgs"],
            grover_table,
        )
        + f"\nquantum: (1/ε)^{grover_fit.exponent:.3f} (paper: 0.5)\n\n"
        + single_table(
            "E11 — ApproxCount message law",
            ["c", "quantum msgs", "classical (Hoeffding) msgs"],
            count_table,
        )
        + f"\nquantum: (1/c)^{count_fit.exponent:.3f} (paper: 1.0)",
    )
    assert grover_fit.exponent == pytest.approx(0.5, abs=0.05)
    assert count_fit.exponent == pytest.approx(1.0, abs=0.05)
    # Quadratic separations at the demanding end of each grid.
    assert grover_rows[-1][1] < grover_rows[-1][2]
    assert count_rows[-1][1] < count_rows[-1][2]

    benchmark.extra_info["grover_exponent"] = grover_fit.exponent
    benchmark.extra_info["count_exponent"] = count_fit.exponent
    benchmark.pedantic(lambda: _grover_cost(2**-10), rounds=3, iterations=1)
