"""E6 — Theorem 6.7 / Corollary 6.8: implicit agreement with a shared coin.

Claim reproduced: QuantumAgreement reaches valid implicit agreement with
expected Õ(n^{1/5}) messages (ε = n^{-1/5}, γ = 2/15) versus the classical
Õ(n^{2/5}) of [AMP18].  The two protocols share their loop structure; the
quantum one replaces sampling estimation (Θ(1/ε²)) with ApproxCount (Θ(1/ε))
and sampling detection (Θ(n/s)) with Grover detection (Θ(√(n/s))) — both
quadratic improvements, measured here per candidate with matched constant
confidence budgets.
"""

from __future__ import annotations

import pytest

from _harness import LEAN_ALPHA, emit, series_block
from repro.analysis.experiments import get_experiment
from repro.analysis.scaling import measure_scaling
from repro.classical.agreement.amp18 import classical_agreement_shared
from repro.core.agreement.quantum_agreement import quantum_agreement
from repro.util.rng import RandomSource

SIZES = [4096, 16384, 65536, 262144, 1048576]
TRIALS = 3
EXPERIMENT = get_experiment("E6")


def _inputs(n: int, rng: RandomSource) -> list[int]:
    ones = int(0.3 * n)
    return [1] * ones + [0] * (n - ones)


def _epsilon(n: int) -> float:
    """ε = n^{-1/5}/4: the paper's exponent with a constant that keeps ε
    inside the admissible (Θ(1/n), 1/20] range on a laptop-scale grid (the
    default constant hits the 1/20 cap until n > 20⁵ ≈ 3.2M, which would
    flatten the measured slope to zero)."""
    return n ** (-1.0 / 5.0) / 4.0


def _quantum_runner(n, rng):
    result = quantum_agreement(
        _inputs(n, rng),
        rng,
        epsilon=_epsilon(n),
        estimation_alpha=LEAN_ALPHA,
        detection_alpha=LEAN_ALPHA,
    )
    per_candidate = result.messages / max(1, result.meta["candidates"])
    return round(per_candidate), result.rounds, result.success, {}


def _classical_runner(n, rng):
    result = classical_agreement_shared(
        _inputs(n, rng),
        rng,
        epsilon=_epsilon(n),
        estimation_alpha=LEAN_ALPHA,
        detection_alpha=LEAN_ALPHA,
    )
    per_candidate = result.messages / max(1, result.meta["candidates"])
    return round(per_candidate), result.rounds, result.success, {}


@pytest.fixture(scope="module")
def sweep():
    quantum = measure_scaling("quantum", _quantum_runner, SIZES, TRIALS, seed=60)
    classical = measure_scaling("classical", _classical_runner, SIZES, TRIALS, seed=61)
    return quantum, classical


def test_e06_agreement(benchmark, sweep):
    quantum, classical = sweep
    q_fit = quantum.fit()
    c_fit = classical.fit()
    emit(
        "E6",
        series_block(
            "E6",
            "E6 — implicit agreement on K_n, shared coin (messages per candidate)",
            quantum,
            classical,
            q_fit,
            c_fit,
            EXPERIMENT.quantum_exponent,
            EXPERIMENT.classical_exponent,
            notes=(
                "epsilon = n^(-1/5)/4 on both sides (constant chosen so the "
                "1/20 admissibility cap does not bind on this grid); "
                "gamma = 2/15 (quantum), s = n^(2/5) (classical)"
            ),
        ),
    )
    assert quantum.overall_success_rate() > 0.9
    assert classical.overall_success_rate() > 0.9
    assert q_fit.exponent == pytest.approx(1 / 5, abs=0.1)
    assert c_fit.exponent == pytest.approx(2 / 5, abs=0.1)
    # Who wins: quantum cheaper per candidate at the top of the grid.
    assert quantum.messages[-1] < classical.messages[-1]

    benchmark.extra_info["quantum_exponent"] = q_fit.exponent
    benchmark.extra_info["classical_exponent"] = c_fit.exponent
    benchmark.pedantic(
        lambda: quantum_agreement(
            _inputs(16384, RandomSource(0)),
            RandomSource(0),
            estimation_alpha=LEAN_ALPHA,
            detection_alpha=LEAN_ALPHA,
        ),
        rounds=3,
        iterations=1,
    )
