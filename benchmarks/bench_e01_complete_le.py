"""E1 — Theorem 5.2 / Corollary 5.3: leader election on complete graphs.

Claim reproduced: QuantumLE elects a unique leader w.h.p. with Õ(n^{1/3})
messages, beating the tight classical Θ̃(√n) [KPP+15b].  Both sides are
normalized per candidate (the Θ(log n) candidate multiplier is shared), and
the classical √(ln n) referee factor is divided out via the harness's
polylog correction so the polynomial exponents are identifiable.
"""

from __future__ import annotations

import pytest

from _harness import LEAN_ALPHA, emit, scenario_sweep, series_block
from repro.analysis.experiments import get_experiment
from repro.core.leader_election.complete import quantum_le_complete
from repro.util.rng import RandomSource

SIZES = [1024, 4096, 16384, 65536]
TRIALS = 3
EXPERIMENT = get_experiment("E1")


@pytest.fixture(scope="module")
def sweep():
    # Catalogue scenarios: QuantumLE at the paper-exact α = 1/n² (early
    # stopping makes the w.h.p. schedule affordable) vs the KPP baseline,
    # both normalized per candidate; trials fan out over all cores.
    quantum = scenario_sweep(
        "complete-le/quantum", "quantum", sizes=SIZES, trials=TRIALS, seed=10
    )
    classical = scenario_sweep(
        "complete-le/classical", "classical", sizes=SIZES, trials=TRIALS, seed=11
    )
    return quantum, classical


def test_e01_complete_le(benchmark, sweep):
    quantum, classical = sweep
    q_fit = quantum.fit()
    c_fit = classical.fit(polylog_power=0.5)  # referees ∝ √(n·ln n)
    emit(
        "E1",
        series_block(
            "E1",
            "E1 — LE on K_n (messages per candidate)",
            quantum,
            classical,
            q_fit,
            c_fit,
            EXPERIMENT.quantum_exponent,
            EXPERIMENT.classical_exponent,
            notes=(
                "quantum advantage at n=65536: "
                f"{classical.messages[-1] / quantum.messages[-1]:.2f}x fewer "
                "messages per candidate"
            ),
        ),
    )
    assert quantum.overall_success_rate() > 0.9
    assert classical.overall_success_rate() > 0.9
    assert q_fit.exponent == pytest.approx(1 / 3, abs=0.08)
    assert c_fit.exponent == pytest.approx(1 / 2, abs=0.08)
    # Who wins: quantum strictly cheaper at the top of the grid.
    assert quantum.messages[-1] < classical.messages[-1]

    benchmark.extra_info["quantum_exponent"] = q_fit.exponent
    benchmark.extra_info["classical_exponent"] = c_fit.exponent
    benchmark.extra_info["advantage_at_top"] = (
        classical.messages[-1] / quantum.messages[-1]
    )
    benchmark.pedantic(
        lambda: quantum_le_complete(4096, RandomSource(0), alpha=LEAN_ALPHA),
        rounds=3,
        iterations=1,
    )
