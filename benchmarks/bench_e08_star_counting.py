"""E8 — Appendix B.2 (Counting) / Corollary 4.3: approximate counting.

Claim reproduced: the centre of a star estimates the number of leaves with a
1-bit to ±εn using O(1/ε) quantum messages (ApproxCount) versus the classical
Θ(1/ε²) sampling bound — and the estimates actually satisfy the Corollary 4.3
error guarantee.
"""

from __future__ import annotations

import math

import pytest

from _harness import LEAN_ALPHA, emit, single_table
from repro.analysis.fitting import fit_power_law
from repro.core.counting import approx_count
from repro.core.procedures import SetOracle, uniform_charge
from repro.network.metrics import MetricsRecorder
from repro.util.rng import RandomSource

N = 4096
TRUE_COUNT = 1234
ACCURACIES = [0.08, 0.04, 0.02, 0.01, 0.005]
TRIALS = 5


def _quantum_cost(accuracy: float, seed: int) -> tuple[float, float]:
    """(average messages, max |error| / (accuracy·N)) over trials."""
    total = 0
    worst_error = 0.0
    for t in range(TRIALS):
        oracle = SetOracle(
            domain=range(N),
            marked=set(range(TRUE_COUNT)),
            charge_checking=uniform_charge(2, 2, "star.count-checking"),
        )
        metrics = MetricsRecorder()
        result = approx_count(
            oracle, accuracy, LEAN_ALPHA, metrics, RandomSource(seed + t)
        )
        total += metrics.messages
        worst_error = max(worst_error, abs(result.estimate - TRUE_COUNT))
    return total / TRIALS, worst_error / (accuracy * N)


def _classical_cost(accuracy: float) -> int:
    """Hoeffding sampling: ln(2/α)/(2ε²) probes, 2 messages each."""
    samples = math.ceil(math.log(2.0 / LEAN_ALPHA) / (2.0 * accuracy**2))
    return 2 * samples


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for accuracy in ACCURACIES:
        quantum, relative_error = _quantum_cost(accuracy, seed=int(1 / accuracy))
        rows.append((accuracy, quantum, _classical_cost(accuracy), relative_error))
    return rows


def test_e08_star_counting(benchmark, sweep):
    table = [
        [
            f"{acc:g}",
            f"{q:,.0f}",
            f"{c:,}",
            f"{c / q:.2f}",
            f"{err:.2f}",
        ]
        for acc, q, c, err in sweep
    ]
    inverse_eps = [1.0 / acc for acc, *_ in sweep]
    q_fit = fit_power_law(inverse_eps, [row[1] for row in sweep])
    c_fit = fit_power_law(inverse_eps, [row[2] for row in sweep])
    emit(
        "E8",
        single_table(
            f"E8 — approximate counting to ±εn on a star (n={N}, t={TRUE_COUNT})",
            ["ε", "quantum msgs", "classical msgs", "ratio", "err/(εn)"],
            table,
        )
        + (
            f"\nin 1/ε: quantum (1/ε)^{q_fit.exponent:.3f} (paper: 1), "
            f"classical (1/ε)^{c_fit.exponent:.3f} (paper: 2)"
        ),
    )
    # Error guarantee: every measured error within the ±εn budget.
    assert all(err <= 1.0 for *_, err in sweep)
    # Scaling: 1/ε vs 1/ε².
    assert q_fit.exponent == pytest.approx(1.0, abs=0.1)
    assert c_fit.exponent == pytest.approx(2.0, abs=0.1)
    # Who wins: quadratic separation dominates by the tight end of the grid.
    assert sweep[-1][1] < sweep[-1][2]

    benchmark.extra_info["quantum_eps_exponent"] = q_fit.exponent
    benchmark.extra_info["classical_eps_exponent"] = c_fit.exponent
    benchmark.pedantic(
        lambda: _quantum_cost(0.02, seed=0), rounds=3, iterations=1
    )
