"""E5 — Theorem 5.10: explicit leader election on general graphs.

Claim reproduced: QuantumGeneralLE costs Õ(√(mn)) messages versus the tight
classical Θ(m) [KPP+15a].  Two sweeps:

* **density sweep** at fixed n — quantum per-phase cost grows like √m while
  the classical per-phase cost grows like m;
* **size sweep** at fixed average degree — both grow, but quantum more slowly
  (√(mn) = n·√d̄ vs m = n·d̄/2: same n-slope, √ vs linear d̄-slope, so the
  density sweep is the discriminating one).

The dense end also demonstrates the absolute win: fewer quantum messages per
phase than the classical probe-everything floor.
"""

from __future__ import annotations

import math

import pytest

from _harness import LEAN_ALPHA, emit, single_table
from repro.classical.leader_election.general_ghs import classical_le_general
from repro.core.leader_election.general import quantum_general_le
from repro.network import graphs
from repro.util.rng import RandomSource

N_FIXED = 192
DENSITIES = [0.05, 0.1, 0.2, 0.4, 0.8]
TRIALS = 2


def _measure(topology, seed):
    quantum_costs, classical_costs = [], []
    ok = True
    for t in range(TRIALS):
        rng = RandomSource(seed + t)
        q = quantum_general_le(topology, rng.spawn(), alpha=LEAN_ALPHA)
        c = classical_le_general(topology, rng.spawn())
        ok = ok and q.explicit_success and c.explicit_success
        quantum_costs.append(q.messages / q.meta["phases"])
        classical_costs.append(c.messages / c.meta["phases"])
    return (
        sum(quantum_costs) / TRIALS,
        sum(classical_costs) / TRIALS,
        ok,
    )


@pytest.fixture(scope="module")
def density_sweep():
    rows = []
    for p in DENSITIES:
        rng = RandomSource(int(p * 1000))
        topology = graphs.erdos_renyi(N_FIXED, p, rng)
        quantum, classical, ok = _measure(topology, seed=int(p * 7919))
        rows.append((p, topology.edge_count(), quantum, classical, ok))
    return rows


def test_e05_general_le(benchmark, density_sweep):
    table_rows = []
    for p, m, quantum, classical, ok in density_sweep:
        envelope = math.sqrt(m * N_FIXED)
        table_rows.append(
            [
                f"{p:.2f}",
                f"{m:,}",
                f"{quantum:,.0f}",
                f"{classical:,.0f}",
                f"{classical / quantum:.2f}",
                f"{envelope:,.0f}",
            ]
        )
    # Growth exponents in m (per-phase costs at fixed n).
    ms = [row[1] for row in density_sweep]
    q_growth = density_sweep[-1][2] / density_sweep[0][2]
    c_growth = density_sweep[-1][3] / density_sweep[0][3]
    m_growth = ms[-1] / ms[0]
    q_exp = math.log(q_growth) / math.log(m_growth)
    c_exp = math.log(c_growth) / math.log(m_growth)
    emit(
        "E5",
        single_table(
            f"E5 — explicit LE, density sweep at n={N_FIXED} (per-phase messages)",
            ["p", "m", "quantum", "classical", "ratio", "sqrt(mn)"],
            table_rows,
        )
        + (
            f"\nper-phase growth in m: quantum m^{q_exp:.3f} (paper: 0.5), "
            f"classical m^{c_exp:.3f} (paper: 1.0)"
        ),
    )
    assert all(ok for *_, ok in density_sweep)
    assert q_exp == pytest.approx(0.5, abs=0.15)
    assert c_exp == pytest.approx(1.0, abs=0.1)
    # Who wins: at the dense end quantum beats the classical per-phase cost.
    assert density_sweep[-1][2] < density_sweep[-1][3]

    benchmark.extra_info["quantum_m_exponent"] = q_exp
    benchmark.extra_info["classical_m_exponent"] = c_exp
    dense = graphs.erdos_renyi(N_FIXED, 0.8, RandomSource(800))
    benchmark.pedantic(
        lambda: quantum_general_le(dense, RandomSource(1), alpha=LEAN_ALPHA),
        rounds=3,
        iterations=1,
    )
