"""E3 — Theorem 5.4 / Corollary 5.5: leader election with mixing time τ.

Claim reproduced: QuantumRWLE costs Õ(τk + τ²√(n/k)) messages (optimized:
Õ(τ^{5/3}·n^{1/3}) at k = τ^{2/3}n^{1/3}), beating the classical random-walk
protocol's Õ(τ·√n) [KPP+15b].  Measured on hypercubes (τ = Θ(polylog n),
supplied to both protocols as the known bound the paper assumes) and
validated at fixed n by a τ sweep.
"""

from __future__ import annotations

import pytest

from _harness import emit, series_block, single_table
from repro.analysis.experiments import get_experiment
from repro.analysis.scaling import measure_scaling
from repro.classical.leader_election.mixing_rw import classical_le_mixing
from repro.core.leader_election.mixing import quantum_rwle
from repro.network import graphs
from repro.util.rng import RandomSource

DIMENSIONS = [7, 9, 11, 13]  # n = 128 … 8192
TRIALS = 3
EXPERIMENT = get_experiment("E3")

_TOPOLOGIES = {}


def _hypercube(n: int):
    if n not in _TOPOLOGIES:
        _TOPOLOGIES[n] = graphs.HypercubeTopology.of_size(n)
    return _TOPOLOGIES[n]


def _tau(n: int) -> int:
    # Hypercube mixing bound Θ(d·log d); 2d is a faithful known upper bound
    # for the lazy walk at these sizes.
    return 2 * (n.bit_length() - 1)


def _quantum_runner(n, rng):
    result = quantum_rwle(_hypercube(n), rng, tau=_tau(n))
    per_candidate = result.messages / max(1, result.meta["candidates"])
    return round(per_candidate), result.rounds, result.success, {}


def _classical_runner(n, rng):
    result = classical_le_mixing(_hypercube(n), rng, tau=_tau(n))
    per_candidate = result.messages / max(1, result.meta["candidates"])
    return round(per_candidate), result.rounds, result.success, {}


@pytest.fixture(scope="module")
def sweep():
    sizes = [1 << d for d in DIMENSIONS]
    quantum = measure_scaling("quantum", _quantum_runner, sizes, TRIALS, seed=30)
    classical = measure_scaling("classical", _classical_runner, sizes, TRIALS, seed=31)
    return quantum, classical


def test_e03_mixing_le(benchmark, sweep):
    quantum, classical = sweep
    # Both sides carry τ = Θ(log n) factors: τ^{5/3} ≈ (2 ln n / ln 2)^{5/3}
    # on the quantum side, τ·√(ln n) classically.  Divide them out so the
    # polynomial exponent is identifiable on this grid.
    q_fit = quantum.fit(polylog_power=5 / 3)
    c_fit = classical.fit(polylog_power=1.5)
    emit(
        "E3",
        series_block(
            "E3",
            "E3 — LE on hypercubes with known τ (messages per candidate)",
            quantum,
            classical,
            q_fit,
            c_fit,
            EXPERIMENT.quantum_exponent,
            EXPERIMENT.classical_exponent,
            notes=(
                "tau(n) = 2·log2(n); polylog corrections: quantum tau^(5/3), "
                "classical tau·sqrt(ln n)"
            ),
        ),
    )
    assert quantum.overall_success_rate() > 0.9
    assert classical.overall_success_rate() > 0.9
    assert q_fit.exponent == pytest.approx(1 / 3, abs=0.12)
    assert c_fit.exponent == pytest.approx(1 / 2, abs=0.12)

    # τ sweep at fixed n: quantum grows ~τ^{5/3}, classical ~τ, and the
    # paper's closing conjecture (message complexity linear in τ) realized
    # as the experimental decentralized-Checking variant.
    topology = _hypercube(1 << 10)
    tau_rows = []
    for tau in (5, 10, 20, 40):
        q = quantum_rwle(topology, RandomSource(tau), tau=tau)
        conjectured = quantum_rwle(
            topology,
            RandomSource(tau),
            tau=tau,
            checking_mode="conjectured-decentralized",
        )
        c = classical_le_mixing(topology, RandomSource(tau + 1), tau=tau)
        tau_rows.append(
            [
                str(tau),
                f"{q.messages:,}",
                f"{conjectured.messages:,}",
                f"{c.messages:,}",
            ]
        )
    emit(
        "E3-tau",
        single_table(
            "E3 — τ sweep at n=1024 (total messages)",
            ["tau", "quantum msgs", "conjectured τ-linear msgs", "classical msgs"],
            tau_rows,
        )
        + (
            "\nconjectured variant = Conclusion's open question, simulated "
            "with decentralized Checking (EXPERIMENTAL, beyond the proven "
            "toolkit)"
        ),
    )
    # The conjectured variant must sit at or below the proven protocol.
    proven = [int(r[1].replace(",", "")) for r in tau_rows]
    conjectured_costs = [int(r[2].replace(",", "")) for r in tau_rows]
    assert all(c <= p for c, p in zip(conjectured_costs, proven))

    benchmark.extra_info["quantum_exponent"] = q_fit.exponent
    benchmark.extra_info["classical_exponent"] = c_fit.exponent
    benchmark.pedantic(
        lambda: quantum_rwle(_hypercube(1 << 9), RandomSource(0), tau=18),
        rounds=3,
        iterations=1,
    )
