"""E2 — Section 5.1 closing remark: QuantumLE round/message trade-off.

Claim reproduced: with trade-off knob k, QuantumLE takes Õ(√(n/k)) rounds and
Õ(k + √(n/k)) messages; k = n^{1/3} minimizes messages, and k = n^{5/12}
yields o(n^{1/3}) rounds while still using o(√n) messages — i.e. the quantum
protocol can be made *faster* than the message-optimal point and still beat
the classical Θ̃(√n) message bound.
"""

from __future__ import annotations

import math

import pytest

from _harness import emit, single_table
from repro.core.leader_election.complete import quantum_le_complete
from repro.util.rng import RandomSource

N = 16384
TRIALS = 3


def _run_at_k(k: int) -> tuple[float, float]:
    messages, rounds = [], []
    for seed in range(TRIALS):
        result = quantum_le_complete(N, RandomSource(seed), k=k)
        messages.append(result.messages / max(1, result.meta["candidates"]))
        rounds.append(result.rounds)
    return (
        sum(messages) / len(messages),
        sum(rounds) / len(rounds),
    )


@pytest.fixture(scope="module")
def tradeoff():
    ks = {
        "k=1": 1,
        "k=n^1/4": round(N ** (1 / 4)),
        "k=n^1/3 (msg-opt)": round(N ** (1 / 3)),
        "k=n^5/12 (fast)": round(N ** (5 / 12)),
        "k=n^1/2": round(N ** (1 / 2)),
    }
    return {label: (k, *_run_at_k(k)) for label, k in ks.items()}


def test_e02_tradeoff(benchmark, tradeoff):
    rows = [
        [label, str(k), f"{messages:,.0f}", f"{rounds:,.0f}"]
        for label, (k, messages, rounds) in tradeoff.items()
    ]
    emit(
        "E2",
        single_table(
            f"E2 — QuantumLE trade-off at n={N} (per-candidate messages)",
            ["setting", "k", "msgs/cand", "rounds"],
            rows,
        )
        + (
            f"\nclassical per-candidate cost ~ 2*sqrt(n ln n) = "
            f"{2 * math.sqrt(N * math.log(N)):.0f}"
        ),
    )
    k_opt = tradeoff["k=n^1/3 (msg-opt)"]
    k_fast = tradeoff["k=n^5/12 (fast)"]
    k_low = tradeoff["k=1"]
    k_high = tradeoff["k=n^1/2"]
    # Message optimum at k = n^{1/3}: beats both extremes.
    assert k_opt[1] <= k_low[1]
    assert k_opt[1] <= k_high[1]
    # Faster point: fewer rounds than message-opt, messages still well below
    # the classical Θ̃(√n) baseline (2√(n·ln n) per candidate, measured in E1).
    assert k_fast[2] < k_opt[2]
    assert k_fast[1] < math.sqrt(N * math.log(N))
    # Rounds track √(n/k): k=1 vs message-opt ratio.
    expected_ratio = math.sqrt(N) / math.sqrt(N / round(N ** (1 / 3)))
    assert k_low[2] / k_opt[2] == pytest.approx(expected_ratio, rel=0.35)

    benchmark.extra_info["rows"] = {
        label: (k, messages, rounds)
        for label, (k, messages, rounds) in tradeoff.items()
    }
    benchmark.pedantic(
        lambda: quantum_le_complete(
            N, RandomSource(1), k=round(N ** (1 / 3))
        ),
        rounds=3,
        iterations=1,
    )
