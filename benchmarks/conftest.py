"""Benchmark-suite configuration."""

import pytest


@pytest.fixture(autouse=True)
def _show_output(capsys):
    """Let result tables through even without -s: print at teardown."""
    yield
