"""E10 — Section 5.4's MST remark: quantum tree merging computes the MST.

Claim reproduced: replacing the arbitrary-outgoing-edge Grover search with
Dürr–Høyer *minimum* finding turns QuantumGeneralLE into an MST algorithm
with the same Õ(√(mn)) message envelope.  Verified against networkx's MST on
every instance, with the classical Θ(m)-per-phase Borůvka comparator
(probe-all-ports minimum finding) measured alongside (density sweep, as in
E5); both sides produce the exact MST.
"""

from __future__ import annotations

import math

import networkx as nx
import pytest

from _harness import LEAN_ALPHA, emit, single_table
from repro.classical.mst_boruvka import classical_mst
from repro.core.leader_election.mst import quantum_mst
from repro.network import graphs
from repro.util.rng import RandomSource

N = 128
DENSITIES = [0.1, 0.3, 0.6, 0.9]
TRIALS = 2


def _instance(p: float):
    rng = RandomSource(int(p * 10_000))
    topology = graphs.erdos_renyi(N, p, rng)
    weights = {
        edge: float(rng.uniform_int(1, 10**6)) for edge in topology.edges()
    }
    return topology, weights


def _true_mst_weight(topology, weights) -> float:
    g = nx.Graph()
    for (u, v), w in weights.items():
        g.add_edge(u, v, weight=w)
    tree = nx.minimum_spanning_tree(g)
    return sum(d["weight"] for _, _, d in tree.edges(data=True))


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for p in DENSITIES:
        topology, weights = _instance(p)
        truth = _true_mst_weight(topology, weights)
        matches = 0
        quantum_cost = 0.0
        classical_cost = 0.0
        for t in range(TRIALS):
            rng = RandomSource(7000 + t)
            result = quantum_mst(topology, weights, rng.spawn(), alpha=LEAN_ALPHA)
            matches += result.is_spanning and math.isclose(
                result.total_weight, truth
            )
            quantum_cost += result.messages / result.meta["phases"]
            baseline = classical_mst(topology, weights, rng.spawn())
            assert baseline.is_spanning and math.isclose(
                baseline.total_weight, truth
            )
            classical_cost += baseline.messages / baseline.meta["phases"]
        rows.append(
            (
                p,
                topology.edge_count(),
                quantum_cost / TRIALS,
                classical_cost / TRIALS,
                matches,
            )
        )
    return rows


def test_e10_mst(benchmark, sweep):
    table = [
        [
            f"{p:.1f}",
            f"{m:,}",
            f"{q:,.0f}",
            f"{c:,.0f}",
            f"{matches}/{TRIALS}",
        ]
        for p, m, q, c, matches in sweep
    ]
    ms = [row[1] for row in sweep]
    q_exp = math.log(sweep[-1][2] / sweep[0][2]) / math.log(ms[-1] / ms[0])
    c_exp = math.log(sweep[-1][3] / sweep[0][3]) / math.log(ms[-1] / ms[0])
    emit(
        "E10",
        single_table(
            f"E10 — quantum MST, density sweep at n={N} (per-phase messages)",
            ["p", "m", "quantum", "classical MST", "MST exact"],
            table,
        )
        + (
            f"\nper-phase growth in m: quantum m^{q_exp:.3f} (paper: 0.5), "
            "classical m^" + f"{c_exp:.3f} (paper: 1.0)"
        ),
    )
    # Exactness: every run reproduces the true MST weight.
    assert all(matches == TRIALS for *_, matches in sweep)
    # Envelope: quantum per-phase growth ~√m, classical ~m.
    assert q_exp < c_exp
    assert q_exp == pytest.approx(0.5, abs=0.2)

    benchmark.extra_info["quantum_m_exponent"] = q_exp
    topology, weights = _instance(0.3)
    benchmark.pedantic(
        lambda: quantum_mst(topology, weights, RandomSource(3), alpha=LEAN_ALPHA),
        rounds=3,
        iterations=1,
    )
