"""Engine-backend microbenchmark: rounds/sec, fast vs reference.

Drives a deterministic gossip workload over K_n, the 2-D torus, and a
random-regular expander at n ∈ {256, 1024, 4096}, and records rounds/sec
and messages/sec per backend plus the fast/reference speedup.

The workload isolates *engine* overhead — routing, delivery, CONGEST
accounting — from protocol-side allocation: every node pre-builds one
outbox of ``min(degree, 32)`` multi-unit messages (bits = 2× the CONGEST
capacity, so per-message charging is exercised) and re-sends it each
round.  No RNG, no per-round construction: both backends execute
byte-identical protocol work, so the ratio is pure engine overhead.

Results land in ``BENCH_engine.json`` at the repo root — the start of the
perf trajectory; CI runs ``--smoke`` (small sizes, no file by default) so
engine regressions show up in PR logs.

A ``telemetry`` section times the fast backend with telemetry off,
traced (``REPRO_TRACE``), and profiled (``REPRO_PROFILE``).  The *off*
configuration is gated: the null tracer and the ``prof is not None``
guards must cost ≤1% against an identical baseline measurement from the
same invocation (cross-machine absolute numbers are noise; the prior
full-mode file's rounds/sec is recorded alongside as ``vs_prior_pct``
for the trajectory).  The section runs on K_256 deliberately: the
instrumentation is O(1) per round, so a small per-round workload gives
it the *largest* relative weight — a stricter gate — while staying out
of the memory-bandwidth regime where single-core machines drift by
double digits.  Samples are interleaved round-robin across configs so
slow load drift hits every config equally instead of whichever was
measured last.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py          # full grid
    PYTHONPATH=src python benchmarks/bench_engine.py --smoke  # CI-sized
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

from repro.network import graphs
from repro.network.engine import BACKENDS, SynchronousEngine
from repro.network.message import Message, congest_capacity_bits
from repro.network.metrics import MetricsRecorder
from repro.network.node import Node
from repro.util.rng import RandomSource

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_engine.json"

#: The acceptance bar: fast ≥ 5× reference rounds/sec on K_n at n = 1024.
TARGET_TOPOLOGY = ("complete", 1024)
TARGET_SPEEDUP = 5.0

#: Telemetry-off overhead bar: with tracing and profiling disabled the
#: instrumented hot loops must stay within 1% of the baseline sample.
TELEMETRY_OVERHEAD_LIMIT_PCT = 1.0

FANOUT = 32


class GossipNode(Node):
    """Re-sends one pre-built outbox of ``min(degree, FANOUT)`` multi-unit
    messages every round — deterministic, duplicate-free, allocation-free
    inside the timed region, and identical under both backends."""

    def __init__(self, uid, degree, rng, bits):
        super().__init__(uid, degree, rng)
        fanout = FANOUT if FANOUT < degree else degree
        self.outbox = [
            ((uid + j) % degree, Message("gossip", payload=j, bits=bits))
            for j in range(fanout)
        ]

    def step(self, round_index, inbox):
        return self.outbox


def _build(family: str, n: int):
    if family == "complete":
        return graphs.complete(n)
    if family == "torus":
        import math

        side = math.isqrt(n)
        return graphs.torus(side, side)
    if family == "random-regular":
        return graphs.random_regular(n, 8, RandomSource(1234 + n))
    raise ValueError(f"unknown bench family {family!r}")


def _time_backend(topology, backend: str, rounds: int, repeats: int) -> dict:
    bits = 2 * congest_capacity_bits(topology.n)
    best = float("inf")
    messages = 0
    for _ in range(repeats):
        rng = RandomSource(0)
        nodes = [
            GossipNode(v, topology.degree(v), rng, bits)
            for v in range(topology.n)
        ]
        metrics = MetricsRecorder()
        engine = SynchronousEngine(topology, nodes, metrics, backend=backend)
        start = time.perf_counter()
        executed = engine.run(max_rounds=rounds)
        elapsed = time.perf_counter() - start
        assert executed == rounds
        best = min(best, elapsed)
        messages = metrics.messages
    return {
        "rounds": rounds,
        "seconds": round(best, 6),
        "rounds_per_sec": round(rounds / best, 2),
        "messages_per_round": messages // rounds,
        "messages_per_sec": round(messages / best, 1),
    }


def bench_telemetry(smoke: bool) -> dict:
    """Time the fast backend off/traced/profiled; gate the off overhead.

    The *baseline* and *off* configurations are byte-identical runs from
    the same invocation, so ``off_overhead_pct`` captures exactly what
    the null tracer and the disabled profiler guards cost (plus the
    noise floor) on this machine, independent of the host CI runs on.
    All four configs are sampled interleaved — one sample each per
    repeat, best-of kept per config — so slow machine drift (frequency
    scaling, co-tenant load on single-core boxes) lands on every config
    instead of biasing whichever ran last.  The prior full-mode file's
    target rounds/sec, when present, lands in ``vs_prior_pct``.
    """
    import os
    import tempfile

    from repro.telemetry import reset_telemetry

    family, n = "complete", 256
    topology = _build(family, n)
    topology.port_table()
    rounds = 10 if smoke else 40
    repeats = 3 if smoke else 7

    def sample() -> float:
        reset_telemetry()
        return _time_backend(topology, "fast", rounds, repeats=1)["seconds"]

    saved = {key: os.environ.pop(key, None) for key in ("REPRO_TRACE", "REPRO_PROFILE")}
    best = {"baseline": float("inf"), "off": float("inf"),
            "traced": float("inf"), "profiled": float("inf")}
    try:
        with tempfile.TemporaryDirectory() as tmp:
            for _ in range(repeats):
                best["baseline"] = min(best["baseline"], sample())
                best["off"] = min(best["off"], sample())
                os.environ["REPRO_TRACE"] = f"{tmp}/bench-trace.jsonl"
                best["traced"] = min(best["traced"], sample())
                del os.environ["REPRO_TRACE"]
                os.environ["REPRO_PROFILE"] = "1"
                best["profiled"] = min(best["profiled"], sample())
                del os.environ["REPRO_PROFILE"]
    finally:
        for key, value in saved.items():
            if value is not None:
                os.environ[key] = value
        reset_telemetry()

    def as_entry(seconds: float) -> dict:
        return {
            "rounds": rounds,
            "seconds": round(seconds, 6),
            "rounds_per_sec": round(rounds / seconds, 2),
        }

    baseline = as_entry(best["baseline"])
    off = as_entry(best["off"])
    traced = as_entry(best["traced"])
    profiled = as_entry(best["profiled"])

    def pct_slower(reference: float, sample: float) -> float:
        return round(max(0.0, 100.0 * (reference - sample) / reference), 2)

    prior = None
    if OUTPUT.exists():
        try:
            previous = json.loads(OUTPUT.read_text())
            if previous.get("mode") == "full":
                telemetry = previous.get("telemetry")
                if (
                    telemetry
                    and (telemetry.get("topology"), telemetry.get("n")) == (family, n)
                ):
                    prior = telemetry["off"]["rounds_per_sec"]
                else:  # pre-telemetry file: the grid's K_256 fast row
                    prior = next(
                        (
                            entry["backends"]["fast"]["rounds_per_sec"]
                            for entry in previous.get("results", [])
                            if (entry["topology"], entry["n"]) == (family, n)
                        ),
                        None,
                    )
        except (json.JSONDecodeError, KeyError, TypeError):
            prior = None

    section = {
        "topology": family,
        "n": n,
        "off_overhead_limit_pct": TELEMETRY_OVERHEAD_LIMIT_PCT,
        "baseline": baseline,
        "off": off,
        "traced": traced,
        "profiled": profiled,
        "off_overhead_pct": pct_slower(
            baseline["rounds_per_sec"], off["rounds_per_sec"]
        ),
        "traced_overhead_pct": pct_slower(
            baseline["rounds_per_sec"], traced["rounds_per_sec"]
        ),
        "profiled_overhead_pct": pct_slower(
            baseline["rounds_per_sec"], profiled["rounds_per_sec"]
        ),
        "prior_rounds_per_sec": prior,
        "vs_prior_pct": (
            None if prior is None else pct_slower(prior, off["rounds_per_sec"])
        ),
    }
    print(
        f"{'telemetry':>15} n={n:<5} off: {off['rounds_per_sec']:>10.1f} rounds/s "
        f"({section['off_overhead_pct']:.2f}% vs baseline, limit "
        f"{TELEMETRY_OVERHEAD_LIMIT_PCT}%)"
    )
    print(
        f"{'':>15} {'traced':>16}: {traced['rounds_per_sec']:>10.1f} rounds/s "
        f"({section['traced_overhead_pct']:.2f}% overhead)"
    )
    print(
        f"{'':>15} {'profiled':>16}: {profiled['rounds_per_sec']:>10.1f} rounds/s "
        f"({section['profiled_overhead_pct']:.2f}% overhead)"
    )
    return section


def run_bench(smoke: bool) -> dict:
    sizes = [64, 256] if smoke else [256, 1024, 4096]
    repeats = 2 if smoke else 5
    families = ["complete", "torus", "random-regular"]
    results = []
    for family in families:
        for n in sizes:
            topology = _build(family, n)
            topology.port_table()  # build outside the timed region
            per_round = topology.n * min(FANOUT, topology.degree(0))
            rounds = 5 if smoke else max(4, min(40, 400_000 // per_round))
            entry = {"topology": family, "n": n, "backends": {}}
            for backend in BACKENDS:
                entry["backends"][backend] = _time_backend(
                    topology, backend, rounds, repeats
                )
                print(
                    f"{family:>15} n={n:<5} {backend:>9}: "
                    f"{entry['backends'][backend]['rounds_per_sec']:>10.1f} rounds/s  "
                    f"({entry['backends'][backend]['messages_per_sec']:>12.0f} msgs/s)",
                    flush=True,
                )
            entry["speedup"] = round(
                entry["backends"]["fast"]["rounds_per_sec"]
                / entry["backends"]["reference"]["rounds_per_sec"],
                2,
            )
            print(f"{'':>15} {'speedup':>16}: {entry['speedup']:.2f}x")
            results.append(entry)
    target = next(
        (
            e
            for e in results
            if (e["topology"], e["n"]) == TARGET_TOPOLOGY
        ),
        None,
    )
    return {
        "benchmark": "engine-backends",
        "mode": "smoke" if smoke else "full",
        "workload": (
            f"prebuilt gossip, fanout=min(degree, {FANOUT}), "
            f"bits=2x CONGEST capacity"
        ),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "target": {
            "topology": TARGET_TOPOLOGY[0],
            "n": TARGET_TOPOLOGY[1],
            "required_speedup": TARGET_SPEEDUP,
            "measured_speedup": target["speedup"] if target else None,
        },
        "telemetry": bench_telemetry(smoke),
        "results": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: small sizes, few rounds, no BENCH_engine.json",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=None,
        help=f"write the JSON report here (default: {OUTPUT}, skipped in --smoke)",
    )
    args = parser.parse_args(argv)
    report = run_bench(smoke=args.smoke)
    output = args.output
    if output is None and not args.smoke:
        output = OUTPUT
    if output is not None:
        output.write_text(json.dumps(report, indent=1) + "\n")
        print(f"\nwrote {output}")
    measured = report["target"]["measured_speedup"]
    status = 0
    if measured is not None and measured < TARGET_SPEEDUP:
        print(
            f"WARNING: fast engine speedup {measured:.2f}x on K_n "
            f"n={TARGET_TOPOLOGY[1]} is below the {TARGET_SPEEDUP}x bar",
            file=sys.stderr,
        )
        status = 1
    overhead = report["telemetry"]["off_overhead_pct"]
    if overhead > TELEMETRY_OVERHEAD_LIMIT_PCT:
        print(
            f"WARNING: telemetry-off overhead {overhead:.2f}% exceeds the "
            f"{TELEMETRY_OVERHEAD_LIMIT_PCT}% gate",
            file=sys.stderr,
        )
        status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
