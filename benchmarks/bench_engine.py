"""Engine-backend microbenchmark: rounds/sec, fast vs reference.

Drives a deterministic gossip workload over K_n, the 2-D torus, and a
random-regular expander at n ∈ {256, 1024, 4096}, and records rounds/sec
and messages/sec per backend plus the fast/reference speedup.

The workload isolates *engine* overhead — routing, delivery, CONGEST
accounting — from protocol-side allocation: every node pre-builds one
outbox of ``min(degree, 32)`` multi-unit messages (bits = 2× the CONGEST
capacity, so per-message charging is exercised) and re-sends it each
round.  No RNG, no per-round construction: both backends execute
byte-identical protocol work, so the ratio is pure engine overhead.

Results land in ``BENCH_engine.json`` at the repo root — the start of the
perf trajectory; CI runs ``--smoke`` (small sizes, no file by default) so
engine regressions show up in PR logs.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py          # full grid
    PYTHONPATH=src python benchmarks/bench_engine.py --smoke  # CI-sized
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

from repro.network import graphs
from repro.network.engine import BACKENDS, SynchronousEngine
from repro.network.message import Message, congest_capacity_bits
from repro.network.metrics import MetricsRecorder
from repro.network.node import Node
from repro.util.rng import RandomSource

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_engine.json"

#: The acceptance bar: fast ≥ 5× reference rounds/sec on K_n at n = 1024.
TARGET_TOPOLOGY = ("complete", 1024)
TARGET_SPEEDUP = 5.0

FANOUT = 32


class GossipNode(Node):
    """Re-sends one pre-built outbox of ``min(degree, FANOUT)`` multi-unit
    messages every round — deterministic, duplicate-free, allocation-free
    inside the timed region, and identical under both backends."""

    def __init__(self, uid, degree, rng, bits):
        super().__init__(uid, degree, rng)
        fanout = FANOUT if FANOUT < degree else degree
        self.outbox = [
            ((uid + j) % degree, Message("gossip", payload=j, bits=bits))
            for j in range(fanout)
        ]

    def step(self, round_index, inbox):
        return self.outbox


def _build(family: str, n: int):
    if family == "complete":
        return graphs.complete(n)
    if family == "torus":
        import math

        side = math.isqrt(n)
        return graphs.torus(side, side)
    if family == "random-regular":
        return graphs.random_regular(n, 8, RandomSource(1234 + n))
    raise ValueError(f"unknown bench family {family!r}")


def _time_backend(topology, backend: str, rounds: int, repeats: int) -> dict:
    bits = 2 * congest_capacity_bits(topology.n)
    best = float("inf")
    messages = 0
    for _ in range(repeats):
        rng = RandomSource(0)
        nodes = [
            GossipNode(v, topology.degree(v), rng, bits)
            for v in range(topology.n)
        ]
        metrics = MetricsRecorder()
        engine = SynchronousEngine(topology, nodes, metrics, backend=backend)
        start = time.perf_counter()
        executed = engine.run(max_rounds=rounds)
        elapsed = time.perf_counter() - start
        assert executed == rounds
        best = min(best, elapsed)
        messages = metrics.messages
    return {
        "rounds": rounds,
        "seconds": round(best, 6),
        "rounds_per_sec": round(rounds / best, 2),
        "messages_per_round": messages // rounds,
        "messages_per_sec": round(messages / best, 1),
    }


def run_bench(smoke: bool) -> dict:
    sizes = [64, 256] if smoke else [256, 1024, 4096]
    repeats = 2 if smoke else 5
    families = ["complete", "torus", "random-regular"]
    results = []
    for family in families:
        for n in sizes:
            topology = _build(family, n)
            topology.port_table()  # build outside the timed region
            per_round = topology.n * min(FANOUT, topology.degree(0))
            rounds = 5 if smoke else max(4, min(40, 400_000 // per_round))
            entry = {"topology": family, "n": n, "backends": {}}
            for backend in BACKENDS:
                entry["backends"][backend] = _time_backend(
                    topology, backend, rounds, repeats
                )
                print(
                    f"{family:>15} n={n:<5} {backend:>9}: "
                    f"{entry['backends'][backend]['rounds_per_sec']:>10.1f} rounds/s  "
                    f"({entry['backends'][backend]['messages_per_sec']:>12.0f} msgs/s)",
                    flush=True,
                )
            entry["speedup"] = round(
                entry["backends"]["fast"]["rounds_per_sec"]
                / entry["backends"]["reference"]["rounds_per_sec"],
                2,
            )
            print(f"{'':>15} {'speedup':>16}: {entry['speedup']:.2f}x")
            results.append(entry)
    target = next(
        (
            e
            for e in results
            if (e["topology"], e["n"]) == TARGET_TOPOLOGY
        ),
        None,
    )
    return {
        "benchmark": "engine-backends",
        "mode": "smoke" if smoke else "full",
        "workload": (
            f"prebuilt gossip, fanout=min(degree, {FANOUT}), "
            f"bits=2x CONGEST capacity"
        ),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "target": {
            "topology": TARGET_TOPOLOGY[0],
            "n": TARGET_TOPOLOGY[1],
            "required_speedup": TARGET_SPEEDUP,
            "measured_speedup": target["speedup"] if target else None,
        },
        "results": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: small sizes, few rounds, no BENCH_engine.json",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=None,
        help=f"write the JSON report here (default: {OUTPUT}, skipped in --smoke)",
    )
    args = parser.parse_args(argv)
    report = run_bench(smoke=args.smoke)
    output = args.output
    if output is None and not args.smoke:
        output = OUTPUT
    if output is not None:
        output.write_text(json.dumps(report, indent=1) + "\n")
        print(f"\nwrote {output}")
    measured = report["target"]["measured_speedup"]
    if measured is not None and measured < TARGET_SPEEDUP:
        print(
            f"WARNING: fast engine speedup {measured:.2f}x on K_n "
            f"n={TARGET_TOPOLOGY[1]} is below the {TARGET_SPEEDUP}x bar",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
