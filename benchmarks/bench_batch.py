"""Batch-dispatch microbenchmark: rounds/sec, array-native vs scalar.

Runs the three array-native protocol ports end-to-end — ring LCR on
C_4096, [KPP+15b] LE and the engine-driven [AMP18] agreement on K_1024 —
under all three dispatch paths:

* ``batch``            — the ``step_batch`` array path (one numpy call per
  round, no per-node dispatch, no Message objects);
* ``scalar-fast``      — legacy ``Node.step`` per node on the vectorized
  routing backend (PR 2's fast path);
* ``scalar-reference`` — the one-message-at-a-time oracle loop.

Every mode runs the *same* seeded trial, and the bench asserts the
results are bit-identical before it reports a single number — the
speedup column is never comparing different computations.

Results land in ``BENCH_batch.json`` at the repo root.  The acceptance
bar: batch ≥ 2× scalar-fast rounds/sec for at least one K_1024 protocol.
CI runs ``--smoke`` (small sizes, no file write) so batch-path
regressions show up in PR logs.

Usage::

    PYTHONPATH=src python benchmarks/bench_batch.py          # full grid
    PYTHONPATH=src python benchmarks/bench_batch.py --smoke  # CI-sized
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

from repro.classical.agreement.amp18_engine import classical_agreement_engine
from repro.classical.leader_election.complete_kpp import classical_le_complete
from repro.classical.leader_election.ring import lcr_ring
from repro.util.rng import RandomSource

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_batch.json"

#: The acceptance bar: batch ≥ 2× scalar-fast rounds/sec on a K_1024 port.
TARGET_SPEEDUP = 2.0

MODES = ("batch", "scalar-fast", "scalar-reference")


def _trial_lcr(n: int, node_api: str):
    result = lcr_ring(n, RandomSource(7), node_api=node_api)
    return result, (result.messages, result.rounds, result.leader)


def _trial_kpp(n: int, node_api: str):
    result = classical_le_complete(n, RandomSource(7), node_api=node_api)
    return result, (result.messages, result.rounds, result.leader)


def _trial_amp18(n: int, node_api: str):
    inputs = [1 if v % 10 < 3 else 0 for v in range(n)]
    result = classical_agreement_engine(inputs, RandomSource(7), node_api=node_api)
    return result, (result.messages, result.rounds, result.agreed_value)


WORKLOADS = [
    ("le-ring/lcr", "cycle", _trial_lcr),
    ("le-complete/classical", "complete", _trial_kpp),
    ("agreement/amp18-engine", "complete", _trial_amp18),
]


def _time_mode(trial, n: int, mode: str, repeats: int):
    node_api = "batch" if mode == "batch" else "scalar"
    backend = "reference" if mode == "scalar-reference" else "fast"
    previous = os.environ.get("REPRO_ENGINE")
    os.environ["REPRO_ENGINE"] = backend
    try:
        best = float("inf")
        fingerprint = None
        for _ in range(repeats):
            start = time.perf_counter()
            result, fingerprint = trial(n, node_api)
            best = min(best, time.perf_counter() - start)
        rounds = fingerprint[1]
        return {
            "rounds": rounds,
            "seconds": round(best, 6),
            "rounds_per_sec": round(rounds / best, 2),
            "messages": fingerprint[0],
            "messages_per_sec": round(fingerprint[0] / best, 1),
        }, fingerprint
    finally:
        if previous is None:
            del os.environ["REPRO_ENGINE"]
        else:
            os.environ["REPRO_ENGINE"] = previous


def run_bench(smoke: bool) -> dict:
    repeats = 1 if smoke else 3
    results = []
    for protocol, family, trial in WORKLOADS:
        if family == "cycle":
            n = 256 if smoke else 4096
        else:
            n = 128 if smoke else 1024
        entry = {"protocol": protocol, "topology": family, "n": n, "modes": {}}
        fingerprints = {}
        for mode in MODES:
            entry["modes"][mode], fingerprints[mode] = _time_mode(
                trial, n, mode, repeats
            )
        if len(set(fingerprints.values())) != 1:
            raise AssertionError(
                f"{protocol} diverged across dispatch paths: {fingerprints}"
            )
        entry["speedup_batch_vs_scalar_fast"] = round(
            entry["modes"]["batch"]["rounds_per_sec"]
            / entry["modes"]["scalar-fast"]["rounds_per_sec"],
            2,
        )
        entry["speedup_batch_vs_reference"] = round(
            entry["modes"]["batch"]["rounds_per_sec"]
            / entry["modes"]["scalar-reference"]["rounds_per_sec"],
            2,
        )
        results.append(entry)
        print(
            f"{protocol:<24} n={n:<5} "
            f"batch {entry['modes']['batch']['rounds_per_sec']:>10,.0f} r/s | "
            f"scalar-fast {entry['modes']['scalar-fast']['rounds_per_sec']:>10,.0f} r/s | "
            f"reference {entry['modes']['scalar-reference']['rounds_per_sec']:>10,.0f} r/s | "
            f"batch/fast {entry['speedup_batch_vs_scalar_fast']:.2f}x"
        )
    return {
        "benchmark": "batch-dispatch",
        "smoke": smoke,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "target": {
            "claim": "batch >= 2x scalar-fast rounds/sec on a K_1024 port",
            "speedup": TARGET_SPEEDUP,
        },
        "results": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--output", action="store_true",
        help="write BENCH_batch.json even in smoke mode",
    )
    args = parser.parse_args(argv)
    payload = run_bench(args.smoke)
    k_speedups = [
        entry["speedup_batch_vs_scalar_fast"]
        for entry in payload["results"]
        if entry["topology"] == "complete"
    ]
    best = max(k_speedups)
    print(
        f"best K_n batch/scalar-fast speedup: {best:.2f}x "
        f"(target >= {TARGET_SPEEDUP}x)"
    )
    if not args.smoke or args.output:
        OUTPUT.write_text(json.dumps(payload, indent=1) + "\n")
        print(f"wrote {OUTPUT}")
    if not args.smoke and best < TARGET_SPEEDUP:
        print("SPEEDUP TARGET MISSED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
