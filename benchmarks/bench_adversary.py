"""Adversary-overhead microbenchmark: faulty vs fault-free rounds/sec.

Drives the same deterministic gossip workload as ``bench_engine.py`` over
K_n and the 2-D torus — fault-free, under a mixed static message-fault
adversary (5% drop, 2% delay, 1% duplicate), and under an adaptive
adversary (targeted-leader suppression plus a 5% eavesdrop tap rate) —
on both engine backends.  The interesting numbers:

* **overhead** — faulty vs fault-free rounds/sec on the fast backend:
  the price of drawing fault masks and re-indexing the batched delivery
  arrays each round (the masks are vectorized, so this should stay a
  modest constant factor);
* **adaptive overhead** — adaptive vs static-faulty rounds/sec on the
  fast backend: the *extra* price of the per-round traffic observation
  callback, strategy staging, and the eavesdropping ledger (budget: at
  most 2x the static-mask adversary);
* **speedup under faults** — fast vs reference rounds/sec with the
  adversary armed: the vectorized fault path must keep its edge over the
  per-message oracle loop.

Before any adaptive timing, the run's trace fingerprint is asserted
bit-identical across all three dispatch paths (fast, reference, batch) —
a benchmark of three paths that disagree would be meaningless.

Results land in ``BENCH_adversary.json``; CI runs ``--smoke``.

Usage::

    PYTHONPATH=src python benchmarks/bench_adversary.py          # full grid
    PYTHONPATH=src python benchmarks/bench_adversary.py --smoke  # CI-sized
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time

from repro.adversary import AdversarySpec
from repro.network import graphs
from repro.network.engine import BACKENDS, SynchronousEngine
from repro.network.message import Message, congest_capacity_bits
from repro.network.metrics import MetricsRecorder
from repro.network.node import Node
from repro.util.rng import RandomSource

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_adversary.json"

FANOUT = 32

#: The benchmarked static adversary: every message-fault class armed at once.
SPEC = AdversarySpec(drop_rate=0.05, delay_rate=0.02, duplicate_rate=0.01, seed=99)

#: The benchmarked adaptive adversary: traffic-conditioned suppression of
#: the dominant sender plus a per-edge eavesdrop tap (ledger maintained
#: every round) — the observation callback's worst reasonable case.
ADAPTIVE_SPEC = AdversarySpec(
    adaptive="target-leader", adaptive_rate=0.5, eavesdrop_rate=0.05, seed=99
)


class GossipNode(Node):
    """Re-sends one pre-built outbox every round (see bench_engine.py)."""

    def __init__(self, uid, degree, rng, bits):
        super().__init__(uid, degree, rng)
        fanout = FANOUT if FANOUT < degree else degree
        self.outbox = [
            ((uid + j) % degree, Message("gossip", payload=j, bits=bits))
            for j in range(fanout)
        ]

    def step(self, round_index, inbox):
        return self.outbox


def _build(family: str, n: int):
    if family == "complete":
        return graphs.complete(n)
    import math

    side = math.isqrt(n)
    return graphs.torus(side, side)


def _time(topology, backend: str, spec, rounds: int, repeats: int) -> dict:
    bits = 2 * congest_capacity_bits(topology.n)
    best = float("inf")
    stats = None
    for _ in range(repeats):
        rng = RandomSource(0)
        armed = spec.arm(spec.derive_rng(rng), topology.n) if spec else None
        nodes = [
            GossipNode(v, topology.degree(v), rng, bits)
            for v in range(topology.n)
        ]
        metrics = MetricsRecorder()
        engine = SynchronousEngine(
            topology, nodes, metrics, backend=backend, adversary=armed
        )
        start = time.perf_counter()
        executed = engine.run(max_rounds=rounds)
        elapsed = time.perf_counter() - start
        assert executed == rounds
        best = min(best, elapsed)
        stats = engine.fault_stats()
    entry = {
        "rounds": rounds,
        "seconds": round(best, 6),
        "rounds_per_sec": round(rounds / best, 2),
    }
    if stats is not None:
        entry["faults"] = {
            key: value
            for key, value in stats.items()
            if key != "fault_rounds_to_recovery"
        }
    return entry


def _fingerprint(topology, mode: str, spec, rounds: int):
    """One run's trace fingerprint on a named dispatch path.

    ``mode`` is ``"fast"``/``"reference"`` (scalar backends) or
    ``"batch"`` (the ScalarAdapter-driven batch dispatch path).
    """
    from repro.network.batch import ScalarAdapter

    bits = 2 * congest_capacity_bits(topology.n)
    rng = RandomSource(0)
    armed = spec.arm(spec.derive_rng(rng), topology.n)
    nodes = [
        GossipNode(v, topology.degree(v), rng, bits) for v in range(topology.n)
    ]
    metrics = MetricsRecorder()
    program = ScalarAdapter(nodes) if mode == "batch" else nodes
    backend = "reference" if mode == "reference" else "fast"
    engine = SynchronousEngine(
        topology, program, metrics, backend=backend, adversary=armed
    )
    engine.run(max_rounds=rounds)
    return (
        metrics.messages,
        metrics.rounds,
        engine.undelivered_detail(),
        engine.fault_stats(),
        armed.security_ledger() if armed.observes else None,
    )


def _assert_three_way_parity(topology, spec, rounds: int) -> None:
    """Refuse to time an adversary whose three paths disagree."""
    fast = _fingerprint(topology, "fast", spec, rounds)
    reference = _fingerprint(topology, "reference", spec, rounds)
    batch = _fingerprint(topology, "batch", spec, rounds)
    assert fast == reference, "fast/reference fingerprints diverge"
    assert fast == batch, "fast/batch fingerprints diverge"


def run_bench(smoke: bool) -> dict:
    sizes = [64, 256] if smoke else [256, 1024, 4096]
    repeats = 2 if smoke else 5
    results = []
    for family in ("complete", "torus"):
        for n in sizes:
            topology = _build(family, n)
            topology.port_table()
            per_round = topology.n * min(FANOUT, topology.degree(0))
            rounds = 5 if smoke else max(4, min(40, 400_000 // per_round))
            for spec in (SPEC, ADAPTIVE_SPEC):
                _assert_three_way_parity(topology, spec, min(rounds, 4))
            entry = {"topology": family, "n": n, "modes": {}}
            for backend in BACKENDS:
                for label, spec in (
                    ("clean", None),
                    ("faulty", SPEC),
                    ("adaptive", ADAPTIVE_SPEC),
                ):
                    timing = _time(topology, backend, spec, rounds, repeats)
                    entry["modes"][f"{backend}/{label}"] = timing
                    print(
                        f"{family:>9} n={n:<5} {backend:>9}/{label:<8}: "
                        f"{timing['rounds_per_sec']:>10.1f} rounds/s",
                        flush=True,
                    )
            modes = entry["modes"]
            entry["fast_fault_overhead"] = round(
                modes["fast/clean"]["rounds_per_sec"]
                / modes["fast/faulty"]["rounds_per_sec"],
                2,
            )
            entry["adaptive_overhead"] = round(
                modes["fast/faulty"]["rounds_per_sec"]
                / modes["fast/adaptive"]["rounds_per_sec"],
                2,
            )
            entry["faulty_speedup"] = round(
                modes["fast/faulty"]["rounds_per_sec"]
                / modes["reference/faulty"]["rounds_per_sec"],
                2,
            )
            print(
                f"{'':>9} fault overhead (fast): "
                f"{entry['fast_fault_overhead']:.2f}x, adaptive overhead: "
                f"{entry['adaptive_overhead']:.2f}x, speedup under faults: "
                f"{entry['faulty_speedup']:.2f}x"
            )
            results.append(entry)
    return {
        "benchmark": "adversary-overhead",
        "mode": "smoke" if smoke else "full",
        "adversary": SPEC.describe(),
        "adaptive_adversary": ADAPTIVE_SPEC.describe(),
        "workload": f"prebuilt gossip, fanout=min(degree, {FANOUT})",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: small sizes, few rounds, no BENCH_adversary.json",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=None,
        help=f"write the JSON report here (default: {OUTPUT}, skipped in --smoke)",
    )
    args = parser.parse_args(argv)
    report = run_bench(smoke=args.smoke)
    output = args.output
    if output is None and not args.smoke:
        output = OUTPUT
    if output is not None:
        output.write_text(json.dumps(report, indent=1) + "\n")
        print(f"\nwrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
