"""E12 — Section 1.2 ablation: what the quantum walk buys QuantumQWLE.

The paper describes an intermediate diameter-2 design — "two nested Grover
searches, one being centralized and the other not" — reaching Õ(n^{3/4}),
and credits the final Õ(n^{2/3}) to adding the quantum-walk layer (referee
subsets are *updated* across amplification steps instead of rebuilt).

Reproduced here with ``QWLEParameters(ablate_walk=True)``: the ablated
variant pays a fresh k-referee Setup per amplification iteration (optimal
k = √n), the full protocol pays O(1)-message Updates (optimal k = n^{2/3}).
Both run on the same graphs with the same schedule constants; the measured
per-candidate exponents should separate as 3/4 vs 2/3.
"""

from __future__ import annotations

import math

import pytest

from _harness import LEAN_ALPHA, emit, series_block
from repro.analysis.experiments import get_experiment
from repro.analysis.scaling import measure_scaling
from repro.core.leader_election.diameter2 import QWLEParameters, quantum_qwle
from repro.network import graphs
from repro.util.rng import RandomSource

SIZES = [256, 512, 1024, 2048]
TRIALS = 3
EXPERIMENT = get_experiment("E12")

_TOPOLOGIES = {}


def _dense_diameter2(n: int):
    if n not in _TOPOLOGIES:
        rng = RandomSource(1000 + n)  # same instances as E4
        _TOPOLOGIES[n] = graphs.erdos_renyi(n, 0.5, rng, ensure_connected=True)
    return _TOPOLOGIES[n]


def _params(n: int, ablate: bool) -> QWLEParameters:
    return QWLEParameters(
        alpha=LEAN_ALPHA,
        inner_alpha=LEAN_ALPHA,
        outer_iterations=max(8, math.ceil(8.0 * math.log(n))),
        activation=0.25,
        ablate_walk=ablate,
    )


def _runner(ablate: bool):
    def run(n, rng):
        result = quantum_qwle(_dense_diameter2(n), rng, _params(n, ablate))
        candidates = max(1, result.meta["candidates"])
        return round(result.messages / candidates), result.rounds, result.success, {}

    return run


@pytest.fixture(scope="module")
def sweep():
    walk = measure_scaling("with walk", _runner(False), SIZES, TRIALS, seed=120)
    ablated = measure_scaling(
        "nested Grover only", _runner(True), SIZES, TRIALS, seed=121
    )
    return walk, ablated


def test_e12_qwle_ablation(benchmark, sweep):
    walk, ablated = sweep
    walk_fit = walk.fit()
    ablated_fit = ablated.fit()
    emit(
        "E12",
        series_block(
            "E12",
            "E12 — QWLE ablation on G(n, 1/2) (messages per candidate)",
            walk,
            ablated,
            walk_fit,
            ablated_fit,
            EXPERIMENT.quantum_exponent,  # 2/3 with the walk
            EXPERIMENT.classical_exponent,  # 3/4 ablated
            notes=(
                "'classical' column = walk-ablated variant (fresh Setup per "
                "amplification step, k = sqrt(n)); same schedule constants"
            ),
        ),
    )
    assert walk.overall_success_rate() > 0.85
    assert ablated.overall_success_rate() > 0.85
    # The walk layer buys a strictly smaller exponent…
    assert walk_fit.exponent < ablated_fit.exponent
    assert walk_fit.exponent == pytest.approx(2 / 3, abs=0.12)
    assert ablated_fit.exponent == pytest.approx(3 / 4, abs=0.12)
    # …and fewer absolute messages at the top of the grid.
    assert walk.messages[-1] < ablated.messages[-1]

    benchmark.extra_info["walk_exponent"] = walk_fit.exponent
    benchmark.extra_info["ablated_exponent"] = ablated_fit.exponent
    benchmark.pedantic(
        lambda: quantum_qwle(
            _dense_diameter2(512), RandomSource(0), _params(512, True)
        ),
        rounds=3,
        iterations=1,
    )
