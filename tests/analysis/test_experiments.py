"""Tests for the experiment registry."""

import importlib
import pathlib

import pytest

from repro.analysis.experiments import EXPERIMENTS, get_experiment


class TestRegistry:
    def test_all_twelve_present(self):
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 13)}

    def test_lookup(self):
        e1 = get_experiment("E1")
        assert "5.2" in e1.paper_result
        assert e1.quantum_exponent == pytest.approx(1 / 3)

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            get_experiment("E99")

    def test_modules_exist(self):
        for experiment in EXPERIMENTS.values():
            for module in experiment.modules:
                importlib.import_module(module)

    def test_bench_files_exist(self):
        root = pathlib.Path(__file__).resolve().parents[2]
        for experiment in EXPERIMENTS.values():
            assert (root / experiment.bench).exists(), experiment.bench

    def test_every_claim_mentions_paper_quantity(self):
        for experiment in EXPERIMENTS.values():
            assert len(experiment.claim) > 30
            assert experiment.paper_result
