"""Tests for crossover prediction between fitted power laws."""

import math

import pytest

from repro.analysis.fitting import crossover_estimate, fit_power_law


def _fit(exponent, constant, polylog=0.0):
    sizes = [2**k for k in range(8, 16)]
    values = [
        constant * n**exponent * math.log(n) ** polylog for n in sizes
    ]
    return fit_power_law(sizes, values, polylog_power=polylog)


class TestCrossoverEstimate:
    def test_exact_crossover_recovered(self):
        """C·n^{1/3} crosses n^{1/2} at n = C^6."""
        quantum = _fit(1 / 3, 10.0)
        classical = _fit(1 / 2, 1.0)
        crossover = crossover_estimate(quantum, classical)
        assert crossover == pytest.approx(10.0**6, rel=0.01)

    def test_already_cheaper_returns_small_n(self):
        quantum = _fit(1 / 3, 1.0)
        classical = _fit(1 / 2, 5.0)
        crossover = crossover_estimate(quantum, classical)
        assert crossover is not None and crossover < 10

    def test_wrong_exponent_ordering_returns_none(self):
        assert crossover_estimate(_fit(0.9, 1.0), _fit(0.5, 1.0)) is None

    def test_beyond_horizon_returns_none(self):
        quantum = _fit(0.499, 1e12)
        classical = _fit(0.5, 1.0)
        assert crossover_estimate(quantum, classical, max_log10=6.0) is None

    def test_polylog_terms_respected(self):
        """A (ln n)² factor on the cheap side delays the crossover (possibly
        past the horizon, in which case None is the correct answer)."""
        plain = crossover_estimate(_fit(1 / 3, 10.0), _fit(1 / 2, 1.0))
        loggy = crossover_estimate(_fit(1 / 3, 10.0, polylog=2.0), _fit(1 / 2, 1.0))
        assert loggy is None or loggy > plain
