"""Tests for the scaling measurement harness."""

import pytest

from repro.analysis.scaling import measure_scaling


def _runner_linear(n, rng):
    """Deterministic pseudo-protocol: messages = 3n, rounds = 2, success."""
    return 3 * n, 2, True, {"candidates": 5}


def _runner_noisy(n, rng):
    noise = rng.uniform_int(0, n // 10)
    return n + noise, 1, rng.bernoulli(0.9), {}


class TestMeasureScaling:
    def test_points_cover_grid(self):
        series = measure_scaling("lin", _runner_linear, [16, 32, 64], trials=3)
        assert series.sizes == [16, 32, 64]
        assert all(p.trials == 3 for p in series.points)

    def test_deterministic_runner_zero_std(self):
        series = measure_scaling("lin", _runner_linear, [10, 20], trials=4)
        assert all(p.messages_std == 0.0 for p in series.points)
        assert series.points[0].messages_mean == 30.0

    def test_success_rate_aggregation(self):
        series = measure_scaling("noisy", _runner_noisy, [100], trials=50, seed=1)
        assert 0.7 <= series.points[0].success_rate <= 1.0

    def test_fit_recovers_linear_exponent(self):
        series = measure_scaling("lin", _runner_linear, [32, 64, 128, 256], trials=2)
        assert series.fit().exponent == pytest.approx(1.0, abs=1e-9)

    def test_extra_metadata_averaged(self):
        series = measure_scaling("lin", _runner_linear, [16], trials=3)
        assert series.points[0].extra["candidates"] == 5

    def test_reproducible_across_calls(self):
        a = measure_scaling("noisy", _runner_noisy, [64], trials=5, seed=9)
        b = measure_scaling("noisy", _runner_noisy, [64], trials=5, seed=9)
        assert a.points[0].messages_mean == b.points[0].messages_mean

    def test_overall_success_rate(self):
        series = measure_scaling("lin", _runner_linear, [8, 16], trials=2)
        assert series.overall_success_rate() == 1.0

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            measure_scaling("x", _runner_linear, [8], trials=0)
