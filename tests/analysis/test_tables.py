"""Tests for table rendering."""

import pytest

from repro.analysis.scaling import measure_scaling
from repro.analysis.tables import comparison_table, render_table


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(
            ["n", "msgs"], [["64", "123"], ["128", "4567"]], title="demo"
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "n" in lines[1] and "msgs" in lines[1]
        assert "4567" in lines[-1]

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["1"]])

    def test_no_title(self):
        text = render_table(["x"], [["1"]])
        assert not text.startswith("\n")


class TestComparisonTable:
    def _series(self, label, scale):
        return measure_scaling(
            label, lambda n, rng: (scale * n, 1, True, {}), [16, 32], trials=1
        )

    def test_ratio_column(self):
        quantum = self._series("q", 1)
        classical = self._series("c", 3)
        text = comparison_table(quantum, classical)
        assert "3.000" in text
        assert "q msgs" in text and "c msgs" in text

    def test_rejects_mismatched_grids(self):
        quantum = self._series("q", 1)
        classical = measure_scaling(
            "c", lambda n, rng: (n, 1, True, {}), [16, 64], trials=1
        )
        with pytest.raises(ValueError):
            comparison_table(quantum, classical)
