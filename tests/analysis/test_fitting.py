"""Tests for power-law fitting."""

import math

import numpy as np
import pytest

from repro.analysis.fitting import fit_power_law


class TestFitPowerLaw:
    def test_recovers_exact_exponent(self):
        sizes = [64, 128, 256, 512, 1024]
        values = [7.0 * n**0.5 for n in sizes]
        fit = fit_power_law(sizes, values)
        assert fit.exponent == pytest.approx(0.5, abs=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_recovers_intercept(self):
        sizes = [10, 100, 1000]
        values = [3.0 * n for n in sizes]
        fit = fit_power_law(sizes, values)
        assert math.exp(fit.intercept) == pytest.approx(3.0, rel=1e-6)

    def test_polylog_correction(self):
        sizes = [2**k for k in range(6, 14)]
        values = [5.0 * n ** (1 / 3) * math.log(n) ** 2 for n in sizes]
        uncorrected = fit_power_law(sizes, values)
        corrected = fit_power_law(sizes, values, polylog_power=2.0)
        assert corrected.exponent == pytest.approx(1 / 3, abs=1e-6)
        assert abs(uncorrected.exponent - 1 / 3) > 0.05  # logs masquerade as slope

    def test_predict_inverts_fit(self):
        sizes = [32, 64, 128]
        values = [2.0 * n**0.75 for n in sizes]
        fit = fit_power_law(sizes, values)
        assert fit.predict(256) == pytest.approx(2.0 * 256**0.75, rel=1e-6)

    def test_noisy_data_reasonable_r2(self):
        rng = np.random.default_rng(0)
        sizes = [2**k for k in range(6, 14)]
        values = [n**0.6 * math.exp(rng.normal(0, 0.05)) for n in sizes]
        fit = fit_power_law(sizes, values)
        assert fit.exponent == pytest.approx(0.6, abs=0.1)
        assert fit.r_squared > 0.95

    def test_rejects_insufficient_data(self):
        with pytest.raises(ValueError):
            fit_power_law([10], [5.0])

    def test_rejects_nonpositive_values(self):
        with pytest.raises(ValueError):
            fit_power_law([10, 20], [1.0, 0.0])

    def test_str_format(self):
        fit = fit_power_law([10, 100], [10.0, 100.0])
        assert "n^1.000" in str(fit)
