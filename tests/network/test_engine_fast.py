"""Differential tests: the fast engine is trace-equivalent to the reference.

Every assertion here runs the same workload twice — once per backend, with
identical seeds — and compares the full observable trace: per-node delivery
logs (round, arrival port, kind, sender, sender port), message and round
charges, ``rounds_executed``, and ``undelivered()``.  Coverage spans all 13
topology families and four engine-driven protocols.
"""

import pytest

from repro.classical.leader_election.complete_kpp import classical_le_complete
from repro.classical.leader_election.diameter2_cpr import classical_le_diameter2
from repro.classical.leader_election.ring import hirschberg_sinclair_ring, lcr_ring
from repro.network import graphs
from repro.network.engine import BACKENDS, SynchronousEngine, default_backend
from repro.network.message import Message, congest_capacity_bits
from repro.network.metrics import MetricsRecorder
from repro.network.node import Node
from repro.util.rng import RandomSource


def _family_topologies():
    rng = RandomSource(99)
    return {
        "complete": graphs.complete(10),
        "star": graphs.star(9),
        "cycle": graphs.cycle(8),
        "path": graphs.path(7),
        "wheel": graphs.wheel(9),
        "hypercube": graphs.hypercube(3),
        "torus": graphs.torus(3, 3),
        "barbell": graphs.barbell(4),
        "lollipop": graphs.lollipop(5, 3),
        "complete-bipartite": graphs.complete_bipartite(3, 5),
        "random-regular": graphs.random_regular(10, 4, rng),
        "erdos-renyi": graphs.erdos_renyi(12, 0.4, rng),
        "diameter2-gnp": graphs.diameter_two_gnp(16, rng),
    }


FAMILY_TOPOLOGIES = _family_topologies()


class _TraceNode(Node):
    """Gossips on rng-chosen ports for 4 rounds, logging every delivery."""

    def __init__(self, uid, degree, rng):
        super().__init__(uid, degree, rng)
        self.log = []

    def step(self, round_index, inbox):
        for port, message in inbox:
            self.log.append(
                (round_index, port, message.kind, message.sender, message.sender_port)
            )
        if round_index >= 4:
            self.halt()
            return []
        fanout = min(self.degree, 3)
        ports = self.rng.sample_without_replacement(self.degree, fanout)
        return [
            (int(port), Message(f"g{round_index}", payload=(self.uid, int(port))))
            for port in sorted(int(p) for p in ports)
        ]


def _run_trace(topology, backend, seed=7, node_cls=_TraceNode, max_rounds=8):
    rng = RandomSource(seed)
    metrics = MetricsRecorder()
    nodes = [
        node_cls(v, topology.degree(v), rng.spawn()) for v in range(topology.n)
    ]
    engine = SynchronousEngine(topology, nodes, metrics, backend=backend)
    rounds = engine.run(max_rounds=max_rounds)
    return {
        "rounds": rounds,
        "messages": metrics.messages,
        "metric_rounds": metrics.rounds,
        "undelivered": engine.undelivered(),
        "logs": [getattr(node, "log", None) for node in nodes],
    }


class TestTraceEquivalence:
    @pytest.mark.parametrize("family", sorted(FAMILY_TOPOLOGIES))
    def test_all_families(self, family):
        topology = FAMILY_TOPOLOGIES[family]
        fast = _run_trace(topology, "fast")
        reference = _run_trace(topology, "reference")
        assert fast == reference

    def test_round_budget_cutoff(self):
        topology = graphs.cycle(6)
        fast = _run_trace(topology, "fast", max_rounds=2)
        reference = _run_trace(topology, "reference", max_rounds=2)
        assert fast == reference
        assert fast["undelivered"] > 0  # budget cut sends off mid-flight

    def test_messages_to_halted_receivers(self):
        class EarlyHalter(Node):
            def step(self, round_index, inbox):
                if self.uid == 1:
                    self.halt()
                    return []
                if round_index < 3:
                    return [(0, Message("late"))]
                self.halt()
                return []

        topology = graphs.path(2)
        fast = _run_trace(topology, "fast", node_cls=EarlyHalter)
        reference = _run_trace(topology, "reference", node_cls=EarlyHalter)
        assert fast == reference
        assert fast["undelivered"] > 0

    def test_multi_unit_payload_charges(self):
        capacity = congest_capacity_bits(4)

        class BigSender(Node):
            def step(self, round_index, inbox):
                if round_index == 0 and self.uid == 0:
                    return [
                        (0, Message("blob", bits=3 * capacity)),
                        (1, Message("ping")),
                    ]
                self.halt()
                return []

        topology = graphs.cycle(4)
        fast = _run_trace(topology, "fast", node_cls=BigSender)
        reference = _run_trace(topology, "reference", node_cls=BigSender)
        assert fast == reference
        assert fast["messages"] == 4  # 3 units for the blob + 1 ping

    def test_invalid_port_rejected_by_both(self):
        # The exact exception differs (the reference surfaces the topology
        # lookup's error), but both backends must reject the bad port.
        class BadSender(Node):
            def step(self, round_index, inbox):
                return [(self.degree, Message("off-the-end"))]

        for backend in BACKENDS:
            rng = RandomSource(0)
            topology = graphs.cycle(4)
            nodes = [
                BadSender(v, 2, rng.spawn()) for v in range(4)
            ]
            engine = SynchronousEngine(
                topology, nodes, MetricsRecorder(), backend=backend
            )
            with pytest.raises((ValueError, IndexError)):
                engine.run(max_rounds=2)


class TestProtocolEquivalence:
    """Full protocols produce bit-identical results under either backend."""

    @staticmethod
    def _under_backend(monkeypatch, backend, fn):
        monkeypatch.setenv("REPRO_ENGINE", backend)
        return fn()

    @staticmethod
    def _summary(result):
        return (
            result.leader,
            result.messages,
            result.rounds,
            result.success,
            dict(result.statuses),
            dict(result.meta),
        )

    @pytest.mark.parametrize(
        "protocol",
        [
            lambda: classical_le_complete(96, RandomSource(3)),
            lambda: classical_le_diameter2(graphs.wheel(48), RandomSource(4)),
            lambda: classical_le_diameter2(graphs.star(48), RandomSource(5)),
            lambda: lcr_ring(40, RandomSource(6)),
            lambda: hirschberg_sinclair_ring(40, RandomSource(7)),
        ],
        ids=["kpp-complete", "cpr-wheel", "cpr-star", "lcr-ring", "hs-ring"],
    )
    def test_bit_identical_results(self, monkeypatch, protocol):
        fast = self._summary(self._under_backend(monkeypatch, "fast", protocol))
        reference = self._summary(
            self._under_backend(monkeypatch, "reference", protocol)
        )
        assert fast == reference


class TestBackendSelection:
    def test_default_is_fast(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert default_backend() == "fast"

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "reference")
        topology = graphs.cycle(4)
        rng = RandomSource(0)
        nodes = [Node(v, 2, rng.spawn()) for v in range(4)]
        engine = SynchronousEngine(topology, nodes, MetricsRecorder())
        assert engine.backend == "reference"

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "warp")
        with pytest.raises(ValueError):
            default_backend()

    def test_invalid_backend_argument_rejected(self):
        topology = graphs.cycle(4)
        rng = RandomSource(0)
        nodes = [Node(v, 2, rng.spawn()) for v in range(4)]
        with pytest.raises(ValueError):
            SynchronousEngine(topology, nodes, MetricsRecorder(), backend="warp")
