"""Tests for the synchronous engine."""

import pytest

from repro.network import graphs
from repro.network.engine import CongestViolation, SynchronousEngine
from repro.network.message import Message, congest_capacity_bits
from repro.network.metrics import MetricsRecorder
from repro.network.node import Node
from repro.util.rng import RandomSource


class _Flooder(Node):
    """Sends one ping on every port in round 0, then halts."""

    def step(self, round_index, inbox):
        if round_index == 0:
            return [(p, Message("ping")) for p in range(self.degree)]
        self.received = [m.payload for _, m in inbox]
        self.halt()
        return []


class _Echo(Node):
    """Replies to everything it receives; halts after round 2."""

    def __init__(self, *args):
        super().__init__(*args)
        self.log = []

    def step(self, round_index, inbox):
        out = []
        for port, message in inbox:
            self.log.append((round_index, port, message.kind))
            if message.kind == "ping":
                out.append((port, Message("pong")))
        if round_index >= 2:
            self.halt()
        return out


class _DoubleSender(Node):
    def step(self, round_index, inbox):
        if round_index == 0:
            return [(0, Message("a")), (0, Message("b"))]
        return []


def _build(topology, cls):
    rng = RandomSource(0)
    metrics = MetricsRecorder()
    nodes = [cls(v, topology.degree(v), rng.spawn()) for v in range(topology.n)]
    return SynchronousEngine(topology, nodes, metrics), metrics, nodes


class TestEngine:
    def test_message_counting(self):
        t = graphs.cycle(6)
        engine, metrics, _ = _build(t, _Flooder)
        engine.run(max_rounds=3)
        # round 0: every node sends 2 messages -> 12 total
        assert metrics.messages == 12

    def test_round_counting_stops_when_halted(self):
        t = graphs.cycle(4)
        engine, metrics, _ = _build(t, _Flooder)
        used = engine.run(max_rounds=10)
        assert used == 2  # send round + receive/halt round
        assert metrics.rounds == 2

    def test_delivery_port_mapping(self):
        t = graphs.path(3)
        engine, _, nodes = _build(t, _Echo)
        nodes[0].halted = nodes[2].halted = False

        # node 1 pings both neighbours in round 0 via a custom node
        class Pinger(Node):
            def step(self, round_index, inbox):
                if round_index == 0 and self.uid == 1:
                    return [(p, Message("ping")) for p in range(self.degree)]
                self.inbox_kinds = [m.kind for _, m in inbox]
                if round_index >= 2:
                    self.halt()
                return []

        engine, metrics, nodes = _build(t, Pinger)
        engine.run(max_rounds=4)
        assert metrics.messages == 2  # only node 1 sent

    def test_congest_violation_detected(self):
        t = graphs.path(2)
        engine, _, _ = _build(t, _DoubleSender)
        with pytest.raises(CongestViolation):
            engine.run(max_rounds=2)

    def test_large_payload_counts_multiple_units(self):
        t = graphs.path(2)
        cap = congest_capacity_bits(2)

        class BigSender(Node):
            def step(self, round_index, inbox):
                if round_index == 0 and self.uid == 0:
                    return [(0, Message("blob", bits=3 * cap))]
                self.halt()
                return []

        rng = RandomSource(0)
        metrics = MetricsRecorder()
        nodes = [BigSender(v, 1, rng.spawn()) for v in range(2)]
        SynchronousEngine(t, nodes, metrics).run(max_rounds=3)
        assert metrics.messages == 3

    def test_sender_stamped_on_delivery(self):
        t = graphs.path(2)

        class Recorder(Node):
            def step(self, round_index, inbox):
                if round_index == 0 and self.uid == 0:
                    return [(0, Message("hello"))]
                if inbox:
                    self.seen = inbox[0][1]
                    self.halt()
                return []

        rng = RandomSource(0)
        metrics = MetricsRecorder()
        nodes = [Recorder(v, 1, rng.spawn()) for v in range(2)]
        SynchronousEngine(t, nodes, metrics).run(max_rounds=3)
        assert nodes[1].seen.sender == 0

    def test_node_count_mismatch_rejected(self):
        t = graphs.cycle(4)
        rng = RandomSource(0)
        with pytest.raises(ValueError):
            SynchronousEngine(t, [Node(0, 2, rng)], MetricsRecorder())

    def test_ping_pong_roundtrip(self):
        t = graphs.star(4)

        class LeafPinger(Node):
            def __init__(self, *args):
                super().__init__(*args)
                self.got_pong = False

            def step(self, round_index, inbox):
                for _, m in inbox:
                    if m.kind == "pong":
                        self.got_pong = True
                if round_index == 0 and self.uid != 0:
                    return [(0, Message("ping"))]
                if round_index == 1 and self.uid == 0:
                    return [(port, Message("pong")) for port, m in inbox]
                if round_index >= 2:
                    self.halt()
                return []

        rng = RandomSource(0)
        metrics = MetricsRecorder()
        nodes = [LeafPinger(v, t.degree(v), rng.spawn()) for v in range(4)]
        SynchronousEngine(t, nodes, metrics).run(max_rounds=5)
        assert all(nodes[v].got_pong for v in range(1, 4))
        assert metrics.messages == 6  # 3 pings + 3 pongs


class TestUndelivered:
    def test_zero_when_protocol_drains(self):
        t = graphs.cycle(4)
        rng = RandomSource(0)
        metrics = MetricsRecorder()
        nodes = [Node(v, 2, rng.spawn()) for v in range(4)]  # silent nodes
        engine = SynchronousEngine(t, nodes, metrics)
        engine.run(max_rounds=3)
        assert engine.undelivered() == 0

    def test_counts_messages_cut_off_by_round_budget(self):
        t = graphs.cycle(4)

        class Chatter(Node):
            def step(self, round_index, inbox):
                return [(0, Message("token"))]

        rng = RandomSource(0)
        metrics = MetricsRecorder()
        nodes = [Chatter(v, 2, rng.spawn()) for v in range(4)]
        engine = SynchronousEngine(t, nodes, metrics)
        engine.run(max_rounds=2)
        # Every node sent in the last executed round; none were consumed.
        assert engine.undelivered() == 4

    def test_counts_messages_to_halted_receivers(self):
        t = graphs.path(2)

        class Sender(Node):
            def step(self, round_index, inbox):
                if round_index == 0:
                    return [(0, Message("late"))]
                self.halt()
                return []

        class EarlyHalter(Node):
            def step(self, round_index, inbox):
                self.halt()
                return []

        rng = RandomSource(0)
        metrics = MetricsRecorder()
        nodes = [Sender(0, 1, rng.spawn()), EarlyHalter(1, 1, rng.spawn())]
        engine = SynchronousEngine(t, nodes, metrics)
        engine.run(max_rounds=5)
        # node 1 halted in round 0; node 0's round-0 message was never read.
        assert engine.undelivered() == 1
