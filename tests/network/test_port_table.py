"""Port tables must agree with the scalar topology interface everywhere."""

import numpy as np
import pytest

from repro.network import graphs
from repro.network.porttable import (
    BipartitePortTable,
    CSRPortTable,
    CompletePortTable,
    CyclePortTable,
    HypercubePortTable,
    PortTable,
    StarPortTable,
)
from repro.util.rng import RandomSource


def _all_family_topologies():
    """One small instance of every topology family in the catalogue."""
    rng = RandomSource(2024)
    return {
        "complete": graphs.complete(11),
        "star": graphs.star(9),
        "cycle": graphs.cycle(8),
        "path": graphs.path(7),
        "wheel": graphs.wheel(9),
        "hypercube": graphs.hypercube(4),
        "torus": graphs.torus(3, 4),
        "barbell": graphs.barbell(4),
        "lollipop": graphs.lollipop(5, 3),
        "complete-bipartite": graphs.complete_bipartite(3, 5),
        "random-regular": graphs.random_regular(10, 4, rng),
        "erdos-renyi": graphs.erdos_renyi(12, 0.4, rng),
        "diameter2-gnp": graphs.diameter_two_gnp(16, rng),
    }


ALL_FAMILIES = _all_family_topologies()


def _directed_edges(topology):
    senders, ports = [], []
    for v in range(topology.n):
        for port in range(topology.degree(v)):
            senders.append(v)
            ports.append(port)
    return (
        np.asarray(senders, dtype=np.int64),
        np.asarray(ports, dtype=np.int64),
    )


class TestTableAgainstScalarInterface:
    @pytest.mark.parametrize("family", sorted(ALL_FAMILIES))
    def test_receivers_and_reverse_ports_match(self, family):
        topology = ALL_FAMILIES[family]
        table = topology.port_table()
        senders, ports = _directed_edges(topology)
        receivers = table.receivers(senders, ports)
        arrivals = table.reverse_ports(senders, ports, receivers)
        for i in range(len(senders)):
            v, port = int(senders[i]), int(ports[i])
            u = topology.neighbor_at_port(v, port)
            assert int(receivers[i]) == u
            assert int(arrivals[i]) == topology.port_to(u, v)

    @pytest.mark.parametrize("family", sorted(ALL_FAMILIES))
    def test_degrees_match(self, family):
        topology = ALL_FAMILIES[family]
        table = topology.port_table()
        degrees = table.degrees_of(np.arange(topology.n, dtype=np.int64))
        assert degrees.tolist() == [topology.degree(v) for v in range(topology.n)]
        assert table.max_ports == max(degrees.tolist())
        assert table.n == topology.n

    @pytest.mark.parametrize("family", sorted(ALL_FAMILIES))
    def test_scalar_port_to_round_trips(self, family):
        topology = ALL_FAMILIES[family]
        table = topology.port_table()
        for v in range(topology.n):
            for port in range(topology.degree(v)):
                u = topology.neighbor_at_port(v, port)
                assert table.port_to(v, u) == port
                assert topology.port_to(v, u) == port

    @pytest.mark.parametrize("family", sorted(ALL_FAMILIES))
    def test_matches_generic_csr_build(self, family):
        """Arithmetic tables agree with a materialized CSR of the same graph."""
        topology = ALL_FAMILIES[family]
        table = topology.port_table()
        csr = CSRPortTable.from_topology(topology)
        senders, ports = _directed_edges(topology)
        assert (
            table.receivers(senders, ports) == csr.receivers(senders, ports)
        ).all()
        receivers = csr.receivers(senders, ports)
        assert (
            table.reverse_ports(senders, ports, receivers)
            == csr.reverse_ports(senders, ports, receivers)
        ).all()


class TestTableKinds:
    def test_implicit_families_avoid_materialization(self):
        assert isinstance(graphs.complete(6).port_table(), CompletePortTable)
        assert isinstance(graphs.star(6).port_table(), StarPortTable)
        assert isinstance(
            graphs.complete_bipartite(3, 4).port_table(), BipartitePortTable
        )
        assert isinstance(graphs.hypercube(3).port_table(), HypercubePortTable)
        assert isinstance(graphs.cycle(5).port_table(), CyclePortTable)

    def test_explicit_topology_uses_csr(self):
        assert isinstance(graphs.path(5).port_table(), CSRPortTable)

    def test_table_is_cached_per_topology(self):
        topology = graphs.cycle(5)
        assert topology.port_table() is topology.port_table()

    def test_tables_are_port_tables(self):
        for topology in ALL_FAMILIES.values():
            assert isinstance(topology.port_table(), PortTable)


class TestPortToErrors:
    def test_non_neighbours_raise(self):
        cases = [
            (graphs.complete(5), 2, 2),  # self
            (graphs.star(5), 1, 2),  # leaf to leaf
            (graphs.complete_bipartite(2, 3), 0, 1),  # same side
            (graphs.hypercube(3), 0, 3),  # two bits apart
            (graphs.cycle(6), 0, 3),  # opposite side
            (graphs.path(4), 0, 2),  # two hops
        ]
        for topology, v, u in cases:
            with pytest.raises(ValueError):
                topology.port_to(v, u)
            with pytest.raises(ValueError):
                topology.port_table().port_to(v, u)

    def test_asymmetric_adjacency_rejected(self):
        with pytest.raises(ValueError, match="not an undirected graph"):
            CSRPortTable.from_adjacency([[1], []])
