"""Tests for repro.network.graphs generators."""

import pytest

from repro.network import graphs
from repro.network.topology import diameter, is_connected
from repro.util.rng import RandomSource


@pytest.fixture
def rng():
    return RandomSource(2024)


class TestDeterministicFamilies:
    def test_cycle(self):
        t = graphs.cycle(8)
        assert t.n == 8 and t.edge_count() == 8
        assert all(t.degree(v) == 2 for v in range(8))

    def test_cycle_rejects_small(self):
        with pytest.raises(ValueError):
            graphs.cycle(2)

    def test_path(self):
        t = graphs.path(5)
        assert t.edge_count() == 4
        assert t.degree(0) == 1 and t.degree(2) == 2

    def test_wheel_diameter_two(self):
        t = graphs.wheel(10)
        assert diameter(t) == 2
        assert t.degree(0) == 9  # hub

    def test_torus(self):
        t = graphs.torus(4, 5)
        assert t.n == 20
        assert all(t.degree(v) == 4 for v in range(20))
        assert is_connected(t)

    def test_barbell(self):
        t = graphs.barbell(5)
        assert t.n == 10
        assert is_connected(t)
        # bridge endpoints have degree k, others k-1
        assert t.degree(4) == 5 and t.degree(5) == 5
        assert t.degree(0) == 4

    def test_lollipop(self):
        t = graphs.lollipop(4, 3)
        assert t.n == 7
        assert is_connected(t)
        assert t.degree(6) == 1  # tail end

    def test_complete_and_star_wrappers(self):
        assert graphs.complete(5).edge_count() == 10
        assert graphs.star(5).edge_count() == 4
        assert graphs.complete_bipartite(2, 3).edge_count() == 6
        assert graphs.hypercube(3).n == 8


class TestRandomFamilies:
    def test_random_regular_connected_and_regular(self, rng):
        t = graphs.random_regular(50, 4, rng)
        assert is_connected(t)
        assert all(t.degree(v) == 4 for v in range(50))

    def test_random_regular_validates_parity(self, rng):
        with pytest.raises(ValueError):
            graphs.random_regular(7, 3, rng)  # odd n * odd degree

    def test_random_regular_validates_degree(self, rng):
        with pytest.raises(ValueError):
            graphs.random_regular(10, 2, rng)

    def test_erdos_renyi_connected(self, rng):
        t = graphs.erdos_renyi(60, 0.15, rng)
        assert is_connected(t)
        assert t.n == 60

    def test_erdos_renyi_rejects_bad_p(self, rng):
        with pytest.raises(ValueError):
            graphs.erdos_renyi(10, 0.0, rng)

    def test_diameter_two_gnp_really_diameter_two(self, rng):
        t = graphs.diameter_two_gnp(80, rng)
        assert diameter(t) == 2

    def test_reproducible_with_same_seed(self):
        a = graphs.erdos_renyi(40, 0.2, RandomSource(5))
        b = graphs.erdos_renyi(40, 0.2, RandomSource(5))
        assert sorted(a.edges()) == sorted(b.edges())

    def test_as_explicit_roundtrip(self):
        t = graphs.complete(6)
        e = graphs.as_explicit(t)
        assert e.edge_count() == t.edge_count()
        assert sorted(e.edges()) == sorted(t.edges())
