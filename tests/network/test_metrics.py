"""Tests for repro.network.metrics."""

from repro.network.metrics import MetricsRecorder


class TestMetricsRecorder:
    def test_starts_at_zero(self):
        metrics = MetricsRecorder()
        assert metrics.messages == 0
        assert metrics.rounds == 0

    def test_charge_updates_totals_and_ledger(self):
        metrics = MetricsRecorder()
        metrics.charge("phase1", messages=10, rounds=2)
        assert metrics.messages == 10
        assert metrics.rounds == 2
        assert metrics.ledger.messages_by_label() == {"phase1": 10}

    def test_charge_messages_only(self):
        metrics = MetricsRecorder()
        metrics.charge_messages("m", 7)
        assert metrics.messages == 7
        assert metrics.rounds == 0

    def test_advance_rounds_only(self):
        metrics = MetricsRecorder()
        metrics.advance_rounds("r", 5)
        assert metrics.rounds == 5
        assert metrics.messages == 0

    def test_snapshot_delta(self):
        metrics = MetricsRecorder()
        metrics.charge("before", messages=3, rounds=1)
        snap = metrics.snapshot()
        metrics.charge("after", messages=4, rounds=2)
        phase = metrics.delta(snap, label="after-phase")
        assert phase.messages == 4
        assert phase.rounds == 2
        assert phase.label == "after-phase"

    def test_merge(self):
        a = MetricsRecorder()
        a.charge("x", messages=1, rounds=1)
        b = MetricsRecorder()
        b.charge("y", messages=2, rounds=3)
        a.merge(b)
        assert a.messages == 3
        assert a.rounds == 4
        assert set(a.ledger.messages_by_label()) == {"x", "y"}

    def test_totals_match_ledger(self):
        metrics = MetricsRecorder()
        for i in range(10):
            metrics.charge(f"l{i % 3}", messages=i, rounds=i % 2)
        assert metrics.messages == metrics.ledger.total_messages
        assert metrics.rounds == metrics.ledger.total_rounds
