"""Tests for repro.network.random_walk."""

import numpy as np
import pytest

from repro.network import graphs
from repro.network.random_walk import (
    RandomWalk,
    estimate_mixing_time,
    lazy_transition_matrix,
    spectral_gap,
    stationary_distribution,
)
from repro.util.rng import RandomSource


@pytest.fixture
def rng():
    return RandomSource(99)


class TestTransitionMatrix:
    def test_rows_are_stochastic(self):
        t = graphs.cycle(10)
        matrix = lazy_transition_matrix(t)
        rows = np.asarray(matrix.sum(axis=1)).ravel()
        assert np.allclose(rows, 1.0)

    def test_laziness_diagonal_half(self):
        t = graphs.complete(5)
        matrix = lazy_transition_matrix(t).toarray()
        assert np.allclose(np.diag(matrix), 0.5)

    def test_stationarity(self):
        """π P = π for the lazy walk."""
        t = graphs.lollipop(5, 4)
        matrix = lazy_transition_matrix(t)
        pi = stationary_distribution(t)
        assert np.allclose(pi @ matrix.toarray(), pi, atol=1e-12)


class TestStationaryDistribution:
    def test_uniform_on_regular_graphs(self):
        t = graphs.cycle(12)
        pi = stationary_distribution(t)
        assert np.allclose(pi, 1.0 / 12.0)

    def test_proportional_to_degree(self):
        t = graphs.star(5)
        pi = stationary_distribution(t)
        assert pi[0] == pytest.approx(4 / 8)
        assert pi[1] == pytest.approx(1 / 8)

    def test_sums_to_one(self):
        t = graphs.barbell(4)
        assert stationary_distribution(t).sum() == pytest.approx(1.0)


class TestSpectralGap:
    def test_complete_graph_large_gap(self):
        gap = spectral_gap(graphs.complete(16))
        # Lazy walk on K_n: eigenvalues {1, (1 - 1/(n-1) …)}/2-ish; gap ≈ 1/2.
        assert gap > 0.4

    def test_hypercube_gap_is_inverse_dimension(self):
        gap = spectral_gap(graphs.hypercube(5))
        assert gap == pytest.approx(1.0 / 5.0, rel=1e-6)

    def test_barbell_gap_tiny(self):
        assert spectral_gap(graphs.barbell(8)) < 0.05

    def test_gap_positive_for_connected(self):
        assert spectral_gap(graphs.cycle(30)) > 0

    def test_large_graph_sparse_path(self):
        """n > 256 exercises the eigsh branch."""
        t = graphs.torus(17, 17)
        assert 0 < spectral_gap(t) < 1


class TestMixingTime:
    def test_expander_mixes_much_faster_than_cycle(self, rng):
        expander = graphs.random_regular(128, 6, rng)
        ring = graphs.cycle(128)
        tau_expander = estimate_mixing_time(expander)
        tau_ring = estimate_mixing_time(ring)
        assert tau_expander < 128  # strongly sublinear: O(log n) up to constants
        assert tau_ring > 5 * tau_expander  # Θ(n²) vs Θ(log n)

    def test_barbell_mixes_slowly(self):
        fast = estimate_mixing_time(graphs.complete(16))
        slow = estimate_mixing_time(graphs.barbell(8))
        assert slow > 5 * fast

    def test_at_least_one(self):
        assert estimate_mixing_time(graphs.complete(4)) >= 1


class TestRandomWalkSimulation:
    def test_run_length_and_adjacency(self, rng):
        t = graphs.cycle(10)
        walk = RandomWalk(t)
        trajectory = walk.run(0, 20, rng)
        assert len(trajectory) == 21
        for a, b in zip(trajectory, trajectory[1:]):
            assert a == b or t.has_edge(a, b)

    def test_endpoint_matches_run_semantics(self, rng):
        t = graphs.complete(6)
        walk = RandomWalk(t)
        endpoint = walk.endpoint(2, 15, rng)
        assert 0 <= endpoint < 6

    def test_distribution_after_converges_to_stationary(self):
        t = graphs.complete(8)
        walk = RandomWalk(t)
        dist = walk.distribution_after(0, 40)
        assert np.allclose(dist, stationary_distribution(t), atol=1e-6)

    def test_distribution_is_probability(self):
        t = graphs.lollipop(4, 3)
        walk = RandomWalk(t)
        dist = walk.distribution_after(0, 7)
        assert dist.sum() == pytest.approx(1.0)
        assert (dist >= 0).all()

    def test_hit_probability_empty_targets(self):
        walk = RandomWalk(graphs.cycle(5))
        assert walk.hit_probability(0, 3, set()) == 0.0

    def test_hit_probability_matches_distribution(self):
        t = graphs.cycle(7)
        walk = RandomWalk(t)
        dist = walk.distribution_after(0, 5)
        targets = {1, 3}
        assert walk.hit_probability(0, 5, targets) == pytest.approx(
            dist[1] + dist[3]
        )

    def test_follow_choices_deterministic(self, rng):
        t = graphs.hypercube(3)
        walk = RandomWalk(t)
        choices = walk.choices_for_walk(12, rng)
        a = walk.follow_choices(0, choices)
        b = walk.follow_choices(0, choices)
        assert a == b

    def test_follow_choices_lazy_steps_stay(self):
        t = graphs.cycle(5)
        walk = RandomWalk(t)
        choices = [(True, 0.9)] * 6  # all lazy
        assert walk.follow_choices(3, choices) == 3

    def test_empirical_endpoint_distribution_close_to_exact(self, rng):
        t = graphs.star(6)
        walk = RandomWalk(t)
        steps = 4
        exact = walk.distribution_after(1, steps)
        samples = [walk.endpoint(1, steps, rng) for _ in range(4000)]
        empirical = np.bincount(samples, minlength=6) / 4000
        assert np.abs(empirical - exact).max() < 0.05
