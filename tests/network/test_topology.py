"""Tests for repro.network.topology."""

import pytest

from repro.network.topology import (
    CompleteBipartiteTopology,
    CompleteTopology,
    ExplicitTopology,
    HypercubeTopology,
    StarTopology,
    bfs_distances,
    diameter,
    eccentricity,
    is_connected,
)


class TestExplicitTopology:
    def test_triangle_basics(self):
        t = ExplicitTopology(3, [(0, 1), (1, 2), (0, 2)])
        assert t.n == 3
        assert t.edge_count() == 3
        assert all(t.degree(v) == 2 for v in range(3))

    def test_duplicate_edges_collapsed(self):
        t = ExplicitTopology(3, [(0, 1), (1, 0), (0, 1)])
        assert t.edge_count() == 1

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            ExplicitTopology(2, [(0, 0)])

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(ValueError):
            ExplicitTopology(2, [(0, 2)])

    def test_ports_and_port_to_roundtrip(self):
        t = ExplicitTopology(4, [(0, 1), (0, 2), (0, 3)])
        for port in range(t.degree(0)):
            neighbour = t.neighbor_at_port(0, port)
            assert t.port_to(0, neighbour) == port

    def test_port_to_rejects_non_neighbor(self):
        t = ExplicitTopology(3, [(0, 1)])
        with pytest.raises(ValueError):
            t.port_to(0, 2)

    def test_edges_iteration_each_once(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
        t = ExplicitTopology(4, edges)
        normalized = sorted((min(u, v), max(u, v)) for u, v in edges)
        assert sorted(t.edges()) == normalized

    def test_from_networkx(self):
        import networkx as nx

        g = nx.path_graph(5)
        t = ExplicitTopology.from_networkx(g)
        assert t.n == 5
        assert t.edge_count() == 4

    def test_has_edge(self):
        t = ExplicitTopology(3, [(0, 1)])
        assert t.has_edge(0, 1) and t.has_edge(1, 0)
        assert not t.has_edge(0, 2)


class TestCompleteTopology:
    def test_degree_and_edges(self):
        t = CompleteTopology(10)
        assert all(t.degree(v) == 9 for v in range(10))
        assert t.edge_count() == 45

    def test_ports_cover_all_other_nodes(self):
        t = CompleteTopology(7)
        for v in range(7):
            neighbours = {t.neighbor_at_port(v, p) for p in range(6)}
            assert neighbours == set(range(7)) - {v}

    def test_port_to_is_constant_time_inverse(self):
        t = CompleteTopology(9)
        for v in range(9):
            for u in range(9):
                if u != v:
                    assert t.neighbor_at_port(v, t.port_to(v, u)) == u

    def test_no_port_to_self(self):
        with pytest.raises(ValueError):
            CompleteTopology(4).port_to(2, 2)

    def test_diameter_one(self):
        assert diameter(CompleteTopology(6)) == 1

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            CompleteTopology(1)


class TestStarTopology:
    def test_center_and_leaf_degrees(self):
        t = StarTopology(8)
        assert t.degree(0) == 7
        assert all(t.degree(v) == 1 for v in range(1, 8))

    def test_leaf_single_port_to_center(self):
        t = StarTopology(5)
        assert t.neighbor_at_port(3, 0) == 0
        with pytest.raises(ValueError):
            t.neighbor_at_port(3, 1)

    def test_diameter_two(self):
        assert diameter(StarTopology(6)) == 2

    def test_edge_count(self):
        assert StarTopology(9).edge_count() == 8


class TestCompleteBipartite:
    def test_structure(self):
        t = CompleteBipartiteTopology(3, 4)
        assert t.n == 7
        assert t.edge_count() == 12
        assert t.degree(0) == 4  # left node sees all right nodes
        assert t.degree(5) == 3

    def test_edges_cross_parts_only(self):
        t = CompleteBipartiteTopology(3, 3)
        assert t.has_edge(0, 4)
        assert not t.has_edge(0, 1)
        assert not t.has_edge(3, 4)

    def test_diameter_two(self):
        assert diameter(CompleteBipartiteTopology(3, 5)) == 2

    def test_is_left(self):
        t = CompleteBipartiteTopology(2, 2)
        assert t.is_left(1) and not t.is_left(2)


class TestHypercube:
    def test_structure(self):
        t = HypercubeTopology(4)
        assert t.n == 16
        assert all(t.degree(v) == 4 for v in range(16))
        assert t.edge_count() == 32

    def test_ports_flip_bits(self):
        t = HypercubeTopology(3)
        assert t.neighbor_at_port(0b101, 1) == 0b111

    def test_has_edge_hamming_distance_one(self):
        t = HypercubeTopology(3)
        assert t.has_edge(0b000, 0b100)
        assert not t.has_edge(0b000, 0b110)
        assert not t.has_edge(3, 3)

    def test_of_size(self):
        assert HypercubeTopology.of_size(32).dimension == 5
        with pytest.raises(ValueError):
            HypercubeTopology.of_size(12)

    def test_diameter_equals_dimension(self):
        assert diameter(HypercubeTopology(3)) == 3


class TestGraphMeasurements:
    def test_bfs_distances_path(self):
        t = ExplicitTopology(4, [(0, 1), (1, 2), (2, 3)])
        assert bfs_distances(t, 0) == [0, 1, 2, 3]

    def test_disconnected_marked(self):
        t = ExplicitTopology(4, [(0, 1), (2, 3)])
        distances = bfs_distances(t, 0)
        assert distances[2] == -1 and distances[3] == -1
        assert not is_connected(t)

    def test_eccentricity_raises_on_disconnected(self):
        t = ExplicitTopology(3, [(0, 1)])
        with pytest.raises(ValueError):
            eccentricity(t, 0)

    def test_diameter_cycle(self):
        t = ExplicitTopology(6, [(i, (i + 1) % 6) for i in range(6)])
        assert diameter(t) == 3
