"""Tests for the compiled kernel tier (`repro.network.kernels`).

Three layers:

* **selection semantics** — ``resolve_kernel`` / ``get_kernels`` honour the
  ``REPRO_KERNEL`` env default, ``auto`` resolves to whatever is installed,
  and an explicit ``numba`` request errors out when numba is absent
  instead of silently degrading;
* **kernel correctness** — every numpy kernel matches a naive sequential
  reference on randomized inputs (first-wins tie-breaking included); when
  numba is importable the compiled twins must be bit-identical to numpy;
* **invariance** — the kernel knob never leaks into results: the engine
  produces identical trials under either tier, and
  :class:`~repro.runtime.store.ResultStore` cache identities ignore
  ``REPRO_KERNEL`` entirely.
"""

import os

import numpy as np
import pytest

from repro.network import graphs
from repro.network.batch import MessageBatch
from repro.network.kernels import (
    KERNEL_CHOICES,
    KernelSet,
    default_kernel,
    get_kernels,
    numba_available,
    resolve_kernel,
)


@pytest.fixture
def clean_kernel_env(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL", raising=False)


class TestSelection:
    def test_default_is_auto(self, clean_kernel_env):
        assert default_kernel() == "auto"

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "numpy")
        assert default_kernel() == "numpy"
        assert resolve_kernel() == "numpy"

    def test_bad_env_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "fortran")
        with pytest.raises(ValueError, match="REPRO_KERNEL"):
            default_kernel()

    def test_bad_explicit_name_raises(self):
        with pytest.raises(ValueError, match="kernel must be one of"):
            resolve_kernel("fortran")

    def test_auto_resolves_to_installed_tier(self, clean_kernel_env):
        expected = "numba" if numba_available() else "numpy"
        assert resolve_kernel("auto") == expected
        assert resolve_kernel(None) == expected

    def test_numpy_always_available(self):
        assert resolve_kernel("numpy") == "numpy"
        assert get_kernels("numpy").name == "numpy"
        assert not get_kernels("numpy").is_numba

    @pytest.mark.skipif(
        numba_available(), reason="numba installed: explicit request succeeds"
    )
    def test_explicit_numba_without_numba_raises(self):
        with pytest.raises(RuntimeError, match="numba is not installed"):
            resolve_kernel("numba")
        with pytest.raises(RuntimeError, match="numba is not installed"):
            get_kernels("numba")

    @pytest.mark.skipif(
        not numba_available(), reason="needs the optional numba dependency"
    )
    def test_explicit_numba_with_numba(self):
        kernels = get_kernels("numba")
        assert kernels.name == "numba"
        assert kernels.is_numba

    def test_singletons_are_cached(self):
        assert get_kernels("numpy") is get_kernels("numpy")

    def test_choices_tuple(self):
        assert KERNEL_CHOICES == ("auto", "numba", "numpy")


# -- naive references the kernels must match ---------------------------------


def _naive_group_argmin_lex3(groups, w, a, b, size):
    pos = [-1] * size
    for i, g in enumerate(groups):
        p = pos[g]
        if p < 0 or (w[i], a[i], b[i]) < (w[p], a[p], b[p]):
            pos[g] = i
    return np.asarray(pos, dtype=np.int64)


def _random_rows(rng, count, size):
    groups = rng.integers(0, size, size=count)
    # Small value ranges force plenty of exact ties.
    w = rng.integers(0, 4, size=count).astype(np.float64)
    a = rng.integers(0, 3, size=count)
    b = rng.integers(0, 3, size=count)
    return groups, w, a, b


def _all_kernel_sets():
    sets = [get_kernels("numpy")]
    if numba_available():
        sets.append(get_kernels("numba"))
    return sets


@pytest.mark.parametrize("kernels", _all_kernel_sets(), ids=lambda k: k.name)
class TestKernelCorrectness:
    def test_route_csr_matches_port_table(self, kernels):
        from repro.util.rng import RandomSource

        topology = graphs.random_regular(24, 4, RandomSource(3))
        table = topology.port_table()
        rng = np.random.default_rng(7)
        senders = rng.integers(0, 24, size=60)
        ports = rng.integers(0, 4, size=60)
        receivers, arrivals = table.route(senders, ports, kernels)
        for i in range(60):
            expected = topology.neighbor_at_port(int(senders[i]), int(ports[i]))
            assert receivers[i] == expected
            assert topology.neighbor_at_port(
                int(receivers[i]), int(arrivals[i])
            ) == senders[i]

    def test_stable_receiver_order(self, kernels):
        rng = np.random.default_rng(11)
        for count, size in [(0, 5), (7, 3), (200, 16), (64, 4096)]:
            receivers = rng.integers(0, size, size=count)
            order = kernels.stable_receiver_order(receivers, size)
            expected = np.argsort(receivers, kind="stable")
            assert np.array_equal(order, expected)

    def test_scatter_max_min(self, kernels):
        rng = np.random.default_rng(13)
        idx = rng.integers(0, 10, size=120)
        values = rng.integers(-50, 50, size=120)
        hi = np.full(10, -1000, dtype=np.int64)
        lo = np.full(10, 1000, dtype=np.int64)
        kernels.scatter_max(hi, idx, values)
        kernels.scatter_min(lo, idx, values)
        expect_hi = np.full(10, -1000, dtype=np.int64)
        expect_lo = np.full(10, 1000, dtype=np.int64)
        np.maximum.at(expect_hi, idx, values)
        np.minimum.at(expect_lo, idx, values)
        assert np.array_equal(hi, expect_hi)
        assert np.array_equal(lo, expect_lo)

    def test_group_argmin_lex3_first_wins(self, kernels):
        rng = np.random.default_rng(17)
        for count, size in [(0, 4), (50, 6), (400, 12)]:
            groups, w, a, b = _random_rows(rng, count, size)
            pos = kernels.group_argmin_lex3(groups, w, a, b, size)
            expected = _naive_group_argmin_lex3(
                groups.tolist(), w.tolist(), a.tolist(), b.tolist(), size
            )
            assert np.array_equal(pos, expected)

    def test_scatter_min_lex3(self, kernels):
        rng = np.random.default_rng(19)
        size = 8
        groups, w, a, b = _random_rows(rng, 300, size)
        best_w = np.full(size, np.inf)
        best_a = np.full(size, 2**62, dtype=np.int64)
        best_b = np.full(size, 2**62, dtype=np.int64)
        # Pre-seed one slot so "not better" rows must leave it alone.
        best_w[0], best_a[0], best_b[0] = -1.0, 0, 0
        expect = [(best_w[g], best_a[g], best_b[g]) for g in range(size)]
        for i in range(300):
            g = groups[i]
            if (w[i], a[i], b[i]) < expect[g]:
                expect[g] = (w[i], a[i], b[i])
        kernels.scatter_min_lex3(best_w, best_a, best_b, groups, w, a, b)
        for g in range(size):
            assert (best_w[g], best_a[g], best_b[g]) == expect[g]


# -- MessageBatch extras & empty-batch caching --------------------------------


class TestMessageBatchExtras:
    def test_empty_is_cached_per_mode(self):
        assert MessageBatch.empty() is MessageBatch.empty()
        assert MessageBatch.empty(True) is MessageBatch.empty(True)
        assert MessageBatch.empty() is not MessageBatch.empty(True)
        assert len(MessageBatch.empty()) == 0
        assert MessageBatch.empty(True).payloads == []

    def test_take_gathers_extras(self):
        batch = MessageBatch(
            senders=np.arange(5),
            ports=np.zeros(5, dtype=np.int64),
            kinds=np.zeros(5, dtype=np.int64),
            values=np.arange(5) * 10,
            extras={"hops": np.arange(5) + 100, "w": np.arange(5) * 0.5},
        )
        sub = batch.take(np.asarray([3, 1]))
        assert sub.values.tolist() == [30, 10]
        assert sub.extras["hops"].tolist() == [103, 101]
        assert sub.extras["w"].tolist() == [1.5, 0.5]
        assert sub.extras["w"].dtype == np.float64

    def test_take_skips_absent_optional_columns(self):
        batch = MessageBatch(
            senders=np.arange(4),
            ports=np.zeros(4, dtype=np.int64),
            kinds=np.zeros(4, dtype=np.int64),
            values=np.arange(4),
        )
        sub = batch.take(np.asarray([0, 2]))
        assert sub.bits is None
        assert sub.payloads is None
        assert sub.extras is None

    def test_take_nothing_returns_shared_empty(self):
        batch = MessageBatch(
            senders=np.arange(3),
            ports=np.zeros(3, dtype=np.int64),
            kinds=np.zeros(3, dtype=np.int64),
            values=np.arange(3),
            extras={"hops": np.arange(3)},
        )
        assert batch.take(np.empty(0, dtype=np.int64)) is MessageBatch.empty()


# -- invariance: the knob never changes results -------------------------------


def _lcr_trial(kernel):
    from repro.classical.leader_election.ring import lcr_ring
    from repro.util.rng import RandomSource

    os.environ["REPRO_KERNEL"] = kernel
    try:
        result = lcr_ring(48, RandomSource(23), node_api="batch")
    finally:
        del os.environ["REPRO_KERNEL"]
    return (
        result.messages,
        result.rounds,
        result.leader,
        dict(result.statuses),
        dict(result.meta),
    )


class TestInvariance:
    def test_engine_trials_identical_across_tiers(self):
        tiers = ["numpy", "auto"]
        snapshots = [_lcr_trial(tier) for tier in tiers]
        assert snapshots[0] == snapshots[1]

    def test_store_identity_ignores_kernel(self, monkeypatch, tmp_path):
        from repro.runtime.catalog import get_scenario
        from repro.runtime.store import ResultStore

        scenario = get_scenario("mst/boruvka-engine")
        store = ResultStore(root=tmp_path)

        monkeypatch.setenv("REPRO_KERNEL", "numpy")
        identity_numpy = ResultStore.identity(scenario, 32, 0)
        path_numpy = store.path_for(scenario, 32, 0)
        monkeypatch.setenv("REPRO_KERNEL", "auto")
        identity_auto = ResultStore.identity(scenario, 32, 0)
        path_auto = store.path_for(scenario, 32, 0)

        assert identity_numpy == identity_auto
        assert path_numpy == path_auto
        assert "kernel" not in identity_numpy
