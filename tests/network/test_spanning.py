"""Tests for repro.network.spanning."""

import pytest

from repro.network import graphs
from repro.network.metrics import MetricsRecorder
from repro.network.spanning import bfs_tree, charge_broadcast, charge_convergecast


class TestBFSTree:
    def test_spans_all_nodes(self):
        t = graphs.torus(4, 4)
        tree = bfs_tree(t, 0)
        assert tree.size == 16
        assert tree.edge_total == 15

    def test_root_has_no_parent(self):
        tree = bfs_tree(graphs.cycle(6), 2)
        assert tree.parent[2] == -1
        assert tree.depth[2] == 0

    def test_depths_are_bfs_distances(self):
        t = graphs.cycle(8)
        tree = bfs_tree(t, 0)
        assert tree.depth[4] == 4
        assert tree.height == 4

    def test_parents_are_neighbours(self):
        t = graphs.hypercube(3)
        tree = bfs_tree(t, 0)
        for v, p in tree.parent.items():
            if p >= 0:
                assert t.has_edge(v, p)

    def test_children_inverse_of_parent(self):
        tree = bfs_tree(graphs.star(6), 0)
        children = tree.children()
        assert sorted(children[0]) == [1, 2, 3, 4, 5]

    def test_path_to_root(self):
        t = graphs.path(5)
        tree = bfs_tree(t, 0)
        assert tree.path_to_root(4) == [4, 3, 2, 1, 0]

    def test_raises_on_disconnected(self):
        from repro.network.topology import ExplicitTopology

        t = ExplicitTopology(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            bfs_tree(t, 0)


class TestCharging:
    def test_broadcast_costs_edges_and_height(self):
        tree = bfs_tree(graphs.path(6), 0)
        metrics = MetricsRecorder()
        charge_broadcast(tree, metrics, label="bc")
        assert metrics.messages == 5
        assert metrics.rounds == 5

    def test_convergecast_same_cost_shape(self):
        tree = bfs_tree(graphs.star(9), 0)
        metrics = MetricsRecorder()
        charge_convergecast(tree, metrics)
        assert metrics.messages == 8
        assert metrics.rounds == 1
